"""Column-store open time vs. full regenerate-and-load.

The point of the persistent store: a benchmark run should not pay the
data-generation bill twice. This bench times ``Database.open`` on a
saved sf=0.01 store (lazy — O(columns touched), and nothing is touched
at open) against the regenerate-from-scratch path it replaces, and
records the speedup in ``BENCH_store_open.json``.
"""

import shutil
import tempfile
import time

import pytest

from repro.dsdgen import build_database
from repro.engine import Database

from conftest import BENCH_SEED, BENCH_SF, show


@pytest.fixture(scope="module")
def store_path(bench_data):
    db, _ = build_database(BENCH_SF, data=bench_data)
    path = tempfile.mkdtemp(prefix="bench-store-") + "/db"
    db.save(path, block_rows=4096, scale_factor=BENCH_SF, seed=BENCH_SEED)
    yield path
    shutil.rmtree(path, ignore_errors=True)


def test_store_open(benchmark, store_path):
    db = benchmark(Database.open, store_path)
    assert db.table("store_sales").num_rows > 0
    assert not any(
        c.is_loaded for c in db.table("store_sales").columns.values()
    )


def test_store_open_vs_regenerate(benchmark, store_path):
    t0 = time.perf_counter()
    build_database(BENCH_SF, seed=BENCH_SEED)
    regenerate_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    db = Database.open(store_path)
    open_s = time.perf_counter() - t0
    assert db.table("item").num_rows > 0

    speedup = regenerate_s / max(open_s, 1e-9)
    show(
        "Column-store open vs regenerate+load (sf=0.01)",
        [
            f"{'regenerate + load':24s} {regenerate_s * 1000:>10.1f} ms",
            f"{'Database.open':24s} {open_s * 1000:>10.1f} ms",
            f"{'speedup':24s} {speedup:>10.1f} x",
        ],
    )

    def open_again():
        return Database.open(store_path)

    result = benchmark(open_again)
    assert result.table("item").num_rows > 0
    benchmark.extra_info["regenerate_seconds"] = round(regenerate_s, 4)
    benchmark.extra_info["open_seconds"] = round(open_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    # lazy open must beat regenerating the whole database handily
    assert speedup > 5
