"""Figure 1 — the Store Sales snowflake schema.

Regenerates the structure the figure draws: the store_sales fact with
its dimension ring, the snowflaked customer sub-dimensions, the double
customer_address role, and the ticket+item fact-to-fact link to
store_returns.
"""

import networkx as nx

from repro.schema import schema_statistics, snowflake_graph

from conftest import show


def test_figure1_store_sales_snowflake(benchmark):
    graph = benchmark(snowflake_graph)
    store_dims = sorted(graph.successors("store_sales"))
    lines = ["store_sales -> " + ", ".join(store_dims)]
    lines.append("customer -> " + ", ".join(sorted(graph.successors("customer"))))
    lines.append(
        "household_demographics -> "
        + ", ".join(sorted(graph.successors("household_demographics")))
    )
    show("Figure 1: Store Sales snowflake (adjacency)", lines)

    # the figure's defining relationships
    assert "customer_address" in store_dims            # fact -> address
    assert graph.has_edge("customer", "customer_address")  # dim -> address (circular role)
    assert graph.has_edge("household_demographics", "income_band")  # 2-level snowflake
    assert "reason" in graph.successors("store_returns")
    assert "reason" not in store_dims


def test_figure1_snowflake_not_pure_star(benchmark):
    def depth():
        graph = snowflake_graph()
        # longest dimension-to-dimension chain from a fact table
        lengths = nx.single_source_shortest_path_length(graph, "store_sales")
        return max(lengths.values())

    longest = benchmark(depth)
    show("Figure 1: snowflake depth from store_sales", [f"max path length = {longest}"])
    # a pure star would have depth 1; the snowstorm nests dimensions
    assert longest >= 2


def test_figure1_shared_dimensions(benchmark):
    def shared():
        graph = snowflake_graph()
        store = set(graph.successors("store_sales"))
        catalog = set(graph.successors("catalog_sales"))
        web = set(graph.successors("web_sales"))
        return store & catalog & web

    common = benchmark(shared)
    show("Figure 1: dimensions shared by all three channels", [", ".join(sorted(common))])
    assert {"date_dim", "time_dim", "item", "customer", "promotion"} <= common
