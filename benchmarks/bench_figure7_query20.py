"""Figure 7 — Query 20, the paper's reporting example.

The catalog channel is the reporting part of the schema, so Q20 may be
answered from a materialized view. The bench times the query against
base tables and against the view, and reports the speedup — the paper's
whole point about amalgamating ad-hoc and reporting queries.
"""

import time

from repro.runner.execution import REPORTING_MATVIEWS

from conftest import show


def _ensure_views(db):
    for name, sql in REPORTING_MATVIEWS.items():
        if not db.catalog.has_matview(name):
            db.create_materialized_view(name, sql)


def test_figure7_query20_base_tables(benchmark, bench_db, bench_qgen):
    query = bench_qgen.generate(20, stream=0)
    bench_db.enable_matview_rewrite = False
    try:
        result = benchmark(bench_db.execute, query.statements[0])
    finally:
        bench_db.enable_matview_rewrite = True
    assert result.rewritten_from_view is None
    assert "revenueratio" in result.column_names


def test_figure7_query20_via_matview(benchmark, bench_db, bench_qgen):
    _ensure_views(bench_db)
    query = bench_qgen.generate(20, stream=0)
    result = benchmark(bench_db.execute, query.statements[0])
    assert result.rewritten_from_view == "mv_catalog_item_date"


def test_figure7_reporting_speedup(benchmark, bench_db, bench_qgen):
    """The view must win: measure both paths on the same query."""
    _ensure_views(bench_db)
    query = bench_qgen.generate(20, stream=0)
    statement = query.statements[0]

    def measure():
        bench_db.enable_matview_rewrite = False
        t0 = time.perf_counter()
        base_rows = bench_db.execute(statement).rows()
        base = time.perf_counter() - t0
        bench_db.enable_matview_rewrite = True
        t0 = time.perf_counter()
        view_rows = bench_db.execute(statement).rows()
        view = time.perf_counter() - t0
        return base, view, len(base_rows), len(view_rows)

    base, view, base_n, view_n = benchmark(measure)
    show(
        "Figure 7: Query 20 — reporting query with auxiliary structures",
        [f"base tables : {base * 1000:8.1f} ms ({base_n} rows)",
         f"matview     : {view * 1000:8.1f} ms ({view_n} rows)",
         f"speedup     : {base / view:8.1f}x"],
    )
    assert base_n == view_n
    assert view < base  # the reporting path must be faster
