"""§5.3 — the QphDS@SF metric: worked examples and properties.

Regenerates the paper's arithmetic: 198*S query counts (1386 at SF 1000
with 7 streams), the load-time fraction, the scale-factor
normalization, and the $/QphDS price-performance ratio.
"""

from repro.runner import (
    MetricInputs,
    load_time_share,
    price_performance,
    qphds,
    total_queries,
)

from conftest import show


def test_metric_worked_examples(benchmark):
    def compute():
        return {
            "queries@1000sf/7streams": total_queries(7),
            "queries@15streams": total_queries(15),
            "load_fraction_10_streams": 0.01 * 10,
        }

    values = benchmark(compute)
    show(
        "§5.3: worked examples",
        [f"198 * 7  = {values['queries@1000sf/7streams']} (paper: 1386)",
         f"198 * 15 = {values['queries@15streams']} (paper: 2970)",
         f"load fraction at 10 streams = {values['load_fraction_10_streams']:.0%} (paper: 10%)"],
    )
    assert values["queries@1000sf/7streams"] == 1386
    assert values["queries@15streams"] == 2970


def test_metric_formula_and_price_performance(benchmark):
    def compute():
        inputs = MetricInputs(
            scale_factor=1000, streams=7,
            t_qr1=3600.0, t_dm=900.0, t_qr2=3700.0, t_load=7200.0,
        )
        metric = qphds(inputs)
        return inputs, metric, price_performance(1_500_000, metric), load_time_share(inputs)

    inputs, metric, dollars, share = benchmark(compute)
    expected = 1000 * 3600 * 1386 / (3600 + 900 + 3700 + 0.01 * 7 * 7200)
    show(
        "§5.3: QphDS@1000 for a hypothetical result",
        [f"QphDS@1000 = {metric:,.0f}",
         f"$/QphDS    = {dollars:,.4f}",
         f"load share of denominator = {share:.1%}"],
    )
    assert metric == expected


def test_metric_scale_normalization(benchmark):
    """'assuming ideal scalability ... the metrics are normalized based
    on scale factors' — a perfectly scaling system keeps QphDS constant
    modulo the stream-count growth."""

    def compute():
        results = {}
        for sf, streams in ((100, 3), (1000, 7)):
            # ideal scaling: elapsed grows linearly with SF
            scale = sf / 100
            inputs = MetricInputs(sf, streams,
                                  1000.0 * scale, 100.0 * scale,
                                  1000.0 * scale, 500.0 * scale)
            results[sf] = qphds(inputs)
        return results

    results = benchmark(compute)
    show(
        "§5.3: normalization under ideal scaling",
        [f"QphDS@{sf} = {v:,.0f}" for sf, v in results.items()],
    )
    ratio = results[1000] / results[100]
    # 7/3 more streams, otherwise flat: the ratio is streams-driven only
    assert 2.0 < ratio < 2.6
