"""Engine operator micro-benchmarks.

Not a paper exhibit — a performance baseline for the substrate itself,
so regressions in the operators that dominate the workload (hash join,
hash aggregation, sort, window, star filter) are visible in isolation.
All run against the sf 0.01 store_sales fact (~29k rows).

The ``parallel`` group re-runs the morsel-parallelisable operators at
workers ∈ {1, 2, 4}; ``benchmarks/check_parallel_speedup.py`` reads
the resulting ``BENCH_engine_operators.json`` and prints the speedup
curve.  On a single-core container the curve is flat (numpy kernels
release the GIL, but there is nowhere to run them concurrently) — the
point of recording it is the trajectory on multi-core hardware.
"""

import time

import pytest
from conftest import show

from repro.engine.parallel import shutdown_pool

#: one representative query per morsel-parallelised operator
PARALLEL_OPS = {
    "scan_filter": (
        "SELECT COUNT(*) FROM store_sales "
        "WHERE ss_quantity > 50 AND ss_net_paid > 10.0"
    ),
    "join_probe": (
        "SELECT COUNT(*) FROM store_sales, store_returns "
        "WHERE ss_ticket_number = sr_ticket_number AND ss_item_sk = sr_item_sk"
    ),
    "hash_aggregate": (
        "SELECT ss_store_sk, ss_item_sk, SUM(ss_net_paid), COUNT(*) "
        "FROM store_sales GROUP BY ss_store_sk, ss_item_sk"
    ),
    "sort": (
        "SELECT ss_item_sk, ss_net_paid FROM store_sales "
        "ORDER BY ss_net_paid DESC, ss_item_sk"
    ),
}

WORKER_CURVE = [1, 2, 4]


def test_operator_full_scan_filter(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT COUNT(*) FROM store_sales WHERE ss_quantity > 50",
    )
    assert result.scalar() > 0


def test_operator_hash_join_fact_dim(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk",
    )
    assert result.scalar() == bench_db.table("store_sales").num_rows


def test_operator_hash_aggregate(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT ss_store_sk, SUM(ss_net_paid), AVG(ss_quantity), COUNT(*) "
        "FROM store_sales GROUP BY ss_store_sk",
    )
    assert len(result) > 0


def test_operator_sort_heavy(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT ss_item_sk, ss_net_paid FROM store_sales "
        "ORDER BY ss_net_paid DESC, ss_item_sk",
    )
    assert len(result) == bench_db.table("store_sales").num_rows


def test_operator_window_partition(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT ss_store_sk, ss_net_paid, "
        "SUM(ss_net_paid) OVER (PARTITION BY ss_store_sk) "
        "FROM store_sales",
    )
    assert len(result) == bench_db.table("store_sales").num_rows


def test_operator_count_distinct(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT COUNT(DISTINCT ss_customer_sk) FROM store_sales",
    )
    assert result.scalar() > 0


def test_operator_fact_to_fact_join(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT COUNT(*) FROM store_sales, store_returns "
        "WHERE ss_ticket_number = sr_ticket_number AND ss_item_sk = sr_item_sk",
    )
    assert result.scalar() == bench_db.table("store_returns").num_rows


@pytest.mark.parametrize("op", sorted(PARALLEL_OPS))
@pytest.mark.parametrize("workers", WORKER_CURVE)
def test_operator_parallel(benchmark, bench_db, op, workers):
    """Serial-vs-parallel timing for one operator at one worker count
    (``workers=1`` is the serial baseline — no pool is built)."""
    sql = PARALLEL_OPS[op]
    benchmark.extra_info["op"] = op
    benchmark.extra_info["workers"] = workers
    result = benchmark(bench_db.execute, sql, workers=workers)
    assert len(result) > 0


def test_operator_parallel_speedup_curve(benchmark, bench_db):
    """One-shot speedup curve (median of 5) printed as an exhibit and
    recorded in the JSON via extra_info, so `make bench-smoke` can
    report it without re-deriving from the per-test entries."""
    def median_seconds(workers, reps=5):
        samples = []
        for _ in range(reps):
            start = time.perf_counter()
            for sql in PARALLEL_OPS.values():
                bench_db.execute(sql, workers=workers)
            samples.append(time.perf_counter() - start)
        return sorted(samples)[reps // 2]

    serial = benchmark.pedantic(
        median_seconds, args=(None,), rounds=1, iterations=1
    )
    curve = {}
    for workers in WORKER_CURVE[1:]:
        curve[workers] = serial / median_seconds(workers)
    shutdown_pool()
    benchmark.extra_info["serial_seconds"] = round(serial, 6)
    benchmark.extra_info["speedup"] = {str(w): round(s, 3) for w, s in curve.items()}
    show(
        "Morsel-parallel speedup (all parallel ops, serial-relative)",
        [f"workers={w}: {s:.2f}x" for w, s in curve.items()],
    )
    assert all(s > 0 for s in curve.values())


def test_operator_summary(benchmark, bench_db):
    """One line of orientation output for the captured bench log."""
    def stats():
        return {
            "store_sales": bench_db.table("store_sales").num_rows,
            "item": bench_db.table("item").num_rows,
            "customer": bench_db.table("customer").num_rows,
        }

    sizes = benchmark(stats)
    show(
        "Engine operator baseline (sf 0.01 substrate sizes)",
        [f"{k}: {v:,} rows" for k, v in sizes.items()],
    )
    assert sizes["store_sales"] > 20_000
