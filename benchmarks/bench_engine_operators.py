"""Engine operator micro-benchmarks.

Not a paper exhibit — a performance baseline for the substrate itself,
so regressions in the operators that dominate the workload (hash join,
hash aggregation, sort, window, star filter) are visible in isolation.
All run against the sf 0.01 store_sales fact (~29k rows).
"""

from conftest import show


def test_operator_full_scan_filter(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT COUNT(*) FROM store_sales WHERE ss_quantity > 50",
    )
    assert result.scalar() > 0


def test_operator_hash_join_fact_dim(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk",
    )
    assert result.scalar() == bench_db.table("store_sales").num_rows


def test_operator_hash_aggregate(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT ss_store_sk, SUM(ss_net_paid), AVG(ss_quantity), COUNT(*) "
        "FROM store_sales GROUP BY ss_store_sk",
    )
    assert len(result) > 0


def test_operator_sort_heavy(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT ss_item_sk, ss_net_paid FROM store_sales "
        "ORDER BY ss_net_paid DESC, ss_item_sk",
    )
    assert len(result) == bench_db.table("store_sales").num_rows


def test_operator_window_partition(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT ss_store_sk, ss_net_paid, "
        "SUM(ss_net_paid) OVER (PARTITION BY ss_store_sk) "
        "FROM store_sales",
    )
    assert len(result) == bench_db.table("store_sales").num_rows


def test_operator_count_distinct(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT COUNT(DISTINCT ss_customer_sk) FROM store_sales",
    )
    assert result.scalar() > 0


def test_operator_fact_to_fact_join(benchmark, bench_db):
    result = benchmark(
        bench_db.execute,
        "SELECT COUNT(*) FROM store_sales, store_returns "
        "WHERE ss_ticket_number = sr_ticket_number AND ss_item_sk = sr_item_sk",
    )
    assert result.scalar() == bench_db.table("store_returns").num_rows


def test_operator_summary(benchmark, bench_db):
    """One line of orientation output for the captured bench log."""
    def stats():
        return {
            "store_sales": bench_db.table("store_sales").num_rows,
            "item": bench_db.table("item").num_rows,
            "customer": bench_db.table("customer").num_rows,
        }

    sizes = benchmark(stats)
    show(
        "Engine operator baseline (sf 0.01 substrate sizes)",
        [f"{k}: {v:,} rows" for k, v in sizes.items()],
    )
    assert sizes["store_sales"] > 20_000
