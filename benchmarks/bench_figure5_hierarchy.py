"""Figure 5 — the traditional item hierarchy (category -> class -> brand).

Regenerates the hierarchy, prints its level cardinalities, and verifies
the single-inheritance invariant in both the tree and the generated
item dimension rows.
"""

from repro.dsdgen import ItemHierarchy

from conftest import show


def test_figure5_hierarchy_structure(benchmark):
    hierarchy = benchmark(ItemHierarchy)
    show(
        "Figure 5: item hierarchy levels",
        [
            f"categories: {hierarchy.num_categories}",
            f"classes   : {hierarchy.num_classes}",
            f"brands    : {hierarchy.num_brands}",
        ],
    )
    assert hierarchy.num_categories == 10
    assert hierarchy.verify_single_inheritance()
    assert hierarchy.num_brands == hierarchy.num_classes * 10


def test_figure5_single_inheritance_in_generated_items(benchmark, bench_db):
    def violations():
        brand_to_class = bench_db.execute("""
            SELECT i_brand_id, COUNT(DISTINCT i_class_id) c
            FROM item GROUP BY i_brand_id HAVING COUNT(DISTINCT i_class_id) > 1
        """)
        class_to_category = bench_db.execute("""
            SELECT i_class_id, COUNT(DISTINCT i_category_id) c
            FROM item GROUP BY i_class_id HAVING COUNT(DISTINCT i_category_id) > 1
        """)
        return len(brand_to_class), len(class_to_category)

    brand_bad, class_bad = benchmark(violations)
    show(
        "Figure 5: inheritance violations in the item dimension",
        [f"brands in >1 class     : {brand_bad}",
         f"classes in >1 category : {class_bad}"],
    )
    assert brand_bad == 0
    assert class_bad == 0
