"""Figure 4 — the comparability problem of query Q1.

The paper's example query ``SELECT s_date, SUM(s_sales) FROM sales
WHERE s_date BETWEEN D1 AND D2 GROUP BY s_date`` shows why (D1, D2)
pairs must keep qualifying rows identical. This bench runs the same
experiment on generated data: equal-width windows drawn *within one
comparability zone* qualify similar row counts, while windows from
*different* zones differ structurally.
"""

import statistics

from repro.qgen.substitutions import zone_date_range

from conftest import show


def _counts(db, qgen_ctx, zone, samples=8, days=28):
    sub = zone_date_range(zone, days)
    from repro.dsdgen.rng import RandomStream, stream_seed

    counts = []
    for i in range(samples):
        rng = RandomStream(stream_seed(77, f"fig4.{zone}.{i}"))
        values = sub.generate(rng, qgen_ctx)
        sql = f"""
            SELECT COUNT(*) FROM store_sales, date_dim
            WHERE ss_sold_date_sk = d_date_sk
              AND d_date BETWEEN {values['start']} AND {values['end']}
        """
        counts.append(db.execute(sql).scalar())
    return counts


def test_figure4_within_zone_comparable(benchmark, bench_db, bench_data):
    counts = benchmark(_counts, bench_db, bench_data.context, 1)
    mean = statistics.mean(counts)
    spread = statistics.pstdev(counts) / mean if mean else 0
    show(
        "Figure 4: qualifying rows across zone-1 substitutions",
        [f"counts = {counts}", f"relative std = {spread:.2f}"],
    )
    assert mean > 0
    assert spread < 0.5  # near-identical, up to model-scale sampling noise


def test_figure4_across_zones_not_comparable(benchmark, bench_db, bench_data):
    def both():
        return (
            statistics.mean(_counts(bench_db, bench_data.context, 1, samples=5)),
            statistics.mean(_counts(bench_db, bench_data.context, 3, samples=5)),
        )

    zone1_mean, zone3_mean = benchmark(both)
    show(
        "Figure 4: zone 1 vs zone 3 windows of equal width",
        [f"zone 1 mean = {zone1_mean:,.0f}", f"zone 3 mean = {zone3_mean:,.0f}",
         f"ratio = {zone3_mean / zone1_mean:.2f}x"],
    )
    # zone 3 (Nov/Dec) windows qualify structurally more rows: the census
    # masses give ~0.026 probability per zone-3 week vs ~0.018 per zone-1
    # week, a ~1.45x ratio — substituting across zones would change the
    # answer-set size, hence the zone rule
    assert zone3_mean > 1.25 * zone1_mean
