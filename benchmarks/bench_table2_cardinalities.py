"""Table 2 — Table Cardinalities.

Paper (K=10^3, M=10^6, B=10^9)::

    table          100GB   1TB    10TB   100TB
    store_sales    288M    2.9B   30B    297B
    store_returns  14M     147M   1.5B   15B
    store          200     500    750    1,500
    customer       2M      8M     20M    100M
    items          200K    300K   400K   500K

Our scaling model pins these anchors exactly; the bench regenerates the
grid and times full-model evaluation across all official scale factors.
"""

from repro.dsdgen import OFFICIAL_SCALE_FACTORS, ScalingModel

from conftest import show

PAPER_TABLE_2 = {
    "store_sales": {100: 288_000_000, 1000: 2_900_000_000, 10000: 30_000_000_000, 100000: 297_000_000_000},
    "store_returns": {100: 14_000_000, 1000: 147_000_000, 10000: 1_500_000_000, 100000: 15_000_000_000},
    "store": {100: 200, 1000: 500, 10000: 750, 100000: 1_500},
    "customer": {100: 2_000_000, 1000: 8_000_000, 10000: 20_000_000, 100000: 100_000_000},
    "item": {100: 200_000, 1000: 300_000, 10000: 400_000, 100000: 500_000},
}


def _all_models():
    return {sf: ScalingModel(sf).table_rows() for sf in OFFICIAL_SCALE_FACTORS}


def test_table2_cardinalities(benchmark):
    grids = benchmark(_all_models)
    lines = [f"{'table':16s}" + "".join(f"{sf:>16,}" for sf in (100, 1000, 10000, 100000))]
    for table in PAPER_TABLE_2:
        lines.append(
            f"{table:16s}" + "".join(f"{grids[sf][table]:>16,}" for sf in (100, 1000, 10000, 100000))
        )
    show("Table 2: Table Cardinalities (measured == paper by construction)", lines)
    for table, anchors in PAPER_TABLE_2.items():
        for sf, expected in anchors.items():
            assert grids[sf][table] == expected, (table, sf)


def test_table2_shape_fact_linear_dim_sublinear(benchmark):
    def ratios():
        m100, m100k = ScalingModel(100), ScalingModel(100000)
        return {
            "store_sales": m100k.rows("store_sales") / m100.rows("store_sales"),
            "customer": m100k.rows("customer") / m100.rows("customer"),
            "item": m100k.rows("item") / m100.rows("item"),
        }

    growth = benchmark(ratios)
    show(
        "Table 2 shape: growth from 100GB to 100TB (1000x data)",
        [f"{k:14s} x{v:,.1f}" for k, v in growth.items()],
    )
    assert growth["store_sales"] > 900     # linear: ~1031x
    assert growth["customer"] == 50        # sub-linear
    assert growth["item"] == 2.5           # nearly flat
