"""Observability overhead check (``make bench-smoke``).

Verifies the `repro.obs` contract: with tracing and metrics *disabled*
(the default), the instrumentation guards add no measurable cost to
the tier-1 query suite — the acceptance bar is < 2% — and reports what
*enabling* full EXPLAIN ANALYZE collection costs for context.

Method: the same query set (one generated statement per template over
a seeded sf-model database) is timed in interleaved A/B rounds:

* ``disabled``  — the stock execute path, observability off (what the
  seed measured);
* ``disabled'`` — a second pass of the identical configuration, which
  bounds the measurement noise floor;
* ``analyze``   — every query run under ``explain_analyze_dict`` with
  a live stats collector (the fully-instrumented path).

The comparison is drift-proof: each round times A, analyze, B
back-to-back, the per-round ratio ``B/A`` is computed *within* the
round (so slow system drift hits both sides equally), and the check
uses the **median** of the per-round ratios.  It fails if that median
deviates from 1 by more than the threshold — meaning the guards are
NOT free.  Overriding knobs: ``BENCH_OVERHEAD_MAX`` (fraction, default
0.02), ``BENCH_OVERHEAD_SF`` and ``BENCH_OVERHEAD_ROUNDS``.
"""

from __future__ import annotations

import os
import statistics
import sys
import time

from repro.dsdgen import build_database
from repro.qgen import QGen, build_catalog

SF = float(os.environ.get("BENCH_OVERHEAD_SF", "0.002"))
ROUNDS = int(os.environ.get("BENCH_OVERHEAD_ROUNDS", "9"))
MAX_OVERHEAD = float(os.environ.get("BENCH_OVERHEAD_MAX", "0.02"))
SEED = 19620718


def _suite(db, qgen) -> list[str]:
    """One statement per template, skipping any that fail to run."""
    statements = []
    for template_id in sorted(qgen.templates):
        query = qgen.generate(template_id, stream=0)
        statements.append(query.statements[0])
    return statements


def _time_disabled(db, statements: list[str]) -> float:
    start = time.perf_counter()
    for sql in statements:
        db.execute(sql)
    return time.perf_counter() - start


def _time_analyze(db, statements: list[str]) -> float:
    start = time.perf_counter()
    for sql in statements:
        db.explain_analyze_dict(sql)
    return time.perf_counter() - start


def main() -> int:
    """Run the interleaved A/B overhead measurement; 0 on pass."""
    print(f"building sf={SF} database ...", flush=True)
    db, data = build_database(SF, seed=SEED)
    qgen = QGen(data.context, build_catalog())
    statements = _suite(db, qgen)
    print(f"{len(statements)} statements, {ROUNDS} interleaved rounds")

    disabled_a: list[float] = []
    disabled_b: list[float] = []
    analyze: list[float] = []
    # warm-up pass so first-touch costs (lazy caches) hit no variant
    _time_disabled(db, statements)
    for _ in range(ROUNDS):
        disabled_a.append(_time_disabled(db, statements))
        analyze.append(_time_analyze(db, statements))
        disabled_b.append(_time_disabled(db, statements))

    best_a = min(disabled_a)
    best_b = min(disabled_b)
    best_analyze = min(analyze)
    # within-round ratios cancel slow drift (thermal / scheduler) that
    # would bias a best-of-group comparison on a shared machine
    guard_delta = abs(
        statistics.median(b / a for a, b in zip(disabled_a, disabled_b)) - 1.0
    )
    analyze_cost = (
        statistics.median(x / a for a, x in zip(disabled_a, analyze)) - 1.0
    )

    print(f"disabled pass A (best of {ROUNDS})   : {best_a * 1000:9.1f} ms")
    print(f"disabled pass B (best of {ROUNDS})   : {best_b * 1000:9.1f} ms")
    print(f"explain-analyze (best of {ROUNDS})   : {best_analyze * 1000:9.1f} ms")
    print(f"disabled-path delta (median of per-round B/A): {guard_delta * 100:6.2f}%"
          f"  (limit {MAX_OVERHEAD * 100:.0f}%)")
    print(f"full instrumentation cost (median per-round) : {analyze_cost * 100:6.2f}%")

    if guard_delta > MAX_OVERHEAD:
        print("FAIL: tracing-disabled runs differ beyond the overhead budget")
        return 1
    print("PASS: tracing disabled adds no measurable overhead")
    return 0


if __name__ == "__main__":
    sys.exit(main())
