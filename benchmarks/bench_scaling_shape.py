"""Scale-factor normalization, measured end to end.

§5.3's rationale: "assuming ideal scalability; if a system performs 100
queries per hour on a 100 scale factor database; the same setup will
only run 10 queries per hour at a 1000 scale factor database ... the
metrics are normalized based on scale factors." The bench runs the real
benchmark at two model scale factors 2.5x apart and reports both the raw
queries-per-hour (which drops with size) and QphDS@SF (which the
normalization keeps in the same order of magnitude).
"""

from repro.runner import BenchmarkConfig
from repro.runner.execution import run_benchmark

from conftest import show


def _run(sf: float):
    result, _ = run_benchmark(BenchmarkConfig(scale_factor=sf, streams=1))
    measured = (
        result.query_run_1.elapsed
        + result.maintenance.elapsed
        + result.query_run_2.elapsed
        + 0.01 * result.load.elapsed
    )
    raw_qph = result.total_queries / measured * 3600
    return raw_qph, result.qphds


def test_scaling_normalization(benchmark):
    def both():
        return {0.002: _run(0.002), 0.005: _run(0.005)}

    results = benchmark.pedantic(both, rounds=1, iterations=1)
    lines = [f"{'sf':>8s} {'raw q/h':>12s} {'QphDS@SF':>12s}"]
    for sf, (raw, qphds_value) in results.items():
        lines.append(f"{sf:>8} {raw:>12,.0f} {qphds_value:>12,.1f}")
    show("§5.3: scale-factor normalization, measured", lines)

    raw_small, qphds_small = results[0.002]
    raw_big, qphds_big = results[0.005]
    # raw throughput drops as the data grows ...
    assert raw_big < raw_small
    # ... while multiplying by SF flips the ordering: the bigger scale
    # factor scores at least as high, which is exactly the marketing
    # property §5.3 describes ("marketing teams would like to see larger
    # benchmark results at larger scale factors")
    assert qphds_big > qphds_small
    # and the normalized spread stays bounded (per-query overhead keeps
    # our substrate's costs sub-linear in SF, so it over-compensates a
    # little rather than staying perfectly flat)
    assert max(qphds_big, qphds_small) / min(qphds_big, qphds_small) < 3.0
