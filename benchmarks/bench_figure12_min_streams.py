"""Figure 12 — Minimum Required Query Streams.

Regenerates the table verbatim and demonstrates the design intent:
"larger systems not only execute queries on more data, but also serve
more concurrent users" — more streams mean proportionally more queries
in the metric's numerator.
"""

from repro.dsdgen import minimum_streams
from repro.runner import MetricInputs, qphds, total_queries

from conftest import show

PAPER_FIGURE_12 = {100: 3, 300: 5, 1000: 7, 3000: 9, 10000: 11, 30000: 13, 100000: 15}


def test_figure12_table(benchmark):
    def table():
        return {sf: minimum_streams(sf) for sf in PAPER_FIGURE_12}

    got = benchmark(table)
    lines = [f"{'scale factor':>12s} {'min streams':>12s} {'paper':>6s}"]
    for sf, streams in got.items():
        lines.append(f"{sf:>12,} {streams:>12d} {PAPER_FIGURE_12[sf]:>6d}")
    show("Figure 12: minimum required query streams", lines)
    assert got == PAPER_FIGURE_12


def test_figure12_streams_scale_workload(benchmark):
    """With fixed per-query cost, more streams leave QphDS roughly flat
    (more queries over proportionally more time) while raising the total
    work — streams cannot be gamed."""

    def metrics():
        results = {}
        for streams in (3, 7, 15):
            # elapsed scales with stream count (fixed per-stream cost)
            t = 100.0 * streams
            inputs = MetricInputs(100, streams, t, 10.0, t, 50.0)
            results[streams] = (total_queries(streams), qphds(inputs, False))
        return results

    results = benchmark(metrics)
    lines = [f"{'streams':>8s} {'queries':>8s} {'QphDS':>12s}"]
    for streams, (queries, metric) in results.items():
        lines.append(f"{streams:>8d} {queries:>8d} {metric:>12,.0f}")
    show("Figure 12: effect of stream count on the metric", lines)
    assert results[15][0] == 5 * results[3][0]
    # metric stays within a tight band: streams add work, not free score
    values = [m for _, m in results.values()]
    assert max(values) / min(values) < 1.2
