"""dsdgen throughput — vectorized serial vs parallel generation.

Times end-to-end data generation (all 24 tables) at the bench scale
factor, serial and with a 4-process pool, and reports rows/second.
The parallel run must stay byte-identical to serial: the LCG
jump-ahead places every worker's streams at the exact offsets the
serial generator would have reached.
"""

import hashlib

from repro.dsdgen import DsdGen

from conftest import BENCH_SEED, BENCH_SF, show


def _checksums(data) -> dict[str, str]:
    digests = {}
    for name in data.tables:
        acc = hashlib.sha256()
        for row in data.tables[name]:
            acc.update(repr(row).encode())
        digests[name] = acc.hexdigest()
    return digests


def test_dsdgen_serial_throughput(benchmark):
    def run():
        data = DsdGen(BENCH_SF, seed=BENCH_SEED).generate()
        return sum(data.row_counts.values())

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    per_sec = rows / benchmark.stats.stats.mean
    show(
        "dsdgen throughput: vectorized serial",
        [f"rows generated  : {rows:,}",
         f"rows/second     : {per_sec:,.0f}"],
    )
    assert rows > 0


def test_dsdgen_parallel_throughput(benchmark):
    def run():
        data = DsdGen(BENCH_SF, seed=BENCH_SEED, workers=4).generate()
        return sum(data.row_counts.values())

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    per_sec = rows / benchmark.stats.stats.mean
    show(
        "dsdgen throughput: 4-worker pool",
        [f"rows generated  : {rows:,}",
         f"rows/second     : {per_sec:,.0f}"],
    )
    assert rows > 0


def test_dsdgen_parallel_identical(benchmark, bench_data):
    serial = _checksums(bench_data)

    def run():
        return _checksums(DsdGen(BENCH_SF, seed=BENCH_SEED, workers=2).generate())

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    matches = sum(serial[name] == parallel[name] for name in serial)
    show(
        "dsdgen determinism: serial vs 2-worker checksums",
        [f"tables compared : {len(serial)}",
         f"tables matching : {matches}"],
    )
    assert parallel == serial
