"""Figure 6 — Query 52, the paper's ad-hoc example.

Times the generated Q52 (brand revenue for one manager-month on the
store channel) end to end, and verifies that — being an ad-hoc query —
it cannot be answered from a materialized view under the
implementation rules.
"""

from conftest import show


def test_figure6_query52_executes(benchmark, bench_db, bench_qgen):
    query = bench_qgen.generate(52, stream=0)
    result = benchmark(bench_db.execute, query.statements[0])
    show(
        "Figure 6: Query 52 (ad-hoc)",
        [query.statements[0].strip().splitlines()[0].strip(),
         f"rows = {len(result)}",
         f"sample = {result.rows()[:3]}"],
    )
    assert result.column_names == ["d_year", "brand_id", "brand", "ext_price"]


def test_figure6_query52_is_adhoc_no_view(benchmark, bench_db, bench_qgen):
    """Q52 touches store_sales (ad-hoc part): complex aux structures are
    illegal there, so it always runs against base tables."""
    from repro.engine.errors import CatalogError

    bench_db.catalog.restrict_aux_on = {"store_sales", "store_returns",
                                        "web_sales", "web_returns", "inventory"}
    query = bench_qgen.generate(52, stream=0)

    def run():
        return bench_db.execute(query.statements[0])

    result = benchmark(run)
    assert result.rewritten_from_view is None
    rejected = False
    try:
        bench_db.create_materialized_view("mv_illegal", """
            SELECT d_year, i_brand, SUM(ss_ext_sales_price)
            FROM store_sales, item, date_dim
            WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
            GROUP BY d_year, i_brand
        """)
    except CatalogError:
        rejected = True
    finally:
        bench_db.catalog.restrict_aux_on = None
        bench_db.catalog.drop_matview("mv_illegal")
    show(
        "Figure 6: ad-hoc implementation rules",
        [f"matview on store_sales rejected: {rejected}",
         "query answered from base tables"],
    )
    assert rejected
