"""Shared fixtures for the paper-reproduction benches.

Each ``bench_*`` module regenerates one exhibit (table or figure) of
"The Making of TPC-DS": it prints the paper-vs-measured comparison and
times the operation that produces it. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.dsdgen import DsdGen, build_database
from repro.qgen import QGen, build_catalog

BENCH_SF = 0.01
BENCH_SEED = 19620718


@pytest.fixture(scope="session")
def bench_data():
    return DsdGen(BENCH_SF, seed=BENCH_SEED).generate()


@pytest.fixture(scope="session")
def bench_db(bench_data):
    db, _ = build_database(BENCH_SF, data=bench_data)
    return db


@pytest.fixture(scope="session")
def bench_qgen(bench_data):
    return QGen(bench_data.context, build_catalog())


def show(title: str, lines) -> None:
    """Print an exhibit block (visible with -s; harmless otherwise)."""
    print()
    print(f"== {title} ==")
    for line in lines:
        print(line)
