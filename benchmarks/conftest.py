"""Shared fixtures for the paper-reproduction benches.

Each ``bench_*`` module regenerates one exhibit (table or figure) of
"The Making of TPC-DS": it prints the paper-vs-measured comparison and
times the operation that produces it. Run with::

    pytest benchmarks/ --benchmark-only -s

Besides stdout, every bench module emits a machine-readable result
file ``BENCH_<name>.json`` (one per module, written by the
``pytest_sessionfinish`` hook below) into ``benchmarks/results/`` —
override with ``BENCH_JSON_DIR`` — so the performance trajectory is
trackable across PRs without parsing terminal output.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.dsdgen import DsdGen, build_database
from repro.qgen import QGen, build_catalog

BENCH_SF = 0.01
BENCH_SEED = 19620718


@pytest.fixture(scope="session")
def bench_data():
    return DsdGen(BENCH_SF, seed=BENCH_SEED).generate()


@pytest.fixture(scope="session")
def bench_db(bench_data):
    db, _ = build_database(BENCH_SF, data=bench_data)
    return db


@pytest.fixture(scope="session")
def bench_qgen(bench_data):
    return QGen(bench_data.context, build_catalog())


def show(title: str, lines) -> None:
    """Print an exhibit block (visible with -s; harmless otherwise)."""
    print()
    print(f"== {title} ==")
    for line in lines:
        print(line)


def _module_result_name(fullname: str) -> str:
    """``benchmarks/bench_figure6_query52.py::test`` → ``figure6_query52``."""
    module = fullname.split("::", 1)[0]
    stem = os.path.splitext(os.path.basename(module))[0]
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<name>.json`` per bench module with the
    timing stats pytest-benchmark collected, so benchmark results are
    machine-readable alongside the stdout exhibits."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    out_dir = os.environ.get(
        "BENCH_JSON_DIR", os.path.join(os.path.dirname(__file__), "results")
    )
    from repro.obs import latency_percentiles

    by_module: dict[str, list[dict]] = {}
    for bench in bench_session.benchmarks:
        entry = bench.as_dict(include_data=True, stats=True)
        stats = entry.get("stats") or {}
        record = {
            "test": entry.get("name"),
            "rounds": stats.get("rounds"),
            "mean": stats.get("mean"),
            "median": stats.get("median"),
            "stddev": stats.get("stddev"),
            "min": stats.get("min"),
            "max": stats.get("max"),
            "ops": stats.get("ops"),
        }
        rounds_data = stats.get("data") or []
        if rounds_data:
            # per-round latency percentiles, same definition as the
            # runner's report tables (log2-bucket histogram quantiles)
            record["percentiles"] = {
                k: v
                for k, v in latency_percentiles(rounds_data).items()
                if k.startswith("p")
            }
        if entry.get("extra_info"):
            record["extra_info"] = entry["extra_info"]
        by_module.setdefault(_module_result_name(bench.fullname), []).append(
            record
        )
    os.makedirs(out_dir, exist_ok=True)
    payloads = []
    for name, entries in sorted(by_module.items()):
        payload = {
            "module": f"bench_{name}",
            "scale_factor": BENCH_SF,
            "seed": BENCH_SEED,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "benchmarks": entries,
        }
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        payloads.append(payload)
    # append this run to the regression-tracking history (keyed by git
    # SHA) so `tpcds-py obs diff` / `make bench-compare` can flag
    # run-over-run slowdowns
    from repro.obs.regress import append_history

    append_history(payloads, os.path.join(out_dir, "history.jsonl"))
