"""Ablation — the §2.1 access paths, switched on and off.

"Systems which can perform the entire spectrum of today's DSS
algorithms, such as bitmap lookups, ... complex query rewrites, index
driven joins, hash driven joins and large sort operations, will excel
in TPC-DS." The bench measures each optimizer capability's contribution
on representative queries (answers are asserted identical either way).
"""

import time

from repro.engine import OptimizerSettings
from repro.runner.execution import REPORTING_MATVIEWS

from conftest import show

STAR_SQL = """
    SELECT i_brand, SUM(cs_ext_sales_price) rev
    FROM catalog_sales, item, date_dim
    WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
      AND d_year = 1998 AND d_moy = 12 AND i_manager_id <= 10
    GROUP BY i_brand ORDER BY rev DESC LIMIT 50
"""

#: written with ANSI joins so the equi keys survive even with the
#: optimizer disabled — the pushdown ablation then measures predicate
#: placement, not an (infeasible) cartesian product
MULTIJOIN_SQL = """
    SELECT i_category, COUNT(*) c, SUM(ss_net_paid) paid
    FROM store_sales
    JOIN item ON ss_item_sk = i_item_sk
    JOIN date_dim ON ss_sold_date_sk = d_date_sk
    JOIN customer ON ss_customer_sk = c_customer_sk
    WHERE d_year = 1999
    GROUP BY i_category ORDER BY paid DESC
"""


def _rows_equal(a, b, rel=1e-6):
    """Row-set equality tolerant of float summation-order differences."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        for x, y in zip(row_a, row_b):
            if isinstance(x, float) and isinstance(y, float):
                if abs(x - y) > rel * max(abs(x), abs(y), 1.0):
                    return False
            elif x != y:
                return False
    return True


def _timed(db, sql, settings):
    saved = db.optimizer_settings
    db.optimizer_settings = settings
    try:
        start = time.perf_counter()
        rows = db.execute(sql).rows()
        return time.perf_counter() - start, rows
    finally:
        db.optimizer_settings = saved


def test_ablation_star_transformation(benchmark, bench_db):
    bench_db.create_index("catalog_sales", "cs_sold_date_sk", "bitmap")
    bench_db.create_index("catalog_sales", "cs_item_sk", "bitmap")

    def run():
        on = _timed(bench_db, STAR_SQL, OptimizerSettings(star_fact_threshold=1_000))
        off = _timed(bench_db, STAR_SQL, OptimizerSettings(enable_star_transformation=False))
        return on, off

    (t_on, rows_on), (t_off, rows_off) = benchmark.pedantic(run, rounds=3, iterations=1)
    show(
        "Ablation: star transformation (bitmap semi-join)",
        [f"with star filter   : {t_on * 1000:8.1f} ms",
         f"plain hash joins   : {t_off * 1000:8.1f} ms"],
    )
    assert _rows_equal(rows_on, rows_off)


def test_ablation_join_reorder(benchmark, bench_db):
    def run():
        on = _timed(bench_db, MULTIJOIN_SQL, OptimizerSettings())
        off = _timed(
            bench_db, MULTIJOIN_SQL,
            OptimizerSettings(enable_join_reorder=False,
                              enable_star_transformation=False),
        )
        return on, off

    (t_on, rows_on), (t_off, rows_off) = benchmark.pedantic(run, rounds=3, iterations=1)
    show(
        "Ablation: statistics-driven join reordering",
        [f"reordered : {t_on * 1000:8.1f} ms",
         f"as written: {t_off * 1000:8.1f} ms"],
    )
    assert _rows_equal(rows_on, rows_off)


def test_ablation_predicate_pushdown(benchmark, bench_db):
    def run():
        on = _timed(bench_db, MULTIJOIN_SQL, OptimizerSettings())
        off = _timed(
            bench_db, MULTIJOIN_SQL,
            OptimizerSettings(enable_pushdown=False, enable_join_reorder=False,
                              enable_star_transformation=False),
        )
        return on, off

    (t_on, rows_on), (t_off, rows_off) = benchmark.pedantic(run, rounds=3, iterations=1)
    show(
        "Ablation: predicate pushdown",
        [f"pushed    : {t_on * 1000:8.1f} ms",
         f"unpushed  : {t_off * 1000:8.1f} ms"],
    )
    assert _rows_equal(rows_on, rows_off)


def test_ablation_matview_rewrite(benchmark, bench_db, bench_qgen):
    for name, sql in REPORTING_MATVIEWS.items():
        if not bench_db.catalog.has_matview(name):
            bench_db.create_materialized_view(name, sql)
    statement = bench_qgen.generate(20, stream=1).statements[0]

    def run():
        bench_db.enable_matview_rewrite = True
        t0 = time.perf_counter()
        with_view = bench_db.execute(statement).rows()
        t_on = time.perf_counter() - t0
        bench_db.enable_matview_rewrite = False
        t0 = time.perf_counter()
        without = bench_db.execute(statement).rows()
        t_off = time.perf_counter() - t0
        bench_db.enable_matview_rewrite = True
        return (t_on, with_view), (t_off, without)

    (t_on, rows_on), (t_off, rows_off) = benchmark.pedantic(run, rounds=3, iterations=1)
    show(
        "Ablation: materialized-view query rewrite (Query 20)",
        [f"rewrite on : {t_on * 1000:8.1f} ms",
         f"rewrite off: {t_off * 1000:8.1f} ms",
         f"speedup    : {t_off / t_on:8.1f}x"],
    )
    assert len(rows_on) == len(rows_off)
