"""Table 1 — Schema Statistics.

Paper values: 7 fact tables, 17 dimensions, columns min 3 / max 34 /
avg 18, 104 foreign keys, flat-file row bytes min 16 / max 317 / avg 136.
Structural numbers must match exactly; row-byte numbers are measured
from generated flat files and should land in the same range (our
synthetic strings are not byte-identical to dsdgen's).
"""

from repro.dsdgen.flatfile import measured_row_statistics
from repro.schema import ALL_TABLES, PAPER_TABLE_1, schema_statistics

from conftest import show


def test_table1_structure(benchmark):
    stats = benchmark(schema_statistics)
    rows = [
        f"{'statistic':34s} {'measured':>10s} {'paper':>10s}"
    ]
    for (label, value), (_, paper) in zip(stats.as_rows(), PAPER_TABLE_1.as_rows()):
        rows.append(f"{label:34s} {value!s:>10s} {paper!s:>10s}")
    show("Table 1: Schema Statistics (structure)", rows)
    assert stats.fact_tables == 7
    assert stats.dimension_tables == 17
    assert stats.columns_min == 3
    assert stats.columns_max == 34
    assert stats.foreign_keys == 104
    assert abs(stats.columns_avg - 18) < 0.5


def test_table1_row_lengths(benchmark, bench_data):
    measured = benchmark(measured_row_statistics, bench_data.tables, ALL_TABLES)
    show(
        "Table 1: Schema Statistics (flat-file row bytes)",
        [
            f"{'':12s} {'measured':>10s} {'paper':>10s}",
            f"{'min':12s} {measured.min_bytes:>10d} {PAPER_TABLE_1.row_bytes_min:>10d}",
            f"{'max':12s} {measured.max_bytes:>10d} {PAPER_TABLE_1.row_bytes_max:>10d}",
            f"{'avg':12s} {measured.avg_bytes:>10.0f} {PAPER_TABLE_1.row_bytes_avg:>10.0f}",
        ],
    )
    # shape: the narrowest table is a handful of bytes (inventory), the
    # widest a few hundred, the average low hundreds
    assert measured.min_bytes <= 30
    assert 150 <= measured.max_bytes <= 700
    assert 80 <= measured.avg_bytes <= 300
