"""Figure 2 — Store Sales Distribution.

The figure plots weekly sales likelihood over a year: the census
department-store series (diamonds) against TPC-DS's three-zone step
function (squares). This bench regenerates both series, verifies the
step function's defining properties (uniform within zones, low < medium
< high), and confirms the *generated data* realizes the distribution.
"""

from repro.dsdgen import SalesDateDistribution
from repro.dsdgen.distributions import week_zone

from conftest import show


def test_figure2_series(benchmark):
    dist = SalesDateDistribution()

    def series():
        return dist.weekly_weights(), dist.census_weekly_weights()

    zoned, census = benchmark(series)
    lines = [f"{'week':>4s} {'zone':>4s} {'tpcds':>9s} {'census':>9s}"]
    for week in range(1, 53, 4):
        lines.append(
            f"{week:>4d} {week_zone(week):>4d} {zoned[week - 1]:>9.4f} {census[week - 1]:>9.4f}"
        )
    show("Figure 2: store sales distribution (weekly probability)", lines)

    zones = dist.zone_weeks
    step = {z: zoned[zones[z][0] - 1] for z in (1, 2, 3)}
    assert step[1] < step[2] < step[3]
    assert dist.uniformity_within_zone()
    # the step function preserves the census zone masses exactly
    mass = dist.zone_mass()
    for zone in (1, 2, 3):
        assert abs(sum(zoned[w - 1] for w in zones[zone]) - mass[zone]) < 1e-9


def test_figure2_realized_in_generated_data(benchmark, bench_data):
    calendar = bench_data.context.calendar

    def zone_densities():
        counts = {1: 0, 2: 0, 3: 0}
        for row in bench_data.tables["store_sales"]:
            offset = row[0] - calendar.sk_at(0)
            d = calendar.date_at(offset)
            week = min((d.timetuple().tm_yday - 1) // 7 + 1, 52)
            counts[week_zone(week)] += 1
        weeks = {1: 30, 2: 13, 3: 9}
        return {z: counts[z] / weeks[z] for z in counts}

    density = benchmark(zone_densities)
    show(
        "Figure 2: per-week sales density by zone, generated data",
        [f"zone {z}: {density[z]:,.0f} line items / week" for z in (1, 2, 3)],
    )
    assert density[1] < density[2] < density[3]
