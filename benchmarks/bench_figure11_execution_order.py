"""Figure 11 — Benchmark Execution Order.

Runs the complete benchmark test (Load -> Query Run 1 -> Data
Maintenance -> Query Run 2) at model scale and prints the full report,
including the QphDS@SF metric the sequence feeds.
"""

from repro.runner import BenchmarkConfig, render_report
from repro.runner.execution import run_benchmark

from conftest import show


def test_figure11_full_benchmark(benchmark):
    config = BenchmarkConfig(scale_factor=0.004, streams=2)

    def run():
        return run_benchmark(config)

    result, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    show("Figure 11: benchmark execution order", render_report(result).splitlines())

    # the Figure 11 sequence, in order, all measured
    assert result.load.elapsed > 0
    assert result.query_run_1.elapsed > 0
    assert result.maintenance.elapsed > 0
    assert result.query_run_2.elapsed > 0
    assert result.qphds > 0
    # both query runs execute the full workload
    assert result.query_run_1.queries_executed == 198
    assert result.query_run_2.queries_executed == 198


def test_figure11_query_run2_reflects_maintenance(benchmark):
    """Query Run 2 'measures the query execution power after the system
    has been updated' — it must see the maintained data, not the
    original snapshot."""
    config = BenchmarkConfig(scale_factor=0.002, streams=1)

    def run():
        from repro.runner.execution import BenchmarkRun

        bench_run = BenchmarkRun(config)
        bench_run.load_test()
        rows_before = bench_run.db.table("item").num_rows
        bench_run.query_run(1)
        bench_run.data_maintenance()
        rows_after = bench_run.db.table("item").num_rows
        qr2 = bench_run.query_run(2)
        return rows_before, rows_after, qr2.queries_executed

    before, after, executed = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Figure 11: maintenance visible to Query Run 2",
        [f"item rows before DM: {before}",
         f"item rows after DM : {after} (SCD revisions added)",
         f"QR2 queries        : {executed}"],
    )
    assert after > before
    assert executed == 99
