"""Figure 9 — updating a history-keeping dimension (type-2 SCD).

Times the close-and-insert loop on the item dimension and verifies the
SCD contract: the old revision's rec_end_date is set, a new open
revision is inserted, and every business key keeps exactly one open
revision.
"""

from repro.dsdgen import build_database
from repro.maintenance import RefreshGenerator, apply_dimension_updates

from conftest import BENCH_SF, show


def test_figure9_history_update(benchmark, bench_data):
    updates = [
        u
        for u in RefreshGenerator(bench_data.context, update_fraction=0.05)
        .dimension_updates()
        if u.table == "item"
    ]

    def run():
        db, _ = build_database(BENCH_SF, data=bench_data, gather_stats=False)
        before = db.table("item").num_rows
        counts = apply_dimension_updates(db, updates)
        after = db.table("item").num_rows
        violations = db.execute("""
            SELECT COUNT(*) FROM (
                SELECT i_item_id, COUNT(*) c FROM item
                WHERE i_rec_end_date IS NULL
                GROUP BY i_item_id HAVING COUNT(*) > 1) v
        """).scalar()
        return before, after, counts["item"], violations

    before, after, touched, violations = benchmark.pedantic(run, rounds=1, iterations=1)
    revisions_added = after - before
    show(
        "Figure 9: history-keeping dimension update (item)",
        [f"update rows       : {len(updates)}",
         f"rows touched      : {touched} (close + insert per update)",
         f"revisions added   : {revisions_added}",
         f"open-revision dups: {violations}"],
    )
    assert revisions_added > 0
    assert touched == 2 * revisions_added
    assert violations == 0
