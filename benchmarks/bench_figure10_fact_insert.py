"""Figure 10 — fact-table insert with surrogate-key translation.

Times the business-key -> surrogate-key exchange and insert for the
store channel, including the history-dimension rule (item keys resolve
to the *current* revision) and the date translation from ISO dates.
"""

from repro.dsdgen import build_database
from repro.maintenance import RefreshGenerator, translate_and_insert_facts

from conftest import BENCH_SF, show


def test_figure10_fact_insert(benchmark, bench_data):
    inserts = [
        insert
        for insert in RefreshGenerator(
            bench_data.context, insert_fraction=0.03
        ).fact_inserts()
        if insert.table == "store_sales"
    ]

    def run():
        db, _ = build_database(BENCH_SF, data=bench_data, gather_stats=False)
        before = db.table("store_sales").num_rows
        inserted = translate_and_insert_facts(db, inserts)
        # every inserted row must carry a resolvable current item key
        dangling = db.execute("""
            SELECT COUNT(*) FROM store_sales
            WHERE ss_ticket_number >= 1000000000
              AND ss_item_sk NOT IN (SELECT i_item_sk FROM item)
        """).scalar()
        return before, db.table("store_sales").num_rows, inserted, dangling

    before, after, inserted, dangling = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Figure 10: fact insert with key translation (store_sales)",
        [f"input rows      : {len(inserts)}",
         f"rows inserted   : {inserted}",
         f"cardinality     : {before} -> {after}",
         f"dangling FKs    : {dangling}",
         f"throughput      : measured by pytest-benchmark"],
    )
    assert after == before + inserted
    assert inserted > 0
    assert dangling == 0
