"""Figure 8 — updating a non-history-keeping dimension.

Times the business-key-driven overwrite loop on the customer dimension
and verifies the algorithm's contract: rows are found by business key,
fields overwritten in place, cardinality unchanged.
"""

from repro.dsdgen import build_database
from repro.maintenance import RefreshGenerator, apply_dimension_updates

from conftest import BENCH_SF, show


def test_figure8_nonhistory_update(benchmark, bench_data):
    updates = [
        u
        for u in RefreshGenerator(bench_data.context, update_fraction=0.05)
        .dimension_updates()
        if u.table == "customer"
    ]

    def run():
        db, _ = build_database(BENCH_SF, data=bench_data, gather_stats=False)
        before = db.table("customer").num_rows
        counts = apply_dimension_updates(db, updates)
        return before, db.table("customer").num_rows, counts["customer"]

    before, after, touched = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Figure 8: non-history-keeping dimension update (customer)",
        [f"update rows  : {len(updates)}",
         f"rows touched : {touched}",
         f"cardinality  : {before} -> {after} (unchanged)"],
    )
    assert before == after
    assert 0 < touched <= len(updates)
