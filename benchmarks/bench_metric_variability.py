"""§4.1 — metric stability under substitution variability.

"It is expected that there is some run-to-run variability on a per
query basis. However, since the main metric is an arithmetic mean, it
has been proven that such variability does not result in any
significant metric variability." The bench measures exactly that: per
-query elapsed times across differently-substituted streams vary by
large factors, while the stream *totals* (what the metric denominator
sums) stay tight.
"""

import statistics
import time

from conftest import show


def _stream_times(db, qgen, stream):
    per_query = []
    for query in qgen.generate_stream(stream):
        start = time.perf_counter()
        for statement in query.statements:
            db.execute(statement)
        per_query.append(time.perf_counter() - start)
    return per_query


def test_variability_per_query_vs_total(benchmark, bench_db, bench_qgen):
    def run():
        streams = {s: _stream_times(bench_db, bench_qgen, s) for s in (1, 2, 3)}
        return streams

    streams = benchmark.pedantic(run, rounds=1, iterations=1)

    # per-query variability across streams (same template, different
    # substitutions + measurement noise)
    per_query_ratios = []
    ids = list(range(99))
    for i in ids:
        times = [streams[s][i] for s in streams]
        low, high = min(times), max(times)
        if low > 0:
            per_query_ratios.append(high / low)
    totals = [sum(v) for v in streams.values()]
    total_spread = (max(totals) - min(totals)) / statistics.mean(totals)

    show(
        "§4.1: substitution variability vs metric stability",
        [
            f"per-query max/min ratio: median {statistics.median(per_query_ratios):.2f}x,"
            f" p90 {sorted(per_query_ratios)[int(len(per_query_ratios) * 0.9)]:.2f}x",
            f"stream totals          : {[f'{t:.2f}s' for t in totals]}",
            f"total relative spread  : {total_spread:.1%}",
        ],
    )
    # individual queries swing, the arithmetic total barely moves
    assert statistics.median(per_query_ratios) > 1.0
    assert total_spread < 0.25
