"""§5.3 — why TPC-DS dropped the power (geometric-mean) metric.

"A reduction of elapsed time for a query from 6 hours to 2 hours has
the same effect on the metric as reducing a query from 6 seconds to 2
seconds — which is a major weakness." The bench reproduces that
comparison for both metrics.
"""

from repro.runner import MetricInputs, power_metric, qphds

from conftest import show

BASE_TIMES = [6 * 3600.0, 6.0] + [60.0] * 97  # one huge, one tiny, 97 normal


def test_power_metric_weakness(benchmark):
    def compare():
        long_fixed = list(BASE_TIMES)
        long_fixed[0] = 2 * 3600.0
        short_fixed = list(BASE_TIMES)
        short_fixed[1] = 2.0
        return (
            power_metric(BASE_TIMES, 100),
            power_metric(long_fixed, 100),
            power_metric(short_fixed, 100),
        )

    base, long_fix, short_fix = benchmark(compare)
    show(
        "§5.3: geometric-mean power metric (rejected design)",
        [f"baseline              : {base:,.1f}",
         f"6h query -> 2h        : {long_fix:,.1f}  (+{long_fix / base - 1:.1%})",
         f"6s query -> 2s        : {short_fix:,.1f}  (+{short_fix / base - 1:.1%})"],
    )
    # the weakness: both improvements move the metric identically
    assert abs(long_fix - short_fix) / long_fix < 1e-9


def test_qphds_rewards_long_query_tuning(benchmark):
    def compare():
        def metric(times):
            total = sum(times)
            inputs = MetricInputs(100, 3, total / 2, 60.0, total / 2, 600.0)
            return qphds(inputs)

        long_fixed = list(BASE_TIMES)
        long_fixed[0] = 2 * 3600.0
        short_fixed = list(BASE_TIMES)
        short_fixed[1] = 2.0
        return metric(BASE_TIMES), metric(long_fixed), metric(short_fixed)

    base, long_fix, short_fix = benchmark(compare)
    show(
        "§5.3: TPC-DS arithmetic metric (adopted design)",
        [f"baseline              : {base:,.1f}",
         f"6h query -> 2h        : {long_fix:,.1f}  (+{long_fix / base - 1:.1%})",
         f"6s query -> 2s        : {short_fix:,.1f}  (+{short_fix / base - 1:.2%})"],
    )
    # fixing the 6-hour query matters enormously; the 6-second one not
    gain_long = long_fix - base
    gain_short = short_fix - base
    assert gain_long > 100 * max(gain_short, 1e-9)
