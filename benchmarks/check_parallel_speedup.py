"""Morsel-parallel speedup report (``make bench-smoke``).

Reads the ``BENCH_engine_operators.json`` the operator bench module
emitted and prints the serial-vs-parallel speedup curve: per operator
(from the ``test_operator_parallel[workers-op]`` matrix, median
seconds) and overall (from the ``extra_info`` the one-shot curve test
recorded).  If no result file exists yet, it times a minimal curve
in-process at sf 0.002 so the smoke target always reports something.

The check *fails* only on correctness-adjacent symptoms — a missing
serial baseline or a pathological slowdown (parallel > 3x slower than
serial, which signals dispatch overhead run amok, not scheduling
noise).  It does NOT enforce a speedup floor: this container is
single-core, where the honest expectation is ~1x; the ≥2.5x exhibit
belongs on multi-core hardware, and the recorded curve is the evidence
trail for it.  Override the slowdown bar with
``BENCH_PARALLEL_MAX_SLOWDOWN`` (default 3.0).
"""

from __future__ import annotations

import json
import os
import sys
import time

MAX_SLOWDOWN = float(os.environ.get("BENCH_PARALLEL_MAX_SLOWDOWN", "3.0"))
RESULT = os.path.join(
    os.environ.get(
        "BENCH_JSON_DIR", os.path.join(os.path.dirname(__file__), "results")
    ),
    "BENCH_engine_operators.json",
)


def _curve_from_results(payload: dict) -> dict[str, dict[int, float]]:
    """``{op: {workers: median_seconds}}`` from the parametrized matrix."""
    curves: dict[str, dict[int, float]] = {}
    for entry in payload.get("benchmarks", []):
        extra = entry.get("extra_info") or {}
        if "op" not in extra or "workers" not in extra:
            continue
        median = entry.get("median")
        if median:
            curves.setdefault(extra["op"], {})[int(extra["workers"])] = median
    return curves


def _measure_inline() -> dict[str, dict[int, float]]:
    """Fallback micro-curve when no bench JSON exists (sf 0.002)."""
    from repro.dsdgen import build_database
    from repro.engine.parallel import shutdown_pool

    db, _ = build_database(0.002)
    sql = (
        "SELECT ss_store_sk, SUM(ss_net_paid), COUNT(*) "
        "FROM store_sales GROUP BY ss_store_sk ORDER BY ss_store_sk"
    )
    curve: dict[int, float] = {}
    for workers in (1, 2, 4):
        samples = []
        for _ in range(5):
            start = time.perf_counter()
            db.execute(sql, workers=workers)
            samples.append(time.perf_counter() - start)
        curve[workers] = sorted(samples)[2]
    shutdown_pool()
    return {"aggregate_inline": curve}


def main() -> int:
    source = RESULT
    overall = None
    if os.path.exists(RESULT):
        with open(RESULT, encoding="utf-8") as handle:
            payload = json.load(handle)
        curves = _curve_from_results(payload)
        for entry in payload.get("benchmarks", []):
            extra = entry.get("extra_info") or {}
            if "speedup" in extra:
                overall = extra["speedup"]
    else:
        source = "(inline fallback, sf 0.002)"
        curves = _measure_inline()

    print(f"morsel-parallel speedup curve — source: {source}")
    failures = []
    for op in sorted(curves):
        curve = curves[op]
        serial = curve.get(1)
        if serial is None:
            failures.append(f"{op}: no serial (workers=1) baseline recorded")
            continue
        points = []
        for workers in sorted(w for w in curve if w != 1):
            speedup = serial / curve[workers]
            points.append(f"w{workers} {speedup:.2f}x")
            if speedup < 1.0 / MAX_SLOWDOWN:
                failures.append(
                    f"{op}: workers={workers} is {1 / speedup:.1f}x slower "
                    f"than serial (bar: {MAX_SLOWDOWN:.1f}x)"
                )
        print(f"  {op:<20} serial {serial * 1e3:7.2f} ms   {'  '.join(points)}")
    if overall:
        marks = "  ".join(f"w{w} {s:.2f}x" for w, s in sorted(overall.items()))
        print(f"  {'overall':<20} {marks}")
    if not curves:
        failures.append("no parallel operator entries found")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: parallel dispatch within the slowdown bar "
          "(speedup floor is asserted on multi-core hardware only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
