"""Figure 3 — Synthetic Sales Distribution.

The paper's example of a *pure* synthetic alternative: a Normal density
with mu = 200 and sigma = 50 ("sales are very low in the first weeks and
then ramp up gradually to peak ... before they slow down"). The bench
regenerates the curve and checks its defining shape, plus the reason
TPC-DS rejected it: no flat comparability zones exist.
"""

from repro.dsdgen import gaussian_sales_pdf

from conftest import show


def test_figure3_curve(benchmark):
    def series():
        return [gaussian_sales_pdf(x) for x in range(0, 366, 7)]

    values = benchmark(series)
    peak_index = values.index(max(values))
    lines = [f"day {i * 7:>3d}: {'#' * int(v * 2500)}" for i, v in enumerate(values[::4])]
    show("Figure 3: synthetic N(200, 50) sales distribution", lines)

    # ramps up, peaks near day 200, slows down
    assert 25 <= peak_index <= 31  # day ~196..210
    assert values[0] < values[peak_index]
    assert values[-1] < values[peak_index]
    # monotone rise then fall
    assert all(values[i] <= values[i + 1] for i in range(peak_index))
    assert all(values[i] >= values[i + 1] for i in range(peak_index, len(values) - 1))


def test_figure3_why_rejected_no_flat_zones(benchmark):
    """§3.2: under a Gaussian, two equal-width windows almost never
    qualify the same number of rows — that is why TPC-DS flattens real
    data into comparability zones instead."""

    def window_masses():
        def mass(lo, hi):
            return sum(gaussian_sales_pdf(x) for x in range(lo, hi))

        return mass(100, 130), mass(185, 215), mass(270, 300)

    early, peak, late = benchmark(window_masses)
    show(
        "Figure 3: equal 30-day windows carry unequal mass",
        [f"days 100-130: {early:.4f}", f"days 185-215: {peak:.4f}",
         f"days 270-300: {late:.4f}"],
    )
    assert peak > 2 * early
    assert peak > 2 * late
