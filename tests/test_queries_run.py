"""Every one of the 99 workload queries must execute on a loaded
database, for several streams, with sane result shapes."""

import pytest

from repro.qgen import build_catalog

TEMPLATE_IDS = [t.template_id for t in build_catalog()]


@pytest.mark.parametrize("template_id", TEMPLATE_IDS)
def test_query_executes(loaded_db, qgen, template_id):
    query = qgen.generate(template_id, stream=0)
    for statement in query.statements:
        result = loaded_db.execute(statement)
        assert result.column_names  # projection produced columns


def test_most_queries_return_rows(loaded_db, qgen):
    """Substitutions hit populated comparability zones, so the bulk of
    the workload must return data even at model scale."""
    empty = []
    for template_id in TEMPLATE_IDS:
        query = qgen.generate(template_id, stream=0)
        total = sum(len(loaded_db.execute(s)) for s in query.statements)
        if total == 0:
            empty.append(query.name)
    assert len(empty) <= 12, empty


def test_alternate_stream_executes(loaded_db, qgen):
    for template_id in TEMPLATE_IDS[::7]:
        query = qgen.generate(template_id, stream=3)
        for statement in query.statements:
            loaded_db.execute(statement)


def test_paper_query_52_output_shape(loaded_db, qgen):
    query = qgen.generate(52, stream=0)
    result = loaded_db.execute(query.statements[0])
    assert result.column_names == ["d_year", "brand_id", "brand", "ext_price"]
    # ordered by ext_price descending within the year
    prices = [r[3] for r in result.rows()]
    assert prices == sorted(prices, reverse=True)


def test_paper_query_20_ratio_sums_to_100_per_class(loaded_db, qgen):
    query = qgen.generate(20, stream=0)
    result = loaded_db.execute(query.statements[0])
    by_class = {}
    for row in result.rows():
        by_class.setdefault(row[2], []).append(row[5])
    for cls, ratios in by_class.items():
        assert sum(ratios) == pytest.approx(100.0, abs=1e-6), cls


def test_data_mining_queries_return_large_output(loaded_db, qgen):
    """§4.1: 'Data Mining queries are characterized as returning a large
    output.'"""
    sizes = []
    for template in build_catalog():
        if template.query_class != "data_mining":
            continue
        query = qgen.generate(template.template_id, stream=0)
        sizes.append(sum(len(loaded_db.execute(s)) for s in query.statements))
    # extraction queries are uncapped; ad-hoc/reporting queries are
    # LIMIT-bounded (typically 100 rows) — mining output must exceed that
    assert max(sizes) > 100


def test_iterative_sequences_drill_down(loaded_db, qgen):
    """Drill-down statements return progressively finer granularity."""
    template = next(t for t in build_catalog() if t.name == "drill_down_store")
    query = qgen.generate(template.template_id, stream=0)
    category_rows = len(loaded_db.execute(query.statements[0]))
    class_rows = len(loaded_db.execute(query.statements[1]))
    assert category_rows == 10  # the ten categories
    assert class_rows >= 1


def test_reporting_queries_use_matviews_when_present(fresh_db, qgen, generated_data):
    from repro.runner.execution import REPORTING_MATVIEWS

    for name, sql in REPORTING_MATVIEWS.items():
        fresh_db.create_materialized_view(name, sql)
    query = qgen.generate(20, stream=0)  # the paper's reporting query
    result = fresh_db.execute(query.statements[0])
    assert result.rewritten_from_view == "mv_catalog_item_date"

    # and the rewritten result matches the base-table answer
    fresh_db.enable_matview_rewrite = False
    reference = fresh_db.execute(query.statements[0]).rows()
    assert len(result.rows()) == len(reference)
    for got, want in zip(result.rows(), reference):
        for g, w in zip(got, want):
            if isinstance(g, float):
                assert g == pytest.approx(w, rel=1e-9)
            else:
                assert g == w
