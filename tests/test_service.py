"""The multi-tenant query service: admission, quotas, shedding,
circuit breaking, cancellation isolation, shutdown.

Statements are made slow deterministically with a per-tenant delay
injector (``delay_rate=1.0`` at operator scope: every governor check
sleeps), so queue-pressure and mid-statement-cancel scenarios need no
real load."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.errors import QueryCancelled
from repro.faults import FaultInjector, InjectedFault
from repro.service import (
    AdmissionRejected,
    CircuitBreaker,
    QueryService,
    ServiceShutdown,
    SessionClosed,
    TenantQuota,
)

from .conftest import make_simple_db

#: aggregation over a join: ~7 governor checks per execution, so a
#: delay injector stretches it and a cancel lands mid-statement
SLOW_SQL = (
    "SELECT s.item_sk, i.i_brand, SUM(s.price) AS total "
    "FROM sales s, item i WHERE s.item_sk = i.i_sk "
    "GROUP BY s.item_sk, i.i_brand ORDER BY total"
)
FAST_SQL = "SELECT COUNT(*) AS n FROM sales"


def _delay_injector(seed: int = 1, max_delay_s: float = 0.05) -> FaultInjector:
    return FaultInjector(
        seed=seed, delay_rate=1.0, max_delay_s=max_delay_s,
        scope=("operator",),
    )


@pytest.fixture()
def service():
    svc = QueryService(make_simple_db(), workers=3)
    yield svc
    svc.close(drain=False)


def test_execute_matches_direct_execution(service):
    session = service.create_session("alpha")
    direct = service.db.execute(SLOW_SQL).rows()
    assert session.execute(SLOW_SQL).rows() == direct
    state = service.tenant("alpha")
    assert state.admitted == 1 and state.completed == 1
    assert state.ewma_latency_s is not None


def test_queue_full_sheds_with_retry_after(service):
    quota = TenantQuota(max_concurrent=1, max_queue_depth=1)
    session = service.create_session("small", quota=quota)
    service.set_faults("small", _delay_injector(max_delay_s=0.2))
    state = service.tenant("small")
    futures = [session.submit(SLOW_SQL)]
    while state.running < 1:  # wait for a worker to pick it up
        time.sleep(0.002)
    futures.append(session.submit(SLOW_SQL))  # fills the 1-deep queue
    with pytest.raises(AdmissionRejected) as excinfo:
        for _ in range(20):
            futures.append(session.submit(SLOW_SQL))
    assert excinfo.value.reason == "queue_full"
    assert excinfo.value.retry_after_s > 0.0
    assert excinfo.value.transient  # clients may retry later
    assert state.shed_queue_full >= 1
    assert state.max_queued <= quota.max_queue_depth
    for future in futures:
        future.result(timeout=30.0)


def test_deadline_aware_shedding(service):
    session = service.create_session("dl")
    service.set_faults("dl", _delay_injector(max_delay_s=0.1))
    session.execute(SLOW_SQL)  # seed the EWMA latency estimate
    inflight = session.submit(SLOW_SQL)
    # predicted wait (>= one EWMA latency) dwarfs a 1ms deadline:
    # queueing would only manufacture a timeout, so admission rejects
    with pytest.raises(AdmissionRejected) as excinfo:
        session.submit(SLOW_SQL, timeout_s=0.001)
    assert excinfo.value.reason == "deadline"
    assert excinfo.value.retry_after_s > 0.0
    assert service.tenant("dl").shed_deadline == 1
    inflight.result(timeout=30.0)


def test_breaker_trips_then_recovers(service):
    session = service.create_session("flaky")
    state = service.tenant("flaky")
    state.breaker.threshold = 2
    state.breaker.reset_timeout_s = 0.05
    service.set_faults(
        "flaky", FaultInjector(seed=3, error_rate=1.0, scope=("query",))
    )
    for _ in range(2):
        with pytest.raises(InjectedFault):
            session.execute(FAST_SQL)
    assert state.breaker.state == "open"
    assert state.breaker.trips == 1
    with pytest.raises(AdmissionRejected) as excinfo:
        session.execute(FAST_SQL)
    assert excinfo.value.reason == "breaker_open"
    assert state.shed_breaker == 1
    # faults clear; after the reset timeout the half-open probe closes it
    service.set_faults("flaky", None)
    time.sleep(0.06)
    assert session.execute(FAST_SQL).rows()
    assert state.breaker.state == "closed"
    assert state.breaker.consecutive_failures == 0


def test_breaker_reopens_on_failed_probe():
    breaker = CircuitBreaker(threshold=1, reset_timeout_s=0.01)
    breaker.record_failure(now=100.0)
    assert breaker.state == "open" and breaker.trips == 1
    admitted, retry_after = breaker.admit(now=100.005)
    assert not admitted and retry_after == pytest.approx(0.005)
    admitted, _ = breaker.admit(now=100.02)
    assert admitted and breaker.state == "half_open"
    # concurrent arrivals during the probe are shed, not queued
    assert breaker.admit(now=100.02) == (False, 0.01)
    breaker.record_failure(now=100.03)
    assert breaker.state == "open" and breaker.trips == 2


def test_cancel_does_not_move_the_breaker(service):
    session = service.create_session("cancels")
    service.set_faults("cancels", _delay_injector(max_delay_s=0.2))
    future = session.submit(SLOW_SQL)
    time.sleep(0.02)  # let it reach a worker
    assert session.cancel() >= 1
    with pytest.raises(QueryCancelled):
        future.result(timeout=30.0)
    state = service.tenant("cancels")
    assert state.cancelled == 1 and state.failed == 0
    assert state.breaker.state == "closed"
    assert state.breaker.consecutive_failures == 0


def test_concurrent_cancellation_stays_tenant_local(service):
    """Satellite: N sessions cancel mid-statement while another tenant
    keeps running — QueryCancelled never leaks across tenants and the
    pool stays usable afterwards."""
    service.set_faults("churn", _delay_injector(seed=5, max_delay_s=0.08))
    churners = [service.create_session("churn") for _ in range(3)]
    steady = service.create_session("steady")

    steady_results: list = []
    steady_errors: list = []

    def steady_loop():
        for _ in range(6):
            try:
                steady_results.append(steady.execute(SLOW_SQL).rows())
            except Exception as exc:  # any error here is the failure
                steady_errors.append(exc)

    thread = threading.Thread(target=steady_loop)
    thread.start()
    cancelled_futures = []
    for session in churners:
        cancelled_futures.append(session.submit(SLOW_SQL))
    time.sleep(0.05)  # statements are mid-flight (inside delay sleeps)
    for session in churners:
        session.cancel()
    thread.join(timeout=60.0)
    assert not thread.is_alive()

    # the steady tenant never saw a cancellation (or any failure)
    assert steady_errors == []
    assert len(steady_results) == 6
    assert service.tenant("steady").cancelled == 0

    # each churner statement either finished or was cancelled — and
    # cancellations only ever surfaced on the cancelling sessions
    outcomes = []
    for future in cancelled_futures:
        try:
            future.result(timeout=30.0)
            outcomes.append("ok")
        except QueryCancelled:
            outcomes.append("cancelled")
    assert "cancelled" in outcomes

    # the pool is still usable for everyone afterwards
    service.set_faults("churn", None)
    for session in churners:
        assert session.execute(FAST_SQL).rows() == [(6,)]
    assert steady.execute(FAST_SQL).rows() == [(6,)]


def test_session_close_cancels_queued_statements(service):
    quota = TenantQuota(max_concurrent=1, max_queue_depth=4)
    session = service.create_session("closing", quota=quota)
    service.set_faults("closing", _delay_injector(max_delay_s=0.2))
    futures = [session.submit(SLOW_SQL) for _ in range(3)]
    session.close()
    with pytest.raises(SessionClosed):
        session.submit(FAST_SQL)
    statuses = []
    for future in futures:
        try:
            future.result(timeout=30.0)
            statuses.append("ok")
        except QueryCancelled:
            statuses.append("cancelled")
    assert "cancelled" in statuses  # the queued ones died unrun


def test_quota_bounds_tenant_concurrency(service):
    quota = TenantQuota(max_concurrent=1, max_queue_depth=8)
    session = service.create_session("serial", quota=quota)
    service.set_faults("serial", _delay_injector(max_delay_s=0.05))
    futures = [session.submit(SLOW_SQL) for _ in range(4)]
    peak = 0
    while any(not f.done() for f in futures):
        peak = max(peak, service.tenant("serial").running)
        time.sleep(0.005)
    assert peak <= 1
    for future in futures:
        future.result(timeout=30.0)


def test_sys_service_tables_reflect_counters(service):
    session = service.create_session("alpha")
    session.execute(FAST_SQL)
    rows = session.execute(
        "SELECT tenant, admitted, completed FROM sys.service"
        " WHERE tenant = 'alpha'"
    ).rows()
    # the sys.service scan itself was admitted before its snapshot
    assert rows == [("alpha", 2, 1)]
    sessions = session.execute(
        "SELECT tenant, state FROM sys.sessions"
    ).rows()
    assert ("alpha", "open") in sessions


def test_shutdown_drains_and_refuses_new_work():
    service = QueryService(make_simple_db(), workers=2)
    session = service.create_session("alpha")
    futures = [session.submit(FAST_SQL) for _ in range(4)]
    service.close(drain=True)
    assert all(f.result().rows() == [(6,)] for f in futures)
    with pytest.raises(ServiceShutdown):
        service.submit(session, FAST_SQL)
    with pytest.raises(ServiceShutdown):
        service.create_session("beta")


def test_shutdown_without_drain_fails_queued_statements():
    service = QueryService(
        make_simple_db(), workers=1,
        default_quota=TenantQuota(max_concurrent=1, max_queue_depth=8),
    )
    service.set_faults("alpha", _delay_injector(max_delay_s=0.2))
    session = service.create_session("alpha")
    futures = [session.submit(SLOW_SQL) for _ in range(4)]
    service.close(drain=False)
    outcomes = []
    for future in futures:
        try:
            future.result(timeout=30.0)
            outcomes.append("ok")
        except ServiceShutdown:
            outcomes.append("shutdown")
    assert "shutdown" in outcomes
