"""Concurrent-stream stress: 4 streams at the session scale, asserting
the metrics registry and plan-quality aggregator stay race-free and
every stream's timings arrive complete — with and without the shared
morsel worker pool (streams × workers on one pool)."""

from __future__ import annotations

import pytest

from repro.engine.parallel import shutdown_pool
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.runner import BenchmarkConfig
from repro.runner.execution import BenchmarkRun

SF = 0.004
STREAMS = 4


@pytest.fixture()
def enabled_registry():
    previous = get_registry()
    registry = MetricsRegistry(enabled=True)
    set_registry(registry)
    yield registry
    set_registry(previous)


def test_stream_stress_counters_race_free(enabled_registry):
    config = BenchmarkConfig(
        scale_factor=SF, streams=STREAMS, plan_quality=True
    )
    run = BenchmarkRun(config)
    run.load_test()
    result = run.query_run(1)

    expected = 99 * STREAMS
    # per-stream timings are complete: all 99 templates, once each
    assert len(result.timings) == expected
    by_stream: dict[int, set] = {}
    for timing in result.timings:
        by_stream.setdefault(timing.stream, set()).add(timing.template_id)
    assert len(by_stream) == STREAMS
    for stream, templates in by_stream.items():
        assert len(templates) == 99, f"stream {stream} lost templates"
    assert all(t.status == "ok" for t in result.timings)

    # registry counters survived 4 threads without losing increments
    assert enabled_registry.counter("runner.queries").value == expected
    hist_total = sum(
        payload["count"]
        for name, payload in enabled_registry.snapshot().items()
        if name.startswith("runner.query_seconds")
    )
    assert hist_total == expected

    # plan-quality aggregator folded every query's operators exactly once
    quality = run.db.plan_quality
    assert quality is not None
    summary = quality.as_dict()
    assert summary["operators_seen"] > 0
    # internal consistency: misestimates never exceed operators seen and
    # the worst-offender map is keyed uniquely
    assert summary["misestimates"] <= summary["operators_seen"]
    keys = [
        (rec.query, rec.label) for rec in quality.worst_offenders(10**9)
    ]
    assert len(keys) == len(set(keys))


def test_stream_stress_with_worker_pool(enabled_registry):
    """N streams × M workers share one pool: stream tasks run on pool
    threads and their morsels run inline, so timings stay complete,
    counters stay race-free, and the pool gauges are published."""
    config = BenchmarkConfig(
        scale_factor=SF, streams=STREAMS, plan_quality=True, workers=2
    )
    run = BenchmarkRun(config)
    run.load_test()
    try:
        result = run.query_run(1)
    finally:
        shutdown_pool()

    expected = 99 * STREAMS
    assert len(result.timings) == expected
    by_stream: dict[int, set] = {}
    for timing in result.timings:
        by_stream.setdefault(timing.stream, set()).add(timing.template_id)
    assert len(by_stream) == STREAMS
    for stream, templates in by_stream.items():
        assert len(templates) == 99, f"stream {stream} lost templates"
    assert all(t.status == "ok" for t in result.timings)

    assert enabled_registry.counter("runner.queries").value == expected
    snapshot = enabled_registry.snapshot()
    assert snapshot["engine.pool.workers"]["value"] == 2.0
    # with 4 streams saturating a 2-thread pool, nested morsel dispatch
    # must have run inline (the deadlock-free path)
    assert snapshot.get("engine.pool.inline_morsels", {}).get("value", 0) > 0

    # plan-quality aggregator folded every query's operators exactly once
    quality = run.db.plan_quality
    assert quality is not None
    summary = quality.as_dict()
    assert summary["operators_seen"] > 0
    assert summary["misestimates"] <= summary["operators_seen"]
