"""Data generator tests: cardinalities, SCD history, referential
integrity, determinism, zones in the generated data, flat files."""

import os

import pytest

from repro.dsdgen import DsdGen
from repro.dsdgen.flatfile import (
    format_row,
    measured_row_statistics,
    parse_row,
    read_flat_file,
    write_flat_file,
)
from repro.schema import ALL_TABLES, HISTORY_DIMENSIONS
from tests.conftest import SESSION_SEED, SESSION_SF


class TestCardinalities:
    def test_row_counts_match_scaling_model(self, generated_data):
        model = generated_data.context.scaling
        for table in ("store_sales", "catalog_sales", "web_sales",
                      "customer", "date_dim", "time_dim"):
            assert generated_data.row_counts[table] == model.rows(table), table

    def test_returns_do_not_exceed_target(self, generated_data):
        model = generated_data.context.scaling
        for table in ("store_returns", "catalog_returns", "web_returns"):
            assert generated_data.row_counts[table] <= model.rows(table)
            assert generated_data.row_counts[table] > 0

    def test_every_schema_table_generated(self, generated_data):
        assert set(generated_data.tables) == set(ALL_TABLES)

    def test_row_arity_matches_schema(self, generated_data):
        for name, rows in generated_data.tables.items():
            width = len(ALL_TABLES[name].columns)
            assert all(len(r) == width for r in rows[:50]), name


class TestDeterminism:
    def test_same_seed_identical_data(self):
        a = DsdGen(0.002, seed=7).generate()
        b = DsdGen(0.002, seed=7).generate()
        assert a.tables["store_sales"] == b.tables["store_sales"]
        assert a.tables["customer"] == b.tables["customer"]

    def test_different_seed_differs(self):
        a = DsdGen(0.002, seed=7).generate()
        b = DsdGen(0.002, seed=8).generate()
        assert a.tables["store_sales"] != b.tables["store_sales"]


class TestReferentialIntegrity:
    @pytest.mark.parametrize("fact,fk_idx,dim", [
        ("store_sales", 2, "item"),        # ss_item_sk
        ("store_sales", 7, "store"),       # ss_store_sk
        ("catalog_sales", 15, "item"),     # cs_item_sk
        ("web_sales", 3, "item"),          # ws_item_sk
        ("inventory", 2, "warehouse"),     # inv_warehouse_sk
    ])
    def test_fact_fks_resolve(self, generated_data, fact, fk_idx, dim):
        pool = generated_data.context.key_pools[dim]
        column_name = ALL_TABLES[fact].columns[fk_idx].name
        assert column_name.endswith("_sk")
        for row in generated_data.tables[fact][:500]:
            value = row[fk_idx]
            if value is not None:
                assert 1 <= value <= pool, (fact, column_name, value)

    def test_sales_dates_within_calendar(self, generated_data):
        calendar = generated_data.context.calendar
        low = calendar.sk_at(0)
        high = calendar.sk_at(generated_data.context.rows("date_dim") - 1)
        for row in generated_data.tables["store_sales"][:500]:
            assert low <= row[0] <= high

    def test_returns_reference_sold_tickets(self, generated_data):
        """§2.2: store_returns joins store_sales on ticket + item."""
        sold = {
            (row[9], row[2]) for row in generated_data.tables["store_sales"]
        }
        for row in generated_data.tables["store_returns"][:200]:
            assert (row[9], row[2]) in sold

    def test_order_lines_distinct_per_ticket_item(self, generated_data):
        """Order lines are unique per (ticket/order, item) so the
        fact-to-fact join multiplies by exactly the return count."""
        for table, order_idx, item_idx in (
            ("store_sales", 9, 2),
            ("catalog_sales", 17, 15),
            ("web_sales", 17, 3),
        ):
            seen = set()
            for row in generated_data.tables[table]:
                key = (row[order_idx], row[item_idx])
                assert key not in seen, (table, key)
                seen.add(key)


class TestScdHistory:
    def test_up_to_three_revisions(self, generated_data):
        """§3.3.2: 'there are up to 3 revisions of any dimension entry'."""
        item_rows = generated_data.tables["item"]
        by_bk = {}
        for row in item_rows:
            by_bk.setdefault(row[1], []).append(row)
        counts = {len(v) for v in by_bk.values()}
        assert counts <= {1, 2, 3}
        assert max(counts) > 1  # history actually present at load

    def test_exactly_one_open_revision(self, generated_data):
        for table in HISTORY_DIMENSIONS:
            schema = ALL_TABLES[table]
            end_idx = next(
                i for i, c in enumerate(schema.columns) if c.name.endswith("rec_end_date")
            )
            bk_idx = next(
                i for i, c in enumerate(schema.columns) if c.business_key
            )
            open_counts = {}
            for row in generated_data.tables[table]:
                if row[end_idx] is None:
                    open_counts[row[bk_idx]] = open_counts.get(row[bk_idx], 0) + 1
            assert open_counts, table
            assert set(open_counts.values()) == {1}, table

    def test_revision_ranges_ordered(self, generated_data):
        schema = ALL_TABLES["item"]
        start_idx = next(i for i, c in enumerate(schema.columns) if c.name == "i_rec_start_date")
        end_idx = next(i for i, c in enumerate(schema.columns) if c.name == "i_rec_end_date")
        bk_idx = 1
        by_bk = {}
        for row in generated_data.tables["item"]:
            by_bk.setdefault(row[bk_idx], []).append(row)
        for rows in by_bk.values():
            ordered = sorted(rows, key=lambda r: r[start_idx])
            for prev, nxt in zip(ordered, ordered[1:]):
                assert prev[end_idx] is not None
                assert prev[end_idx] <= nxt[start_idx]

    def test_surrogate_keys_unique(self, generated_data):
        for table in ("item", "customer", "store", "date_dim"):
            pk = ALL_TABLES[table].primary_key[0]
            idx = ALL_TABLES[table].column_names.index(pk)
            keys = [row[idx] for row in generated_data.tables[table]]
            assert len(keys) == len(set(keys)), table


class TestZonesInData:
    def test_zone3_denser_than_zone1(self, generated_data):
        """Figure 2 realized: per-week sales density must rise zone1 ->
        zone3."""
        from repro.dsdgen.distributions import week_zone
        from repro.engine.types import epoch_days_to_date

        calendar = generated_data.context.calendar
        zone_counts = {1: 0, 2: 0, 3: 0}
        zone_weeks = {1: 29, 2: 13, 3: 10}  # approximate weeks per zone
        for row in generated_data.tables["store_sales"]:
            offset = row[0] - calendar.sk_at(0)
            d = calendar.date_at(offset)
            week = min((d.timetuple().tm_yday - 1) // 7 + 1, 52)
            zone_counts[week_zone(week)] += 1
        density = {z: zone_counts[z] / zone_weeks[z] for z in (1, 2, 3)}
        assert density[1] < density[2] < density[3]


class TestBasketStructure:
    def test_average_basket_size(self, generated_data):
        """§3.1: 'On average each shopping cart contains 10.5 items.'"""
        tickets = {}
        for row in generated_data.tables["store_sales"]:
            tickets[row[9]] = tickets.get(row[9], 0) + 1
        avg = sum(tickets.values()) / len(tickets)
        assert avg == pytest.approx(10.5, abs=1.5)

    def test_pricing_arithmetic(self, generated_data):
        cols = ALL_TABLES["store_sales"].column_names
        qty_i = cols.index("ss_quantity")
        sales_i = cols.index("ss_sales_price")
        ext_i = cols.index("ss_ext_sales_price")
        paid_i = cols.index("ss_net_paid")
        coupon_i = cols.index("ss_coupon_amt")
        for row in generated_data.tables["store_sales"][:300]:
            assert row[ext_i] == pytest.approx(row[sales_i] * row[qty_i], abs=0.5)
            assert row[paid_i] == pytest.approx(row[ext_i] - row[coupon_i], abs=0.05)


class TestFlatFiles:
    def test_round_trip(self, tmp_path, generated_data):
        schema = ALL_TABLES["item"]
        rows = generated_data.tables["item"][:100]
        path = os.path.join(tmp_path, "item.dat")
        write_flat_file(path, rows, schema)
        back = read_flat_file(path, schema)
        assert [list(r) for r in rows] == back

    def test_format_null_is_empty_field(self):
        schema = ALL_TABLES["income_band"]
        line = format_row([1, None, 10000], schema)
        assert line == "1||10000|"

    def test_parse_rejects_bad_arity(self):
        schema = ALL_TABLES["income_band"]
        with pytest.raises(ValueError):
            parse_row("1|2|", schema)

    def test_dates_round_trip_iso(self):
        schema = ALL_TABLES["item"]
        from repro.engine.types import parse_date

        row = [1, "AAAA000000000001", parse_date("1998-01-01"), None,
               "desc", 1.0, 0.5, 1, "b", 1, "c", 1, "cat", 1, "m", "s",
               "f", "col", "u", "cn", 1, "p"]
        text = format_row(row, schema)
        assert "1998-01-01" in text
        assert parse_row(text, schema)[2] == parse_date("1998-01-01")

    def test_measured_row_statistics(self, generated_data):
        stats = measured_row_statistics(generated_data.tables, ALL_TABLES)
        # inventory is the narrowest table (paper: min 16 bytes)
        assert stats.min_bytes < 30
        assert stats.max_bytes > stats.avg_bytes > stats.min_bytes

    def test_empty_string_distinct_from_null(self, tmp_path):
        # regression: an empty string used to render as an empty field
        # and come back as NULL; the kit convention is empty field =
        # NULL, so genuine empties need the '""' escape
        from repro.engine import ColumnDef, TableSchema, integer, varchar

        s = TableSchema("t", [ColumnDef("k", integer()), ColumnDef("s", varchar(10))])
        rows = [[1, ""], [2, None], [3, "x"]]
        path = os.path.join(tmp_path, "t.dat")
        write_flat_file(path, rows, s)
        back = read_flat_file(path, s)
        assert back == rows
        assert back[0][1] == "" and back[1][1] is None

    def test_empty_string_field_token(self):
        from repro.dsdgen.flatfile import EMPTY_STRING_FIELD, format_field, parse_field
        from repro.engine.types import Kind

        assert format_field("", Kind.STR) == EMPTY_STRING_FIELD == '""'
        assert format_field(None, Kind.STR) == ""
        assert parse_field(EMPTY_STRING_FIELD, Kind.STR) == ""
        assert parse_field("", Kind.STR) is None

    def test_columnar_writer_escapes_empty_strings(self, tmp_path):
        import numpy as np

        from repro.dsdgen.flatfile import _format_column
        from repro.engine.types import Kind

        data = np.array(["a", "", "b"], dtype=object)
        null = np.array([False, False, True])
        rendered = _format_column(data, null, Kind.STR)
        # genuine empty escaped, null slot an empty field
        assert list(rendered) == ["a", '""', ""]

    def test_row_statistics_count_utf8_bytes(self):
        # regression: statistics used to count characters while the
        # writer counts encoded bytes — non-ASCII data diverged
        from repro.engine import ColumnDef, TableSchema, varchar

        s = TableSchema("t", [ColumnDef("s", varchar(10))])
        rows = [["éééé"]]  # 4 chars, 8 UTF-8 bytes
        stats = measured_row_statistics({"t": rows}, {"t": s})
        # 8 payload bytes + trailing pipe + newline
        assert stats.min_bytes == stats.max_bytes == 10

    def test_write_all_tables(self, tmp_path):
        data = DsdGen(0.001).generate()
        sizes = data.write_flat_files(str(tmp_path))
        assert set(sizes) == set(ALL_TABLES)
        assert all(os.path.exists(os.path.join(tmp_path, f"{t}.dat")) for t in ALL_TABLES)

    def test_load_from_flat_files(self, tmp_path):
        from repro.dsdgen import load_from_flat_files
        from repro.engine import Database

        data = DsdGen(0.001).generate()
        data.write_flat_files(str(tmp_path))
        db = Database()
        load_from_flat_files(db, str(tmp_path))
        assert db.table("store_sales").num_rows == data.row_counts["store_sales"]
        assert db.execute("SELECT COUNT(*) FROM customer").scalar() == data.row_counts["customer"]
