"""Random-stream tests: determinism, independence, distribution sanity."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dsdgen import RandomStream, RandomStreamFactory
from repro.dsdgen.rng import stream_seed


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomStream(42)
        b = RandomStream(42)
        assert [a.next_raw() for _ in range(100)] == [b.next_raw() for _ in range(100)]

    def test_factory_streams_reproducible(self):
        f1 = RandomStreamFactory(7)
        f2 = RandomStreamFactory(7)
        s1 = [f1.stream("t", "c").uniform_int(0, 999) for _ in range(50)]
        s2 = [f2.stream("t", "c").uniform_int(0, 999) for _ in range(50)]
        assert s1 == s2

    def test_streams_independent_of_creation_order(self):
        f1 = RandomStreamFactory(7)
        f1.stream("a").next_raw()
        first = f1.fresh("b").next_raw()
        f2 = RandomStreamFactory(7)
        second = f2.fresh("b").next_raw()
        assert first == second

    def test_stream_continues_across_calls(self):
        f = RandomStreamFactory(7)
        a = f.stream("x").next_raw()
        b = f.stream("x").next_raw()
        assert a != b  # same underlying stream advanced

    def test_fresh_resets(self):
        f = RandomStreamFactory(7)
        f.stream("x").next_raw()
        assert f.fresh("x").next_raw() == RandomStreamFactory(7).fresh("x").next_raw()

    def test_different_names_differ(self):
        f = RandomStreamFactory(7)
        assert f.fresh("a").next_raw() != f.fresh("b").next_raw()

    def test_different_seeds_differ(self):
        assert (
            RandomStreamFactory(1).fresh("a").next_raw()
            != RandomStreamFactory(2).fresh("a").next_raw()
        )

    def test_stream_seed_nonzero(self):
        assert stream_seed(0, "") != 0


class TestDraws:
    def test_uniform_in_unit_interval(self):
        rng = RandomStream(3)
        values = [rng.uniform() for _ in range(1000)]
        assert all(0 <= v < 1 for v in values)
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_uniform_int_bounds_inclusive(self):
        rng = RandomStream(3)
        values = {rng.uniform_int(1, 6) for _ in range(500)}
        assert values == {1, 2, 3, 4, 5, 6}

    def test_uniform_int_single_point(self):
        rng = RandomStream(3)
        assert rng.uniform_int(5, 5) == 5

    def test_uniform_int_empty_range(self):
        with pytest.raises(ValueError):
            RandomStream(3).uniform_int(5, 4)

    def test_gaussian_moments(self):
        rng = RandomStream(3)
        values = [rng.gaussian(10, 2) for _ in range(4000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert mean == pytest.approx(10, abs=0.2)
        assert math.sqrt(var) == pytest.approx(2, abs=0.2)

    def test_choice_covers_items(self):
        rng = RandomStream(3)
        items = ["a", "b", "c"]
        assert {rng.choice(items) for _ in range(100)} == set(items)

    def test_weighted_index_respects_weights(self):
        rng = RandomStream(3)
        cumulative = [1.0, 1.1]  # ~91% weight on index 0
        counts = [0, 0]
        for _ in range(2000):
            counts[rng.weighted_index(cumulative)] += 1
        assert counts[0] > counts[1] * 5

    def test_sample_without_replacement(self):
        rng = RandomStream(3)
        sample = rng.sample_without_replacement(10, 5)
        assert len(set(sample)) == 5
        assert all(0 <= v < 10 for v in sample)

    def test_sample_all(self):
        rng = RandomStream(3)
        assert rng.sample_without_replacement(4, 4) == [0, 1, 2, 3]

    def test_sample_too_many(self):
        with pytest.raises(ValueError):
            RandomStream(3).sample_without_replacement(3, 4)

    def test_maybe_null_rate(self):
        rng = RandomStream(3)
        nulls = sum(1 for _ in range(2000) if rng.maybe_null(1, 0.25) is None)
        assert 400 < nulls < 600

    def test_maybe_null_zero_rate(self):
        rng = RandomStream(3)
        assert all(rng.maybe_null(1, 0.0) == 1 for _ in range(100))


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_any_seed_valid(self, seed):
        rng = RandomStream(seed)
        value = rng.uniform()
        assert 0 <= value < 1

    @given(st.integers(min_value=-1000, max_value=1000), st.integers(min_value=0, max_value=100))
    def test_uniform_int_in_range(self, low, span):
        rng = RandomStream(99)
        value = rng.uniform_int(low, low + span)
        assert low <= value <= low + span

    @given(st.text(min_size=0, max_size=30))
    def test_stream_seed_stable(self, name):
        assert stream_seed(5, name) == stream_seed(5, name)
