"""Full-disclosure report and multi-channel refresh coverage."""

import pytest

from repro.maintenance import RefreshGenerator
from repro.runner import BenchmarkConfig, render_full_disclosure
from repro.runner.execution import run_benchmark


@pytest.fixture(scope="module")
def small_result():
    result, _ = run_benchmark(BenchmarkConfig(scale_factor=0.002, streams=1))
    return result


class TestFullDisclosure:
    def test_contains_summary_and_tables(self, small_result):
        text = render_full_disclosure(small_result)
        assert "QphDS" in text
        assert "per-template timings" in text
        assert "data maintenance operations" in text
        assert "DM_ITEM" in text

    def test_truncates_template_table(self, small_result):
        text = render_full_disclosure(small_result, top=5)
        assert "more templates" in text

    def test_ranked_by_mean_time(self, small_result):
        text = render_full_disclosure(small_result, top=99)
        lines = [
            line for line in text.splitlines()
            if line.startswith("  ") and line[2:5].strip().isdigit()
        ]
        means = [float(line.split()[4]) for line in lines]
        assert means == sorted(means, reverse=True)
        assert len(means) == 99

    def test_phase_breakdown_from_span_timeline(self, small_result):
        text = render_full_disclosure(small_result)
        assert "phase breakdown (from span timeline)" in text
        assert "load" in text
        # single stream → the query runs are power-style phases
        assert "power" in text
        assert "maintenance" in text
        assert "spans recorded" in text

    def test_phase_breakdown_renders_substeps(self, small_result):
        from repro.runner import render_phase_breakdown

        lines = render_phase_breakdown(small_result.trace)
        text = "\n".join(lines)
        assert "load_tables" in text
        assert "gather_stats" in text
        assert "aux_maintenance" in text
        assert "stream 0" in text

    def test_breakdown_empty_without_trace(self, small_result):
        import dataclasses

        bare = dataclasses.replace(small_result, trace=[])
        text = render_full_disclosure(bare)
        assert "phase breakdown" not in text


class TestMultiChannelInserts:
    def test_all_three_channels_present(self, generated_data):
        refresh = RefreshGenerator(generated_data.context).generate()
        tables = {i.table for i in refresh.fact_inserts}
        assert tables == {"store_sales", "catalog_sales", "web_sales"}

    def test_channel_volumes_proportional(self, generated_data):
        refresh = RefreshGenerator(generated_data.context).generate()
        counts = {t: len(refresh.inserts_for(t)) for t in
                  ("store_sales", "catalog_sales", "web_sales")}
        assert counts["store_sales"] > counts["catalog_sales"] > counts["web_sales"]

    def test_catalog_inserts_apply(self, fresh_db, generated_data):
        from repro.maintenance import translate_and_insert_facts

        refresh = RefreshGenerator(generated_data.context).generate()
        catalog_inserts = refresh.inserts_for("catalog_sales")
        before = fresh_db.table("catalog_sales").num_rows
        applied = translate_and_insert_facts(fresh_db, catalog_inserts)
        assert applied > 0
        assert fresh_db.table("catalog_sales").num_rows == before + applied
        # translated keys resolve against the item dimension
        dangling = fresh_db.execute("""
            SELECT COUNT(*) FROM catalog_sales
            WHERE cs_order_number >= 1000000000
              AND cs_item_sk NOT IN (SELECT i_item_sk FROM item)
        """).scalar()
        assert dangling == 0
