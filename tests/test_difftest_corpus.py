"""Replay of the checked-in differential corpus.

``tests/difftest_corpus/`` holds minimal repros of every engine bug the
differential harness has flushed out, shrunk by ``repro.difftest.shrink``
and written in the engine's dialect.  Each file replays against a fresh
SQLite oracle here, so a fixed bug that regresses turns this suite red
with the original repro attached.
"""

import pathlib

import pytest

from repro.difftest.corpus import load_corpus

CORPUS_DIR = pathlib.Path(__file__).parent / "difftest_corpus"

ENTRIES = list(load_corpus(CORPUS_DIR))


def test_corpus_is_present():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_corpus_entry_agrees_with_oracle(diff_harness, entry):
    outcome = diff_harness.check_sql(entry.sql, label=entry.name)
    assert outcome.passed, (
        f"{entry.name} [{outcome.status}] {outcome.detail}\n"
        f"engine: {outcome.sql}\n"
        f"sqlite: {outcome.sqlite_sql}"
    )
