"""Pricing tests: the 3-year TCO structure behind $/QphDS."""

import pytest
from hypothesis import given, strategies as st

from repro.runner import MetricError, PriceBook, SystemConfiguration, dollars_per_qphds


class TestTco:
    book = PriceBook()

    def test_components_add_up_small_config(self):
        config = SystemConfiguration(cpu_cores=4, memory_gb=32, storage_tb=0.5, nodes=1)
        hw = self.book.hardware_cost(config)
        sw = self.book.software_cost(config)
        assert hw == pytest.approx(8000 + 4 * 450 + 32 * 18 + 0.5 * 220)
        assert sw == pytest.approx(4 * 1900)
        base = hw + sw  # below the volume threshold
        assert self.book.three_year_tco(config) == pytest.approx(base * (1 + 0.12 * 3))

    def test_volume_discount_applies(self):
        big = SystemConfiguration(cpu_cores=64, memory_gb=1024, storage_tb=100, nodes=4)
        base = self.book.hardware_cost(big) + self.book.software_cost(big)
        assert base > self.book.volume_discount_threshold
        discounted = base * (1 - self.book.volume_discount)
        assert self.book.three_year_tco(big) == pytest.approx(discounted * 1.36)

    def test_nodes_multiply(self):
        one = SystemConfiguration(nodes=1)
        two = SystemConfiguration(nodes=2)
        assert self.book.hardware_cost(two) == 2 * self.book.hardware_cost(one)

    def test_maintenance_is_three_years(self):
        config = SystemConfiguration(cpu_cores=1, memory_gb=1, storage_tb=0.1)
        base = self.book.hardware_cost(config) + self.book.software_cost(config)
        tco = self.book.three_year_tco(config)
        assert tco / base == pytest.approx(1 + 3 * self.book.maintenance_rate)

    def test_invalid_configuration(self):
        with pytest.raises(MetricError):
            SystemConfiguration(cpu_cores=0)
        with pytest.raises(MetricError):
            SystemConfiguration(storage_tb=-1)


class TestDollarsPerQphds:
    def test_ratio(self):
        config = SystemConfiguration()
        book = PriceBook()
        value = dollars_per_qphds(config, 1000.0, book)
        assert value == pytest.approx(book.three_year_tco(config) / 1000.0)

    def test_better_performance_cheaper_ratio(self):
        config = SystemConfiguration()
        assert dollars_per_qphds(config, 2000.0) < dollars_per_qphds(config, 1000.0)

    def test_zero_metric_rejected(self):
        with pytest.raises(MetricError):
            dollars_per_qphds(SystemConfiguration(), 0.0)

    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=1, max_value=16),
    )
    def test_tco_monotone_in_size(self, cores, memory, nodes):
        book = PriceBook()
        small = SystemConfiguration(cpu_cores=cores, memory_gb=memory, nodes=nodes)
        bigger = SystemConfiguration(cpu_cores=cores + 1, memory_gb=memory, nodes=nodes)
        assert book.three_year_tco(bigger) > book.three_year_tco(small) * 0.9
