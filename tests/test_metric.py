"""Metric tests — the §5.3 formulas and the paper's worked examples."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.runner import (
    LOAD_FRACTION_PER_STREAM,
    MetricError,
    MetricInputs,
    load_time_share,
    power_metric,
    price_performance,
    qphds,
    total_queries,
)


def inputs(sf=100, streams=3, qr1=100.0, dm=20.0, qr2=100.0, load=50.0):
    return MetricInputs(sf, streams, qr1, dm, qr2, load)


class TestTotalQueries:
    def test_formula_198_s(self):
        assert total_queries(1) == 198
        assert total_queries(3) == 594

    def test_paper_example_sf1000(self):
        """'a 1000 scale factor benchmark test with minimum number of
        required query streams executes 1386 (198 * 7) queries.'"""
        assert total_queries(7) == 1386

    def test_paper_example_15_streams(self):
        """'2970 (198 * 15) queries' for 15 streams."""
        assert total_queries(15) == 2970

    def test_requires_at_least_one_stream(self):
        with pytest.raises(MetricError):
            total_queries(0)


class TestQphds:
    def test_formula_by_hand(self):
        m = inputs()
        expected = 100 * 3600 * (198 * 3) / (100 + 20 + 100 + 0.01 * 3 * 50)
        assert qphds(m) == pytest.approx(expected)

    def test_scale_factor_normalization(self):
        """Same elapsed times at a 10x scale factor give a 10x metric —
        the normalization that keeps ideal scaling flat."""
        small = qphds(inputs(sf=100, streams=3))
        big = qphds(inputs(sf=1000, streams=7))
        ratio = big / small
        # 10x SF and 7/3 more queries, slightly more load share
        assert ratio > 10

    def test_faster_queries_higher_metric(self):
        slow = qphds(inputs(qr1=200.0, qr2=200.0))
        fast = qphds(inputs(qr1=50.0, qr2=50.0))
        assert fast > slow

    def test_load_time_penalizes(self):
        cheap = qphds(inputs(load=10.0))
        expensive = qphds(inputs(load=10_000.0))
        assert cheap > expensive

    def test_load_fraction_scales_with_streams(self):
        """'The fraction of the load time is multiplied by the number of
        streams ... to avoid diminishing the impact of the load time'."""
        m = inputs(streams=10, qr1=0.0, dm=0.0, qr2=1.0, load=100.0)
        denominator = 1.0 + 0.01 * 10 * 100.0
        assert qphds(m, enforce_min_streams=False) == pytest.approx(
            100 * 3600 * 1980 / denominator
        )

    def test_ten_percent_example(self):
        """'A 1000 scale factor benchmark test with minimum number of
        required streams will have 10% of the database load time added'
        (0.01 * 10 streams; the draft's stream count)."""
        assert LOAD_FRACTION_PER_STREAM * 10 == pytest.approx(0.10)

    def test_min_streams_enforced(self):
        with pytest.raises(MetricError):
            qphds(inputs(sf=1000, streams=3))

    def test_min_streams_relaxed_for_model_runs(self):
        value = qphds(inputs(sf=1000, streams=3), enforce_min_streams=False)
        assert value > 0

    def test_negative_times_rejected(self):
        with pytest.raises(MetricError):
            qphds(inputs(qr1=-1.0))

    def test_zero_total_rejected(self):
        with pytest.raises(MetricError):
            qphds(inputs(qr1=0.0, dm=0.0, qr2=0.0, load=0.0))

    @given(
        st.floats(min_value=1, max_value=1e4),
        st.floats(min_value=1, max_value=1e4),
        st.floats(min_value=1, max_value=1e4),
        st.floats(min_value=1, max_value=1e4),
    )
    def test_monotone_in_each_component(self, qr1, dm, qr2, load):
        base = qphds(inputs(qr1=qr1, dm=dm, qr2=qr2, load=load))
        slower = qphds(inputs(qr1=qr1 * 2, dm=dm, qr2=qr2, load=load))
        assert slower < base


class TestPricePerformance:
    def test_ratio(self):
        assert price_performance(100_000, 2_000) == pytest.approx(50.0)

    def test_invalid_inputs(self):
        with pytest.raises(MetricError):
            price_performance(0, 100)
        with pytest.raises(MetricError):
            price_performance(100, 0)

    def test_cheaper_system_wins(self):
        assert price_performance(50_000, 1000) < price_performance(100_000, 1000)


class TestLoadShare:
    def test_share_between_zero_and_one(self):
        assert 0 < load_time_share(inputs()) < 1

    def test_share_grows_with_load(self):
        assert load_time_share(inputs(load=1000)) > load_time_share(inputs(load=10))


class TestPowerMetricCritique:
    """§5.3: the geometric-mean power metric was dropped because a 6h->2h
    improvement moves it exactly as much as 6s->2s."""

    def test_proportional_improvements_identical(self):
        times = [6 * 3600.0, 6.0, 100.0, 500.0]
        improve_long = list(times)
        improve_long[0] = 2 * 3600.0  # 6h -> 2h
        improve_short = list(times)
        improve_short[1] = 2.0  # 6s -> 2s
        assert power_metric(improve_long, 100) == pytest.approx(
            power_metric(improve_short, 100)
        )

    def test_arithmetic_total_prefers_long_query_fix(self):
        """The TPC-DS metric (arithmetic total time) rewards fixing the
        6-hour query far more — the design rationale."""
        times = [6 * 3600.0, 6.0]
        base = sum(times)
        long_fixed = 2 * 3600.0 + 6.0
        short_fixed = 6 * 3600.0 + 2.0
        gain_long = base - long_fixed
        gain_short = base - short_fixed
        assert gain_long > 1000 * gain_short

    def test_power_metric_value(self):
        times = [4.0, 9.0]
        geo = math.sqrt(4.0 * 9.0)
        assert power_metric(times, 10) == pytest.approx(3600 * 10 / geo)

    def test_rejects_nonpositive(self):
        with pytest.raises(MetricError):
            power_metric([1.0, 0.0], 100)
        with pytest.raises(MetricError):
            power_metric([], 100)
