"""Scaling model tests — Table 2 and Figure 12."""

import pytest
from hypothesis import given, strategies as st

from repro.dsdgen import (
    OFFICIAL_SCALE_FACTORS,
    ROW_COUNT_ANCHORS,
    ScaleFactorError,
    ScalingModel,
    minimum_streams,
)

_B = 10**9
_M = 10**6
_K = 10**3


class TestTable2:
    """The paper's Table 2 cardinalities, verbatim."""

    @pytest.mark.parametrize("sf,expected", [
        (100, 288 * _M), (1000, 2_900 * _M), (10000, 30 * _B), (100000, 297 * _B),
    ])
    def test_store_sales(self, sf, expected):
        assert ScalingModel(sf).rows("store_sales") == expected

    @pytest.mark.parametrize("sf,expected", [
        (100, 14 * _M), (1000, 147 * _M), (10000, 1_500 * _M), (100000, 15 * _B),
    ])
    def test_store_returns(self, sf, expected):
        assert ScalingModel(sf).rows("store_returns") == expected

    @pytest.mark.parametrize("sf,expected", [
        (100, 200), (1000, 500), (10000, 750), (100000, 1500),
    ])
    def test_store(self, sf, expected):
        assert ScalingModel(sf).rows("store") == expected

    @pytest.mark.parametrize("sf,expected", [
        (100, 2 * _M), (1000, 8 * _M), (10000, 20 * _M), (100000, 100 * _M),
    ])
    def test_customer(self, sf, expected):
        assert ScalingModel(sf).rows("customer") == expected

    @pytest.mark.parametrize("sf,expected", [
        (100, 200 * _K), (1000, 300 * _K), (10000, 400 * _K), (100000, 500 * _K),
    ])
    def test_item(self, sf, expected):
        assert ScalingModel(sf).rows("item") == expected

    def test_paper_headline_numbers_at_sf100(self):
        """§3.1: '58 Million items are sold per year by 2 Million
        customers in 200 stores' at SF 100 (288M line items over 5 years
        ≈ 58M per year)."""
        model = ScalingModel(100)
        per_year = model.rows("store_sales") / 5
        assert per_year == pytest.approx(58 * _M, rel=0.01)
        assert model.rows("customer") == 2 * _M
        assert model.rows("store") == 200


class TestScalingShape:
    def test_facts_scale_linearly(self):
        m100 = ScalingModel(100).rows("store_sales")
        m300 = ScalingModel(300).rows("store_sales")
        assert m300 == pytest.approx(3 * m100, rel=0.01)

    def test_dimensions_scale_sublinearly(self):
        """§3.1: 'fact tables scale linearly while dimensions scale sub
        linearly' — 10x data gives far less than 10x customers."""
        for table in ("customer", "item", "store", "warehouse", "call_center"):
            r100 = ScalingModel(100).rows(table)
            r1000 = ScalingModel(1000).rows(table)
            assert r1000 < 10 * r100, table
            assert r1000 >= r100, table

    def test_fixed_tables_constant(self):
        for table in ("date_dim", "time_dim", "customer_demographics",
                      "income_band", "ship_mode"):
            assert (
                ScalingModel(100).rows(table)
                == ScalingModel(100000).rows(table)
            ), table

    def test_unrealistic_tpch_ratios_avoided(self):
        """The motivating complaint: at SF 100000, TPC-H models 15 billion
        customers; TPC-DS keeps dimensions realistic (100M customers)."""
        model = ScalingModel(100000)
        assert model.rows("customer") == 100 * _M  # not billions
        assert model.rows("item") == 500 * _K

    def test_interpolated_sf300_between_anchors(self):
        r = ScalingModel(300).rows("customer")
        assert ScalingModel(100).rows("customer") < r < ScalingModel(1000).rows("customer")

    def test_all_tables_have_anchors(self):
        from repro.schema import ALL_TABLES

        assert set(ROW_COUNT_ANCHORS) == set(ALL_TABLES)

    @given(st.floats(min_value=0.001, max_value=100000, allow_nan=False))
    def test_rows_positive_and_finite(self, sf):
        model = ScalingModel(sf)
        for table in ROW_COUNT_ANCHORS:
            assert model.rows(table) >= 1

    @given(st.floats(min_value=0.01, max_value=50000), st.floats(min_value=1.1, max_value=3))
    def test_monotone_in_scale_factor(self, sf, factor):
        smaller = ScalingModel(sf)
        bigger = ScalingModel(sf * factor)
        for table in ("store_sales", "customer", "item", "web_sales"):
            assert bigger.rows(table) >= smaller.rows(table)


class TestStrictMode:
    def test_official_scale_factors(self):
        assert OFFICIAL_SCALE_FACTORS == (100, 300, 1000, 3000, 10000, 30000, 100000)

    @pytest.mark.parametrize("sf", OFFICIAL_SCALE_FACTORS)
    def test_strict_accepts_official(self, sf):
        ScalingModel(sf, strict=True)

    @pytest.mark.parametrize("sf", [1, 50, 200, 0.01, 99999])
    def test_strict_rejects_others(self, sf):
        with pytest.raises(ScaleFactorError):
            ScalingModel(sf, strict=True)

    def test_nonpositive_rejected(self):
        with pytest.raises(ScaleFactorError):
            ScalingModel(0)
        with pytest.raises(ScaleFactorError):
            ScalingModel(-5)

    def test_model_scale_flag(self):
        assert ScalingModel(0.01).is_model_scale
        assert not ScalingModel(100).is_model_scale


class TestFigure12:
    """Minimum Required Query Streams."""

    @pytest.mark.parametrize("sf,streams", [
        (100, 3), (300, 5), (1000, 7), (3000, 9),
        (10000, 11), (30000, 13), (100000, 15),
    ])
    def test_table_verbatim(self, sf, streams):
        assert minimum_streams(sf) == streams

    def test_model_scale_uses_smallest(self):
        assert minimum_streams(0.01) == 3

    def test_between_points_uses_lower(self):
        assert minimum_streams(500) == 5
        assert minimum_streams(2000) == 7

    @given(st.floats(min_value=1, max_value=200000))
    def test_monotone(self, sf):
        assert minimum_streams(sf * 1.5) >= minimum_streams(sf)
