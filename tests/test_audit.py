"""Audit-module tests: a freshly generated database passes; corrupted
databases are caught by the matching check."""

import numpy as np
import pytest

from repro.runner import audit_database
from repro.runner.audit import (
    check_foreign_keys,
    check_primary_keys,
    check_returns_linkage,
    check_row_counts,
    check_scd_invariants,
    check_zone_gradient,
)
from tests.conftest import SESSION_SF


class TestCleanDatabasePasses:
    def test_full_audit_clean(self, loaded_db):
        findings = audit_database(loaded_db, scale_factor=SESSION_SF)
        assert findings == []

    def test_fast_audit_clean(self, loaded_db):
        assert audit_database(loaded_db, scale_factor=SESSION_SF, deep=False) == []


class TestCorruptionDetected:
    def test_duplicate_pk(self, fresh_db):
        item = fresh_db.table("item")
        item.append_rows([[item.row(0)[c] for c in item.schema.column_names]])
        findings = check_primary_keys(fresh_db)
        assert any(f.table == "item" and f.check == "primary-key" for f in findings)

    def test_null_pk(self, fresh_db):
        table = fresh_db.table("warehouse")
        row = [table.row(0)[c] for c in table.schema.column_names]
        row[0] = None
        # bypass NOT NULL by marking directly
        table.columns["w_warehouse_sk"].append_values([None])
        for c in table.schema.column_names[1:]:
            table.columns[c].append_values([table.row(0)[c]])
        findings = check_primary_keys(fresh_db)
        assert any(f.table == "warehouse" for f in findings)

    def test_dangling_fk(self, fresh_db):
        fresh_db.execute("UPDATE store_sales SET ss_item_sk = 99999999 WHERE ss_item_sk IS NOT NULL")
        findings = check_foreign_keys(fresh_db)
        assert any(f.table == "store_sales" and "ss_item_sk" in f.detail for f in findings)

    def test_row_count_mismatch(self, fresh_db):
        fresh_db.execute("DELETE FROM customer WHERE c_customer_sk <= 1000")
        findings = check_row_counts(fresh_db, SESSION_SF)
        assert any(f.table == "customer" for f in findings)

    def test_scd_double_open_revision(self, fresh_db):
        item = fresh_db.table("item")
        row = [item.row(0)[c] for c in item.schema.column_names]
        names = item.schema.column_names
        row[names.index("i_item_sk")] = 99_999_999
        row[names.index("i_rec_end_date")] = None
        # force a second open revision for the same business key
        first_bk_rows = fresh_db.execute(
            f"SELECT i_item_id FROM item WHERE i_rec_end_date IS NULL LIMIT 1"
        ).rows()
        row[names.index("i_item_id")] = first_bk_rows[0][0]
        item.append_rows([row])
        findings = check_scd_invariants(fresh_db)
        assert any(f.check == "scd-open-revision" and f.table == "item" for f in findings)

    def test_scd_inverted_range(self, fresh_db):
        fresh_db.execute("""
            UPDATE store SET s_rec_end_date = DATE '1900-01-01'
            WHERE s_rec_end_date IS NOT NULL
        """)
        rows_affected = fresh_db.execute(
            "SELECT COUNT(*) FROM store WHERE s_rec_end_date IS NOT NULL"
        ).scalar()
        if rows_affected:
            findings = check_scd_invariants(fresh_db)
            assert any(f.check == "scd-date-range" for f in findings)

    def test_orphan_returns(self, fresh_db):
        fresh_db.execute("UPDATE store_returns SET sr_ticket_number = 987654")
        findings = check_returns_linkage(fresh_db)
        assert any(f.table == "store_returns" for f in findings)

    def test_zone_gradient_destroyed(self, fresh_db, generated_data):
        # delete all November/December sales: zone 3 collapses
        calendar = generated_data.context.calendar
        fresh_db.execute("""
            DELETE FROM store_sales WHERE ss_sold_date_sk IN
            (SELECT d_date_sk FROM date_dim WHERE d_moy >= 11)
        """)
        findings = check_zone_gradient(fresh_db)
        assert findings


class TestFindingFormatting:
    def test_str_contains_parts(self, fresh_db):
        fresh_db.execute("DELETE FROM customer WHERE c_customer_sk <= 2000")
        findings = check_row_counts(fresh_db, SESSION_SF)
        text = str(findings[0])
        assert "row-count" in text and "customer" in text
