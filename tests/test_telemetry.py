"""Tests for `repro.obs` telemetry: Chrome-trace export, latency
percentiles, the background metrics sampler, the worker-pool profiler
and the self-contained HTML dashboard."""

import json
import threading
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsSampler,
    MorselProfile,
    PoolProfiler,
    Tracer,
    latency_percentiles,
    render_html_report,
    set_tracer,
    skew_ratio,
    to_chrome_trace,
    validate_chrome_trace,
    worker_lanes,
)


class TestLatencyPercentiles:
    def test_empty_input_yields_zeros(self):
        out = latency_percentiles([])
        assert out["count"] == 0
        assert out["p50"] == 0.0
        assert out["p99"] == 0.0
        assert out["max"] == 0.0

    def test_percentiles_are_monotone(self):
        out = latency_percentiles([0.01 * i for i in range(1, 101)])
        assert out["count"] == 100
        assert out["p50"] <= out["p90"] <= out["p95"] <= out["p99"]
        assert out["p99"] <= out["max"] == pytest.approx(1.0)

    def test_single_value_clamps_to_itself(self):
        out = latency_percentiles([0.125])
        assert out["p50"] == out["p99"] == out["max"] == 0.125


def _span(name, span_id, start, elapsed, thread=1, parent=None, **attrs):
    return {
        "name": name, "id": span_id, "parent": parent, "start": start,
        "wall_start": 1_700_000_000.0 + start, "elapsed": elapsed,
        "thread": thread, "attrs": attrs,
    }


class TestChromeTrace:
    def test_json_roundtrip_validates(self):
        spans = [
            _span("phase:load", 0, 0.0, 1.5),
            _span("query", 1, 1.5, 0.25, parent=0, template=52),
        ]
        doc = json.loads(json.dumps(to_chrome_trace(spans)))
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_complete_events_carry_wall_anchored_microseconds(self):
        doc = to_chrome_trace([_span("query", 7, 2.0, 0.5, template=52)])
        event = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert event["ts"] == pytest.approx((1_700_000_000.0 + 2.0) * 1e6)
        assert event["dur"] == pytest.approx(0.5 * 1e6)
        assert event["args"]["span_id"] == 7
        assert event["args"]["template"] == 52

    def test_threads_become_named_lanes(self):
        spans = [
            _span("phase:query_run", 0, 0.0, 1.0, thread=10),
            _span("morsel:Filter", 1, 0.1, 0.2, thread=20, worker=0),
            _span("morsel:Filter", 2, 0.1, 0.2, thread=30, worker=1),
        ]
        doc = to_chrome_trace(spans)
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"benchmark", "pool worker 0", "pool worker 1"}
        assert worker_lanes(doc) == ["pool worker 0", "pool worker 1"]

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
        assert "traceEvents is empty" in validate_chrome_trace(
            {"traceEvents": []}
        )
        bad = {"traceEvents": [{"ph": "X", "name": "q", "pid": 0, "tid": 0,
                                "ts": -1.0, "dur": "fast"}]}
        errors = validate_chrome_trace(bad)
        assert any("bad 'ts'" in e for e in errors)
        assert any("bad 'dur'" in e for e in errors)

    def test_real_pool_run_yields_two_worker_lanes(self):
        """Drive a live WorkerPool(2) under an enabled tracer: the
        exported trace must name both pool workers (the acceptance bar
        for the `obs trace` command)."""
        from repro.engine.parallel import WorkerPool

        tracer = Tracer(enabled=True)
        pool = WorkerPool(2)
        barrier = threading.Barrier(2, timeout=10)

        def task(item, ctx):
            barrier.wait()  # both workers must participate
            return item

        previous = set_tracer(tracer)
        try:
            assert pool.map_morsels(task, [1, 2], label="Filter") == [1, 2]
        finally:
            set_tracer(previous)
            pool.shutdown()
        doc = to_chrome_trace(tracer.export())
        assert validate_chrome_trace(doc) == []
        assert worker_lanes(doc) == ["pool worker 0", "pool worker 1"]


class TestMetricsSampler:
    def test_samples_accumulate_and_mirror_to_jsonl(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        registry.counter("rows").add(42)
        path = tmp_path / "series.jsonl"
        sampler = MetricsSampler(registry, interval_s=0.01, path=str(path))
        with sampler:
            time.sleep(0.05)
        assert len(sampler.samples) >= 2  # interval ticks + final snapshot
        for record in sampler.samples:
            assert record["metrics"]["rows"]["value"] == 42.0
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == len(sampler.samples)
        assert lines[0]["ts"] <= lines[-1]["ts"]

    def test_stop_takes_final_sample_even_on_short_runs(self):
        registry = MetricsRegistry(enabled=True)
        sampler = MetricsSampler(registry, interval_s=60.0)
        sampler.start()
        series = sampler.stop()
        assert len(series) == 1  # run shorter than the interval

    def test_stop_is_idempotent(self, tmp_path):
        # both the runner's finally and __exit__ may call stop(); the
        # second call must not take another sample or reopen the mirror
        registry = MetricsRegistry(enabled=True)
        path = tmp_path / "series.jsonl"
        sampler = MetricsSampler(registry, interval_s=60.0, path=str(path))
        sampler.start()
        first = list(sampler.stop())
        second = sampler.stop()
        assert second == first
        assert len(first) == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 1

    def test_series_reload_tolerates_torn_final_line(self, tmp_path):
        from repro.obs import load_metrics_series

        registry = MetricsRegistry(enabled=True)
        registry.counter("rows").add(7)
        path = tmp_path / "series.jsonl"
        with MetricsSampler(registry, interval_s=60.0, path=str(path)):
            pass
        # a run killed mid-append leaves one partial record at the end
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ts": 1.0, "metrics": {"rows"')
        series = load_metrics_series(str(path))
        assert len(series) == 1
        assert series[0]["metrics"]["rows"]["value"] == 7.0
        assert load_metrics_series(str(tmp_path / "absent.jsonl")) == []

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            MetricsSampler(MetricsRegistry(), interval_s=0.0)


class TestSkewAndProfiles:
    def test_skew_ratio_math(self):
        assert skew_ratio([]) == 1.0
        assert skew_ratio([5.0]) == 1.0
        assert skew_ratio([1.0, 1.0, 1.0]) == 1.0
        assert skew_ratio([1.0, 1.0, 4.0]) == 4.0
        assert skew_ratio([0.0, 0.0]) == 1.0  # zero median can't divide

    def test_morsel_profile_aggregates(self):
        profile = MorselProfile()
        profile.note(0, 0.010, 0.100)
        profile.note(1, 0.005, 0.400)
        assert profile.morsels == 2
        assert profile.total_wait() == pytest.approx(0.015)
        assert profile.skew() == pytest.approx(0.400 / 0.250)
        assert profile.workers == {0, 1}

    def test_pool_profiler_occupancy_and_operators(self):
        profiler = PoolProfiler()
        profiler.note_pool(2)
        # worker 0 busy the whole 1s window, worker 1 for half of it
        profiler.note("Filter", 0, 100.0, 0.001, 1.0)
        profiler.note("Filter", 1, 100.0, 0.002, 0.5)
        per_worker = profiler.worker_occupancy()
        assert per_worker[0]["occupancy"] == pytest.approx(1.0)
        assert per_worker[1]["occupancy"] == pytest.approx(0.5)
        assert profiler.mean_occupancy() == pytest.approx(0.75)
        payload = profiler.as_dict()
        assert payload["pool_workers"] == 2
        assert payload["morsels"] == 2
        assert payload["queue_wait_s"] == pytest.approx(0.003)
        ops = payload["operators"]
        assert ops[0]["operator"] == "Filter"
        assert ops[0]["skew"] == pytest.approx(1.0 / 0.75)

    def test_mean_occupancy_counts_idle_pool_capacity(self):
        """An 8-worker pool where one worker did everything is 1/8
        occupied, not 100%."""
        profiler = PoolProfiler()
        profiler.note_pool(8)
        profiler.note("Sort(run)", 0, 50.0, 0.0, 2.0)
        assert profiler.mean_occupancy() == pytest.approx(1.0 / 8)

    def test_utilization_timeline_bounds(self):
        profiler = PoolProfiler()
        profiler.note_pool(2)
        profiler.note("Filter", 0, 10.0, 0.0, 1.0)
        profiler.note("Filter", 1, 10.5, 0.0, 0.5)
        series = profiler.utilization_timeline(bins=10)
        assert len(series) == 10
        assert all(0.0 <= v <= 1.0 for v in series)
        assert max(series) > 0.0

    def test_clear_resets_everything(self):
        profiler = PoolProfiler()
        profiler.note_pool(4)
        profiler.note("Filter", 0, 1.0, 0.0, 0.1)
        profiler.clear()
        assert profiler.as_dict()["morsels"] == 0
        assert profiler.as_dict()["pool_workers"] == 0


def _bundle(**overrides):
    bundle = {
        "generated_at": "2026-08-07T12:00:00",
        "config": {"scale_factor": 0.004, "streams": 1, "seed": 19620718,
                   "workers": 2},
        "summary": {"qphds": 1234.5, "price_performance": 0.1,
                    "queries": 99, "compliant": True, "load_s": 1.0,
                    "qr1_s": 2.0, "maintenance_s": 0.5, "qr2_s": 2.1},
        "trace": [
            _span("phase:load", 0, 0.0, 1.0, thread=1),
            _span("morsel:Filter", 1, 0.2, 0.1, thread=2, worker=0),
            _span("morsel:Filter", 2, 0.2, 0.1, thread=3, worker=1),
        ],
        "latency": {"all": latency_percentiles([0.01, 0.02, 0.03])},
        "parallelism": {
            "pool_workers": 2, "morsels": 2, "window_s": 1.0,
            "queue_wait_s": 0.003, "mean_occupancy": 0.75,
            "workers": {"0": {"busy_s": 1.0, "morsels": 1, "occupancy": 1.0},
                        "1": {"busy_s": 0.5, "morsels": 1, "occupancy": 0.5}},
            "operators": [{"operator": "Filter", "morsels": 2, "run_s": 1.5,
                           "wait_s": 0.003, "max_run_s": 1.0,
                           "median_run_s": 0.75, "skew": 1.33}],
            "utilization": [0.5, 1.0, 0.75],
        },
        "plan_quality": {"threshold": 4.0, "operators_seen": 10,
                         "misestimates": 1,
                         "worst_offenders": [{"query": 52, "label": "Join",
                                              "estimated": 10, "actual": 100,
                                              "q_error": 10.0,
                                              "misestimate": True}]},
        "metrics": None,
        "metrics_series": [],
    }
    bundle.update(overrides)
    return bundle


class TestHtmlReport:
    def test_renders_every_section_self_contained(self):
        html = render_html_report(_bundle())
        assert html.startswith("<!DOCTYPE html>")
        for section in ("Span timeline", "latency percentiles",
                        "Parallelism profile", "Plan quality"):
            assert section in html
        # dependency-free: no scripts, no external fetches
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        # both worker lanes drawn
        assert "pool worker 0" in html and "pool worker 1" in html

    def test_escapes_hostile_span_names(self):
        bundle = _bundle()
        bundle["trace"].append(
            _span("<script>alert(1)</script>", 9, 0.5, 0.1, thread=1)
        )
        html = render_html_report(bundle)
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_tolerates_empty_telemetry(self):
        html = render_html_report({})
        assert html.startswith("<!DOCTYPE html>")
        assert "</html>" in html

    def test_zero_query_run_renders(self):
        # a run that executed nothing: zeroed summary, empty trace and
        # latency — the dashboard must stay well-formed, not divide by 0
        bundle = _bundle(
            trace=[],
            summary={"qphds": 0.0, "queries": 0, "compliant": False},
            latency={"all": latency_percentiles([])},
            parallelism=None,
            plan_quality=None,
        )
        html = render_html_report(bundle)
        assert html.startswith("<!DOCTYPE html>")
        assert "</html>" in html
        assert "queries executed" in html

    def test_single_worker_run_has_no_pool_sections(self):
        # serial run: one lane, no parallelism profile, no worker tiles
        bundle = _bundle(
            trace=[_span("phase:load", 0, 0.0, 1.0, thread=1)],
            parallelism=None,
        )
        bundle["config"]["workers"] = None
        html = render_html_report(bundle)
        assert "Span timeline" in html
        assert "pool worker" not in html
        assert "Parallelism profile" not in html

    def test_span_truncation_notice(self):
        from repro.obs.report_html import _MAX_SPANS_PER_LANE

        spans = [_span("phase:load", 0, 0.0, 60.0, thread=1)]
        n = _MAX_SPANS_PER_LANE + 25
        for i in range(n):
            spans.append(_span("query", i + 1, i * 0.1, 0.05, thread=2))
        html = render_html_report(_bundle(trace=spans))
        assert (f"longest {_MAX_SPANS_PER_LANE} spans shown" in html)
        assert "25 shorter spans not drawn" in html
        # under the cap there is no notice
        html_small = render_html_report(_bundle())
        assert "spans shown per lane" not in html_small
