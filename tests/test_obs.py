"""Unit tests for `repro.obs` — metrics registry, tracer, exec stats,
Q-error / plan quality, memory accounting."""

import json
import threading

import pytest

from repro.obs import (
    ExecStatsCollector,
    MetricsRegistry,
    PlanQualityAggregator,
    Tracer,
    annotate_plan,
    collect_plan_quality,
    format_bytes,
    get_registry,
    get_tracer,
    plan_to_dict,
    q_error,
    set_registry,
    set_tracer,
)


class TestMetrics:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("rows").add(10)
        reg.counter("rows").add(5)
        assert reg.snapshot()["rows"] == {"type": "counter", "value": 15.0}

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("speed").set(100.0)
        reg.gauge("speed").set(42.0)
        assert reg.snapshot()["speed"]["value"] == 42.0

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for value in (1, 2, 3, 4, 100):
            hist.observe(value)
        snap = reg.snapshot()["lat"]
        assert snap["count"] == 5
        assert snap["sum"] == 110
        assert snap["min"] == 1
        assert snap["max"] == 100
        assert snap["mean"] == 22.0
        assert snap["p50"] <= snap["p95"]

    def test_histogram_resolves_subsecond_latencies(self):
        """Regression: sub-1.0 observations used to collapse into one
        bucket, reporting p50=1.0 for millisecond latencies."""
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for value in (0.03, 0.035, 0.04, 0.05):
            hist.observe(value)
        snap = reg.snapshot()["lat"]
        assert snap["p50"] <= 0.125
        assert snap["p95"] <= 0.125
        assert len(snap["buckets"]) >= 1

    def test_quantile_edges_clamp_to_observed_range(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for value in (0.25, 0.5, 8.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.25
        assert hist.quantile(-1.0) == 0.25
        assert hist.quantile(1.0) == 8.0
        assert hist.quantile(2.0) == 8.0
        # interior quantiles never exceed the observed max either
        assert hist.quantile(0.99) <= 8.0

    def test_quantile_of_empty_histogram_is_zero(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 0.0

    def test_histogram_snapshot_reports_p90_p99(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        for value in range(1, 20):
            hist.observe(float(value))
        snap = reg.snapshot()["lat"]
        assert snap["p50"] <= snap["p90"] <= snap["p99"]
        assert snap["p99"] <= snap["max"]

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("rows", labels={"table": "a"}).add(1)
        reg.counter("rows", labels={"table": "b"}).add(2)
        snap = reg.snapshot()
        assert snap["rows{table=a}"]["value"] == 1
        assert snap["rows{table=b}"]["value"] == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_set_max_keeps_high_water(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("peak")
        gauge.set_max(10.0)
        gauge.set_max(5.0)
        gauge.set_max(25.0)
        assert reg.snapshot()["peak"]["value"] == 25.0

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("rows").add(100)
        reg.gauge("g").set(1.0)
        reg.gauge("g").set_max(9.0)
        reg.histogram("h").observe(5.0)
        assert reg.snapshot() == {}

    def test_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("a").add(1)
        assert json.loads(reg.to_json())["a"]["value"] == 1.0

    def test_global_registry_swap(self):
        replacement = MetricsRegistry(enabled=True)
        previous = set_registry(replacement)
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)

    def test_thread_safety(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")

        def work():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestTracer:
    def test_span_timing_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", kind="test") as span:
            span.set(rows=5)
        (exported,) = tracer.export()
        assert exported["name"] == "work"
        assert exported["attrs"] == {"kind": "test", "rows": 5}
        assert exported["elapsed"] >= 0
        assert exported["parent"] is None

    def test_nesting_same_thread(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        spans = {s["name"]: s for s in tracer.export()}
        assert spans["inner"]["parent"] == outer.span_id
        assert spans["outer"]["parent"] is None

    def test_explicit_parent_across_threads(self):
        tracer = Tracer()
        with tracer.span("run") as run_span:
            def work():
                with tracer.span("stream", parent=run_span):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        spans = {s["name"]: s for s in tracer.export()}
        assert spans["stream"]["parent"] == run_span.span_id

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work") as span:
            span.set(anything=1)
        assert tracer.export() == []

    def test_disabled_span_is_shared_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_installed_restores_previous(self):
        tracer = Tracer()
        before = get_tracer()
        with tracer.installed():
            assert get_tracer() is tracer
        assert get_tracer() is before

    def test_total_sums_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        assert tracer.total("op") == pytest.approx(
            sum(s["elapsed"] for s in tracer.export())
        )

    def test_json_export(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert json.loads(tracer.to_json())[0]["name"] == "a"

    def test_global_default_is_disabled(self):
        assert get_tracer().enabled is False

    def test_set_tracer_returns_previous(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)

    def test_wall_start_anchored_to_epoch(self):
        tracer = Tracer()
        wall0, perf0 = tracer.epoch
        with tracer.span("work"):
            pass
        (exported,) = tracer.export()
        assert exported["wall_start"] == pytest.approx(
            wall0 + (exported["start"] - perf0)
        )
        assert tracer.wall_time(perf0) == wall0

    def test_out_of_order_exit_does_not_poison_the_stack(self):
        """Pool threads are long-lived: a span exited out of order must
        be removed from wherever it sits on the per-thread stack, not
        left dangling as a bogus parent for every later span."""
        tracer = Tracer()
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        outer.__exit__(None, None, None)  # wrong order: outer first
        inner.__exit__(None, None, None)
        with tracer.span("later"):
            pass
        spans = {s["name"]: s for s in tracer.export()}
        assert spans["later"]["parent"] is None
        assert spans["inner"]["parent"] == outer.span_id

    def test_span_ids_unique_across_threads(self):
        tracer = Tracer()

        def work():
            for _ in range(200):
                with tracer.span("op"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        ids = [s["id"] for s in tracer.export()]
        assert len(ids) == 800
        assert len(set(ids)) == 800


class _FakeNode:
    """Minimal plan-node double: label() + children()."""

    def __init__(self, label, children=()):
        self._label = label
        self._children = tuple(children)

    def label(self):
        return self._label

    def children(self):
        return self._children


class TestExecStats:
    def test_record_and_annotate(self):
        leaf = _FakeNode("Scan(t)")
        root = _FakeNode("Project(x)", [leaf])
        collector = ExecStatsCollector()
        collector.record(leaf, rows_out=10, elapsed=0.001)
        collector.record(root, rows_out=10, elapsed=0.002)
        collector.add(leaf, rows_in=100)
        text = annotate_plan(root, collector)
        assert "Project(x)" in text
        assert "rows=10" in text
        assert "rows_in=100" in text
        assert text.splitlines()[1].startswith("  Scan(t)")

    def test_memo_hits_rendered(self):
        node = _FakeNode("Rename(as cte)")
        collector = ExecStatsCollector()
        collector.record(node, rows_out=1, elapsed=0.0)
        collector.memo_hit(node)
        collector.memo_hit(node)
        assert "memo_hits=2" in annotate_plan(node, collector)

    def test_plan_to_dict_shape(self):
        leaf = _FakeNode("Scan(t)")
        root = _FakeNode("Limit(5)", [leaf])
        collector = ExecStatsCollector()
        collector.record(root, rows_out=5, elapsed=0.0)
        tree = plan_to_dict(root, collector)
        assert tree["label"] == "Limit(5)"
        assert tree["stats"]["rows"] == 5
        assert tree["children"][0]["label"] == "Scan(t)"
        assert "stats" not in tree["children"][0]

    def test_unrecorded_node_renders_bare(self):
        node = _FakeNode("Scan(t)")
        assert annotate_plan(node, ExecStatsCollector()) == "Scan(t)"

    def test_note_memory_tracks_operator_and_statement_peaks(self):
        node = _FakeNode("HashJoin")
        collector = ExecStatsCollector()
        collector.record(node, rows_out=1, elapsed=0.0)
        collector.note_memory(node, 2048.0)
        collector.note_memory(node, 512.0)  # smaller loop: peak kept
        assert collector.peak_memory_bytes == 2048.0
        assert "mem=2.0KB" in annotate_plan(node, collector)

    def test_q_error_math(self):
        assert q_error(100, 100) == 1.0
        assert q_error(10, 100) == 10.0
        assert q_error(100, 10) == 10.0
        assert q_error(0, 0) == 1.0  # clamped, no division by zero

    def test_format_bytes_units(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MB"
        assert format_bytes(5 * 1024 ** 3) == "5.0GB"

    def test_estimate_annotation_and_misestimate_flag(self):
        node = _FakeNode("Scan(t)")
        node.estimated_rows = 10.0
        collector = ExecStatsCollector()
        collector.record(node, rows_out=100, elapsed=0.0)
        text = annotate_plan(node, collector)
        assert "est=10 q_err=10.0" in text
        assert "[misestimate]" in text
        tree = plan_to_dict(node, collector)
        assert tree["estimated_rows"] == 10.0
        assert tree["q_error"] == 10.0
        assert tree["misestimate"] is True


class TestPlanQuality:
    def _plan_and_collector(self, est, act):
        node = _FakeNode("Scan(t)")
        node.estimated_rows = est
        node.walk = lambda: [node]
        collector = ExecStatsCollector()
        collector.record(node, rows_out=act, elapsed=0.0)
        return node, collector

    def test_collect_plan_quality(self):
        plan, collector = self._plan_and_collector(10.0, 100)
        (record,) = collect_plan_quality(plan, collector, query="q1")
        assert record.q_error == 10.0
        assert record.misestimate is True
        assert record.as_dict()["label"] == "Scan(t)"

    def test_aggregator_keeps_worst_offenders(self):
        agg = PlanQualityAggregator()
        plan_a, coll_a = self._plan_and_collector(10.0, 100)   # q_err 10
        plan_b, coll_b = self._plan_and_collector(50.0, 100)   # q_err 2
        agg.record("SELECT a", plan_a, coll_a)
        agg.record("SELECT b", plan_b, coll_b)
        summary = agg.as_dict()
        assert summary["operators_seen"] == 2
        assert summary["misestimates"] == 1
        worst = summary["worst_offenders"]
        assert worst[0]["q_error"] == 10.0
        assert worst[0]["query"].startswith("SELECT a")
        assert any("plan quality" in line for line in agg.render())
