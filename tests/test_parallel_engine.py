"""Parallel-vs-serial determinism matrix and governed parallel execution.

The morsel-driven worker pool must be invisible in results: every
statement returns byte-identical rows (values *and* order) at any
worker count.  This suite pins that over the full qualification
workload (all 99 templates' statements at the session scale) and the
differential-testing repro corpus, then verifies the resource governor
— timeout, cancellation, memory budget/spill accounting and fault
injection — behaves identically when the work runs on pool threads.
"""

from __future__ import annotations

import pathlib
import random
import threading

import pytest

from repro.difftest.corpus import load_corpus
from repro.engine import ColumnDef, Database, TableSchema, integer, varchar
from repro.engine.errors import QueryCancelled, QueryTimeout
from repro.engine.parallel import MIN_PARALLEL_ROWS, MORSEL_ROWS, shutdown_pool
from repro.faults import FaultInjector, InjectedFault

WORKER_MATRIX = [2, 4]

CORPUS_DIR = pathlib.Path(__file__).parent / "difftest_corpus"
CORPUS_ENTRIES = list(load_corpus(CORPUS_DIR))


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


# -- qualification workload ------------------------------------------------


@pytest.fixture(scope="module")
def qualification_statements(qgen):
    statements = []
    for template_id in range(1, 100):
        query = qgen.generate(template_id, stream=0)
        for index, sql in enumerate(query.statements):
            statements.append((f"q{template_id}.{index}", sql))
    return statements


@pytest.fixture(scope="module")
def serial_qualification_rows(loaded_db, qualification_statements):
    return {
        label: loaded_db.execute(sql).rows()
        for label, sql in qualification_statements
    }


@pytest.mark.parametrize("workers", WORKER_MATRIX)
def test_qualification_matrix_is_deterministic(
    loaded_db, qualification_statements, serial_qualification_rows, workers
):
    """All 108 qualification statements, byte-identical to serial."""
    for label, sql in qualification_statements:
        rows = loaded_db.execute(sql, workers=workers).rows()
        assert rows == serial_qualification_rows[label], (
            f"{label} diverged at workers={workers}"
        )


@pytest.mark.parametrize("workers", WORKER_MATRIX)
def test_corpus_matrix_is_deterministic(loaded_db, workers):
    """Every shrunk bug repro returns serial-identical rows."""
    assert CORPUS_ENTRIES
    for entry in CORPUS_ENTRIES:
        serial = loaded_db.execute(entry.sql).rows()
        rows = loaded_db.execute(entry.sql, workers=workers).rows()
        assert rows == serial, f"{entry.name} diverged at workers={workers}"


# -- governed execution on pool threads ------------------------------------


def _wide_db(n_rows: int = 3 * MORSEL_ROWS) -> Database:
    """A synthetic table wide enough that every hot operator fans out
    over several morsels (the session-scale tables fit in one)."""
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                ColumnDef("a", integer()),
                ColumnDef("b", integer()),
                ColumnDef("s", varchar(10)),
            ],
        )
    )
    rng = random.Random(20060912)
    db.table("t").append_rows(
        [
            [rng.randrange(2000), rng.randrange(100), f"s{rng.randrange(50)}"]
            for _ in range(n_rows)
        ]
    )
    db.gather_stats()
    return db


WIDE_SQL = (
    "SELECT t1.a, COUNT(*), SUM(t2.b) FROM t t1, t t2 "
    "WHERE t1.a = t2.a AND t1.b < 50 GROUP BY t1.a ORDER BY t1.a"
)


@pytest.fixture(scope="module")
def wide_db():
    assert 3 * MORSEL_ROWS > MIN_PARALLEL_ROWS
    return _wide_db()


def test_wide_join_aggregate_matrix(wide_db):
    serial = wide_db.execute(WIDE_SQL).rows()
    for workers in WORKER_MATRIX:
        assert wide_db.execute(WIDE_SQL, workers=workers).rows() == serial


def test_spill_totals_identical_across_worker_counts(wide_db):
    """Spill accounting sums across workers: the partition cut comes
    from the budget, not the worker count, so totals match serial."""
    budget = 64 * 1024
    serial = wide_db.execute(WIDE_SQL, mem_budget_bytes=budget)
    assert serial.spill_partitions > 0
    assert serial.spilled_bytes > 0
    for workers in WORKER_MATRIX:
        parallel = wide_db.execute(
            WIDE_SQL, mem_budget_bytes=budget, workers=workers
        )
        assert parallel.rows() == serial.rows()
        assert parallel.spill_partitions == serial.spill_partitions
        assert parallel.spilled_bytes == serial.spilled_bytes


def test_timeout_fires_under_workers(wide_db):
    with pytest.raises(QueryTimeout):
        wide_db.execute(WIDE_SQL, timeout_s=0.0, workers=4)


def test_cancellation_fires_under_workers(wide_db):
    cancel = threading.Event()
    cancel.set()
    with pytest.raises(QueryCancelled):
        wide_db.execute(WIDE_SQL, cancel=cancel, workers=4)


def test_fault_injection_fires_inside_morsel_tasks(wide_db):
    """Sites named ``(morsel)`` only exist inside morsel tasks, so a
    site-filtered injector proves faults propagate out of pool threads
    (re-raised as the lowest-indexed morsel's error)."""
    injector = FaultInjector(
        seed=7, error_rate=1.0, scope=("operator",), site_filter="morsel"
    )
    wide_db.fault_injector = injector
    try:
        with pytest.raises(InjectedFault) as excinfo:
            wide_db.execute(WIDE_SQL, workers=4)
    finally:
        wide_db.fault_injector = None
    assert "morsel" in str(excinfo.value)
    assert injector.injected_errors > 0
    # the injector must not have poisoned later serial runs
    assert wide_db.execute("SELECT COUNT(*) FROM t").scalar() == 3 * MORSEL_ROWS


def test_explain_analyze_reports_fanout(wide_db):
    text = wide_db.explain_analyze(WIDE_SQL, workers=4)
    assert "workers=" in text
    assert "morsels=" in text
    # serial EXPLAIN ANALYZE stays free of pool counters
    assert "workers=" not in wide_db.explain_analyze(WIDE_SQL)


def test_workers_one_is_serial(wide_db):
    """workers=1 must not build a pool at all (serial fast path)."""
    from repro.engine.parallel import get_pool

    assert get_pool(1) is None
    assert get_pool(None) is None
    assert (
        wide_db.execute(WIDE_SQL, workers=1).rows()
        == wide_db.execute(WIDE_SQL).rows()
    )
