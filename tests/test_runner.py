"""Execution-rule tests — Figure 11's order, streams, aux rules, and the
end-to-end benchmark (also exercising the public Benchmark facade)."""

import pytest

from repro import Benchmark
from repro.engine.errors import CatalogError
from repro.runner import BenchmarkConfig, BenchmarkRun, render_report
from repro.runner.execution import run_benchmark

SF = 0.002


@pytest.fixture(scope="module")
def bench_result():
    config = BenchmarkConfig(scale_factor=SF, streams=2)
    return run_benchmark(config)


class TestFullRun:
    def test_metric_positive(self, bench_result):
        result, _ = bench_result
        assert result.qphds > 0
        assert result.price_performance > 0

    def test_query_counts(self, bench_result):
        """Each query run executes 99 queries per stream; two runs give
        198 * S total."""
        result, _ = bench_result
        assert result.query_run_1.queries_executed == 99 * 2
        assert result.query_run_2.queries_executed == 99 * 2
        assert result.total_queries == 198 * 2

    def test_all_phases_timed(self, bench_result):
        result, _ = bench_result
        assert result.load.elapsed > 0
        assert result.query_run_1.elapsed > 0
        assert result.maintenance.elapsed > 0
        assert result.query_run_2.elapsed > 0

    def test_generation_untimed_separately(self, bench_result):
        result, _ = bench_result
        assert result.load.untimed_generation > 0

    def test_streams_cover_all_templates(self, bench_result):
        result, _ = bench_result
        for stream in {t.stream for t in result.query_run_1.timings}:
            ids = {t.template_id for t in result.query_run_1.timings if t.stream == stream}
            assert ids == set(range(1, 100))

    def test_run2_uses_different_streams_than_run1(self, bench_result):
        result, _ = bench_result
        streams1 = {t.stream for t in result.query_run_1.timings}
        streams2 = {t.stream for t in result.query_run_2.timings}
        assert streams1.isdisjoint(streams2)

    def test_maintenance_ran_13_ops_per_stream(self, bench_result):
        result, _ = bench_result
        # 12 ops per stream + 1 final AUX entry
        assert len(result.maintenance.operations) == 12 * 2 + 1

    def test_some_queries_used_matviews(self, bench_result):
        result, _ = bench_result
        used = [t for t in result.query_run_1.timings if t.used_view]
        assert used

    def test_metric_inputs_consistent(self, bench_result):
        result, _ = bench_result
        m = result.metric_inputs
        assert m.t_qr1 == result.query_run_1.elapsed
        assert m.streams == 2

    def test_report_renders(self, bench_result):
        result, _ = bench_result
        text = render_report(result)
        assert "QphDS" in text
        assert "query run 1" in text
        assert "198 * S" in text


class TestSpanTimeline:
    def test_result_carries_span_timeline(self, bench_result):
        result, _ = bench_result
        assert result.trace
        names = {span["name"] for span in result.trace}
        assert {"phase:load", "phase:maintenance", "query", "stream"} <= names
        # two query runs at 2 streams each
        runs = [s for s in result.trace if s["name"] == "phase:throughput"]
        assert len(runs) == 2

    def test_phase_spans_nest_streams_and_queries(self, bench_result):
        result, _ = bench_result
        by_id = {span["id"]: span for span in result.trace}
        streams = [s for s in result.trace if s["name"] == "stream"]
        assert len(streams) == 4  # 2 runs x 2 streams
        for stream in streams:
            assert by_id[stream["parent"]]["name"] == "phase:throughput"
        queries = [s for s in result.trace if s["name"] == "query"]
        assert len(queries) == 99 * 4
        for query in queries[:5]:
            assert by_id[query["parent"]]["name"] == "stream"

    def test_query_spans_carry_workload_attrs(self, bench_result):
        result, _ = bench_result
        query = next(s for s in result.trace if s["name"] == "query")
        assert {"stream", "template", "query_name", "query_class", "rows"} <= set(
            query["attrs"]
        )

    def test_maintenance_ops_traced(self, bench_result):
        result, _ = bench_result
        ops = [s for s in result.trace if s["name"] == "maintenance_op"]
        # 12 operations per stream, 2 streams
        assert len(ops) == 24
        assert all("op" in s["attrs"] for s in ops)

    def test_span_elapsed_consistent_with_phases(self, bench_result):
        result, _ = bench_result
        load_span = next(s for s in result.trace if s["name"] == "phase:load")
        # the load phase span wraps generation + the timed load
        assert load_span["elapsed"] >= result.load.elapsed

    def test_export_trace_writes_json(self, bench_result, tmp_path):
        import json

        _, run = bench_result
        path = tmp_path / "trace.json"
        run.export_trace(str(path))
        spans = json.loads(path.read_text())
        assert spans == run.span_timeline()
        assert len(spans) == len(run.tracer.export())

    def test_disabled_tracer_yields_empty_timeline(self):
        from repro.obs import Tracer

        run = BenchmarkRun(
            BenchmarkConfig(scale_factor=0.001, streams=1),
            tracer=Tracer(enabled=False),
        )
        run.load_test()
        run.query_run(1)
        assert run.span_timeline() == []


class TestConfig:
    def test_default_streams_from_figure12(self):
        assert BenchmarkConfig(scale_factor=0.01).resolved_streams() == 3
        assert BenchmarkConfig(scale_factor=1000).resolved_streams() == 7

    def test_explicit_streams_win(self):
        assert BenchmarkConfig(scale_factor=0.01, streams=2).resolved_streams() == 2

    def test_strict_rejects_model_scale(self):
        from repro.dsdgen import ScaleFactorError

        config = BenchmarkConfig(scale_factor=0.01, strict=True)
        run = BenchmarkRun(config)
        with pytest.raises(ScaleFactorError):
            run.load_test()


class TestImplementationRules:
    def test_aux_on_adhoc_fact_rejected_after_load(self):
        run = BenchmarkRun(BenchmarkConfig(scale_factor=SF, streams=1))
        run.load_test()
        with pytest.raises(CatalogError):
            run.db.create_index("store_sales", "ss_item_sk", "bitmap")

    def test_aux_on_reporting_fact_allowed(self):
        run = BenchmarkRun(BenchmarkConfig(scale_factor=SF, streams=1))
        run.load_test()
        run.db.create_index("catalog_sales", "cs_promo_sk", "bitmap")

    def test_basic_indexes_allowed_everywhere(self):
        run = BenchmarkRun(BenchmarkConfig(scale_factor=SF, streams=1))
        run.load_test()
        run.db.create_index("store_sales", "ss_customer_sk", "hash")

    def test_no_aux_config_creates_no_matviews(self):
        run = BenchmarkRun(BenchmarkConfig(scale_factor=SF, streams=1,
                                           use_aux_structures=False))
        load = run.load_test()
        assert not run.db.catalog.matviews
        assert load.aux_structures < 20


class TestBenchmarkFacade:
    def test_load_then_query(self):
        bench = Benchmark(scale_factor=SF, streams=1)
        db = bench.load()
        assert db.execute("SELECT COUNT(*) FROM store_sales").scalar() > 0
        assert bench.query("SELECT COUNT(*) FROM item").scalar() > 0

    def test_generate_query(self):
        bench = Benchmark(scale_factor=SF, streams=1)
        bench.load()
        query = bench.generate_query(52)
        assert "ss_ext_sales_price" in query.sql

    def test_requires_load_first(self):
        bench = Benchmark(scale_factor=SF)
        with pytest.raises(RuntimeError):
            bench.query("SELECT 1")
        with pytest.raises(RuntimeError):
            _ = bench.summary

    def test_full_run_summary(self):
        bench = Benchmark(scale_factor=SF, streams=1)
        summary = bench.run()
        assert summary.qphds > 0
        assert summary.total_queries == 198
        assert "QphDS" in summary.report()
        assert bench.summary is summary


class TestConstraintValidation:
    def test_duplicate_pk_detected(self, fresh_db):
        from repro.engine.errors import ConstraintError
        from repro.runner import validate_primary_keys

        item = fresh_db.table("item")
        duplicate = [item.row(0)[c] for c in item.schema.column_names]
        item.append_rows([duplicate])
        with pytest.raises(ConstraintError):
            validate_primary_keys(fresh_db)

    def test_clean_database_passes(self, loaded_db):
        from repro.runner import validate_primary_keys

        validate_primary_keys(loaded_db)
