"""The open-loop load driver: phase parsing, schedule determinism,
SLA verdicts, and a small end-to-end run against a live service."""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultInjector
from repro.service import (
    LoadDriver,
    Phase,
    QueryService,
    SLATarget,
    TenantProfile,
    TenantQuota,
    parse_phases,
)

from .conftest import SESSION_SEED, SESSION_SF


@pytest.fixture(scope="module")
def service_db(generated_data):
    from repro.dsdgen import build_database

    db, _ = build_database(SESSION_SF, data=generated_data)
    return db


def test_parse_phases_steady_burst_ramp():
    phases = parse_phases("steady:2:10, burst:20:5 ,ramp:2-20:10")
    assert [p.name for p in phases] == ["steady", "burst", "ramp"]
    assert phases[0] == Phase("steady", duration_s=10.0, qps=2.0)
    assert phases[1] == Phase("burst", duration_s=5.0, qps=20.0)
    assert phases[2] == Phase("ramp", duration_s=10.0, qps=20.0,
                              start_qps=2.0)


@pytest.mark.parametrize("bad", [
    "", "steady", "steady:2", "steady:x:10", "steady:2:0", "burst:0:5",
    "ramp:5-0:3",
])
def test_parse_phases_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_phases(bad)


def test_steady_phase_arrivals_are_evenly_spaced():
    arrivals = Phase("steady", duration_s=5.0, qps=2.0).arrivals()
    assert len(arrivals) == 10
    assert arrivals == pytest.approx([0.5 * (i + 1) for i in range(10)])


def test_ramp_phase_integrates_the_rate():
    phase = Phase("ramp", duration_s=10.0, qps=20.0, start_qps=0.0)
    arrivals = phase.arrivals()
    # total = (0 + 20)/2 * 10 = 100 arrivals, increasingly dense
    assert len(arrivals) == 100
    assert arrivals == sorted(arrivals)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert gaps[0] > gaps[-1]  # rate rises, spacing shrinks
    assert arrivals[-1] <= 10.0


def test_schedule_is_deterministic(service_db, qgen):
    service = QueryService(service_db, workers=1)
    tenants = [
        TenantProfile("a", weight=2.0, templates=(3, 7)),
        TenantProfile("b", weight=1.0, templates=(42,)),
    ]
    phases = [Phase("steady", duration_s=2.0, qps=5.0)]
    try:
        first = LoadDriver(service, qgen, tenants, phases, seed=9).schedule
        second = LoadDriver(service, qgen, tenants, phases, seed=9).schedule
        assert [(a.at_s, a.tenant, a.template) for a in first] == \
               [(a.at_s, a.tenant, a.template) for a in second]
        assert [a.sql for a in first] == [a.sql for a in second]
        other = LoadDriver(service, qgen, tenants, phases, seed=10).schedule
        assert [(a.tenant, a.template, a.sql) for a in first] != \
               [(a.tenant, a.template, a.sql) for a in other]
        # repeated draws of one template still vary their substitutions
        # (template 3 substitutes per stream = per arrival index)
        a_sql = {a.sql for a in first if a.template == 3}
        assert len(a_sql) > 1
    finally:
        service.close()


def test_end_to_end_run_with_faulted_tenant(service_db, qgen, tmp_path):
    """One tenant under 100% query faults: its errors stay local, the
    clean tenant passes its SLA, and the JSON report round-trips."""
    service = QueryService(
        service_db, workers=2,
        default_quota=TenantQuota(max_concurrent=2, max_queue_depth=4),
        breaker_threshold=3, breaker_reset_s=0.2,
    )
    service.set_faults("faulty", FaultInjector(
        seed=2, error_rate=1.0, scope=("query",),
    ))
    tenants = [
        TenantProfile("clean", templates=(3, 42),
                      sla=SLATarget(p99_s=30.0, max_error_rate=0.0)),
        TenantProfile("faulty", templates=(3,),
                      sla=SLATarget(p99_s=30.0, max_error_rate=0.0)),
    ]
    phases = [Phase("steady", duration_s=2.0, qps=6.0)]
    report = LoadDriver(service, qgen, tenants, phases,
                        seed=SESSION_SEED).run()
    service.close()

    by_name = {t.tenant: t for t in report.tenants}
    clean, faulty = by_name["clean"], by_name["faulty"]
    assert clean.failed == 0 and clean.timeouts == 0
    assert clean.sla_ok
    assert clean.completed == clean.admitted
    assert clean.latency["count"] == clean.completed
    assert faulty.failed + faulty.shed == faulty.issued
    assert not faulty.sla_ok
    assert any("error rate" in f for f in faulty.sla_failures)
    assert not report.ok  # one failing tenant fails the run verdict

    # the service's own counters made it into the report
    tenant_states = {t["tenant"]: t for t in report.service["tenants"]}
    assert tenant_states["faulty"]["breaker_trips"] >= 1
    assert tenant_states["clean"]["failed"] == 0

    out = tmp_path / "BENCH_service.json"
    report.write_json(str(out))
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    assert payload["issued"] == report.issued
    assert {t["tenant"] for t in payload["tenants"]} == {"clean", "faulty"}


def test_render_load_report_section(service_db, qgen):
    from repro.runner import render_load_report

    service = QueryService(service_db, workers=2)
    tenants = [TenantProfile("solo", templates=(42,),
                             sla=SLATarget(p99_s=30.0))]
    report = LoadDriver(service, qgen, tenants,
                        [Phase("steady", duration_s=1.0, qps=3.0)],
                        seed=5).run()
    service.close()
    rendered = render_load_report(report.as_dict())
    assert "query service load run" in rendered
    assert "steady 3 qps x 1s" in rendered
    assert "solo" in rendered
    assert "SLA verdict" in rendered
    assert "PASS" in rendered
