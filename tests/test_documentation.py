"""Documentation coverage: every public module, class and function in
the package carries a docstring (deliverable e: 'doc comments on every
public item')."""

import importlib
import inspect
import pkgutil

import repro

IGNORED_MODULES = {"repro.qgen.qualification_answers"}


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in IGNORED_MODULES:
            continue
        modules.append(importlib.import_module(info.name))
    return modules


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _public_modules() if not (m.__doc__ or "").strip()]
    assert missing == []


def test_every_public_class_has_docstring():
    missing = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if not _is_public(name) or not inspect.isclass(obj):
                continue
            if obj.__module__ != module.__name__:
                continue  # re-export
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_every_public_function_has_docstring():
    missing = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if not _is_public(name) or not inspect.isfunction(obj):
                continue
            if obj.__module__ != module.__name__:
                continue
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert missing == []


def test_repository_documents_exist():
    import os

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = os.path.join(root, doc)
        assert os.path.exists(path), doc
        with open(path, encoding="utf-8") as handle:
            assert len(handle.read()) > 1000, doc
