"""Shared fixtures.

Generation and loading are expensive relative to individual tests, so a
small model-scale database (sf = 0.004) is built once per session and
shared. Tests that mutate data build their own copies.
"""

from __future__ import annotations

import pytest

from repro.dsdgen import DsdGen, build_database
from repro.qgen import QGen, build_catalog

SESSION_SF = 0.004
SESSION_SEED = 19620718


@pytest.fixture(scope="session")
def generated_data():
    return DsdGen(SESSION_SF, seed=SESSION_SEED).generate()


@pytest.fixture(scope="session")
def loaded_db(generated_data):
    db, _ = build_database(SESSION_SF, data=generated_data)
    return db


@pytest.fixture(scope="session")
def qgen(generated_data):
    return QGen(generated_data.context, build_catalog())


@pytest.fixture(scope="session")
def diff_harness(loaded_db):
    """Session-wide differential harness: engine + mirrored SQLite oracle."""
    from repro.difftest import DiffHarness

    return DiffHarness(loaded_db)


@pytest.fixture()
def fresh_db(generated_data):
    """A private database copy for tests that mutate data."""
    db, _ = build_database(SESSION_SF, data=generated_data)
    return db


def make_simple_db():
    """A tiny hand-built database used by engine unit tests."""
    from repro.engine import ColumnDef, Database, TableSchema, decimal, integer, varchar

    db = Database()
    sales = db.create_table(
        TableSchema(
            "sales",
            [
                ColumnDef("item_sk", integer()),
                ColumnDef("cust_sk", integer()),
                ColumnDef("price", decimal()),
                ColumnDef("qty", integer()),
            ],
        )
    )
    item = db.create_table(
        TableSchema(
            "item",
            [
                ColumnDef("i_sk", integer(), nullable=False, primary_key=True),
                ColumnDef("i_brand", varchar(20)),
                ColumnDef("i_class", varchar(20)),
            ],
        )
    )
    sales.append_rows(
        [
            [1, 10, 10.0, 2],
            [2, 11, 20.0, 1],
            [1, 10, 15.0, 3],
            [3, 12, 5.0, 1],
            [2, None, 25.0, 2],
            [None, 10, 7.5, 4],
        ]
    )
    item.append_rows(
        [
            [1, "b1", "c1"],
            [2, "b2", "c1"],
            [3, "b3", "c2"],
            [4, "b4", "c3"],
        ]
    )
    db.gather_stats()
    return db


@pytest.fixture()
def simple_db():
    return make_simple_db()
