"""Vector runtime tests: three-valued logic, coercion, null handling."""

import numpy as np
import pytest

from repro.engine.errors import TypeError_
from repro.engine.types import Kind
from repro.engine.vector import Vector


def bools(*values):
    return Vector.from_values(Kind.BOOL, list(values))


class TestConstruction:
    def test_from_values_nulls(self):
        v = Vector.from_values(Kind.INT, [1, None, 3])
        assert v.to_list() == [1, None, 3]
        assert v.null.tolist() == [False, True, False]

    def test_constant(self):
        v = Vector.constant(Kind.STR, "x", 3)
        assert v.to_list() == ["x", "x", "x"]

    def test_constant_none_is_nulls(self):
        v = Vector.constant(Kind.FLOAT, None, 2)
        assert v.to_list() == [None, None]

    def test_value_types(self):
        v = Vector.from_values(Kind.FLOAT, [1.5])
        assert isinstance(v.value(0), float)
        v = Vector.from_values(Kind.INT, [7])
        assert isinstance(v.value(0), int)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Vector(Kind.INT, np.array([1, 2]), np.array([False]))

    def test_take_and_filter(self):
        v = Vector.from_values(Kind.INT, [10, 20, 30])
        assert v.take(np.array([2, 0])).to_list() == [30, 10]
        assert v.filter(np.array([True, False, True])).to_list() == [10, 30]

    def test_concat(self):
        a = Vector.from_values(Kind.INT, [1])
        b = Vector.from_values(Kind.INT, [None, 2])
        assert Vector.concat([a, b]).to_list() == [1, None, 2]

    def test_concat_kind_mismatch(self):
        with pytest.raises(TypeError_):
            Vector.concat([
                Vector.from_values(Kind.INT, [1]),
                Vector.from_values(Kind.STR, ["x"]),
            ])


class TestComparisons:
    def test_eq_with_null_propagates(self):
        a = Vector.from_values(Kind.INT, [1, None, 3])
        b = Vector.from_values(Kind.INT, [1, 2, 4])
        r = a.compare("=", b)
        assert r.to_list() == [True, None, False]

    @pytest.mark.parametrize("op,expected", [
        ("<", [True, False, False]),
        ("<=", [True, True, False]),
        (">", [False, False, True]),
        (">=", [False, True, True]),
        ("<>", [True, False, True]),
    ])
    def test_ops(self, op, expected):
        a = Vector.from_values(Kind.INT, [1, 2, 3])
        b = Vector.from_values(Kind.INT, [2, 2, 2])
        assert a.compare(op, b).to_list() == expected

    def test_string_comparison(self):
        a = Vector.from_values(Kind.STR, ["a", "b"])
        b = Vector.from_values(Kind.STR, ["b", "b"])
        assert a.compare("<", b).to_list() == [True, False]

    def test_int_float_coercion(self):
        a = Vector.from_values(Kind.INT, [1])
        b = Vector.from_values(Kind.FLOAT, [1.0])
        assert a.compare("=", b).to_list() == [True]

    def test_str_int_comparison_rejected(self):
        a = Vector.from_values(Kind.STR, ["1"])
        b = Vector.from_values(Kind.INT, [1])
        with pytest.raises(TypeError_):
            a.compare("=", b)


class TestArithmetic:
    def test_add(self):
        a = Vector.from_values(Kind.INT, [1, 2])
        b = Vector.from_values(Kind.INT, [10, 20])
        assert a.arith("+", b).to_list() == [11, 22]

    def test_division_is_float(self):
        a = Vector.from_values(Kind.INT, [7])
        b = Vector.from_values(Kind.INT, [2])
        r = a.arith("/", b)
        assert r.kind is Kind.FLOAT
        assert r.to_list() == [3.5]

    def test_division_by_zero_is_null(self):
        a = Vector.from_values(Kind.INT, [7])
        b = Vector.from_values(Kind.INT, [0])
        assert a.arith("/", b).to_list() == [None]

    def test_null_propagation(self):
        a = Vector.from_values(Kind.INT, [1, None])
        b = Vector.from_values(Kind.INT, [None, 2])
        assert a.arith("*", b).to_list() == [None, None]

    def test_string_concat(self):
        a = Vector.from_values(Kind.STR, ["foo", None])
        b = Vector.from_values(Kind.STR, ["bar", "x"])
        assert a.arith("||", b).to_list() == ["foobar", None]

    def test_string_addition_rejected(self):
        a = Vector.from_values(Kind.STR, ["x"])
        with pytest.raises(TypeError_):
            a.arith("+", a)

    def test_negate(self):
        v = Vector.from_values(Kind.INT, [1, None, -3])
        assert v.negate().to_list() == [-1, None, 3]

    def test_negate_string_rejected(self):
        with pytest.raises(TypeError_):
            Vector.from_values(Kind.STR, ["x"]).negate()


class TestKleeneLogic:
    """SQL three-valued logic tables."""

    def test_and_truth_table(self):
        a = bools(True, True, True, False, False, False, None, None, None)
        b = bools(True, False, None, True, False, None, True, False, None)
        assert a.and_(b).to_list() == [
            True, False, None, False, False, False, None, False, None,
        ]

    def test_or_truth_table(self):
        a = bools(True, True, True, False, False, False, None, None, None)
        b = bools(True, False, None, True, False, None, True, False, None)
        assert a.or_(b).to_list() == [
            True, True, True, True, False, None, True, None, None,
        ]

    def test_not_truth_table(self):
        a = bools(True, False, None)
        assert a.not_().to_list() == [False, True, None]

    def test_is_true_mask(self):
        a = bools(True, False, None)
        assert a.is_true().tolist() == [True, False, False]

    def test_boolean_op_requires_bool(self):
        with pytest.raises(TypeError_):
            Vector.from_values(Kind.INT, [1]).not_()
