"""Grammar round-trip property: rendering a random expression tree to
SQL and parsing it back yields the same tree.

The renderer is the one the materialized-view machinery uses for its
storage queries, so this property also guards the view-definition
pipeline.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.matview import _render
from repro.engine.sql import ast_nodes as A
from repro.engine.sql.parser import parse_query

settings.register_profile("roundtrip", deadline=None, max_examples=120)
settings.load_profile("roundtrip")

_identifiers = st.sampled_from(["col_a", "col_b", "price", "qty", "d_year"])
_tables = st.sampled_from(["t1", "t2", "sales"])

_literals = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6).map(A.Literal),
    st.sampled_from(["x", "it's", "Home", ""]).map(A.Literal),
    st.just(A.Literal(None)),
    st.booleans().map(A.Literal),
)

_columns = st.one_of(
    _identifiers.map(A.ColumnRef),
    st.tuples(_identifiers, _tables).map(lambda p: A.ColumnRef(*p)),
)

_atoms = st.one_of(_literals, _columns)


def _binary(children):
    ops = st.sampled_from(["+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">="])
    return st.tuples(ops, children, children).map(
        lambda t: A.BinaryOp(t[0], t[1], t[2])
    )


def _boolean(children):
    return st.tuples(st.sampled_from(["AND", "OR"]), children, children).map(
        lambda t: A.BinaryOp(t[0], t[1], t[2])
    )


def _between(children):
    return st.tuples(children, children, children, st.booleans()).map(
        lambda t: A.Between(t[0], t[1], t[2], t[3])
    )


def _in_list(children):
    return st.tuples(
        children, st.lists(children, min_size=1, max_size=3), st.booleans()
    ).map(lambda t: A.InList(t[0], tuple(t[1]), t[2]))


def _is_null(children):
    return st.tuples(children, st.booleans()).map(lambda t: A.IsNull(t[0], t[1]))


def _like(children):
    return st.tuples(
        _columns, st.sampled_from(["a%", "%b", "_x_", "100%'s"]), st.booleans()
    ).map(lambda t: A.Like(t[0], t[1], t[2]))


def _case(children):
    return st.tuples(
        st.lists(st.tuples(children, children), min_size=1, max_size=2),
        st.one_of(st.none(), children),
    ).map(lambda t: A.Case(tuple(t[0]), t[1]))


def _func(children):
    return st.tuples(
        st.sampled_from(["COALESCE", "ABS", "UPPER", "LOWER"]), children
    ).map(lambda t: A.FuncCall(t[0], (t[1],)))


_expr = st.recursive(
    _atoms,
    lambda children: st.one_of(
        _binary(children),
        _boolean(children),
        _between(children),
        _in_list(children),
        _is_null(children),
        _like(children),
        _case(children),
        _func(children),
    ),
    max_leaves=12,
)


@given(_expr)
def test_render_parse_round_trip(expr):
    sql = f"SELECT 1 FROM t WHERE {_render(expr)}"
    parsed = parse_query(sql).body.where
    assert parsed == expr


@given(_expr)
def test_render_is_stable(expr):
    assert _render(expr) == _render(expr)


@given(st.lists(_expr, min_size=1, max_size=4))
def test_select_list_round_trip(exprs):
    sql = "SELECT " + ", ".join(f"({_render(e)})" for e in exprs) + " FROM t"
    body = parse_query(sql).body
    assert tuple(item.expr for item in body.items) == tuple(exprs)
