"""Join operator correctness: hash fast path, tuple keys, outer joins,
residual predicates, null keys."""

import pytest

from repro.engine import ColumnDef, Database, TableSchema, integer, varchar


def make_db():
    db = Database()
    left = db.create_table(TableSchema("l", [
        ColumnDef("lk", integer()), ColumnDef("lv", varchar(10)),
    ]))
    right = db.create_table(TableSchema("r", [
        ColumnDef("rk", integer()), ColumnDef("rv", varchar(10)),
    ]))
    left.append_rows([[1, "a"], [2, "b"], [2, "b2"], [3, "c"], [None, "n"]])
    right.append_rows([[2, "x"], [2, "y"], [4, "z"], [None, "rn"]])
    return db


@pytest.fixture()
def db():
    return make_db()


def rows(db, sql):
    return db.execute(sql).rows()


class TestInnerJoin:
    def test_duplicates_multiply(self, db):
        out = rows(db, "SELECT lv, rv FROM l JOIN r ON lk = rk ORDER BY lv, rv")
        assert out == [("b", "x"), ("b", "y"), ("b2", "x"), ("b2", "y")]

    def test_null_keys_never_match(self, db):
        out = rows(db, "SELECT COUNT(*) FROM l JOIN r ON lk = rk")
        assert out == [(4,)]

    def test_comma_join_with_where(self, db):
        out = rows(db, "SELECT COUNT(*) FROM l, r WHERE lk = rk")
        assert out == [(4,)]

    def test_composite_key(self, db):
        # join on (lk, lv) vs (rk, rv): build a matching pair first
        db.execute("INSERT INTO r VALUES (2, 'b')")
        out = rows(db, "SELECT COUNT(*) FROM l JOIN r ON lk = rk AND lv = rv")
        assert out == [(1,)]

    def test_expression_key(self, db):
        out = rows(db, "SELECT COUNT(*) FROM l JOIN r ON lk + 2 = rk")
        assert out == [(2,)]  # both lk=2 rows match rk=4

    def test_residual_non_equi(self, db):
        out = rows(db, "SELECT lv, rv FROM l JOIN r ON lk = rk AND rv <> 'x' ORDER BY lv")
        assert out == [("b", "y"), ("b2", "y")]

    def test_pure_inequality_join(self, db):
        out = rows(db, "SELECT COUNT(*) FROM l JOIN r ON lk < rk")
        # lk 1,2,2,3 each < rk 4; lk 1 < rk 2,2
        assert out == [(6,)]

    def test_cross_join(self, db):
        assert rows(db, "SELECT COUNT(*) FROM l CROSS JOIN r") == [(20,)]


class TestOuterJoins:
    def test_left_join_preserves_unmatched(self, db):
        out = rows(db, "SELECT lv, rv FROM l LEFT JOIN r ON lk = rk ORDER BY lv NULLS LAST")
        by_lv = {}
        for lv, rv in out:
            by_lv.setdefault(lv, []).append(rv)
        assert by_lv["a"] == [None]
        assert by_lv["c"] == [None]
        assert by_lv["n"] == [None]
        assert sorted(by_lv["b"]) == ["x", "y"]

    def test_left_join_residual_applies_before_padding(self, db):
        # condition never true -> every left row padded exactly once
        out = rows(db, "SELECT COUNT(*) FROM l LEFT JOIN r ON lk = rk AND rv = 'nope'")
        assert out == [(5,)]

    def test_right_join(self, db):
        out = rows(db, "SELECT lv, rv FROM l RIGHT JOIN r ON lk = rk ORDER BY rv")
        rvs = [rv for _, rv in out]
        assert "z" in rvs and "rn" in rvs
        assert len(out) == 6  # 4 matches + 2 unmatched right rows

    def test_full_join(self, db):
        out = rows(db, "SELECT lv, rv FROM l FULL OUTER JOIN r ON lk = rk")
        assert len(out) == 4 + 3 + 2  # matches + unmatched left + unmatched right

    def test_left_join_counts_with_aggregation(self, db):
        out = rows(db, """
            SELECT lv, COUNT(rv) FROM l LEFT JOIN r ON lk = rk
            GROUP BY lv ORDER BY lv
        """)
        assert ("a", 0) in out and ("b", 2) in out


class TestMultiJoin:
    def test_three_way(self, simple_db):
        out = rows(simple_db, """
            SELECT i_class, SUM(price * qty) rev
            FROM sales, item
            WHERE item_sk = i_sk
            GROUP BY i_class ORDER BY rev DESC
        """)
        # item 1: 10*2 + 15*3 = 65; item 2: 20*1 + 25*2 = 70 -> c1 = 135
        assert out == [("c1", 135.0), ("c2", 5.0)]

    def test_self_join(self, db):
        out = rows(db, "SELECT COUNT(*) FROM r a, r b WHERE a.rk = b.rk")
        assert out == [(5,)]  # 2x2 for rk=2 plus 1 for rk=4

    def test_join_cte_to_base(self, db):
        out = rows(db, """
            WITH agg AS (SELECT rk, COUNT(*) c FROM r GROUP BY rk)
            SELECT lv, c FROM l JOIN agg ON lk = rk ORDER BY lv
        """)
        assert out == [("b", 2), ("b2", 2)]
