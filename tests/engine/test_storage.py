"""Storage-layer tests: dictionary encoding, mutation, listeners."""

import numpy as np
import pytest

from repro.engine import ColumnDef, ConstraintError, TableSchema, decimal, integer, varchar
from repro.engine.errors import ExecutionError
from repro.engine.storage import StoredColumn, Table
from repro.engine.types import Kind
from repro.engine.vector import Vector


def make_table():
    return Table(TableSchema("t", [
        ColumnDef("a", integer(), nullable=False),
        ColumnDef("b", varchar(10)),
        ColumnDef("c", decimal()),
    ]))


class TestStoredColumn:
    def test_dictionary_encoding_dedupes(self):
        col = StoredColumn(ColumnDef("s", varchar(10)))
        col.append_values(["x", "y", "x", "x", None])
        assert len(col) == 5
        assert col.distinct_count() == 2
        assert col._values == ["x", "y"]  # two dictionary entries only

    def test_string_scan_round_trip(self):
        col = StoredColumn(ColumnDef("s", varchar(10)))
        col.append_values(["a", None, "b"])
        assert col.scan().to_list() == ["a", None, "b"]

    def test_numeric_scan(self):
        col = StoredColumn(ColumnDef("n", integer()))
        col.append_values([3, None, -1])
        assert col.scan().to_list() == [3, None, -1]

    def test_value_accessor(self):
        col = StoredColumn(ColumnDef("s", varchar(10)))
        col.append_values(["q", None])
        assert col.value(0) == "q"
        assert col.value(1) is None

    def test_append_vector(self):
        col = StoredColumn(ColumnDef("n", integer()))
        col.append_vector(Vector.from_values(Kind.INT, [1, None]))
        assert col.scan().to_list() == [1, None]

    def test_append_vector_kind_mismatch(self):
        col = StoredColumn(ColumnDef("n", integer()))
        with pytest.raises(ExecutionError):
            col.append_vector(Vector.from_values(Kind.STR, ["x"]))

    def test_keep_filters_rows(self):
        col = StoredColumn(ColumnDef("n", integer()))
        col.append_values([1, 2, 3])
        col.keep(np.array([True, False, True]))
        assert col.scan().to_list() == [1, 3]

    def test_set_value_string_and_null(self):
        col = StoredColumn(ColumnDef("s", varchar(10)))
        col.append_values(["a", "b"])
        col.set_value(0, "z")
        col.set_value(1, None)
        assert col.scan().to_list() == ["z", None]

    def test_distinct_count_numeric(self):
        col = StoredColumn(ColumnDef("n", integer()))
        col.append_values([1, 1, 2, None])
        assert col.distinct_count() == 2


class TestDictionaryHygiene:
    """Regression tests: null-slot payloads must never enter the
    dictionary, and ``keep`` must not leave it full of dead entries."""

    def test_append_vector_ignores_null_slot_payload(self):
        # a vector's null slots legally carry arbitrary fill payloads;
        # appending used to dictionary-encode them before masking
        col = StoredColumn(ColumnDef("s", varchar(20)))
        vec = Vector(
            Kind.STR,
            np.array(["a", "GARBAGE-FILL", "b"], dtype=object),
            np.array([False, True, False]),
        )
        col.append_vector(vec)
        assert col.scan().to_list() == ["a", None, "b"]
        assert col._values == ["a", "b"]
        assert "GARBAGE-FILL" not in col._value_ids

    def test_append_vector_all_null(self):
        col = StoredColumn(ColumnDef("s", varchar(20)))
        vec = Vector(
            Kind.STR,
            np.array(["junk", "junk"], dtype=object),
            np.array([True, True]),
        )
        col.append_vector(vec)
        assert col.scan().to_list() == [None, None]
        assert col._values == []

    def test_keep_compacts_dead_entries(self):
        col = StoredColumn(ColumnDef("s", varchar(10)))
        col.append_values([f"v{i:03d}" for i in range(100)])
        # drop 90% of rows: the dead fraction crosses the auto-compact
        # threshold, so the dictionary must shrink with the data
        col.keep(np.arange(100) < 10)
        assert len(col._values) == 10
        assert col.scan().to_list() == [f"v{i:03d}" for i in range(10)]

    def test_keep_below_threshold_keeps_dictionary(self):
        col = StoredColumn(ColumnDef("s", varchar(10)))
        col.append_values([f"v{i:03d}" for i in range(10)])
        col.keep(np.arange(10) < 9)  # 10% dead: below threshold
        assert len(col._values) == 10
        assert col.compact_dictionary() == 1
        assert len(col._values) == 9

    def test_compact_preserves_scan_and_distincts(self):
        col = StoredColumn(ColumnDef("s", varchar(10)))
        col.append_values(["a", "b", "c", "b", None, "d"])
        col.keep(np.array([False, True, False, True, True, True]))
        before = col.scan().to_list()
        removed = col.compact_dictionary()
        assert removed == 2  # "a" and "c" were dead
        assert col.scan().to_list() == before == ["b", "b", None, "d"]
        assert col.distinct_count() == 2
        assert col.value(3) == "d"

    def test_compact_noop_when_nothing_dead(self):
        col = StoredColumn(ColumnDef("s", varchar(10)))
        col.append_values(["a", "b"])
        col.dirty = False
        assert col.compact_dictionary() == 0
        assert not col.dirty  # a no-op must not dirty a clean column


class TestTable:
    def test_append_and_row(self):
        t = make_table()
        t.append_rows([[1, "x", 0.5]])
        assert t.row(0) == {"a": 1, "b": "x", "c": 0.5}

    def test_num_rows(self):
        t = make_table()
        assert t.num_rows == 0
        t.append_rows([[1, None, None], [2, "y", 1.0]])
        assert t.num_rows == 2

    def test_arity_check(self):
        t = make_table()
        with pytest.raises(ExecutionError):
            t.append_rows([[1, "x"]])

    def test_not_null_enforced(self):
        t = make_table()
        with pytest.raises(ConstraintError):
            t.append_rows([[None, "x", 0.1]])

    def test_append_columns(self):
        t = make_table()
        t.append_columns({
            "a": Vector.from_values(Kind.INT, [1, 2]),
            "b": Vector.from_values(Kind.STR, ["p", None]),
            "c": Vector.from_values(Kind.FLOAT, [0.0, 9.9]),
        })
        assert t.num_rows == 2

    def test_append_columns_missing_column(self):
        t = make_table()
        with pytest.raises(ExecutionError):
            t.append_columns({"a": Vector.from_values(Kind.INT, [1])})

    def test_append_columns_ragged(self):
        t = make_table()
        with pytest.raises(ExecutionError):
            t.append_columns({
                "a": Vector.from_values(Kind.INT, [1]),
                "b": Vector.from_values(Kind.STR, ["p", "q"]),
                "c": Vector.from_values(Kind.FLOAT, [0.0]),
            })

    def test_delete_where(self):
        t = make_table()
        t.append_rows([[1, "x", 0.1], [2, "y", 0.2], [3, "z", 0.3]])
        removed = t.delete_where(np.array([False, True, True]))
        assert removed == 2
        assert t.num_rows == 1

    def test_update_rows(self):
        t = make_table()
        t.append_rows([[1, "x", 0.1], [2, "y", 0.2]])
        t.update_rows(np.array([1]), {"b": ["new"], "c": [9.0]})
        assert t.row(1) == {"a": 2, "b": "new", "c": 9.0}

    def test_mutation_listener_fires(self):
        t = make_table()
        events = []
        t.register_mutation_listener(lambda: events.append(1))
        t.append_rows([[1, "x", 0.1]])
        t.delete_where(np.array([True]))
        assert len(events) == 2

    def test_delete_nothing_no_event(self):
        t = make_table()
        t.append_rows([[1, "x", 0.1]])
        events = []
        t.register_mutation_listener(lambda: events.append(1))
        t.delete_where(np.array([False]))
        assert events == []
