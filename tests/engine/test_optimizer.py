"""Optimizer rewrites: pushdown, join reordering, star transformation.

Correctness assertions run every query with all optimizations on and
off, demanding identical results; plan-shape assertions check that the
rewrites actually fired.
"""

import pytest

from repro.engine import Database, OptimizerSettings
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.sql.parser import parse_query
from repro.engine import plan as P
from tests.conftest import make_simple_db


def plan_for(db, sql, settings=None):
    planner = Planner(db.catalog)
    node = planner.plan_query(parse_query(sql))
    return Optimizer(db.catalog, settings or OptimizerSettings()).optimize(node)


def find_nodes(node, cls):
    found = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, cls):
            found.append(current)
        stack.extend(current.children())
    return found


class TestPushdown:
    def test_filter_lands_in_scan(self, simple_db):
        plan = plan_for(simple_db, "SELECT price FROM sales WHERE qty > 2")
        scans = find_nodes(plan, P.Scan)
        assert any(s.pushed_filters for s in scans)
        assert not find_nodes(plan, P.Filter)

    def test_join_filter_splits_per_side(self, simple_db):
        plan = plan_for(simple_db, """
            SELECT price FROM sales, item
            WHERE item_sk = i_sk AND qty > 2 AND i_class = 'c1'
        """)
        scans = {s.table: s for s in find_nodes(plan, P.Scan)}
        assert scans["sales"].pushed_filters
        assert scans["item"].pushed_filters

    def test_cross_join_becomes_hash_join(self, simple_db):
        plan = plan_for(simple_db, "SELECT 1 FROM sales, item WHERE item_sk = i_sk")
        joins = find_nodes(plan, P.Join)
        assert joins and all(j.equi_keys for j in joins)

    def test_pushdown_disabled_keeps_filter(self, simple_db):
        settings = OptimizerSettings(enable_pushdown=False, enable_join_reorder=False,
                                     enable_star_transformation=False)
        plan = plan_for(simple_db, "SELECT price FROM sales WHERE qty > 2", settings)
        assert find_nodes(plan, P.Filter)

    def test_subquery_predicates_not_pushed(self, simple_db):
        plan = plan_for(simple_db,
                        "SELECT price FROM sales WHERE qty > (SELECT AVG(qty) FROM sales)")
        # the subquery conjunct must remain a Filter above the scan
        assert find_nodes(plan, P.Filter)

    def test_results_identical_with_and_without(self, simple_db):
        sql = """
            SELECT i_class, SUM(price) FROM sales, item
            WHERE item_sk = i_sk AND qty >= 2 GROUP BY i_class ORDER BY 1
        """
        on = simple_db.execute(sql).rows()
        off_db = make_simple_db()
        off_db.optimizer_settings = OptimizerSettings(
            enable_pushdown=False, enable_join_reorder=False,
            enable_star_transformation=False,
        )
        assert off_db.execute(sql).rows() == on


class TestJoinReorder:
    def test_multiway_join_still_correct(self, loaded_db):
        sql = """
            SELECT i_category, COUNT(*) c FROM store_sales, item, date_dim
            WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
              AND d_year = 1998
            GROUP BY i_category ORDER BY i_category
        """
        reference = loaded_db.execute(sql).rows()
        settings = OptimizerSettings(enable_join_reorder=False)
        plan_on = plan_for(loaded_db, sql)
        plan_off = plan_for(loaded_db, sql, settings)
        assert plan_on.explain() != plan_off.explain() or True  # shapes may differ
        saved = loaded_db.optimizer_settings
        loaded_db.optimizer_settings = settings
        try:
            assert loaded_db.execute(sql).rows() == reference
        finally:
            loaded_db.optimizer_settings = saved

    def test_reorder_produces_left_deep_inner_joins(self, loaded_db):
        plan = plan_for(loaded_db, """
            SELECT COUNT(*) FROM store_sales, item, date_dim, customer
            WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
              AND ss_customer_sk = c_customer_sk AND d_year = 1998
        """)
        joins = find_nodes(plan, P.Join)
        assert len(joins) == 3
        assert all(j.equi_keys for j in joins), [j.label() for j in joins]

    def test_no_cartesian_when_keys_exist(self, loaded_db):
        plan = plan_for(loaded_db, """
            SELECT COUNT(*) FROM store_sales, item
            WHERE ss_item_sk = i_item_sk
        """)
        assert all(j.kind != "cross" for j in find_nodes(plan, P.Join))


class TestStarTransformation:
    @pytest.fixture()
    def star_db(self, loaded_db):
        loaded_db.create_index("catalog_sales", "cs_sold_date_sk", "bitmap")
        loaded_db.create_index("catalog_sales", "cs_item_sk", "bitmap")
        return loaded_db

    SQL = """
        SELECT i_brand, SUM(cs_ext_sales_price) rev
        FROM catalog_sales, item, date_dim
        WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
          AND d_year = 1998 AND d_moy = 11 AND i_manager_id = 1
        GROUP BY i_brand ORDER BY rev DESC
    """

    def test_star_filter_in_plan(self, star_db):
        settings = OptimizerSettings(star_fact_threshold=100)
        plan = plan_for(star_db, self.SQL, settings)
        stars = find_nodes(plan, P.StarFilter)
        assert stars, plan.explain()

    def test_star_results_match_plain(self, star_db):
        saved = star_db.optimizer_settings
        star_db.optimizer_settings = OptimizerSettings(star_fact_threshold=100)
        with_star = star_db.execute(self.SQL).rows()
        star_db.optimizer_settings = OptimizerSettings(enable_star_transformation=False)
        without = star_db.execute(self.SQL).rows()
        star_db.optimizer_settings = saved
        assert with_star == without

    def test_star_requires_bitmap_index(self, loaded_db):
        settings = OptimizerSettings(star_fact_threshold=100)
        plan = plan_for(loaded_db, """
            SELECT COUNT(*) FROM web_sales, date_dim
            WHERE ws_sold_date_sk = d_date_sk AND d_year = 1998
        """, settings)
        assert not find_nodes(plan, P.StarFilter)

    def test_star_skips_small_facts(self, star_db):
        settings = OptimizerSettings(star_fact_threshold=10**9)
        plan = plan_for(star_db, self.SQL, settings)
        assert not find_nodes(plan, P.StarFilter)


class TestExplain:
    def test_explain_renders_tree(self, simple_db):
        text = simple_db.explain("SELECT item_sk FROM sales WHERE qty > 1 ORDER BY 1")
        assert "Scan(sales" in text
        assert "Sort" in text

    def test_explain_rejects_dml(self, simple_db):
        from repro.engine.errors import PlanningError

        with pytest.raises(PlanningError):
            simple_db.explain("DELETE FROM sales")
