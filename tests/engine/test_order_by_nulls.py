"""ORDER BY NULL placement: engine defaults and explicit FIRST/LAST.

The engine treats NULL as the *largest* value: ascending sorts put
NULLs last, descending sorts put them first.  (SQLite's bare default is
the opposite, which is why the oracle renderer always spells the
placement out — verified differentially at the end.)
"""

import pytest

from repro.difftest import DiffHarness
from tests.conftest import make_simple_db


@pytest.fixture(scope="module")
def db():
    return make_simple_db()


def column(db, sql):
    return [row[0] for row in db.execute(sql).rows()]


class TestDefaults:
    def test_ascending_puts_nulls_last(self, db):
        out = column(db, "SELECT item_sk FROM sales ORDER BY item_sk")
        assert out == [1, 1, 2, 2, 3, None]

    def test_descending_puts_nulls_first(self, db):
        out = column(db, "SELECT item_sk FROM sales ORDER BY item_sk DESC")
        assert out == [None, 3, 2, 2, 1, 1]


class TestExplicitPlacement:
    def test_asc_nulls_first(self, db):
        out = column(db, "SELECT item_sk FROM sales ORDER BY item_sk ASC NULLS FIRST")
        assert out == [None, 1, 1, 2, 2, 3]

    def test_asc_nulls_last(self, db):
        out = column(db, "SELECT item_sk FROM sales ORDER BY item_sk ASC NULLS LAST")
        assert out == [1, 1, 2, 2, 3, None]

    def test_desc_nulls_first(self, db):
        out = column(db, "SELECT item_sk FROM sales ORDER BY item_sk DESC NULLS FIRST")
        assert out == [None, 3, 2, 2, 1, 1]

    def test_desc_nulls_last(self, db):
        out = column(db, "SELECT item_sk FROM sales ORDER BY item_sk DESC NULLS LAST")
        assert out == [3, 2, 2, 1, 1, None]

    def test_secondary_key_breaks_ties(self, db):
        out = db.execute(
            "SELECT item_sk, price FROM sales "
            "ORDER BY item_sk NULLS FIRST, price DESC"
        ).rows()
        assert out[0] == (None, 7.5)
        assert out[1] == (1, 15.0)


class TestAgainstOracle:
    """Every placement variant must agree with SQLite once the
    translation makes the engine's defaults explicit."""

    @pytest.fixture(scope="class")
    def harness(self):
        return DiffHarness(make_simple_db())

    @pytest.mark.parametrize("order", [
        "cust_sk",
        "cust_sk DESC",
        "cust_sk ASC NULLS FIRST",
        "cust_sk ASC NULLS LAST",
        "cust_sk DESC NULLS FIRST",
        "cust_sk DESC NULLS LAST",
    ])
    def test_null_placement_matches_oracle(self, harness, order):
        sql = (
            "SELECT cust_sk AS k, item_sk AS i, price AS p FROM sales "
            f"ORDER BY {order}, item_sk NULLS LAST, price"
        )
        outcome = harness.check_sql(sql)
        assert outcome.passed, f"{outcome.status}: {outcome.detail}"

    def test_limit_cuts_after_placement(self, harness):
        outcome = harness.check_sql(
            "SELECT cust_sk AS k, price AS p FROM sales "
            "ORDER BY cust_sk NULLS FIRST, price LIMIT 2"
        )
        assert outcome.passed, f"{outcome.status}: {outcome.detail}"
