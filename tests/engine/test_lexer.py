"""Tokenizer unit tests."""

import pytest

from repro.engine.errors import SqlSyntaxError
from repro.engine.sql.lexer import Token, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_uppercase(self):
        assert kinds("select from where") == [
            ("KEYWORD", "SELECT"), ("KEYWORD", "FROM"), ("KEYWORD", "WHERE"),
        ]

    def test_identifiers_lowercase(self):
        assert kinds("Foo_Bar") == [("IDENT", "foo_bar")]

    def test_mixed_case_keyword(self):
        assert kinds("SeLeCt") == [("KEYWORD", "SELECT")]

    def test_integer_literal(self):
        assert kinds("42") == [("NUMBER", "42")]

    def test_decimal_literal(self):
        assert kinds("3.14") == [("NUMBER", "3.14")]

    def test_number_then_dot_ident_not_swallowed(self):
        # "1." followed by a letter must not absorb the dot
        tokens = kinds("t1.col")
        assert tokens == [("IDENT", "t1"), ("OP", "."), ("IDENT", "col")]

    def test_string_literal(self):
        assert kinds("'hello'") == [("STRING", "hello")]

    def test_string_with_escaped_quote(self):
        assert kinds("'it''s'") == [("STRING", "it's")]

    def test_empty_string(self):
        assert kinds("''") == [("STRING", "")]

    def test_quoted_identifier(self):
        assert kinds('"Weird Name"') == [("IDENT", "weird name")]

    def test_eof_token_present(self):
        assert tokenize("x")[-1].type == "EOF"


class TestOperators:
    @pytest.mark.parametrize("op", ["<>", "!=", "<=", ">=", "||", "=", "<", ">",
                                    "+", "-", "*", "/", "(", ")", ",", ".", ";"])
    def test_single_operator(self, op):
        assert kinds(op) == [("OP", op)]

    def test_multichar_preferred(self):
        assert kinds("a<=b") == [("IDENT", "a"), ("OP", "<="), ("IDENT", "b")]

    def test_concat_not_two_pipes_misread(self):
        assert kinds("a || b")[1] == ("OP", "||")


class TestComments:
    def test_line_comment(self):
        assert kinds("select -- comment\n 1") == [("KEYWORD", "SELECT"), ("NUMBER", "1")]

    def test_block_comment(self):
        assert kinds("select /* multi\nline */ 1") == [
            ("KEYWORD", "SELECT"), ("NUMBER", "1"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select /* oops")


class TestErrorsAndPositions:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select 'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select #")

    def test_line_column_tracking(self):
        tokens = tokenize("select\n  foo")
        ident = tokens[1]
        assert (ident.line, ident.column) == (2, 3)

    def test_token_helpers(self):
        token = Token("KEYWORD", "SELECT", 1, 1)
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")
        op = Token("OP", "+", 1, 1)
        assert op.is_op("+", "-")
        assert not op.is_op("*")
