"""Window function correctness."""

import pytest

from repro.engine import ColumnDef, Database, TableSchema, decimal, integer, varchar


@pytest.fixture()
def db():
    db = Database()
    t = db.create_table(TableSchema("t", [
        ColumnDef("grp", varchar(2)),
        ColumnDef("ord", integer()),
        ColumnDef("val", decimal()),
    ]))
    t.append_rows([
        ["a", 1, 10.0],
        ["a", 2, 20.0],
        ["a", 2, 5.0],   # peer of the row above
        ["a", 3, 15.0],
        ["b", 1, 100.0],
        ["b", 2, None],
    ])
    return db


def rows(db, sql):
    return db.execute(sql).rows()


class TestPartitionAggregates:
    def test_sum_over_partition(self, db):
        out = rows(db, "SELECT grp, val, SUM(val) OVER (PARTITION BY grp) s FROM t ORDER BY grp, ord, val")
        assert out[0][2] == 50.0
        assert out[-1][2] == 100.0

    def test_count_star_over_partition(self, db):
        out = rows(db, "SELECT grp, COUNT(*) OVER (PARTITION BY grp) c FROM t ORDER BY grp")
        assert out[0][1] == 4 and out[-1][1] == 2

    def test_avg_skips_nulls(self, db):
        out = rows(db, "SELECT grp, AVG(val) OVER (PARTITION BY grp) a FROM t WHERE grp = 'b'")
        assert out[0][1] == 100.0

    def test_no_partition_is_whole_input(self, db):
        out = rows(db, "SELECT SUM(val) OVER () s FROM t LIMIT 1")
        assert out[0][0] == 150.0

    def test_sum_of_sums(self, db):
        out = rows(db, """
            SELECT grp, SUM(val) s, SUM(SUM(val)) OVER () total
            FROM t GROUP BY grp ORDER BY grp
        """)
        assert out == [("a", 50.0, 150.0), ("b", 100.0, 150.0)]


class TestRunningAggregates:
    def test_running_sum(self, db):
        out = rows(db, """
            SELECT grp, ord, val, SUM(val) OVER (PARTITION BY grp ORDER BY ord) r
            FROM t WHERE grp = 'a' ORDER BY ord, val
        """)
        # ord=2 rows are peers: both see 10+20+5 = 35
        running = [r[3] for r in out]
        assert running == [10.0, 35.0, 35.0, 50.0]

    def test_running_count(self, db):
        out = rows(db, """
            SELECT ord, COUNT(val) OVER (PARTITION BY grp ORDER BY ord) c
            FROM t WHERE grp = 'b' ORDER BY ord
        """)
        assert [r[1] for r in out] == [1, 1]  # NULL val not counted

    def test_running_min(self, db):
        out = rows(db, """
            SELECT ord, val, MIN(val) OVER (PARTITION BY grp ORDER BY ord) m
            FROM t WHERE grp = 'a' ORDER BY ord, val
        """)
        assert [r[2] for r in out] == [10.0, 5.0, 5.0, 5.0]


class TestRanking:
    def test_row_number(self, db):
        out = rows(db, """
            SELECT ord, val, ROW_NUMBER() OVER (PARTITION BY grp ORDER BY val) rn
            FROM t WHERE grp = 'a' ORDER BY rn
        """)
        assert [r[2] for r in out] == [1, 2, 3, 4]

    def test_rank_with_ties(self, db):
        out = rows(db, """
            SELECT ord, RANK() OVER (PARTITION BY grp ORDER BY ord) rk
            FROM t WHERE grp = 'a' ORDER BY ord, val
        """)
        assert [r[1] for r in out] == [1, 2, 2, 4]

    def test_dense_rank_with_ties(self, db):
        out = rows(db, """
            SELECT ord, DENSE_RANK() OVER (PARTITION BY grp ORDER BY ord) rk
            FROM t WHERE grp = 'a' ORDER BY ord, val
        """)
        assert [r[1] for r in out] == [1, 2, 2, 3]

    def test_rank_resets_per_partition(self, db):
        out = rows(db, """
            SELECT grp, RANK() OVER (PARTITION BY grp ORDER BY ord) rk
            FROM t ORDER BY grp, rk
        """)
        per_group = {}
        for grp, rk in out:
            per_group.setdefault(grp, []).append(rk)
        assert per_group["b"] == [1, 2]
        assert per_group["a"][0] == 1

    def test_rank_requires_order(self, db):
        from repro.engine.errors import ExecutionError

        with pytest.raises(ExecutionError):
            db.execute("SELECT RANK() OVER (PARTITION BY grp) FROM t")

    def test_window_over_empty_input(self, db):
        out = rows(db, "SELECT RANK() OVER (ORDER BY val) FROM t WHERE val > 999")
        assert out == []

    def test_paper_q20_shape(self, simple_db):
        out = rows(simple_db, """
            SELECT i_class, i_brand, SUM(price) rev,
                   SUM(price)*100/SUM(SUM(price)) OVER (PARTITION BY i_class) ratio
            FROM sales, item WHERE item_sk = i_sk
            GROUP BY i_class, i_brand ORDER BY i_class, i_brand
        """)
        ratios = {(r[0], r[1]): r[3] for r in out}
        assert ratios[("c1", "b1")] == pytest.approx(25.0 / 70.0 * 100)
        assert ratios[("c2", "b3")] == pytest.approx(100.0)
