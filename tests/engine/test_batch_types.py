"""Batch resolution rules and the type / date helpers."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.engine.batch import Batch
from repro.engine.errors import PlanningError
from repro.engine.types import (
    ColumnDef,
    Kind,
    TableSchema,
    char,
    date_to_epoch_days,
    decimal,
    epoch_days_to_date,
    format_date,
    identifier,
    integer,
    parse_date,
    varchar,
)
from repro.engine.vector import Vector


def make_batch():
    return Batch({
        "s.a": Vector.from_values(Kind.INT, [1, 2]),
        "s.b": Vector.from_values(Kind.STR, ["x", "y"]),
        "t.b": Vector.from_values(Kind.STR, ["p", "q"]),
        "alias": Vector.from_values(Kind.FLOAT, [0.5, 1.5]),
    })


class TestBatchResolution:
    def test_qualified_exact(self):
        b = make_batch()
        assert b.resolve_name("a", "s") == "s.a"

    def test_qualified_missing(self):
        with pytest.raises(PlanningError):
            make_batch().resolve_name("a", "t")

    def test_unqualified_bare_key_wins(self):
        assert make_batch().resolve_name("alias") == "alias"

    def test_unqualified_unique_suffix(self):
        assert make_batch().resolve_name("a") == "s.a"

    def test_unqualified_ambiguous(self):
        with pytest.raises(PlanningError):
            make_batch().resolve_name("b")

    def test_unknown(self):
        with pytest.raises(PlanningError):
            make_batch().resolve_name("zzz")

    def test_has_column(self):
        b = make_batch()
        assert b.has_column("a")
        assert not b.has_column("b")  # ambiguous counts as unresolvable
        assert not b.has_column("zzz")


class TestBatchOps:
    def test_take_filter_head(self):
        b = make_batch()
        assert b.take(np.array([1])).column("a", "s").to_list() == [2]
        assert b.filter(np.array([True, False])).num_rows == 1
        assert b.head(1, offset=1).column("a", "s").to_list() == [2]

    def test_rows(self):
        rows = make_batch().rows()
        assert rows[0] == (1, "x", "p", 0.5)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            Batch({
                "a": Vector.from_values(Kind.INT, [1]),
                "b": Vector.from_values(Kind.INT, [1, 2]),
            })

    def test_concat_schema_mismatch(self):
        a = Batch({"x": Vector.from_values(Kind.INT, [1])})
        b = Batch({"y": Vector.from_values(Kind.INT, [1])})
        with pytest.raises(ValueError):
            Batch.concat([a, b])

    def test_renamed(self):
        b = make_batch().renamed({"s.a": "n.a"})
        assert "n.a" in b.names


class TestTypes:
    def test_widths(self):
        assert identifier().width == 11
        assert char(16).width == 16
        assert decimal(7, 2).width == 9

    def test_table_schema_duplicate_column(self):
        with pytest.raises(ValueError):
            TableSchema("t", [ColumnDef("a", integer()), ColumnDef("a", integer())])

    def test_unknown_column_lookup(self):
        schema = TableSchema("t", [ColumnDef("a", integer())])
        with pytest.raises(KeyError):
            schema.column("b")

    def test_row_flat_width_includes_separators(self):
        schema = TableSchema("t", [ColumnDef("a", integer()), ColumnDef("b", char(4))])
        assert schema.row_flat_width() == 11 + 4 + 2

    def test_primary_and_foreign_keys(self):
        schema = TableSchema("t", [
            ColumnDef("id", identifier(), nullable=False, primary_key=True),
            ColumnDef("fk", identifier(), references="other"),
            ColumnDef("v", varchar(5)),
        ])
        assert schema.primary_key == ["id"]
        assert schema.foreign_keys == [("fk", "other")]


class TestDates:
    def test_round_trip_known(self):
        assert parse_date("1970-01-01") == 0
        assert format_date(0) == "1970-01-01"
        assert parse_date("2000-03-01") == date_to_epoch_days(dt.date(2000, 3, 1))

    def test_leap_day(self):
        days = parse_date("2000-02-29")
        assert format_date(days) == "2000-02-29"

    @given(st.integers(min_value=-30000, max_value=60000))
    def test_epoch_days_round_trip(self, days):
        assert date_to_epoch_days(epoch_days_to_date(days)) == days

    @given(st.dates(min_value=dt.date(1800, 1, 1), max_value=dt.date(2200, 1, 1)))
    def test_date_round_trip(self, value):
        assert epoch_days_to_date(date_to_epoch_days(value)) == value

    def test_bad_date_rejected(self):
        with pytest.raises(ValueError):
            parse_date("not-a-date")
