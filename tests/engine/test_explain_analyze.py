"""EXPLAIN / EXPLAIN ANALYZE over a seeded sf-model database.

Structural assertions only (node kinds, row counts, annotations) —
timings vary run to run, so no test depends on an elapsed value."""

import re

import pytest

from repro.engine import Database


def _q52(qgen) -> str:
    return qgen.generate(52, stream=0).statements[0]


class TestExplainAnalyzeText:
    def test_annotated_plan_tree_for_query52(self, loaded_db, qgen):
        text = loaded_db.explain_analyze(_q52(qgen))
        # the Figure 6 plan shape: limit/sort/aggregate over a join of
        # store_sales with date_dim and item
        assert "Limit" in text
        assert "Sort" in text
        assert "HashAggregate" in text
        assert "HashJoin" in text
        assert "Scan(store_sales" in text
        # every operator line carries measured rows and elapsed
        for line in text.splitlines():
            if line.strip().startswith(("Limit", "Sort", "Hash", "Scan")):
                assert re.search(r"rows=\d+ elapsed=\d+\.\d+ms", line), line
        assert re.search(r"Execution: rows=\d+ elapsed=", text)

    def test_estimates_and_q_error_annotated(self, loaded_db, qgen):
        text = loaded_db.explain_analyze(_q52(qgen))
        # every operator line carries the optimizer estimate + Q-error
        for line in text.splitlines():
            if line.strip().startswith(("Limit", "Sort", "Hash", "Scan")):
                assert re.search(r"est=\d+ q_err=\d+\.\d+", line), line

    def test_misestimate_flagged_above_threshold(self, simple_db):
        # the subquery predicate cannot be pushed into the scan, so it
        # stays a Filter whose estimate is child * 0.2 (1.2 of 6 rows);
        # every row passes, putting the Q-error past the 4x threshold
        text = simple_db.explain_analyze(
            "SELECT item_sk, qty FROM sales "
            "WHERE qty > (SELECT MIN(qty) FROM sales) - 1"
        )
        assert "[misestimate]" in text

    def test_memory_reported_for_join_and_peak(self, loaded_db):
        text = loaded_db.explain_analyze(
            "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk"
        )
        join_line = next(l for l in text.splitlines() if "HashJoin" in l)
        assert re.search(r"mem=\d+(\.\d+)?\s?(B|KB|MB|GB)", join_line), join_line
        assert re.search(r"peak_mem=\d+(\.\d+)?\s?(B|KB|MB|GB)", text)

    def test_row_counts_match_execution(self, loaded_db, qgen):
        sql = _q52(qgen)
        expected = len(loaded_db.execute(sql))
        text = loaded_db.explain_analyze(sql)
        top_line = text.splitlines()[0]
        assert f"rows={expected} " in top_line

    def test_scan_reports_input_rows_and_pushed_filters(self, loaded_db):
        text = loaded_db.explain_analyze(
            "SELECT COUNT(*) FROM store_sales WHERE ss_quantity > 50"
        )
        scan_line = next(l for l in text.splitlines() if "Scan(store_sales" in l)
        rows_in = int(re.search(r"rows_in=(\d+)", scan_line).group(1))
        assert rows_in == loaded_db.table("store_sales").num_rows
        assert "pushed_filters=1" in scan_line

    def test_join_reports_build_and_probe_sides(self, loaded_db):
        text = loaded_db.explain_analyze(
            "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk"
        )
        join_line = next(l for l in text.splitlines() if "HashJoin" in l)
        assert "build_rows=" in join_line
        assert "probe_rows=" in join_line

    def test_cte_memo_hits_surface(self, simple_db):
        text = simple_db.explain_analyze(
            "WITH c AS (SELECT item_sk, qty FROM sales) "
            "SELECT * FROM c UNION ALL SELECT * FROM c"
        )
        assert "memo_hits=1" in text

    def test_rewrite_annotation_when_matview_answers(self, fresh_db):
        fresh_db.create_materialized_view("mv_brand", """
            SELECT i_brand, SUM(ss_ext_sales_price)
            FROM store_sales, item
            WHERE ss_item_sk = i_item_sk
            GROUP BY i_brand
        """)
        text = fresh_db.explain_analyze(
            "SELECT i_brand, SUM(ss_ext_sales_price) "
            "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
            "GROUP BY i_brand"
        )
        assert text.startswith("-- rewritten to use materialized view mv_brand")
        assert "MatViewScan(mv_brand" in text

    def test_rejects_dml(self, simple_db):
        from repro.engine.errors import PlanningError

        with pytest.raises(PlanningError):
            simple_db.explain_analyze("DELETE FROM sales")


class TestExplainAnalyzeDict:
    def test_tree_shape_and_totals(self, loaded_db, qgen):
        sql = _q52(qgen)
        tree = loaded_db.explain_analyze_dict(sql)
        assert tree["sql"] == sql
        assert tree["rows"] == len(loaded_db.execute(sql))
        assert tree["elapsed"] > 0
        node = tree["plan"]
        labels = []
        stack = [node]
        while stack:
            item = stack.pop()
            labels.append(item["label"])
            assert "stats" in item, item["label"]
            stack.extend(item.get("children", ()))
        assert any(label.startswith("Scan(store_sales") for label in labels)

    def test_estimates_q_error_and_memory_in_dict(self, loaded_db, qgen):
        tree = loaded_db.explain_analyze_dict(_q52(qgen))
        assert tree["peak_memory_bytes"] > 0
        nodes = []
        stack = [tree["plan"]]
        while stack:
            item = stack.pop()
            nodes.append(item)
            stack.extend(item.get("children", ()))
        for node in nodes:
            assert node["estimated_rows"] >= 1.0, node["label"]
            assert node["q_error"] >= 1.0, node["label"]
            assert isinstance(node["misestimate"], bool), node["label"]
        assert any("mem_bytes" in n["stats"] for n in nodes)

    def test_explain_dict_has_estimates_but_no_stats(self, loaded_db, qgen):
        tree = loaded_db.explain_dict(_q52(qgen))
        stack = [tree["plan"]]
        while stack:
            item = stack.pop()
            assert item["estimated_rows"] >= 1.0, item["label"]
            assert "stats" not in item, item["label"]
            stack.extend(item.get("children", ()))


class TestExplainPrefixInExecute:
    def test_explain_prefix_returns_plan_rows(self, simple_db):
        result = simple_db.execute("EXPLAIN SELECT item_sk FROM sales")
        assert result.column_names == ["QUERY PLAN"]
        text = "\n".join(row[0] for row in result.rows())
        assert "Scan(sales" in text
        # plain EXPLAIN does not execute, so no measured stats
        assert "elapsed=" not in text

    def test_explain_analyze_prefix_is_annotated(self, simple_db):
        result = simple_db.execute(
            "explain analyze SELECT COUNT(*) FROM sales WHERE qty > 1"
        )
        text = "\n".join(row[0] for row in result.rows())
        assert "rows=" in text
        assert "Execution:" in text


class TestQueryTraceRegression:
    def test_plan_text_populated(self, simple_db):
        """Regression: traces used to store plan_text='' unconditionally."""
        simple_db.trace_queries = True
        simple_db.execute("SELECT item_sk FROM sales WHERE qty > 1 ORDER BY 1")
        trace = simple_db.traces[-1]
        assert trace.plan_text != ""
        assert "Scan(sales" in trace.plan_text
        assert "Sort" in trace.plan_text
        assert trace.rows == len(
            simple_db.execute("SELECT item_sk FROM sales WHERE qty > 1")
        )

    def test_trace_records_rewrite_header(self, fresh_db):
        fresh_db.create_materialized_view("mv_t", """
            SELECT i_brand, SUM(ss_ext_sales_price)
            FROM store_sales, item
            WHERE ss_item_sk = i_item_sk
            GROUP BY i_brand
        """)
        fresh_db.trace_queries = True
        fresh_db.execute(
            "SELECT i_brand, SUM(ss_ext_sales_price) "
            "FROM store_sales, item WHERE ss_item_sk = i_item_sk "
            "GROUP BY i_brand"
        )
        trace = fresh_db.traces[-1]
        assert trace.used_view == "mv_t"
        assert trace.plan_text.startswith(
            "-- rewritten to use materialized view mv_t"
        )
