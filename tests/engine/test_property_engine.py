"""Property-based engine tests: SQL results vs a plain-Python oracle.

Hypothesis generates small random tables; every property compares the
engine's answer against a straightforward Python computation over the
same rows.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import ColumnDef, Database, TableSchema, decimal, integer, varchar

settings.register_profile("engine", deadline=None, max_examples=60)
settings.load_profile("engine")

row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-5, max_value=5)),
    st.one_of(st.none(), st.sampled_from(["a", "b", "c"])),
    st.one_of(
        st.none(),
        st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    ),
)

table_strategy = st.lists(row_strategy, min_size=0, max_size=40)


def build(rows):
    db = Database()
    t = db.create_table(TableSchema("t", [
        ColumnDef("k", integer()),
        ColumnDef("g", varchar(1)),
        ColumnDef("x", decimal()),
    ]))
    t.append_rows([list(r) for r in rows])
    db.gather_stats()
    return db


@given(table_strategy)
def test_count_star(rows):
    db = build(rows)
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)


@given(table_strategy)
def test_filter_matches_python(rows):
    db = build(rows)
    got = db.execute("SELECT COUNT(*) FROM t WHERE k > 0").scalar()
    want = sum(1 for k, _, _ in rows if k is not None and k > 0)
    assert got == want


@given(table_strategy)
def test_sum_matches_python(rows):
    db = build(rows)
    got = db.execute("SELECT SUM(x) FROM t").scalar()
    values = [x for _, _, x in rows if x is not None]
    if not values:
        assert got is None
    else:
        assert got == pytest.approx(sum(values), rel=1e-9, abs=1e-9)


@given(table_strategy)
def test_group_by_matches_python(rows):
    db = build(rows)
    got = {
        (g, c) for g, c in db.execute("SELECT g, COUNT(*) FROM t GROUP BY g").rows()
    }
    want: dict = {}
    for _, g, _ in rows:
        want[g] = want.get(g, 0) + 1
    assert got == set(want.items())


@given(table_strategy)
def test_order_by_is_sorted_nulls_last(rows):
    db = build(rows)
    out = [r[0] for r in db.execute("SELECT k FROM t ORDER BY k").rows()]
    non_null = [v for v in out if v is not None]
    assert non_null == sorted(non_null)
    # nulls trail
    if None in out:
        assert all(v is None for v in out[out.index(None):])


@given(table_strategy)
def test_distinct_matches_python(rows):
    db = build(rows)
    got = set(db.execute("SELECT DISTINCT k, g FROM t").rows())
    want = {(k, g) for k, g, _ in rows}
    assert got == want


@given(table_strategy, table_strategy)
def test_union_all_length(rows_a, rows_b):
    db = Database()
    for name, rows in (("a", rows_a), ("b", rows_b)):
        t = db.create_table(TableSchema(name, [
            ColumnDef("k", integer()), ColumnDef("g", varchar(1)), ColumnDef("x", decimal()),
        ]))
        t.append_rows([list(r) for r in rows])
    out = db.execute("SELECT k FROM a UNION ALL SELECT k FROM b")
    assert len(out) == len(rows_a) + len(rows_b)


@given(table_strategy, table_strategy)
def test_join_matches_python(rows_a, rows_b):
    db = Database()
    for name, rows in (("a", rows_a), ("b", rows_b)):
        t = db.create_table(TableSchema(name, [
            ColumnDef("k", integer()), ColumnDef("g", varchar(1)), ColumnDef("x", decimal()),
        ]))
        t.append_rows([list(r) for r in rows])
    got = db.execute("SELECT COUNT(*) FROM a, b WHERE a.k = b.k").scalar()
    want = sum(
        1
        for ka, _, _ in rows_a
        if ka is not None
        for kb, _, _ in rows_b
        if kb == ka
    )
    assert got == want


@given(table_strategy)
def test_left_join_row_count_at_least_left(rows):
    db = build(rows)
    db2_rows = [r for r in rows if r[0] is not None][:5]
    u = db.create_table(TableSchema("u", [
        ColumnDef("k", integer()), ColumnDef("g", varchar(1)), ColumnDef("x", decimal()),
    ]))
    u.append_rows([list(r) for r in db2_rows])
    out = db.execute("SELECT COUNT(*) FROM t LEFT JOIN u ON t.k = u.k")
    assert out.scalar() >= len(rows)


@given(table_strategy)
def test_min_max_match_python(rows):
    db = build(rows)
    got_min, got_max = db.execute("SELECT MIN(x), MAX(x) FROM t").rows()[0]
    values = [x for _, _, x in rows if x is not None]
    if not values:
        assert got_min is None and got_max is None
    else:
        assert got_min == pytest.approx(min(values))
        assert got_max == pytest.approx(max(values))


@given(table_strategy)
def test_avg_consistent_with_sum_count(rows):
    db = build(rows)
    s, c, a = db.execute("SELECT SUM(x), COUNT(x), AVG(x) FROM t").rows()[0]
    if c == 0:
        assert a is None
    else:
        assert a == pytest.approx(s / c)


@given(table_strategy)
def test_window_sum_equals_group_total(rows):
    db = build(rows)
    out = db.execute("SELECT g, x, SUM(x) OVER (PARTITION BY g) s FROM t").rows()
    totals: dict = {}
    for _, g, x in rows:
        if x is not None:
            totals[g] = totals.get(g, 0.0) + x
    for g, x, s in out:
        if g in totals:
            assert s == pytest.approx(totals[g], rel=1e-9, abs=1e-9)
        else:
            assert s is None


@given(table_strategy)
def test_having_subset_of_groups(rows):
    db = build(rows)
    all_groups = db.execute("SELECT g, COUNT(*) c FROM t GROUP BY g").rows()
    filtered = db.execute("SELECT g, COUNT(*) c FROM t GROUP BY g HAVING COUNT(*) >= 2").rows()
    assert set(filtered) <= set(all_groups)
    assert all(c >= 2 for _, c in filtered)


@given(table_strategy, st.integers(min_value=0, max_value=10))
def test_limit_prefix_of_order(rows, limit):
    db = build(rows)
    full = db.execute("SELECT k, g, x FROM t ORDER BY k, g, x").rows()
    limited = db.execute(f"SELECT k, g, x FROM t ORDER BY k, g, x LIMIT {limit}").rows()
    assert limited == full[:limit]


@given(table_strategy)
def test_delete_then_count(rows):
    db = build(rows)
    deleted = db.execute("DELETE FROM t WHERE k = 1").rowcount
    want_deleted = sum(1 for k, _, _ in rows if k == 1)
    assert deleted == want_deleted
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows) - want_deleted
