"""End-to-end SELECT correctness against the tiny hand-built database.

The ``sales`` table (see conftest)::

    item_sk cust_sk price qty
    1       10      10.0  2
    2       11      20.0  1
    1       10      15.0  3
    3       12      5.0   1
    2       None    25.0  2
    None    10      7.5   4
"""

import pytest

from repro.engine.errors import PlanningError


def rows(db, sql):
    return db.execute(sql).rows()


class TestProjectionAndFilter:
    def test_select_columns(self, simple_db):
        assert rows(simple_db, "SELECT item_sk, qty FROM sales WHERE price = 5.0") == [(3, 1)]

    def test_expression_projection(self, simple_db):
        out = rows(simple_db, "SELECT price * qty FROM sales WHERE item_sk = 1 ORDER BY 1")
        assert out == [(20.0,), (45.0,)]

    def test_where_null_dropped(self, simple_db):
        # NULL item_sk never satisfies item_sk <> 1
        out = rows(simple_db, "SELECT COUNT(*) FROM sales WHERE item_sk <> 1")
        assert out == [(3,)]

    def test_is_null(self, simple_db):
        assert rows(simple_db, "SELECT COUNT(*) FROM sales WHERE item_sk IS NULL") == [(1,)]

    def test_between(self, simple_db):
        assert rows(simple_db, "SELECT COUNT(*) FROM sales WHERE price BETWEEN 10 AND 20") == [(3,)]

    def test_in_list(self, simple_db):
        assert rows(simple_db, "SELECT COUNT(*) FROM sales WHERE item_sk IN (1, 3)") == [(3,)]

    def test_not_in_with_null_target(self, simple_db):
        # the NULL item_sk row is neither in nor not-in
        assert rows(simple_db, "SELECT COUNT(*) FROM sales WHERE item_sk NOT IN (1, 3)") == [(2,)]

    def test_select_star(self, simple_db):
        out = simple_db.execute("SELECT * FROM item WHERE i_sk = 1")
        assert out.column_names == ["i_sk", "i_brand", "i_class"]

    def test_case(self, simple_db):
        out = rows(simple_db, """
            SELECT CASE WHEN price >= 20 THEN 'high' ELSE 'low' END b, COUNT(*)
            FROM sales GROUP BY 1 ORDER BY 1
        """)
        assert out == [("high", 2), ("low", 4)]

    def test_like(self, simple_db):
        assert rows(simple_db, "SELECT COUNT(*) FROM item WHERE i_brand LIKE 'b%'") == [(4,)]

    def test_no_from(self, simple_db):
        assert rows(simple_db, "SELECT 2 + 3 * 4") == [(14,)]

    def test_unknown_column(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.execute("SELECT nope FROM sales")

    def test_unknown_table(self, simple_db):
        from repro.engine.errors import CatalogError

        with pytest.raises(CatalogError):
            simple_db.execute("SELECT 1 FROM missing")

    def test_ambiguous_column(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.execute(
                "SELECT i_sk FROM item a, item b WHERE a.i_sk = b.i_sk"
            )


class TestAggregation:
    def test_global_aggregates(self, simple_db):
        out = rows(simple_db, "SELECT COUNT(*), COUNT(item_sk), SUM(qty), MIN(price), MAX(price) FROM sales")
        assert out == [(6, 5, 13, 5.0, 25.0)]

    def test_avg_ignores_nulls_in_arg(self, simple_db):
        out = rows(simple_db, "SELECT AVG(cust_sk) FROM sales")
        assert out[0][0] == pytest.approx((10 + 11 + 10 + 12 + 10) / 5)

    def test_group_by(self, simple_db):
        out = rows(simple_db, "SELECT item_sk, SUM(price) FROM sales GROUP BY item_sk ORDER BY item_sk")
        assert out == [(1, 25.0), (2, 45.0), (3, 5.0), (None, 7.5)]

    def test_null_forms_single_group(self, simple_db):
        out = rows(simple_db, "SELECT item_sk, COUNT(*) FROM sales GROUP BY item_sk ORDER BY item_sk NULLS FIRST")
        assert out[0] == (None, 1)

    def test_having(self, simple_db):
        out = rows(simple_db, "SELECT item_sk, COUNT(*) c FROM sales GROUP BY item_sk HAVING COUNT(*) > 1 ORDER BY 1")
        assert out == [(1, 2), (2, 2)]

    def test_count_distinct(self, simple_db):
        assert rows(simple_db, "SELECT COUNT(DISTINCT cust_sk) FROM sales") == [(3,)]

    def test_aggregate_of_expression(self, simple_db):
        out = rows(simple_db, "SELECT SUM(price * qty) FROM sales")
        assert out[0][0] == pytest.approx(20 + 20 + 45 + 5 + 50 + 30)

    def test_empty_group_result(self, simple_db):
        assert rows(simple_db, "SELECT item_sk, COUNT(*) FROM sales WHERE price > 999 GROUP BY item_sk") == []

    def test_global_aggregate_over_empty_input(self, simple_db):
        out = rows(simple_db, "SELECT COUNT(*), SUM(qty) FROM sales WHERE price > 999")
        assert out == [(0, None)]

    def test_sum_all_null_group_is_null(self, simple_db):
        out = rows(simple_db, "SELECT SUM(cust_sk) FROM sales WHERE cust_sk IS NULL")
        assert out == [(None,)]

    def test_rollup(self, simple_db):
        out = rows(simple_db, """
            SELECT i_class, i_brand, SUM(price)
            FROM sales, item WHERE item_sk = i_sk
            GROUP BY ROLLUP(i_class, i_brand)
            ORDER BY i_class NULLS LAST, i_brand NULLS LAST
        """)
        # detail rows, per-class subtotals, grand total
        assert (None, None, 75.0) in out
        assert ("c1", None, 70.0) in out
        assert ("c2", None, 5.0) in out
        assert ("c1", "b1", 25.0) in out
        assert len(out) == 3 + 2 + 1

    def test_group_by_alias(self, simple_db):
        out = rows(simple_db, "SELECT price * qty AS revenue, COUNT(*) FROM sales GROUP BY revenue ORDER BY revenue")
        assert out[0][0] == 5.0

    def test_group_by_ordinal(self, simple_db):
        out = rows(simple_db, "SELECT item_sk, COUNT(*) FROM sales GROUP BY 1 ORDER BY 1 NULLS LAST")
        assert out[0] == (1, 2)

    def test_stddev(self, simple_db):
        out = rows(simple_db, "SELECT STDDEV_SAMP(qty) FROM sales WHERE item_sk = 1")
        # qty values 2 and 3 -> stddev = sqrt(0.5)
        assert out[0][0] == pytest.approx(0.5**0.5)

    def test_having_without_group_rejected(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.execute("SELECT item_sk FROM sales HAVING item_sk > 1")


class TestOrderLimit:
    def test_order_desc(self, simple_db):
        out = rows(simple_db, "SELECT price FROM sales ORDER BY price DESC LIMIT 2")
        assert out == [(25.0,), (20.0,)]

    def test_order_nulls_default_last_asc(self, simple_db):
        out = rows(simple_db, "SELECT cust_sk FROM sales ORDER BY cust_sk")
        assert out[-1] == (None,)

    def test_order_nulls_default_first_desc(self, simple_db):
        out = rows(simple_db, "SELECT cust_sk FROM sales ORDER BY cust_sk DESC")
        assert out[0] == (None,)

    def test_order_nulls_first_explicit(self, simple_db):
        out = rows(simple_db, "SELECT cust_sk FROM sales ORDER BY cust_sk NULLS FIRST")
        assert out[0] == (None,)

    def test_order_by_ordinal(self, simple_db):
        out = rows(simple_db, "SELECT item_sk, price FROM sales ORDER BY 2 LIMIT 1")
        assert out == [(3, 5.0)]

    def test_order_by_unprojected_column(self, simple_db):
        out = simple_db.execute("SELECT price FROM sales ORDER BY qty DESC, price")
        assert out.column_names == ["price"]
        assert out.rows()[0] == (7.5,)

    def test_limit_offset(self, simple_db):
        out = rows(simple_db, "SELECT price FROM sales ORDER BY price LIMIT 2 OFFSET 1")
        assert out == [(7.5,), (10.0,)]

    def test_multi_key_sort_stability(self, simple_db):
        out = rows(simple_db, "SELECT item_sk, price FROM sales WHERE item_sk IS NOT NULL ORDER BY item_sk, price DESC")
        assert out == [(1, 15.0), (1, 10.0), (2, 25.0), (2, 20.0), (3, 5.0)]


class TestDistinctAndSetOps:
    def test_distinct(self, simple_db):
        out = rows(simple_db, "SELECT DISTINCT item_sk FROM sales ORDER BY item_sk NULLS LAST")
        assert out == [(1,), (2,), (3,), (None,)]

    def test_union_all(self, simple_db):
        out = rows(simple_db, "SELECT i_sk FROM item UNION ALL SELECT i_sk FROM item")
        assert len(out) == 8

    def test_union_dedupes(self, simple_db):
        out = rows(simple_db, "SELECT i_sk FROM item UNION SELECT i_sk FROM item")
        assert len(out) == 4

    def test_intersect(self, simple_db):
        out = rows(simple_db, "SELECT item_sk FROM sales INTERSECT SELECT i_sk FROM item")
        assert sorted(r[0] for r in out) == [1, 2, 3]

    def test_except(self, simple_db):
        out = rows(simple_db, "SELECT i_sk FROM item EXCEPT SELECT item_sk FROM sales")
        assert out == [(4,)]

    def test_set_op_arity_mismatch(self, simple_db):
        with pytest.raises(PlanningError):
            simple_db.execute("SELECT i_sk, i_brand FROM item UNION SELECT i_sk FROM item")


class TestSubqueriesAndCtes:
    def test_scalar_subquery(self, simple_db):
        # avg(price) = 82.5 / 6 = 13.75 -> prices 15, 20, 25 qualify
        out = rows(simple_db, "SELECT COUNT(*) FROM sales WHERE price > (SELECT AVG(price) FROM sales)")
        assert out == [(3,)]

    def test_scalar_subquery_empty_is_null(self, simple_db):
        out = rows(simple_db, "SELECT COUNT(*) FROM sales WHERE price > (SELECT price FROM sales WHERE price > 999)")
        assert out == [(0,)]

    def test_in_subquery(self, simple_db):
        out = rows(simple_db, "SELECT COUNT(*) FROM item WHERE i_sk IN (SELECT item_sk FROM sales)")
        assert out == [(3,)]

    def test_not_in_subquery_with_nulls_yields_unknown(self, simple_db):
        # subquery result contains NULL -> NOT IN is never TRUE
        out = rows(simple_db, "SELECT COUNT(*) FROM item WHERE i_sk NOT IN (SELECT item_sk FROM sales)")
        assert out == [(0,)]

    def test_not_in_subquery_without_nulls(self, simple_db):
        out = rows(simple_db, "SELECT COUNT(*) FROM item WHERE i_sk NOT IN (SELECT item_sk FROM sales WHERE item_sk IS NOT NULL)")
        assert out == [(1,)]

    def test_exists(self, simple_db):
        out = rows(simple_db, "SELECT COUNT(*) FROM item WHERE EXISTS (SELECT 1 FROM sales WHERE price > 24)")
        assert out == [(4,)]

    def test_not_exists_empty(self, simple_db):
        out = rows(simple_db, "SELECT COUNT(*) FROM item WHERE NOT EXISTS (SELECT 1 FROM sales WHERE price > 999)")
        assert out == [(4,)]

    def test_cte(self, simple_db):
        out = rows(simple_db, """
            WITH expensive AS (SELECT * FROM sales WHERE price >= 15)
            SELECT COUNT(*) FROM expensive
        """)
        assert out == [(3,)]

    def test_cte_referenced_twice(self, simple_db):
        out = rows(simple_db, """
            WITH s AS (SELECT item_sk, price FROM sales WHERE item_sk IS NOT NULL)
            SELECT a.item_sk, COUNT(*)
            FROM s a, s b
            WHERE a.item_sk = b.item_sk
            GROUP BY a.item_sk ORDER BY 1
        """)
        assert out == [(1, 4), (2, 4), (3, 1)]

    def test_cte_visible_in_subquery(self, simple_db):
        out = rows(simple_db, """
            WITH big AS (SELECT item_sk FROM sales WHERE price >= 20)
            SELECT COUNT(*) FROM item WHERE i_sk IN (SELECT item_sk FROM big)
        """)
        assert out == [(1,)]

    def test_derived_table(self, simple_db):
        out = rows(simple_db, """
            SELECT b, COUNT(*) FROM
            (SELECT item_sk, CASE WHEN price > 10 THEN 'hi' ELSE 'lo' END b FROM sales) t
            GROUP BY b ORDER BY b
        """)
        assert out == [("hi", 3), ("lo", 3)]
