"""Secondary index behavior: lookups, ranges, bitmaps, DML invalidation."""

import numpy as np
import pytest

from repro.engine import CatalogError, ColumnDef, Database, TableSchema, integer, varchar


@pytest.fixture()
def db():
    db = Database()
    t = db.create_table(TableSchema("t", [
        ColumnDef("k", integer()),
        ColumnDef("v", varchar(5)),
    ]))
    t.append_rows([[3, "c"], [1, "a"], [2, "b"], [1, "a2"], [None, "n"]])
    return db


class TestHashIndex:
    def test_lookup(self, db):
        index = db.create_index("t", "k", "hash")
        assert index.lookup(1).tolist() == [1, 3]
        assert index.lookup(99).tolist() == []

    def test_null_keys_not_indexed(self, db):
        index = db.create_index("t", "k", "hash")
        assert index.lookup(None).tolist() == []

    def test_lookup_many(self, db):
        index = db.create_index("t", "k", "hash")
        assert index.lookup_many([1, 3]).tolist() == [0, 1, 3]

    def test_num_keys(self, db):
        index = db.create_index("t", "k", "hash")
        assert index.num_keys == 3

    def test_invalidation_on_insert(self, db):
        index = db.create_index("t", "k", "hash")
        assert index.lookup(42).tolist() == []
        db.execute("INSERT INTO t VALUES (42, 'z')")
        assert index.lookup(42).tolist() == [5]

    def test_invalidation_on_delete(self, db):
        index = db.create_index("t", "k", "hash")
        index.lookup(1)
        db.execute("DELETE FROM t WHERE v = 'a'")
        assert index.lookup(1).tolist() == [2]  # row positions shifted

    def test_invalidation_on_update(self, db):
        index = db.create_index("t", "k", "hash")
        index.lookup(3)
        db.execute("UPDATE t SET k = 7 WHERE v = 'c'")
        assert index.lookup(3).tolist() == []
        assert index.lookup(7).tolist() == [0]

    def test_string_keys(self, db):
        index = db.create_index("t", "v", "hash")
        assert index.lookup("b").tolist() == [2]


class TestSortedIndex:
    def test_range(self, db):
        index = db.create_index("t", "k", "sorted")
        assert index.range(1, 2).tolist() == [1, 2, 3]

    def test_open_ranges(self, db):
        index = db.create_index("t", "k", "sorted")
        assert index.range(low=2).tolist() == [0, 2]
        assert index.range(high=1).tolist() == [1, 3]
        assert index.range().tolist() == [0, 1, 2, 3]

    def test_point_lookup(self, db):
        index = db.create_index("t", "k", "sorted")
        assert index.lookup(2).tolist() == [2]


class TestBitmapIndex:
    def test_rows_for_keys(self, db):
        index = db.create_index("t", "k", "bitmap")
        assert index.rows_for_keys({1, 3}).tolist() == [0, 1, 3]

    def test_rows_for_missing_keys(self, db):
        index = db.create_index("t", "k", "bitmap")
        assert index.rows_for_keys({99}).tolist() == []

    def test_catalog_bitmap_rows(self, db):
        db.create_index("t", "k", "bitmap")
        rows = db.catalog.bitmap_rows("t", "k", {2})
        assert rows.tolist() == [2]

    def test_no_bitmap_returns_none(self, db):
        assert db.catalog.bitmap_rows("t", "k", {2}) is None


class TestCatalogRules:
    def test_unknown_index_type(self, db):
        with pytest.raises(CatalogError):
            db.create_index("t", "k", "btree")

    def test_unknown_column(self, db):
        with pytest.raises(CatalogError):
            db.create_index("t", "nope", "hash")

    def test_idempotent_create(self, db):
        a = db.create_index("t", "k", "hash")
        b = db.create_index("t", "k", "hash")
        assert a is b

    def test_aux_restriction_blocks_bitmap(self, db):
        db.catalog.restrict_aux_on = {"t"}
        with pytest.raises(CatalogError):
            db.create_index("t", "k", "bitmap")

    def test_aux_restriction_allows_basic(self, db):
        db.catalog.restrict_aux_on = {"t"}
        db.create_index("t", "k", "hash")
        db.create_index("t", "k", "sorted")

    def test_rebuild_indexes_counts(self, db):
        db.create_index("t", "k", "hash")
        db.create_index("t", "v", "hash")
        assert db.catalog.rebuild_indexes() == 2

    def test_drop_index(self, db):
        db.create_index("t", "k", "hash")
        db.catalog.drop_index("t", "k", "hash")
        assert db.catalog.index("t", "k", "hash") is None
