"""Materialized views and transparent query rewrite."""

import pytest

from repro.engine import CatalogError, ColumnDef, Database, TableSchema, decimal, integer, varchar


@pytest.fixture()
def db():
    db = Database()
    sales = db.create_table(TableSchema("f", [
        ColumnDef("item", integer()),
        ColumnDef("dt", integer()),
        ColumnDef("amount", decimal()),
    ]))
    item = db.create_table(TableSchema("dim", [
        ColumnDef("id", integer()),
        ColumnDef("cls", varchar(5)),
        ColumnDef("cat", varchar(5)),
    ]))
    sales.append_rows([
        [1, 10, 5.0], [1, 11, 7.0], [2, 10, 9.0], [3, 12, 1.0], [2, 11, 3.0],
    ])
    item.append_rows([[1, "a", "X"], [2, "a", "X"], [3, "b", "Y"]])
    db.gather_stats()
    return db


VIEW_SQL = """
    SELECT cls, cat, dt, SUM(amount), COUNT(amount), MIN(amount), MAX(amount), AVG(amount)
    FROM f, dim WHERE item = id
    GROUP BY cls, cat, dt
"""


class TestCreation:
    def test_create_and_row_count(self, db):
        view = db.create_materialized_view("mv", VIEW_SQL)
        assert view.num_rows == db.execute(
            "SELECT COUNT(*) FROM (SELECT cls, cat, dt FROM f, dim WHERE item = id GROUP BY cls, cat, dt) x"
        ).scalar()

    def test_name_collision_rejected(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        with pytest.raises(CatalogError):
            db.create_materialized_view("mv", VIEW_SQL)

    def test_order_by_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_materialized_view("bad", VIEW_SQL + " ORDER BY cls")

    def test_distinct_aggregate_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_materialized_view(
                "bad", "SELECT cls, COUNT(DISTINCT amount) FROM f, dim WHERE item = id GROUP BY cls"
            )

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_materialized_view(
                "bad", "SELECT cls, cat FROM f, dim WHERE item = id GROUP BY cls"
            )

    def test_outer_join_rejected(self, db):
        with pytest.raises(CatalogError):
            db.create_materialized_view(
                "bad",
                "SELECT cls, SUM(amount) FROM f LEFT JOIN dim ON item = id GROUP BY cls",
            )

    def test_aux_restriction_enforced(self, db):
        db.catalog.restrict_aux_on = {"f"}
        with pytest.raises(CatalogError):
            db.create_materialized_view("mv", VIEW_SQL)


class TestRewrite:
    def check(self, db, sql, expect_view):
        result = db.execute(sql)
        if expect_view:
            assert result.rewritten_from_view == "mv", sql
        else:
            assert result.rewritten_from_view is None, sql
        # correctness: rewrite off must give the same rows
        db.enable_matview_rewrite = False
        reference = db.execute(sql).rows()
        db.enable_matview_rewrite = True
        assert result.rows() == reference
        return result

    def test_exact_group_match(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        self.check(db, """
            SELECT cls, cat, dt, SUM(amount) FROM f, dim WHERE item = id
            GROUP BY cls, cat, dt ORDER BY cls, cat, dt
        """, True)

    def test_coarser_group_reaggregates(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        result = self.check(db, """
            SELECT cls, SUM(amount) s FROM f, dim WHERE item = id
            GROUP BY cls ORDER BY cls
        """, True)
        assert result.rows() == [("a", 24.0), ("b", 1.0)]

    def test_count_star_via_stored_count(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        result = self.check(db, """
            SELECT cat, COUNT(*) c FROM f, dim WHERE item = id
            GROUP BY cat ORDER BY cat
        """, True)
        assert result.rows() == [("X", 4), ("Y", 1)]

    def test_avg_reconstructed_from_sum_count(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        result = self.check(db, """
            SELECT cls, AVG(amount) a FROM f, dim WHERE item = id
            GROUP BY cls ORDER BY cls
        """, True)
        assert result.rows()[0][1] == pytest.approx(24.0 / 4)

    def test_min_max_derived(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        result = self.check(db, """
            SELECT cat, MIN(amount), MAX(amount) FROM f, dim WHERE item = id
            GROUP BY cat ORDER BY cat
        """, True)
        assert result.rows() == [("X", 3.0, 9.0), ("Y", 1.0, 1.0)]

    def test_filter_on_group_column_applies(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        result = self.check(db, """
            SELECT cls, SUM(amount) FROM f, dim
            WHERE item = id AND dt = 10 GROUP BY cls ORDER BY cls
        """, True)
        assert result.rows() == [("a", 14.0)]

    def test_filter_on_non_group_column_blocks(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        self.check(db, """
            SELECT cls, SUM(amount) FROM f, dim
            WHERE item = id AND amount > 4 GROUP BY cls ORDER BY cls
        """, False)

    def test_different_table_set_blocks(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        self.check(db, "SELECT SUM(amount) FROM f", False)

    def test_global_aggregate_rewrites(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        result = self.check(db, "SELECT SUM(amount) FROM f, dim WHERE item = id", True)
        assert result.rows() == [(25.0,)]

    def test_rewrite_disabled_flag(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        db.enable_matview_rewrite = False
        result = db.execute("SELECT cls, SUM(amount) FROM f, dim WHERE item = id GROUP BY cls")
        assert result.rewritten_from_view is None

    def test_direct_select_from_view_name(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        result = db.execute("SELECT COUNT(*) FROM mv")
        assert result.scalar() == db.catalog.matview("mv").num_rows


class TestRefresh:
    def test_refresh_after_base_change(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        db.execute("INSERT INTO f VALUES (3, 12, 100.0)")
        stale = db.execute("SELECT SUM(amount) FROM f, dim WHERE item = id GROUP BY cat ORDER BY cat")
        # stale view still answers with the old total for category Y
        assert stale.rows()[1] == (1.0,)
        db.refresh_matviews()
        fresh = db.execute("SELECT SUM(amount) FROM f, dim WHERE item = id GROUP BY cat ORDER BY cat")
        assert fresh.rows()[1] == (101.0,)

    def test_refresh_count(self, db):
        db.create_materialized_view("mv", VIEW_SQL)
        assert db.refresh_matviews() == 1
