"""Executor edge cases: empty inputs, degenerate limits, big keys,
guard rails, and the Database trace facility."""

import pytest

from repro.engine import (
    ColumnDef,
    Database,
    ExecutionError,
    TableSchema,
    decimal,
    integer,
    varchar,
)


@pytest.fixture()
def db():
    db = Database()
    db.create_table(TableSchema("e", [
        ColumnDef("k", integer()), ColumnDef("v", varchar(5)),
    ]))  # stays empty
    t = db.create_table(TableSchema("t", [
        ColumnDef("k", integer()), ColumnDef("v", varchar(5)),
    ]))
    t.append_rows([[1, "a"], [2, "b"]])
    return db


class TestEmptyInputs:
    def test_scan_empty(self, db):
        assert db.execute("SELECT * FROM e").rows() == []

    def test_filter_empty(self, db):
        assert db.execute("SELECT * FROM e WHERE k > 0").rows() == []

    def test_join_empty_build_side(self, db):
        assert db.execute("SELECT * FROM t JOIN e ON t.k = e.k").rows() == []

    def test_left_join_empty_right(self, db):
        out = db.execute("SELECT t.v, e.v FROM t LEFT JOIN e ON t.k = e.k").rows()
        assert out == [("a", None), ("b", None)]

    def test_group_by_empty(self, db):
        assert db.execute("SELECT k, COUNT(*) FROM e GROUP BY k").rows() == []

    def test_global_agg_empty(self, db):
        assert db.execute("SELECT COUNT(*), SUM(k), MIN(v) FROM e").rows() == [(0, None, None)]

    def test_order_empty(self, db):
        assert db.execute("SELECT k FROM e ORDER BY k DESC").rows() == []

    def test_distinct_empty(self, db):
        assert db.execute("SELECT DISTINCT k FROM e").rows() == []

    def test_union_with_empty(self, db):
        out = db.execute("SELECT k FROM t UNION ALL SELECT k FROM e").rows()
        assert len(out) == 2

    def test_intersect_with_empty(self, db):
        assert db.execute("SELECT k FROM t INTERSECT SELECT k FROM e").rows() == []

    def test_except_from_empty(self, db):
        assert db.execute("SELECT k FROM e EXCEPT SELECT k FROM t").rows() == []

    def test_rollup_empty_grand_total_row(self, db):
        out = db.execute("SELECT k, COUNT(*) FROM e GROUP BY ROLLUP(k)").rows()
        # the grand-total grouping set yields its single row even on empty input
        assert out == [(None, 0)]

    def test_in_empty_subquery(self, db):
        out = db.execute("SELECT COUNT(*) FROM t WHERE k IN (SELECT k FROM e)").rows()
        assert out == [(0,)]

    def test_not_in_empty_subquery_all_pass(self, db):
        out = db.execute("SELECT COUNT(*) FROM t WHERE k NOT IN (SELECT k FROM e)").rows()
        assert out == [(2,)]


class TestLimits:
    def test_limit_zero(self, db):
        assert db.execute("SELECT k FROM t LIMIT 0").rows() == []

    def test_limit_past_end(self, db):
        assert len(db.execute("SELECT k FROM t LIMIT 99").rows()) == 2

    def test_offset_past_end(self, db):
        assert db.execute("SELECT k FROM t LIMIT 10 OFFSET 5").rows() == []

    def test_offset_without_order_is_positional(self, db):
        assert len(db.execute("SELECT k FROM t LIMIT 1 OFFSET 1").rows()) == 1


class TestGuards:
    def test_huge_cross_join_rejected(self):
        db = Database()
        t = db.create_table(TableSchema("big", [ColumnDef("k", integer())]))
        t.append_rows([[i] for i in range(20_000)])
        with pytest.raises(ExecutionError):
            db.execute("SELECT COUNT(*) FROM big a CROSS JOIN big b")

    def test_scalar_subquery_multirow_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT (SELECT k FROM t) FROM t")

    def test_in_subquery_multicolumn_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT 1 FROM t WHERE k IN (SELECT k, v FROM t)")


class TestBigValues:
    def test_int64_range_keys(self, db):
        db.execute(f"INSERT INTO t VALUES ({2**62}, 'big')")
        out = db.execute(f"SELECT v FROM t WHERE k = {2**62}").rows()
        assert out == [("big",)]

    def test_negative_keys_join(self):
        db = Database()
        a = db.create_table(TableSchema("a", [ColumnDef("k", integer())]))
        b = db.create_table(TableSchema("b", [ColumnDef("k", integer())]))
        a.append_rows([[-5], [0], [5]])
        b.append_rows([[-5], [5]])
        out = db.execute("SELECT a.k FROM a JOIN b ON a.k = b.k ORDER BY 1").rows()
        assert out == [(-5,), (5,)]

    def test_unicode_strings(self, db):
        db.execute("INSERT INTO t VALUES (9, 'héllo')")
        assert db.execute("SELECT v FROM t WHERE k = 9").rows() == [("héllo",)]


class TestTracing:
    def test_traces_recorded_when_enabled(self, db):
        db.trace_queries = True
        db.execute("SELECT COUNT(*) FROM t")
        db.execute("SELECT k FROM t ORDER BY k")
        assert len(db.traces) == 2
        assert db.traces[0].elapsed >= 0

    def test_traces_off_by_default(self, db):
        db.execute("SELECT COUNT(*) FROM t")
        assert db.traces == []
