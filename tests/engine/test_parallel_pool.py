"""Unit tests for the morsel worker pool and its governance plumbing:
ordered results, lowest-index error, inline nesting, the grow-only
process pool, WorkerContext accounting semantics and the pool gauges."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.errors import QueryCancelled
from repro.engine.governor import ResourceContext
from repro.engine.parallel import (
    WorkerContext,
    WorkerPool,
    get_pool,
    in_worker,
    morsel_ranges,
    shutdown_pool,
)
from repro.obs import MetricsRegistry, get_registry, set_registry


@pytest.fixture(autouse=True)
def _fresh_pool():
    shutdown_pool()
    yield
    shutdown_pool()


# -- morsel_ranges ---------------------------------------------------------


def test_morsel_ranges_cover_exactly():
    ranges = morsel_ranges(10, morsel_rows=4)
    assert ranges == [(0, 4), (4, 8), (8, 10)]
    # complete, disjoint, ascending — the determinism precondition
    flat = [i for start, stop in ranges for i in range(start, stop)]
    assert flat == list(range(10))


def test_morsel_ranges_empty_and_exact_multiple():
    assert morsel_ranges(0) == []
    assert morsel_ranges(-5) == []
    assert morsel_ranges(8, morsel_rows=4) == [(0, 4), (4, 8)]


# -- dispatch discipline ---------------------------------------------------


def test_map_morsels_preserves_submission_order():
    pool = WorkerPool(4)
    try:
        def slow_identity(item, ctx):
            # later items finish first: order must still be item order
            time.sleep((16 - item) * 0.002)
            return item * 10
        assert pool.map_morsels(slow_identity, range(16)) == [
            i * 10 for i in range(16)
        ]
    finally:
        pool.shutdown()


def test_map_morsels_raises_lowest_index_error():
    pool = WorkerPool(4)
    try:
        def boom(item, ctx):
            if item in (3, 7, 11):
                raise ValueError(f"morsel {item}")
            return item
        with pytest.raises(ValueError, match="morsel 3"):
            pool.map_morsels(boom, range(16))
    finally:
        pool.shutdown()


def test_nested_dispatch_runs_inline_without_deadlock():
    """A 1-thread pool running a task that itself maps morsels must not
    deadlock: nested dispatch from a worker runs inline."""
    pool = WorkerPool(1)
    try:
        def outer():
            assert in_worker()
            return sum(pool.map_morsels(lambda x, c: x + 100, range(4)))
        assert pool.submit(outer).result(timeout=10) == 100 * 4 + 6
        assert not in_worker()
    finally:
        pool.shutdown()


def test_submit_from_worker_runs_inline():
    pool = WorkerPool(1)
    try:
        def outer():
            return pool.submit(lambda: in_worker()).result()
        assert pool.submit(outer).result() is True
    finally:
        pool.shutdown()


# -- process-wide pool -----------------------------------------------------


def test_get_pool_disabled_for_serial():
    assert get_pool(None) is None
    assert get_pool(0) is None
    assert get_pool(1) is None


def test_get_pool_grow_only():
    two = get_pool(2)
    assert two is not None and two.workers == 2
    assert get_pool(2) is two
    four = get_pool(4)
    assert four is not two and four.workers == 4
    # asking for fewer reuses the larger pool
    assert get_pool(2) is four


# -- WorkerContext ---------------------------------------------------------


def test_worker_context_sums_spill_into_parent():
    parent = ResourceContext(memory_budget_bytes=1024)
    a, b = WorkerContext(parent, 0), WorkerContext(parent, 1)
    a.note_spill(2, 100)
    b.note_spill(1, 50)
    b.note_spill(1, 25)
    assert (a.spill_partitions, a.spilled_bytes) == (2, 100)
    assert (b.spill_partitions, b.spilled_bytes) == (2, 75)
    # parent totals are sums across workers
    assert (parent.spill_partitions, parent.spilled_bytes) == (4, 175)
    parent.cleanup()


def test_worker_context_tracks_peak_memory_as_max():
    ctx = WorkerContext(ResourceContext(), 0)
    ctx.note_memory(100.0)
    ctx.note_memory(50.0)
    ctx.note_memory(200.0)
    assert ctx.peak_bytes == 200.0


def test_worker_context_forwards_check_and_budget():
    cancel = threading.Event()
    cancel.set()
    parent = ResourceContext(memory_budget_bytes=1000, cancel=cancel)
    ctx = WorkerContext(parent, 0)
    with pytest.raises(QueryCancelled):
        ctx.check("Sort(run)")
    assert ctx.over_budget(2000)
    assert not ctx.over_budget(500)
    assert ctx.partitions_for(4000) == parent.partitions_for(4000)
    assert ctx.memory_budget_bytes == 1000
    parent.cleanup()


def test_worker_context_without_parent_is_unbounded():
    ctx = WorkerContext(None, 0)
    ctx.check("anywhere")  # never raises
    assert not ctx.over_budget(float("inf"))
    ctx.note_spill(1, 10)  # only local tallies
    assert (ctx.spill_partitions, ctx.spilled_bytes) == (1, 10)


def test_check_fires_on_pool_threads():
    """The cooperative check raises *inside* the worker and the pool
    re-raises it on the calling thread."""
    cancel = threading.Event()
    cancel.set()
    parent = ResourceContext(cancel=cancel)
    pool = WorkerPool(2)
    try:
        def task(item, ctx):
            ctx.check("Filter(morsel)")
            return item
        with pytest.raises(QueryCancelled):
            pool.map_morsels(task, range(4), parent)
    finally:
        pool.shutdown()
        parent.cleanup()


# -- gauges ----------------------------------------------------------------


def test_pool_gauges_published_when_registry_enabled():
    previous = get_registry()
    registry = MetricsRegistry(enabled=True)
    set_registry(registry)
    try:
        pool = get_pool(3)
        pool.map_morsels(lambda x, c: x, range(8))
        pool.map_morsels(lambda x, c: x, [1])  # single item runs inline
        snap = registry.snapshot()
        assert snap["engine.pool.workers"]["value"] == 3.0
        assert snap["engine.pool.morsels"]["value"] == 8.0
        assert snap["engine.pool.inline_morsels"]["value"] == 1.0
        assert snap["engine.pool.max_queue_depth"]["value"] >= 1.0
    finally:
        set_registry(previous)
        shutdown_pool()
