"""Resource governor: memory budgets with spill, timeouts, cancellation.

The spill tests assert *byte identity*: a query run under a budget far
smaller than its working set must produce exactly the rows — values
and order — of the unbudgeted run, while actually exercising the spill
path (``spill_partitions > 0``).
"""

from __future__ import annotations

import glob
import os
import tempfile
import threading
import time

import pytest

from repro.dsdgen import DsdGen, build_database
from repro.engine import QueryCancelled, QueryTimeout, ResourceContext
from repro.engine.governor import read_spill, write_spill
from repro.faults import FaultInjector

SF = 0.01
SEED = 19620718

#: a budget far below any fact-table operator's working set at sf=0.01
TIGHT_BUDGET = 4096


@pytest.fixture(scope="module")
def sf_db():
    data = DsdGen(SF, seed=SEED).generate()
    db, _ = build_database(SF, data=data)
    return db


def _spill_dirs():
    return glob.glob(os.path.join(tempfile.gettempdir(), "tpcds-spill-*"))


JOIN_SQL = """
    SELECT d_year, i_brand_id, SUM(ss_ext_sales_price) AS total
    FROM store_sales, date_dim, item
    WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
    GROUP BY d_year, i_brand_id
    ORDER BY d_year, i_brand_id, total
"""

SORT_SQL = """
    SELECT ss_item_sk, ss_customer_sk, ss_ext_sales_price
    FROM store_sales
    ORDER BY ss_ext_sales_price DESC, ss_item_sk, ss_customer_sk
"""

AGG_SQL = """
    SELECT ss_customer_sk, COUNT(*) AS cnt, SUM(ss_net_paid) AS paid,
           AVG(ss_quantity) AS qty
    FROM store_sales
    GROUP BY ss_customer_sk
    ORDER BY cnt DESC, ss_customer_sk
"""

ROLLUP_SQL = """
    SELECT d_year, d_moy, SUM(ss_ext_sales_price) AS total
    FROM store_sales, date_dim
    WHERE ss_sold_date_sk = d_date_sk
    GROUP BY ROLLUP (d_year, d_moy)
    ORDER BY d_year, d_moy
"""


@pytest.mark.parametrize(
    "sql", [JOIN_SQL, SORT_SQL, AGG_SQL, ROLLUP_SQL],
    ids=["grace-join", "external-sort", "agg-spill", "rollup-spill"],
)
def test_spill_byte_identical(sf_db, sql):
    baseline = sf_db.execute(sql)
    budgeted = sf_db.execute(sql, mem_budget_bytes=TIGHT_BUDGET)
    assert budgeted.spill_partitions > 0, "budget did not trigger spilling"
    assert budgeted.spilled_bytes > 0
    assert baseline.rows() == budgeted.rows()
    assert not _spill_dirs(), "spill directories leaked"


def test_explain_analyze_shows_spill_counters(sf_db):
    text = sf_db.explain_analyze(JOIN_SQL, mem_budget_bytes=TIGHT_BUDGET)
    assert "spill_partitions=" in text
    assert "spilled_bytes=" in text
    assert not _spill_dirs()


def test_unbudgeted_result_reports_no_spill(sf_db):
    result = sf_db.execute(JOIN_SQL)
    assert result.spill_partitions == 0
    assert result.spilled_bytes == 0


def test_timeout_raises_promptly_and_leaves_no_spill_files(sf_db):
    # operator-level injected delays make every batch boundary slow, so
    # the deadline check must fire within ~one batch of the deadline
    sf_db.fault_injector = FaultInjector(
        seed=11, delay_rate=1.0, max_delay_s=0.02, scope=("operator",)
    )
    try:
        start = time.perf_counter()
        with pytest.raises(QueryTimeout):
            sf_db.execute(JOIN_SQL, timeout_s=0.1, mem_budget_bytes=TIGHT_BUDGET)
        elapsed = time.perf_counter() - start
    finally:
        sf_db.fault_injector = None
    assert elapsed < 5.0, f"timeout latency {elapsed:.2f}s is not prompt"
    assert not _spill_dirs(), "timed-out query leaked spill files"


def test_expired_deadline_raises_immediately(sf_db):
    with pytest.raises(QueryTimeout):
        sf_db.execute("SELECT COUNT(*) FROM store_sales", timeout_s=0.0)


def test_cancel_flag(sf_db):
    flag = threading.Event()
    flag.set()
    with pytest.raises(QueryCancelled):
        sf_db.execute("SELECT COUNT(*) FROM store_sales", cancel=flag)
    # an unset flag does not interfere
    result = sf_db.execute(
        "SELECT COUNT(*) FROM date_dim", cancel=threading.Event()
    )
    assert result.scalar() > 0


def test_resource_context_partitioning_math():
    ctx = ResourceContext(memory_budget_bytes=100.0)
    assert ctx.partitions_for(150.0) == 2
    assert ctx.partitions_for(1000.0) == 16
    assert ctx.partitions_for(1e12) == 64  # capped
    assert ctx.over_budget(101.0)
    assert not ctx.over_budget(99.0)
    ctx.cleanup()


def test_spill_file_roundtrip():
    import numpy as np

    ctx = ResourceContext(memory_budget_bytes=1.0)
    try:
        path = ctx.spill_path()
        arrays = {
            "ints": np.arange(10, dtype=np.int64),
            "strs": np.array(["a", None, "c"], dtype=object),
        }
        nbytes = write_spill(path, arrays)
        assert nbytes > 0
        loaded = read_spill(path)
        assert loaded["ints"].tolist() == list(range(10))
        assert loaded["strs"].tolist() == ["a", None, "c"]
    finally:
        ctx.cleanup()
    assert not os.path.exists(path)


def test_memory_pressure_forces_budget(sf_db):
    # no explicit budget, but the injector imposes one -> spilling happens
    sf_db.fault_injector = FaultInjector(seed=0, force_budget_bytes=TIGHT_BUDGET)
    try:
        result = sf_db.execute(AGG_SQL)
    finally:
        sf_db.fault_injector = None
    assert result.spill_partitions > 0
    assert result.rows() == sf_db.execute(AGG_SQL).rows()
