"""Scalar expression evaluation: functions, casts, LIKE, dates."""

import pytest

from repro.engine import ColumnDef, Database, TableSchema, date, decimal, integer, varchar
from repro.engine.errors import SqlSyntaxError, TypeError_
from repro.engine.expr import like_to_regex


@pytest.fixture()
def db():
    db = Database()
    t = db.create_table(TableSchema("t", [
        ColumnDef("i", integer()),
        ColumnDef("f", decimal()),
        ColumnDef("s", varchar(30)),
        ColumnDef("d", date()),
    ]))
    from repro.engine.types import parse_date

    t.append_rows([
        [5, 2.5, "Hello World", parse_date("2000-03-15")],
        [-3, 0.4, "abc", parse_date("1999-12-31")],
        [None, None, None, None],
    ])
    return db


def one(db, expr):
    return db.execute(f"SELECT {expr} FROM t WHERE i = 5").rows()[0][0]


class TestScalarFunctions:
    def test_substr(self, db):
        assert one(db, "SUBSTR(s, 1, 5)") == "Hello"

    def test_substr_no_length(self, db):
        assert one(db, "SUBSTR(s, 7)") == "World"

    def test_upper_lower(self, db):
        assert one(db, "UPPER(s)") == "HELLO WORLD"
        assert one(db, "LOWER(s)") == "hello world"

    def test_length(self, db):
        assert one(db, "LENGTH(s)") == 11

    def test_trim(self, db):
        assert one(db, "TRIM('  x  ')") == "x"

    def test_abs(self, db):
        out = db.execute("SELECT ABS(i) FROM t WHERE i = -3").rows()
        assert out == [(3,)]

    def test_round(self, db):
        assert one(db, "ROUND(f + 0.06, 1)") == pytest.approx(2.6)

    def test_floor_ceil(self, db):
        assert one(db, "FLOOR(f)") == 2
        assert one(db, "CEIL(f)") == 3

    def test_mod(self, db):
        assert one(db, "MOD(i, 3)") == 2

    def test_mod_by_zero_null(self, db):
        assert one(db, "MOD(i, 0)") is None

    def test_power_sqrt(self, db):
        assert one(db, "POWER(i, 2)") == 25.0
        assert one(db, "SQRT(25)") == 5.0

    def test_sqrt_negative_null(self, db):
        assert one(db, "SQRT(-1)") is None

    def test_coalesce(self, db):
        out = db.execute("SELECT COALESCE(i, 0) FROM t WHERE i IS NULL").rows()
        assert out == [(0,)]

    def test_coalesce_multi(self, db):
        out = db.execute("SELECT COALESCE(i, f, -1) FROM t WHERE i IS NULL").rows()
        assert out == [(-1.0,)]

    def test_nullif(self, db):
        assert one(db, "NULLIF(i, 5)") is None
        assert one(db, "NULLIF(i, 6)") == 5

    def test_least_greatest(self, db):
        assert one(db, "LEAST(i, 3)") == 3
        assert one(db, "GREATEST(i, 3)") == 5

    def test_year_month_day(self, db):
        assert one(db, "YEAR(d)") == 2000
        assert one(db, "MONTH(d)") == 3
        assert one(db, "DAY(d)") == 15

    def test_null_propagates_through_functions(self, db):
        out = db.execute("SELECT UPPER(s), ABS(i) FROM t WHERE s IS NULL").rows()
        assert out == [(None, None)]


class TestCasts:
    def test_int_to_float(self, db):
        assert one(db, "CAST(i AS double)") == 5.0

    def test_float_to_int(self, db):
        assert one(db, "CAST(f AS integer)") == 2

    def test_string_to_int(self, db):
        assert one(db, "CAST('42' AS integer)") == 42

    def test_int_to_string(self, db):
        assert one(db, "CAST(i AS varchar)") == "5"

    def test_string_to_date(self, db):
        from repro.engine.types import parse_date

        assert one(db, "CAST('2001-07-04' AS date)") == parse_date("2001-07-04")

    def test_date_to_string(self, db):
        assert one(db, "CAST(d AS varchar)") == "2000-03-15"

    def test_bad_cast_target(self, db):
        with pytest.raises(TypeError_):
            db.execute("SELECT CAST(i AS blob) FROM t")


class TestDates:
    def test_date_literal_comparison(self, db):
        out = db.execute("SELECT COUNT(*) FROM t WHERE d >= DATE '2000-01-01'").rows()
        assert out == [(1,)]

    def test_date_arithmetic(self, db):
        out = db.execute(
            "SELECT COUNT(*) FROM t WHERE d BETWEEN DATE '2000-03-01' AND DATE '2000-03-01' + 30"
        ).rows()
        assert out == [(1,)]

    def test_date_difference(self, db):
        out = db.execute(
            "SELECT MAX(d) - MIN(d) FROM t"
        ).rows()
        assert out == [(75,)]  # 1999-12-31 .. 2000-03-15


class TestLike:
    @pytest.mark.parametrize("pattern,text,matches", [
        ("abc", "abc", True),
        ("a%", "abc", True),
        ("%c", "abc", True),
        ("a_c", "abc", True),
        ("a_c", "abbc", False),
        ("%b%", "abc", True),
        ("", "", True),
        ("a.c", "abc", False),  # dot is literal
    ])
    def test_patterns(self, pattern, text, matches):
        assert bool(like_to_regex(pattern).match(text)) is matches

    def test_like_on_null_is_dropped(self, db):
        out = db.execute("SELECT COUNT(*) FROM t WHERE s LIKE '%'").rows()
        assert out == [(2,)]

    def test_not_like(self, db):
        out = db.execute("SELECT COUNT(*) FROM t WHERE s NOT LIKE 'H%'").rows()
        assert out == [(1,)]

    def test_like_requires_literal(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT 1 FROM t WHERE s LIKE s")


class TestLikeEscape:
    @pytest.mark.parametrize("pattern,escape,text,matches", [
        ("100!%", "!", "100%", True),     # escaped % is literal
        ("100!%", "!", "1000", False),
        ("a!_c", "!", "a_c", True),       # escaped _ is literal
        ("a!_c", "!", "abc", False),
        ("a!!%", "!", "a!b", True),       # doubled escape is a literal escape
        ("50\\%%", "\\", "50% off", True),
    ])
    def test_escape_patterns(self, pattern, escape, text, matches):
        assert bool(like_to_regex(pattern, escape).match(text)) is matches

    def test_escape_in_sql(self, db):
        out = db.execute(
            "SELECT COUNT(*) FROM t WHERE s LIKE 'Hello!_World' ESCAPE '!'"
        ).rows()
        assert out == [(0,)]  # literal underscore does not match the space
        out = db.execute(
            "SELECT COUNT(*) FROM t WHERE s LIKE 'Hello_World'"
        ).rows()
        assert out == [(1,)]  # plain _ is still a wildcard

    def test_escape_requires_single_char(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT 1 FROM t WHERE s LIKE 'a%' ESCAPE '!!'")

    def test_trailing_escape_raises(self):
        from repro.engine.errors import ExecutionError

        with pytest.raises(ExecutionError):
            like_to_regex("abc!", "!")

    def test_compiled_patterns_are_memoized(self):
        before = like_to_regex.cache_info().hits
        assert like_to_regex("memo%", "!") is like_to_regex("memo%", "!")
        assert like_to_regex.cache_info().hits > before


class TestCastEdgeCases:
    def test_negative_float_truncates_toward_zero(self, db):
        assert one(db, "CAST(0 - 3.7 AS integer)") == -3
        assert one(db, "CAST(3.7 AS integer)") == 3

    def test_negative_string_truncates_toward_zero(self, db):
        assert one(db, "CAST('-3.7' AS integer)") == -3

    def test_null_slots_masked_before_int_conversion(self, db):
        # f / 0 produces NULL slots whose backing data is NaN; the cast
        # must mask them before the int64 conversion (NaN -> int64 is UB)
        out = db.execute("SELECT CAST(f / 0 AS integer) FROM t").rows()
        assert out == [(None,), (None,), (None,)]

    def test_cast_null_row_stays_null(self, db):
        out = db.execute("SELECT CAST(f AS integer) FROM t WHERE i IS NULL").rows()
        assert out == [(None,)]


class TestModSign:
    def test_negative_dividend(self, db):
        # SQL standard (and SQLite %): result takes the dividend's sign
        assert one(db, "MOD(0 - 7, 3)") == -1

    def test_negative_divisor(self, db):
        assert one(db, "MOD(7, 0 - 3)") == 1


class TestScalarSubqueryCardinality:
    def test_multi_row_subquery_raises_with_count(self, db):
        from repro.engine.errors import ExecutionError

        with pytest.raises(ExecutionError, match="scalar subquery returned 3 rows"):
            db.execute("SELECT (SELECT i FROM t) FROM t")

    def test_empty_subquery_yields_null(self, db):
        out = db.execute(
            "SELECT (SELECT i FROM t WHERE i = 999) FROM t WHERE i = 5"
        ).rows()
        assert out == [(None,)]

    def test_single_row_subquery_is_scalar(self, db):
        out = db.execute(
            "SELECT (SELECT MAX(i) FROM t) FROM t WHERE i = 5"
        ).rows()
        assert out == [(5,)]
