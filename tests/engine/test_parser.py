"""Parser unit tests: AST shapes for the SQL subset."""

import pytest

from repro.engine.errors import SqlSyntaxError
from repro.engine.sql import ast_nodes as A
from repro.engine.sql.parser import parse_query, parse_statement


def body(sql) -> A.SelectCore:
    query = parse_query(sql)
    assert isinstance(query.body, A.SelectCore)
    return query.body


class TestSelectCore:
    def test_simple_select(self):
        core = body("SELECT a, b FROM t")
        assert len(core.items) == 2
        assert isinstance(core.from_[0], A.NamedTable)

    def test_select_star(self):
        core = body("SELECT * FROM t")
        assert isinstance(core.items[0].expr, A.Star)

    def test_qualified_star(self):
        core = body("SELECT t.* FROM t")
        assert core.items[0].expr == A.Star("t")

    def test_alias_with_as(self):
        core = body("SELECT a AS x FROM t")
        assert core.items[0].alias == "x"

    def test_alias_without_as(self):
        core = body("SELECT a x FROM t")
        assert core.items[0].alias == "x"

    def test_distinct(self):
        assert body("SELECT DISTINCT a FROM t").distinct

    def test_table_alias(self):
        core = body("SELECT 1 FROM t AS s")
        assert core.from_[0].alias == "s"

    def test_where(self):
        core = body("SELECT a FROM t WHERE a > 1")
        assert isinstance(core.where, A.BinaryOp)

    def test_group_by_and_having(self):
        core = body("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert len(core.group_by) == 1
        assert core.having is not None

    def test_group_by_rollup(self):
        core = body("SELECT a, b, SUM(c) FROM t GROUP BY ROLLUP(a, b)")
        assert core.group_rollup
        assert len(core.group_by) == 2

    def test_no_from(self):
        core = body("SELECT 1 + 1")
        assert core.from_ == ()


class TestJoins:
    def test_comma_join(self):
        core = body("SELECT 1 FROM a, b, c")
        assert len(core.from_) == 3

    def test_inner_join_on(self):
        core = body("SELECT 1 FROM a JOIN b ON a.x = b.y")
        ref = core.from_[0]
        assert isinstance(ref, A.JoinRef)
        assert ref.kind == "inner"

    @pytest.mark.parametrize("sql_kind,kind", [
        ("LEFT JOIN", "left"), ("LEFT OUTER JOIN", "left"),
        ("RIGHT JOIN", "right"), ("FULL OUTER JOIN", "full"),
        ("INNER JOIN", "inner"),
    ])
    def test_join_kinds(self, sql_kind, kind):
        core = body(f"SELECT 1 FROM a {sql_kind} b ON a.x = b.y")
        assert core.from_[0].kind == kind

    def test_cross_join(self):
        core = body("SELECT 1 FROM a CROSS JOIN b")
        assert core.from_[0].kind == "cross"
        assert core.from_[0].on is None

    def test_join_chain(self):
        core = body("SELECT 1 FROM a JOIN b ON a.x=b.x JOIN c ON b.y=c.y")
        outer = core.from_[0]
        assert isinstance(outer.left, A.JoinRef)

    def test_derived_table(self):
        core = body("SELECT 1 FROM (SELECT a FROM t) AS d")
        assert isinstance(core.from_[0], A.DerivedTable)
        assert core.from_[0].alias == "d"


class TestExpressions:
    def expr(self, text):
        return body(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_parenthesized(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*"

    def test_unary_minus(self):
        e = self.expr("-a")
        assert isinstance(e, A.UnaryOp) and e.op == "-"

    def test_and_or_precedence(self):
        core = body("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert core.where.op == "OR"

    def test_not(self):
        core = body("SELECT 1 FROM t WHERE NOT a = 1")
        assert isinstance(core.where, A.UnaryOp)

    def test_between(self):
        core = body("SELECT 1 FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(core.where, A.Between)

    def test_not_between(self):
        core = body("SELECT 1 FROM t WHERE a NOT BETWEEN 1 AND 10")
        assert core.where.negated

    def test_in_list(self):
        core = body("SELECT 1 FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(core.where, A.InList)
        assert len(core.where.items) == 3

    def test_in_subquery(self):
        core = body("SELECT 1 FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(core.where, A.InSubquery)

    def test_not_in(self):
        core = body("SELECT 1 FROM t WHERE a NOT IN (1)")
        assert core.where.negated

    def test_like(self):
        core = body("SELECT 1 FROM t WHERE a LIKE 'x%'")
        assert isinstance(core.where, A.Like)

    def test_is_null_and_is_not_null(self):
        assert not body("SELECT 1 FROM t WHERE a IS NULL").where.negated
        assert body("SELECT 1 FROM t WHERE a IS NOT NULL").where.negated

    def test_case_searched(self):
        e = self.expr("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(e, A.Case)
        assert e.else_ == A.Literal("y")

    def test_case_simple_rewritten_to_equality(self):
        e = self.expr("CASE a WHEN 1 THEN 'x' END")
        cond = e.whens[0][0]
        assert isinstance(cond, A.BinaryOp) and cond.op == "="

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT CASE END FROM t")

    def test_cast(self):
        e = self.expr("CAST(a AS integer)")
        assert isinstance(e, A.Cast)

    def test_cast_with_precision(self):
        e = self.expr("CAST(a AS decimal(7,2))")
        assert e.type_name == "decimal"

    def test_date_literal(self):
        e = self.expr("DATE '2000-01-02'")
        assert isinstance(e, A.Literal) and e.is_date

    def test_exists(self):
        core = body("SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(core.where, A.Exists)

    def test_scalar_subquery(self):
        e = self.expr("(SELECT MAX(x) FROM u)")
        assert isinstance(e, A.ScalarSubquery)

    def test_string_concat(self):
        e = self.expr("a || 'x'")
        assert e.op == "||"

    def test_neq_normalized(self):
        core = body("SELECT 1 FROM t WHERE a != 1")
        assert core.where.op == "<>"


class TestFunctions:
    def test_count_star(self):
        e = body("SELECT COUNT(*) FROM t").items[0].expr
        assert e.is_star

    def test_count_distinct(self):
        e = body("SELECT COUNT(DISTINCT a) FROM t").items[0].expr
        assert e.distinct

    def test_unknown_function_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT frobnicate(a) FROM t")

    def test_window_function(self):
        e = body("SELECT SUM(a) OVER (PARTITION BY b ORDER BY c DESC) FROM t").items[0].expr
        assert isinstance(e, A.WindowFunc)
        assert len(e.partition_by) == 1
        assert not e.order_by[0].ascending

    def test_rank_requires_over(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT RANK() FROM t")

    def test_rank_with_over(self):
        e = body("SELECT RANK() OVER (ORDER BY a) FROM t").items[0].expr
        assert isinstance(e, A.WindowFunc)

    def test_nested_aggregate_in_window(self):
        e = body("SELECT SUM(SUM(a)) OVER (PARTITION BY b) FROM t GROUP BY b").items[0].expr
        assert isinstance(e, A.WindowFunc)
        inner = e.func.args[0]
        assert isinstance(inner, A.FuncCall) and inner.name == "SUM"


class TestQueryLevel:
    def test_order_by_directions(self):
        q = parse_query("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert [k.ascending for k in q.order_by] == [False, True]

    def test_order_by_nulls(self):
        q = parse_query("SELECT a FROM t ORDER BY a NULLS FIRST, b DESC NULLS LAST")
        assert q.order_by[0].nulls_first is True
        assert q.order_by[1].nulls_first is False

    def test_limit_offset(self):
        q = parse_query("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert (q.limit, q.offset) == (10, 5)

    def test_ctes(self):
        q = parse_query("WITH x AS (SELECT 1), y AS (SELECT 2) SELECT * FROM x, y")
        assert [c.name for c in q.ctes] == ["x", "y"]

    def test_union_all(self):
        q = parse_query("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert q.body.op == "union_all"

    def test_intersect_binds_tighter_than_union(self):
        q = parse_query("SELECT 1 UNION SELECT 2 INTERSECT SELECT 3")
        assert q.body.op == "union"
        assert q.body.right.op == "intersect"

    def test_except(self):
        q = parse_query("SELECT a FROM t EXCEPT SELECT b FROM u")
        assert q.body.op == "except"

    def test_trailing_semicolon(self):
        parse_query("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT 1 SELECT 2")


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, A.Insert)
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert stmt.query is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, A.Delete)
        assert stmt.where is not None

    def test_delete_all(self):
        stmt = parse_statement("DELETE FROM t")
        assert stmt.where is None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert isinstance(stmt, A.Update)
        assert len(stmt.assignments) == 2

    def test_parse_query_rejects_dml(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("DELETE FROM t")


class TestWalk:
    def test_walk_yields_nested(self):
        core = body("SELECT a + b * c FROM t")
        names = {n.name for n in A.walk(core.items[0].expr) if isinstance(n, A.ColumnRef)}
        assert names == {"a", "b", "c"}

    def test_contains_aggregate_plain(self):
        core = body("SELECT SUM(a) FROM t")
        assert A.contains_aggregate(core.items[0].expr)

    def test_window_alone_is_not_plain_aggregate(self):
        core = body("SELECT SUM(a) OVER (PARTITION BY b) FROM t")
        assert not A.contains_aggregate(core.items[0].expr)

    def test_aggregate_inside_window_detected(self):
        core = body("SELECT SUM(SUM(a)) OVER (PARTITION BY b) FROM t GROUP BY b")
        assert A.contains_aggregate(core.items[0].expr)
