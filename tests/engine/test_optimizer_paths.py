"""Optimizer combinations not covered by the main optimizer tests:
star transformation with reordering disabled (the rebuild-in-order
path), shared-CTE optimization, and estimate sanity."""

import pytest

from repro.engine import OptimizerSettings
from repro.engine import plan as P
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.sql.parser import parse_query


def plan_for(db, sql, settings):
    node = Planner(db.catalog).plan_query(parse_query(sql))
    return Optimizer(db.catalog, settings).optimize(node)


def find_nodes(node, cls):
    found = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, cls):
            found.append(current)
        stack.extend(current.children())
    return found


STAR_SQL = """
    SELECT COUNT(*) FROM catalog_sales, date_dim
    WHERE cs_sold_date_sk = d_date_sk AND d_year = 1998 AND d_moy = 12
"""


class TestStarWithoutReorder:
    @pytest.fixture()
    def star_db(self, loaded_db):
        loaded_db.create_index("catalog_sales", "cs_sold_date_sk", "bitmap")
        return loaded_db

    def test_rebuild_in_order_keeps_star(self, star_db):
        settings = OptimizerSettings(
            enable_join_reorder=False, star_fact_threshold=100
        )
        plan = plan_for(star_db, STAR_SQL, settings)
        assert find_nodes(plan, P.StarFilter), plan.explain()

    def test_rebuild_in_order_correct(self, star_db):
        saved = star_db.optimizer_settings
        try:
            star_db.optimizer_settings = OptimizerSettings(
                enable_join_reorder=False, star_fact_threshold=100
            )
            with_star = star_db.execute(STAR_SQL).scalar()
            star_db.optimizer_settings = OptimizerSettings(
                enable_star_transformation=False
            )
            without = star_db.execute(STAR_SQL).scalar()
        finally:
            star_db.optimizer_settings = saved
        assert with_star == without

    def test_star_skipped_when_dim_unselective(self, star_db):
        settings = OptimizerSettings(
            star_fact_threshold=100, star_dim_selectivity=1e-12
        )
        plan = plan_for(star_db, STAR_SQL, settings)
        assert not find_nodes(plan, P.StarFilter)


class TestSharedCtes:
    def test_cte_subtree_shared_after_optimization(self, simple_db):
        plan = plan_for(simple_db, """
            WITH s AS (SELECT item_sk, price FROM sales WHERE price > 5)
            SELECT a.item_sk FROM s a, s b WHERE a.item_sk = b.item_sk
        """, OptimizerSettings())
        renames = find_nodes(plan, P.Rename)
        assert len(renames) == 2
        assert renames[0].child is renames[1].child  # one shared subtree


class TestEstimates:
    def test_scan_estimate_reflects_filters(self, loaded_db):
        settings = OptimizerSettings()
        optimizer = Optimizer(loaded_db.catalog, settings)
        unfiltered = P.Scan("store_sales", "store_sales")
        filtered = plan_for(
            loaded_db,
            "SELECT COUNT(*) FROM store_sales WHERE ss_quantity = 5",
            settings,
        )
        scans = find_nodes(filtered, P.Scan)
        assert scans and scans[0].pushed_filters
        assert optimizer._estimate_rows(scans[0]) < optimizer._estimate_rows(unfiltered)

    def test_join_estimate_max_of_sides(self, loaded_db):
        optimizer = Optimizer(loaded_db.catalog, OptimizerSettings())
        plan = plan_for(
            loaded_db,
            "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk",
            OptimizerSettings(),
        )
        join = find_nodes(plan, P.Join)[0]
        estimate = optimizer._estimate_rows(join)
        fact = loaded_db.table("store_sales").num_rows
        assert estimate == pytest.approx(fact, rel=0.01)
