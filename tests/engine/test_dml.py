"""INSERT / UPDATE / DELETE and constraint behavior."""

import pytest

from repro.engine import (
    ColumnDef,
    ConstraintError,
    Database,
    ExecutionError,
    TableSchema,
    decimal,
    integer,
    varchar,
)


@pytest.fixture()
def db():
    db = Database()
    db.create_table(TableSchema("t", [
        ColumnDef("a", integer(), nullable=False),
        ColumnDef("b", varchar(10)),
        ColumnDef("c", decimal()),
    ]))
    return db


class TestInsert:
    def test_insert_values(self, db):
        result = db.execute("INSERT INTO t VALUES (1, 'x', 1.5), (2, 'y', 2.5)")
        assert result.rowcount == 2
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_insert_with_column_list_fills_nulls(self, db):
        db.execute("INSERT INTO t (a) VALUES (7)")
        assert db.execute("SELECT a, b, c FROM t").rows() == [(7, None, None)]

    def test_insert_expression_values(self, db):
        db.execute("INSERT INTO t VALUES (1 + 2, UPPER('ab'), 10.0 / 4)")
        assert db.execute("SELECT * FROM t").rows() == [(3, "AB", 2.5)]

    def test_insert_select(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0), (2, 'y', 2.0)")
        db.execute("INSERT INTO t SELECT a + 10, b, c * 2 FROM t")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 4
        assert db.execute("SELECT MAX(a) FROM t").scalar() == 12

    def test_insert_not_null_violation(self, db):
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO t VALUES (NULL, 'x', 1.0)")

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t VALUES (1, 'x')")

    def test_insert_int_coerces_to_decimal_column(self, db):
        db.execute("INSERT INTO t (a, c) VALUES (1, 3)")
        assert db.execute("SELECT c FROM t").rows() == [(3.0,)]


class TestUpdate:
    def test_update_where(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0), (2, 'y', 2.0)")
        result = db.execute("UPDATE t SET b = 'z' WHERE a = 2")
        assert result.rowcount == 1
        assert db.execute("SELECT b FROM t ORDER BY a").rows() == [("x",), ("z",)]

    def test_update_expression_uses_old_values(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 10.0)")
        db.execute("UPDATE t SET c = c * 2 + a")
        assert db.execute("SELECT c FROM t").scalar() == 21.0

    def test_update_to_null(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        db.execute("UPDATE t SET b = NULL")
        assert db.execute("SELECT b FROM t").rows() == [(None,)]

    def test_update_no_match(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        assert db.execute("UPDATE t SET b = 'q' WHERE a = 99").rowcount == 0

    def test_update_multiple_assignments(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        db.execute("UPDATE t SET b = 'n', c = 9.0 WHERE a = 1")
        assert db.execute("SELECT b, c FROM t").rows() == [("n", 9.0)]


class TestDelete:
    def test_delete_where(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0), (2, 'y', 2.0), (3, 'z', 3.0)")
        result = db.execute("DELETE FROM t WHERE c >= 2.0")
        assert result.rowcount == 2
        assert db.execute("SELECT a FROM t").rows() == [(1,)]

    def test_delete_all(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        db.execute("DELETE FROM t")
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_delete_with_subquery(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0), (2, 'y', 5.0)")
        db.execute("DELETE FROM t WHERE c > (SELECT AVG(c) FROM t)")
        assert db.execute("SELECT a FROM t").rows() == [(1,)]

    def test_queries_see_mutations(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        db.execute("DELETE FROM t")
        db.execute("INSERT INTO t VALUES (9, 'n', 0.5)")
        assert db.execute("SELECT a FROM t").rows() == [(9,)]


class TestResultApi:
    def test_scalar_requires_1x1(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0), (2, 'y', 2.0)")
        with pytest.raises(ExecutionError):
            db.execute("SELECT a FROM t").scalar()

    def test_column_access(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0), (2, 'y', 2.0)")
        result = db.execute("SELECT a, b FROM t ORDER BY a")
        assert result.column("a") == [1, 2]

    def test_to_text(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x', 1.0)")
        text = db.execute("SELECT a, b FROM t").to_text()
        assert "a | b" in text and "1 | x" in text
