"""Statistics gathering and selectivity estimation."""

import pytest

from repro.engine.sql.parser import parse_query
from repro.engine.stats import (
    ColumnStats,
    TableStats,
    conjunction_selectivity,
    estimate_selectivity,
    gather_statistics,
)


def predicate(sql_condition):
    query = parse_query(f"SELECT 1 FROM t WHERE {sql_condition}")
    return query.body.where


class TestGather:
    def test_row_count_and_ndv(self, simple_db):
        stats = gather_statistics(simple_db.table("sales"))
        assert stats.row_count == 6
        assert stats.columns["item_sk"].ndv == 3
        assert stats.columns["cust_sk"].ndv == 3

    def test_null_fraction(self, simple_db):
        stats = gather_statistics(simple_db.table("sales"))
        assert stats.columns["item_sk"].null_fraction == pytest.approx(1 / 6)

    def test_min_max(self, simple_db):
        stats = gather_statistics(simple_db.table("sales"))
        assert stats.columns["price"].min_value == 5.0
        assert stats.columns["price"].max_value == 25.0

    def test_string_columns_have_no_min_max(self, simple_db):
        stats = gather_statistics(simple_db.table("item"))
        assert stats.columns["i_brand"].min_value is None
        assert stats.columns["i_brand"].ndv == 4

    def test_catalog_caches_stats(self, simple_db):
        assert simple_db.catalog.stats("sales") is not None
        assert simple_db.catalog.stats("missing_table") is None


class TestSelectivity:
    @pytest.fixture()
    def stats(self, simple_db):
        return gather_statistics(simple_db.table("sales"))

    def test_equality_uses_ndv(self, stats):
        sel = estimate_selectivity(predicate("item_sk = 1"), stats, "sales")
        assert sel == pytest.approx(1 / 3)

    def test_range_interpolates(self, stats):
        sel = estimate_selectivity(predicate("price < 15"), stats, "sales")
        assert 0 < sel < 1
        wider = estimate_selectivity(predicate("price < 25"), stats, "sales")
        assert wider >= sel

    def test_between_width(self, stats):
        narrow = estimate_selectivity(predicate("price BETWEEN 10 AND 11"), stats, "sales")
        wide = estimate_selectivity(predicate("price BETWEEN 5 AND 25"), stats, "sales")
        assert narrow < wide

    def test_in_list_scales_with_length(self, stats):
        one = estimate_selectivity(predicate("item_sk IN (1)"), stats, "sales")
        three = estimate_selectivity(predicate("item_sk IN (1, 2, 3)"), stats, "sales")
        assert three == pytest.approx(3 * one)

    def test_and_uses_exponential_backoff(self, stats):
        a = estimate_selectivity(predicate("item_sk = 1"), stats, "sales")
        b = estimate_selectivity(predicate("cust_sk = 10"), stats, "sales")
        both = estimate_selectivity(predicate("item_sk = 1 AND cust_sk = 10"), stats, "sales")
        # s0 * s1^(1/2) with conjuncts sorted ascending — dampened, so
        # between pure independence (a*b) and the most selective conjunct
        assert both == pytest.approx(min(a, b) * max(a, b) ** 0.5)
        assert a * b < both <= min(a, b)

    def test_backoff_exponents_halve_per_conjunct(self):
        sels = [0.5, 0.2, 0.1]
        expected = 0.1 * 0.2 ** 0.5 * 0.5 ** 0.25
        assert conjunction_selectivity(sels) == pytest.approx(expected)
        assert conjunction_selectivity([]) == 1.0
        assert conjunction_selectivity([2.0, -1.0]) <= 1.0

    def test_or_adds_with_overlap(self, stats):
        a = estimate_selectivity(predicate("item_sk = 1"), stats, "sales")
        either = estimate_selectivity(predicate("item_sk = 1 OR item_sk = 2"), stats, "sales")
        assert a < either <= 1.0

    def test_or_clamped_to_one(self, stats):
        either = estimate_selectivity(
            predicate("price BETWEEN 0 AND 99999 OR qty >= 0"), stats, "sales"
        )
        assert either <= 1.0

    def test_is_null_uses_null_fraction(self, stats):
        sel = estimate_selectivity(predicate("item_sk IS NULL"), stats, "sales")
        assert sel == pytest.approx(1 / 6)

    def test_not_inverts(self, stats):
        sel = estimate_selectivity(predicate("NOT item_sk = 1"), stats, "sales")
        assert sel == pytest.approx(1 - 1 / 3)

    def test_missing_stats_fall_back(self):
        sel = estimate_selectivity(predicate("a = 1"), None, "t")
        assert 0 < sel < 1

    def test_missing_stats_use_system_r_defaults(self):
        assert estimate_selectivity(predicate("a = 1"), None, "t") == 0.05
        assert estimate_selectivity(predicate("a < 10"), None, "t") == 0.25
        assert estimate_selectivity(predicate("a LIKE 'x%'"), None, "t") == 0.1
        # a column the stats object does not cover also falls back
        stats = TableStats(row_count=10, columns={})
        assert estimate_selectivity(predicate("nope = 1"), stats, "t") == 0.05

    def test_null_heavy_column(self):
        stats = TableStats(
            row_count=100,
            columns={"c": ColumnStats(ndv=2, null_fraction=0.95)},
        )
        assert estimate_selectivity(
            predicate("c IS NULL"), stats, "t"
        ) == pytest.approx(0.95)
        assert estimate_selectivity(
            predicate("c IS NOT NULL"), stats, "t"
        ) == pytest.approx(0.05)

    def test_selectivity_bounded(self, stats):
        sel = estimate_selectivity(predicate("price BETWEEN 0 AND 99999"), stats, "sales")
        assert sel <= 1.0


class TestJoinEstimate:
    """The NDV-based equi-join cardinality estimate on the optimizer."""

    @staticmethod
    def _tiny_db(gather: bool):
        from repro.engine import ColumnDef, Database, TableSchema, integer

        db = Database()
        fact = db.create_table(TableSchema("f", [ColumnDef("k", integer())]))
        dim = db.create_table(TableSchema("d", [ColumnDef("dk", integer())]))
        fact.append_rows([[1], [1], [2], [2], [3], [3]])
        dim.append_rows([[1], [1], [2], [3]])
        if gather:
            db.gather_stats()
        return db

    @staticmethod
    def _join_estimate(db):
        from repro.engine import plan as P

        plan = db._plan(parse_query("SELECT * FROM f, d WHERE k = dk"))
        join = next(n for n in plan.walk() if isinstance(n, P.Join))
        return join.estimated_rows

    def test_equi_join_uses_ndv(self):
        db = self._tiny_db(gather=True)
        # |f| * |d| / max(ndv(k)=3, ndv(dk)=3) = 6 * 4 / 3
        assert self._join_estimate(db) == pytest.approx(8.0)

    def test_equi_join_falls_back_without_ndv(self):
        db = self._tiny_db(gather=False)
        # no gathered stats: the old max(left, right) estimate
        assert self._join_estimate(db) == pytest.approx(6.0)
