"""Statistics gathering and selectivity estimation."""

import pytest

from repro.engine.sql.parser import parse_query
from repro.engine.stats import estimate_selectivity, gather_statistics


def predicate(sql_condition):
    query = parse_query(f"SELECT 1 FROM t WHERE {sql_condition}")
    return query.body.where


class TestGather:
    def test_row_count_and_ndv(self, simple_db):
        stats = gather_statistics(simple_db.table("sales"))
        assert stats.row_count == 6
        assert stats.columns["item_sk"].ndv == 3
        assert stats.columns["cust_sk"].ndv == 3

    def test_null_fraction(self, simple_db):
        stats = gather_statistics(simple_db.table("sales"))
        assert stats.columns["item_sk"].null_fraction == pytest.approx(1 / 6)

    def test_min_max(self, simple_db):
        stats = gather_statistics(simple_db.table("sales"))
        assert stats.columns["price"].min_value == 5.0
        assert stats.columns["price"].max_value == 25.0

    def test_string_columns_have_no_min_max(self, simple_db):
        stats = gather_statistics(simple_db.table("item"))
        assert stats.columns["i_brand"].min_value is None
        assert stats.columns["i_brand"].ndv == 4

    def test_catalog_caches_stats(self, simple_db):
        assert simple_db.catalog.stats("sales") is not None
        assert simple_db.catalog.stats("missing_table") is None


class TestSelectivity:
    @pytest.fixture()
    def stats(self, simple_db):
        return gather_statistics(simple_db.table("sales"))

    def test_equality_uses_ndv(self, stats):
        sel = estimate_selectivity(predicate("item_sk = 1"), stats, "sales")
        assert sel == pytest.approx(1 / 3)

    def test_range_interpolates(self, stats):
        sel = estimate_selectivity(predicate("price < 15"), stats, "sales")
        assert 0 < sel < 1
        wider = estimate_selectivity(predicate("price < 25"), stats, "sales")
        assert wider >= sel

    def test_between_width(self, stats):
        narrow = estimate_selectivity(predicate("price BETWEEN 10 AND 11"), stats, "sales")
        wide = estimate_selectivity(predicate("price BETWEEN 5 AND 25"), stats, "sales")
        assert narrow < wide

    def test_in_list_scales_with_length(self, stats):
        one = estimate_selectivity(predicate("item_sk IN (1)"), stats, "sales")
        three = estimate_selectivity(predicate("item_sk IN (1, 2, 3)"), stats, "sales")
        assert three == pytest.approx(3 * one)

    def test_and_multiplies(self, stats):
        a = estimate_selectivity(predicate("item_sk = 1"), stats, "sales")
        b = estimate_selectivity(predicate("cust_sk = 10"), stats, "sales")
        both = estimate_selectivity(predicate("item_sk = 1 AND cust_sk = 10"), stats, "sales")
        assert both == pytest.approx(a * b)

    def test_or_adds_with_overlap(self, stats):
        a = estimate_selectivity(predicate("item_sk = 1"), stats, "sales")
        either = estimate_selectivity(predicate("item_sk = 1 OR item_sk = 2"), stats, "sales")
        assert a < either <= 1.0

    def test_is_null_uses_null_fraction(self, stats):
        sel = estimate_selectivity(predicate("item_sk IS NULL"), stats, "sales")
        assert sel == pytest.approx(1 / 6)

    def test_not_inverts(self, stats):
        sel = estimate_selectivity(predicate("NOT item_sk = 1"), stats, "sales")
        assert sel == pytest.approx(1 - 1 / 3)

    def test_missing_stats_fall_back(self):
        sel = estimate_selectivity(predicate("a = 1"), None, "t")
        assert 0 < sel < 1

    def test_selectivity_bounded(self, stats):
        sel = estimate_selectivity(predicate("price BETWEEN 0 AND 99999"), stats, "sales")
        assert sel <= 1.0
