"""Schema tests — the structure behind Table 1 and Figure 1."""

import pytest

from repro.schema import (
    AD_HOC_TABLES,
    ALL_TABLES,
    DIMENSION_TABLES,
    FACT_TABLES,
    HISTORY_DIMENSIONS,
    NONHISTORY_DIMENSIONS,
    PAPER_TABLE_1,
    REPORTING_TABLES,
    SALES_RETURNS_LINKS,
    STATIC_DIMENSIONS,
    schema_statistics,
    snowflake_graph,
)


class TestTable1:
    """Table 1: Schema Statistics."""

    def test_fact_table_count(self):
        assert len(FACT_TABLES) == PAPER_TABLE_1.fact_tables == 7

    def test_dimension_table_count(self):
        assert len(DIMENSION_TABLES) == PAPER_TABLE_1.dimension_tables == 17

    def test_24_tables_total(self):
        assert len(ALL_TABLES) == 24

    def test_column_min(self):
        stats = schema_statistics()
        assert stats.columns_min == PAPER_TABLE_1.columns_min == 3

    def test_column_max(self):
        stats = schema_statistics()
        assert stats.columns_max == PAPER_TABLE_1.columns_max == 34

    def test_column_avg_close_to_18(self):
        stats = schema_statistics()
        assert stats.columns_avg == pytest.approx(18, abs=0.5)

    def test_foreign_key_count(self):
        assert schema_statistics().foreign_keys == PAPER_TABLE_1.foreign_keys == 104

    def test_min_columns_is_income_band_and_reason(self):
        three_col = [t.name for t in ALL_TABLES.values() if len(t.columns) == 3]
        assert "income_band" in three_col

    def test_max_columns_are_the_big_sales_facts(self):
        widest = [t.name for t in ALL_TABLES.values() if len(t.columns) == 34]
        assert set(widest) == {"catalog_sales", "web_sales"}


class TestStructure:
    def test_every_fact_references_date_dim(self):
        for name, schema in FACT_TABLES.items():
            assert any(ref == "date_dim" for _, ref in schema.foreign_keys), name

    def test_every_dimension_has_single_pk(self):
        for name, schema in DIMENSION_TABLES.items():
            assert len(schema.primary_key) == 1, name

    def test_fact_tables_have_no_pk(self):
        for name, schema in FACT_TABLES.items():
            assert schema.primary_key == [], name

    def test_fk_targets_exist(self):
        for schema in ALL_TABLES.values():
            for column, target in schema.foreign_keys:
                assert target in ALL_TABLES, (schema.name, column, target)

    def test_store_sales_double_address_role(self):
        """§2.2: customer_address is referenced both from the fact table
        and from the customer dimension (the circular relationship)."""
        ss_targets = dict(FACT_TABLES["store_sales"].foreign_keys)
        assert ss_targets["ss_addr_sk"] == "customer_address"
        c_targets = dict(DIMENSION_TABLES["customer"].foreign_keys)
        assert c_targets["c_current_addr_sk"] == "customer_address"

    def test_demographics_snowflake_chain(self):
        """household_demographics -> income_band normalization (§2.2)."""
        hd = dict(DIMENSION_TABLES["household_demographics"].foreign_keys)
        assert hd["hd_income_band_sk"] == "income_band"

    def test_sales_returns_links(self):
        for sales, (returns, order_link, item_link) in SALES_RETURNS_LINKS.items():
            assert ALL_TABLES[sales].has_column(order_link[0])
            assert ALL_TABLES[returns].has_column(order_link[1])
            assert ALL_TABLES[sales].has_column(item_link[0])
            assert ALL_TABLES[returns].has_column(item_link[1])

    def test_reason_only_on_returns(self):
        """§2.2: the reason dimension is added only to return facts."""
        assert any(ref == "reason" for _, ref in FACT_TABLES["store_returns"].foreign_keys)
        assert not any(ref == "reason" for _, ref in FACT_TABLES["store_sales"].foreign_keys)

    def test_business_keys_on_maintainable_dims(self):
        for name in HISTORY_DIMENSIONS:
            schema = ALL_TABLES[name]
            assert any(c.business_key for c in schema.columns), name

    def test_column_names_globally_unique(self):
        seen = {}
        for schema in ALL_TABLES.values():
            for column in schema.columns:
                assert column.name not in seen, (column.name, schema.name, seen.get(column.name))
                seen[column.name] = schema.name


class TestChannelPartition:
    def test_catalog_channel_is_reporting(self):
        assert "catalog_sales" in REPORTING_TABLES
        assert "catalog_returns" in REPORTING_TABLES

    def test_store_and_web_are_adhoc(self):
        assert {"store_sales", "web_sales"} <= AD_HOC_TABLES

    def test_partition_disjoint(self):
        assert not (REPORTING_TABLES & AD_HOC_TABLES)


class TestScdClassification:
    def test_static_dimensions(self):
        assert {"date_dim", "time_dim", "reason"} <= STATIC_DIMENSIONS

    def test_history_dimensions_have_rec_dates(self):
        for name in HISTORY_DIMENSIONS:
            columns = ALL_TABLES[name].column_names
            assert any("rec_start_date" in c for c in columns), name
            assert any("rec_end_date" in c for c in columns), name

    def test_classification_partitions_dimensions(self):
        union = STATIC_DIMENSIONS | HISTORY_DIMENSIONS | NONHISTORY_DIMENSIONS
        assert union == set(DIMENSION_TABLES)
        assert not (STATIC_DIMENSIONS & HISTORY_DIMENSIONS)
        assert not (STATIC_DIMENSIONS & NONHISTORY_DIMENSIONS)
        assert not (HISTORY_DIMENSIONS & NONHISTORY_DIMENSIONS)


class TestSnowflakeGraph:
    """Figure 1: the store-sales snowflake, as graph structure."""

    def test_graph_shape(self):
        graph = snowflake_graph()
        assert graph.number_of_nodes() == 24
        assert graph.number_of_edges() > 0

    def test_store_sales_neighborhood(self):
        graph = snowflake_graph()
        targets = set(graph.successors("store_sales"))
        assert {"date_dim", "time_dim", "item", "customer", "customer_address",
                "customer_demographics", "household_demographics", "store",
                "promotion"} <= targets

    def test_snowflake_depth_two(self):
        """customer -> customer_address etc. make it a snowflake, not a star."""
        graph = snowflake_graph()
        assert graph.has_edge("customer", "customer_address")
        assert graph.has_edge("household_demographics", "income_band")

    def test_fact_nodes_marked(self):
        graph = snowflake_graph()
        assert graph.nodes["store_sales"]["kind"] == "fact"
        assert graph.nodes["item"]["kind"] == "dimension"
