"""Cross-cutting proportions the paper states about the workload and
data set, checked against the scaling model and the generated data."""

import pytest

from repro.dsdgen import ScalingModel
from repro.qgen import build_catalog
from repro.schema import REPORTING_TABLES


class TestChannelProportions:
    def test_catalog_channel_about_quarter_of_sales_data(self):
        """§5.3: the catalog channel 'represents 25% of the data set'."""
        model = ScalingModel(100)
        sales_rows = {
            "store": model.rows("store_sales") + model.rows("store_returns"),
            "catalog": model.rows("catalog_sales") + model.rows("catalog_returns"),
            "web": model.rows("web_sales") + model.rows("web_returns"),
        }
        total = sum(sales_rows.values())
        catalog_share = sales_rows["catalog"] / total
        assert catalog_share == pytest.approx(0.25, abs=0.05)

    def test_store_channel_dominates(self):
        model = ScalingModel(100)
        assert model.rows("store_sales") > model.rows("catalog_sales") > model.rows("web_sales")

    def test_returns_are_about_five_to_ten_percent(self):
        model = ScalingModel(100)
        for channel in ("store", "catalog", "web"):
            ratio = model.rows(f"{channel}_returns") / model.rows(f"{channel}_sales")
            assert 0.03 < ratio < 0.12, channel


class TestWorkloadProportions:
    templates = build_catalog()

    def test_reporting_part_is_minority(self):
        """Most queries are ad-hoc; the reporting (catalog-only) part is
        the smaller share, matching the 25% data share."""
        reporting = [t for t in self.templates if t.channel_part == "reporting"]
        assert 0.15 <= len(reporting) / 99 <= 0.45

    def test_each_channel_has_dedicated_queries(self):
        by_channel = {"store_sales": 0, "catalog_sales": 0, "web_sales": 0}
        for t in self.templates:
            for table in by_channel:
                if table in t.referenced_tables():
                    by_channel[table] += 1
        assert all(count >= 15 for count in by_channel.values()), by_channel

    def test_substituted_templates_majority(self):
        """'Template-based queries ... substituting SQL fragments and
        scalar constants' — a substantial share of the workload must be
        parameterized."""
        with_subs = [t for t in self.templates if t.substitutions]
        assert len(with_subs) >= 30

    def test_every_query_class_represented_in_both_parts(self):
        adhoc_classes = {t.query_class for t in self.templates if t.channel_part == "ad_hoc"}
        reporting_classes = {t.query_class for t in self.templates if t.channel_part == "reporting"}
        assert "data_mining" in adhoc_classes
        assert "iterative" in adhoc_classes
        assert {"ad_hoc", "data_mining", "iterative"} & reporting_classes
