"""Benchmark regression tracking (repro.obs.regress + obs diff CLI).

The acceptance loop: appending two runs to a history.jsonl fixture and
injecting a slowdown must produce a regression and a nonzero exit;
back-to-back identical runs must pass.
"""

import json

import pytest

from repro.obs.regress import (
    append_history,
    compare_latest,
    load_history,
)


def _payload(mean_a: float, mean_b: float) -> list[dict]:
    return [
        {
            "module": "bench_example",
            "scale_factor": 0.01,
            "benchmarks": [
                {"test": "test_a", "mean": mean_a, "median": mean_a,
                 "stddev": 0.0, "rounds": 5},
                {"test": "test_b", "mean": mean_b, "median": mean_b,
                 "stddev": 0.0, "rounds": 5},
            ],
        }
    ]


class TestHistory:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        written = append_history(
            _payload(0.010, 0.020), str(path), sha="aaa", recorded_at="t0"
        )
        assert written == 1
        append_history(_payload(0.011, 0.021), str(path), sha="bbb",
                       recorded_at="t1")
        records = load_history(str(path))
        assert [r["sha"] for r in records] == ["aaa", "bbb"]
        assert records[0]["module"] == "bench_example"
        assert records[0]["benchmarks"][0]["mean"] == 0.010

    def test_missing_history_is_empty(self, tmp_path):
        assert load_history(str(tmp_path / "nope.jsonl")) == []

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"module": "m", "benchmarks": []}\nnot json\n')
        assert len(load_history(str(path))) == 1

    def test_empty_payloads_write_nothing(self, tmp_path):
        path = tmp_path / "history.jsonl"
        assert append_history([], str(path)) == 0
        assert not path.exists()


class TestCompareLatest:
    def _history(self, tmp_path, first, second):
        path = tmp_path / "history.jsonl"
        append_history(_payload(*first), str(path), sha="old", recorded_at="t0")
        append_history(_payload(*second), str(path), sha="new", recorded_at="t1")
        return load_history(str(path))

    def test_identical_runs_pass(self, tmp_path):
        history = self._history(tmp_path, (0.010, 0.020), (0.010, 0.020))
        report = compare_latest(history)
        assert report.exit_code() == 0
        assert not report.regressions
        assert all(d.status == "ok" for d in report.deltas)
        assert "PASS" in report.render()

    def test_injected_slowdown_is_a_regression(self, tmp_path):
        # test_a 3x slower — well past the 25% noise threshold
        history = self._history(tmp_path, (0.010, 0.020), (0.030, 0.020))
        report = compare_latest(history)
        assert report.exit_code() == 1
        assert [d.test for d in report.regressions] == ["test_a"]
        assert report.regressions[0].ratio == pytest.approx(3.0)
        assert report.regressions[0].old_sha == "old"
        assert report.regressions[0].new_sha == "new"
        assert "FAIL" in report.render()
        assert "!!" in report.render()

    def test_noise_within_threshold_is_ok(self, tmp_path):
        history = self._history(tmp_path, (0.010, 0.020), (0.0115, 0.019))
        report = compare_latest(history, threshold=0.25)
        assert report.exit_code() == 0
        assert all(d.status == "ok" for d in report.deltas)

    def test_speedup_is_an_improvement_not_failure(self, tmp_path):
        history = self._history(tmp_path, (0.010, 0.020), (0.004, 0.020))
        report = compare_latest(history)
        assert report.exit_code() == 0
        assert [d.test for d in report.improvements] == ["test_a"]

    def test_single_run_is_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(_payload(0.010, 0.020), str(path), sha="only")
        report = compare_latest(load_history(str(path)))
        assert report.exit_code() == 0
        assert not report.deltas
        assert any("only one recorded run" in note for note in report.skipped)

    def test_compares_last_two_of_three_runs(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(_payload(0.100, 0.020), str(path), sha="r1")
        append_history(_payload(0.010, 0.020), str(path), sha="r2")
        append_history(_payload(0.011, 0.020), str(path), sha="r3")
        report = compare_latest(load_history(str(path)))
        # r2 -> r3 is noise; the much slower r1 is out of the window
        assert report.exit_code() == 0

    def test_as_dict_records_threshold_and_sorts_deltas(self, tmp_path):
        history = self._history(tmp_path, (0.010, 0.020), (0.030, 0.010))
        payload = compare_latest(history, threshold=0.25).as_dict()
        assert payload["threshold"] == 0.25
        assert payload["regressions"] == 1
        assert payload["improvements"] == 1
        assert payload["compared"] == 2
        ratios = [d["ratio"] for d in payload["deltas"]]
        assert ratios == sorted(ratios, reverse=True)
        assert payload["deltas"][0]["status"] == "regression"
        # JSON-ready: round-trips without custom encoders
        assert json.loads(json.dumps(payload)) == payload

    def test_new_test_without_baseline_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(_payload(0.010, 0.020), str(path), sha="old")
        extended = _payload(0.010, 0.020)
        extended[0]["benchmarks"].append(
            {"test": "test_new", "mean": 0.5, "median": 0.5,
             "stddev": 0.0, "rounds": 5}
        )
        append_history(extended, str(path), sha="new")
        report = compare_latest(load_history(str(path)))
        assert report.exit_code() == 0
        assert any("no baseline" in note for note in report.skipped)


class TestObsDiffCli:
    def test_obs_diff_exits_nonzero_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "history.jsonl"
        append_history(_payload(0.010, 0.020), str(path), sha="old")
        append_history(_payload(0.050, 0.020), str(path), sha="new")
        code = main(["obs", "diff", "--history", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_obs_diff_passes_on_identical_runs(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "history.jsonl"
        append_history(_payload(0.010, 0.020), str(path), sha="old")
        append_history(_payload(0.010, 0.020), str(path), sha="new")
        code = main(["obs", "diff", "--history", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_obs_diff_handles_missing_history(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["obs", "diff", "--history", str(tmp_path / "none.jsonl")])
        out = capsys.readouterr().out
        assert code == 0
        assert "no comparable runs" in out

    def test_obs_diff_threshold_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "history.jsonl"
        append_history(_payload(0.010, 0.020), str(path), sha="old")
        append_history(_payload(0.0115, 0.020), str(path), sha="new")
        # 15% slower: noise at the default 25%, regression at 10%
        assert main(["obs", "diff", "--history", str(path)]) == 0
        capsys.readouterr()
        assert main(["obs", "diff", "--history", str(path),
                     "--threshold", "0.1"]) == 1
