"""Property-based tests on the data-generation substrate: flat-file
round trips for arbitrary values, SCD plan invariants, and scaling
model consistency under random scale factors."""

import datetime as dt

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsdgen.context import GeneratorContext
from repro.dsdgen.dimensions import scd_plan
from repro.dsdgen.flatfile import format_row, parse_row
from repro.engine.types import ColumnDef, TableSchema, char, date, decimal, integer, varchar

settings.register_profile("dsdgen", deadline=None, max_examples=60)
settings.load_profile("dsdgen")

SCHEMA = TableSchema("prop", [
    ColumnDef("i", integer()),
    ColumnDef("f", decimal()),
    ColumnDef("s", varchar(40)),
    ColumnDef("c", char(4)),
    ColumnDef("d", date()),
])

# pipe and newline are structural in the flat-file format; dsdgen's own
# string domains exclude them, so the generator never emits them
_text = st.text(
    alphabet=st.characters(blacklist_characters="|\n\r", min_codepoint=32, max_codepoint=126),
    max_size=20,
)

row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-10**12, max_value=10**12)),
    st.one_of(st.none(), st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
    st.one_of(st.none(), _text),
    st.one_of(st.none(), _text.map(lambda s: s[:4])),
    st.one_of(st.none(), st.integers(min_value=-10000, max_value=40000)),
)


@given(row_strategy)
def test_flat_file_round_trip(row):
    line = format_row(list(row), SCHEMA)
    parsed = parse_row(line, SCHEMA)
    assert parsed[0] == row[0]
    if row[1] is None:
        assert parsed[1] is None
    else:
        assert parsed[1] == pytest.approx(round(row[1], 2), abs=0.01)
    # empty field = NULL; genuine empty strings survive via the '""'
    # escape, so every string value round-trips exactly
    for idx in (2, 3):
        assert parsed[idx] == row[idx]
    assert parsed[4] == row[4]


@given(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=2**31))
def test_scd_plan_invariants(total_rows, seed):
    ctx = GeneratorContext(0.001, seed=seed)
    plan = list(scd_plan(ctx, "item", total_rows))
    assert len(plan) >= total_rows
    by_entity: dict = {}
    for entity, rev, revisions, start, end in plan:
        by_entity.setdefault(entity, []).append((rev, start, end))
        assert 1 <= revisions <= 3
    for entity, revisions in by_entity.items():
        # one open revision per entity, always the last one
        open_revs = [r for r in revisions if r[2] is None]
        assert len(open_revs) == 1
        ordered = sorted(revisions)
        for (_, s1, e1), (_, s2, e2) in zip(ordered, ordered[1:]):
            assert e1 is not None and e1 <= s2
        assert ordered[-1][2] is None


@given(st.floats(min_value=0.001, max_value=99))
def test_model_calendar_consistent(sf):
    ctx = GeneratorContext(sf)
    n = ctx.scaling.rows("date_dim")
    assert ctx.calendar.num_days == n
    assert ctx.calendar.offset_of(ctx.calendar.end) == n - 1
    assert ctx.calendar.sk_at(0) == ctx.calendar.sk_of_date(ctx.calendar.start)


@given(st.integers(min_value=1, max_value=2**31), st.integers(min_value=0, max_value=1000))
def test_sales_date_within_calendar(seed, draws):
    ctx = GeneratorContext(0.001, seed=seed)
    rng = ctx.stream("prop", "dates")
    for _ in range(min(draws, 50)):
        offset = ctx.sample_sales_date_offset(rng)
        assert 0 <= offset < ctx.calendar.num_days


@given(st.integers(min_value=1, max_value=10**6))
def test_business_keys_fixed_width_unique(entity):
    ctx = GeneratorContext(0.001)
    key = ctx.business_key("AAAA", entity)
    assert len(key) == 16
    assert key.startswith("AAAA")
    assert ctx.business_key("AAAA", entity + 1) != key
