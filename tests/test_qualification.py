"""Qualification-run regression tests: the canonical parameterization
must keep producing the pinned answer set (TPC-DS's qualification
mechanism at model scale). Regenerate the reference after intentional
changes with ``python -m repro.qgen.qualification``."""

import pytest

from repro.qgen.qualification import (
    QUALIFICATION_SCALE_FACTOR,
    QUALIFICATION_SEED,
    fingerprint_rows,
    fingerprint_workload,
    load_reference,
)
from tests.conftest import SESSION_SEED, SESSION_SF


@pytest.fixture(scope="module")
def reference():
    answers = load_reference()
    assert answers is not None, "qualification_answers.json missing"
    return answers


class TestReferenceFile:
    def test_covers_all_99(self, reference):
        assert len(reference) == 99
        assert set(reference) == {str(i) for i in range(1, 100)}

    def test_entries_have_shape(self, reference):
        for entry in reference.values():
            assert set(entry) == {"name", "rows", "digest"}
            assert entry["rows"] >= 0


class TestAnswersReproduce:
    def test_fixture_matches_qualification_environment(self):
        # the session fixtures are the qualification environment, so the
        # expensive database build is shared with the rest of the suite
        assert SESSION_SF == QUALIFICATION_SCALE_FACTOR
        assert SESSION_SEED == QUALIFICATION_SEED

    def test_workload_fingerprints_match(self, loaded_db, qgen, reference):
        current = fingerprint_workload(loaded_db, qgen)
        mismatches = {
            tid: (reference[tid], current[tid])
            for tid in reference
            if reference[tid] != current[tid]
        }
        assert mismatches == {}, (
            f"{len(mismatches)} templates drifted; regenerate the reference "
            f"if the change is intentional: {list(mismatches)[:5]}"
        )


class TestFingerprint:
    def test_order_insensitive(self):
        a = fingerprint_rows([(1, "x"), (2, "y")])
        b = fingerprint_rows([(2, "y"), (1, "x")])
        assert a == b

    def test_content_sensitive(self):
        assert fingerprint_rows([(1,)]) != fingerprint_rows([(2,)])

    def test_null_distinct_from_string(self):
        assert fingerprint_rows([(None,)]) != fingerprint_rows([("~x",)])

    def test_float_quantization(self):
        a = fingerprint_rows([(1.00000000001,)])
        b = fingerprint_rows([(1.0,)])
        assert a == b
