"""CLI smoke tests (argument wiring, not re-testing the internals)."""

import os

import pytest

from repro.cli import main


def test_schema_command(capsys):
    assert main(["schema"]) == 0
    out = capsys.readouterr().out
    assert "Number of fact tables" in out
    assert "104" in out


def test_scaling_command(capsys):
    assert main(["scaling", "--scale", "100"]) == 0
    out = capsys.readouterr().out
    assert "store_sales" in out
    assert "288,000,000" in out


def test_scaling_strict_rejects_bad_sf():
    from repro.dsdgen import ScaleFactorError

    with pytest.raises(ScaleFactorError):
        main(["scaling", "--scale", "7", "--strict"])


def test_dsdgen_command(tmp_path, capsys):
    out_dir = os.path.join(tmp_path, "data")
    assert main(["dsdgen", "--scale", "0.001", "--output", out_dir]) == 0
    assert os.path.exists(os.path.join(out_dir, "store_sales.dat"))
    out = capsys.readouterr().out
    assert "total" in out


def test_dsqgen_single_template(capsys):
    assert main(["dsqgen", "--scale", "0.001", "--template", "52"]) == 0
    out = capsys.readouterr().out
    assert "query 52" in out
    assert "ss_ext_sales_price" in out


def test_dsqgen_stream_changes_output(capsys):
    main(["dsqgen", "--scale", "0.001", "--template", "52", "--stream", "0"])
    first = capsys.readouterr().out
    main(["dsqgen", "--scale", "0.001", "--template", "52", "--stream", "4"])
    second = capsys.readouterr().out
    assert first.splitlines()[0] == second.splitlines()[0]


def test_run_command(capsys):
    assert main(["run", "--scale", "0.001", "--streams", "1"]) == 0
    out = capsys.readouterr().out
    assert "QphDS" in out


def test_run_command_trace_and_metrics(tmp_path, capsys):
    import json

    from repro.obs import get_registry, set_registry

    trace_path = os.path.join(tmp_path, "trace.json")
    previous = get_registry()
    try:
        assert main(["run", "--scale", "0.001", "--streams", "1",
                     "--trace", trace_path, "--metrics"]) == 0
    finally:
        set_registry(previous)
    out = capsys.readouterr().out
    assert "span timeline written" in out
    assert "metrics registry snapshot" in out
    spans = json.loads(open(trace_path, encoding="utf-8").read())
    assert any(s["name"] == "phase:load" for s in spans)


def test_run_telemetry_bundle(tmp_path, capsys):
    import json

    from repro.obs import get_registry, set_registry

    bundle_path = os.path.join(tmp_path, "telemetry.json")
    previous = get_registry()
    try:
        assert main(["run", "--scale", "0.001", "--streams", "1",
                     "--metrics", "--telemetry", bundle_path]) == 0
    finally:
        set_registry(previous)
    assert "telemetry bundle written" in capsys.readouterr().out
    bundle = json.loads(open(bundle_path, encoding="utf-8").read())
    for key in ("generated_at", "config", "summary", "trace", "latency",
                "parallelism", "plan_quality", "metrics", "metrics_series"):
        assert key in bundle
    assert bundle["latency"]["all"]["count"] > 0
    assert any(s["name"] == "phase:load" for s in bundle["trace"])


def _telemetry_fixture(tmp_path):
    """A tiny on-disk telemetry bundle so obs trace/report tests don't
    need a fresh benchmark run."""
    import json

    bundle = {
        "config": {"scale_factor": 0.004, "streams": 1, "workers": 2},
        "summary": {"qphds": 100.0, "queries": 99, "compliant": True},
        "trace": [
            {"name": "phase:load", "id": 0, "parent": None, "start": 0.0,
             "wall_start": 1e9, "elapsed": 1.0, "thread": 1, "attrs": {}},
            {"name": "morsel:Filter", "id": 1, "parent": 0, "start": 0.2,
             "wall_start": 1e9 + 0.2, "elapsed": 0.1, "thread": 2,
             "attrs": {"worker": 0}},
            {"name": "morsel:Filter", "id": 2, "parent": 0, "start": 0.2,
             "wall_start": 1e9 + 0.2, "elapsed": 0.1, "thread": 3,
             "attrs": {"worker": 1}},
        ],
        "latency": {"all": {"count": 3, "mean": 0.02, "max": 0.03,
                            "p50": 0.02, "p90": 0.03, "p95": 0.03,
                            "p99": 0.03}},
        "parallelism": None,
        "plan_quality": None,
        "metrics": None,
        "metrics_series": [],
    }
    path = os.path.join(tmp_path, "telemetry.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle)
    return path


def test_obs_trace_from_bundle(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace, worker_lanes

    bundle = _telemetry_fixture(tmp_path)
    out = os.path.join(tmp_path, "trace.json")
    assert main(["obs", "trace", "--input", bundle, "--out", out]) == 0
    assert "chrome trace written" in capsys.readouterr().out
    doc = json.loads(open(out, encoding="utf-8").read())
    assert validate_chrome_trace(doc) == []
    assert worker_lanes(doc) == ["pool worker 0", "pool worker 1"]


def test_obs_report_from_bundle(tmp_path, capsys):
    bundle = _telemetry_fixture(tmp_path)
    out = os.path.join(tmp_path, "report.html")
    assert main(["obs", "report", "--input", bundle, "--out", out]) == 0
    assert "dashboard written" in capsys.readouterr().out
    html = open(out, encoding="utf-8").read()
    assert html.startswith("<!DOCTYPE html>")
    assert "Span timeline" in html
    assert "latency percentiles" in html


def test_obs_trace_streams_to_stdout(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    bundle = _telemetry_fixture(tmp_path)
    assert main(["obs", "trace", "--input", bundle, "--output", "-"]) == 0
    out = capsys.readouterr().out
    doc = json.loads(out)  # stdout is the document, nothing else
    assert validate_chrome_trace(doc) == []


def test_obs_report_streams_to_stdout(tmp_path, capsys):
    bundle = _telemetry_fixture(tmp_path)
    assert main(["obs", "report", "--input", bundle, "--output", "-"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("<!DOCTYPE html>")
    assert "dashboard written" not in out


def test_explain_command(capsys):
    assert main(["explain", "--scale", "0.001", "--template", "52"]) == 0
    out = capsys.readouterr().out
    assert "query 52" in out
    assert "Scan(store_sales" in out
    assert "elapsed" not in out  # plain EXPLAIN does not execute


def test_explain_analyze_command(capsys):
    assert main(["explain", "--scale", "0.001", "--template", "52",
                 "--analyze"]) == 0
    out = capsys.readouterr().out
    assert "rows=" in out
    assert "elapsed=" in out
    assert "Execution:" in out


def test_explain_adhoc_sql(capsys):
    assert main(["explain", "--scale", "0.001", "--analyze",
                 "--sql", "SELECT COUNT(*) FROM item"]) == 0
    out = capsys.readouterr().out
    assert "Scan(item" in out


def test_explain_json(capsys):
    import json

    assert main(["explain", "--scale", "0.001", "--template", "52",
                 "--json"]) == 0
    tree = json.loads(capsys.readouterr().out)
    assert tree["plan"]["estimated_rows"] >= 1.0
    assert "stats" not in tree["plan"]  # plain EXPLAIN does not execute


def test_explain_analyze_json(capsys):
    import json

    assert main(["explain", "--scale", "0.001", "--analyze", "--json",
                 "--sql", "SELECT COUNT(*) FROM item"]) == 0
    tree = json.loads(capsys.readouterr().out)
    assert tree["peak_memory_bytes"] >= 0
    assert tree["plan"]["stats"]["rows"] == 1
    assert tree["plan"]["q_error"] >= 1.0


def test_run_plan_quality(capsys):
    assert main(["run", "--scale", "0.001", "--streams", "1",
                 "--plan-quality"]) == 0
    out = capsys.readouterr().out
    assert "plan quality (optimizer cardinality estimates)" in out
    assert "q_err" in out


def test_difftest_command(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    assert main(["difftest", "--scale", "0.001", "--fuzz", "10",
                 "--fuzz-seed", "11", "--corpus", corpus]) == 0
    out = capsys.readouterr().out
    assert "qualification" in out
    assert "seed 11" in out
    assert not os.path.isdir(corpus)  # no mismatches -> no repros written


def test_difftest_skip_qualification(tmp_path, capsys):
    assert main(["difftest", "--scale", "0.001", "--fuzz", "5",
                 "--fuzz-seed", "3",
                 "--skip-qualification",
                 "--corpus", str(tmp_path / "corpus")]) == 0
    out = capsys.readouterr().out
    assert "qualification" not in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        main([])


# -- error diagnostics & exit codes -----------------------------------------


def test_exit_code_parse_error(capsys):
    assert main(["explain", "--scale", "0.001",
                 "--sql", "SELEC oops FROM date_dim"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("tpcds-py: parse error:")
    assert err.count("\n") == 1  # one-line diagnostic, no traceback


def test_exit_code_planning_error(capsys):
    # column binding happens when the plan executes, so --analyze
    assert main(["explain", "--scale", "0.001", "--analyze",
                 "--sql", "SELECT no_such_column FROM date_dim"]) == 3
    err = capsys.readouterr().err
    assert err.startswith("tpcds-py: planning error:")
    assert "no_such_column" in err


def test_exit_code_execution_error(capsys):
    # scalar subquery returning many rows fails at execution time
    assert main(["explain", "--scale", "0.001", "--analyze",
                 "--sql", "SELECT (SELECT d_date_sk FROM date_dim) FROM item"
                 ]) == 4
    err = capsys.readouterr().err
    assert err.startswith("tpcds-py: execution error:")


def test_exit_code_resource_error(capsys):
    assert main(["explain", "--scale", "0.001", "--analyze", "--timeout", "0",
                 "--sql", "SELECT COUNT(*) FROM store_sales"]) == 5
    err = capsys.readouterr().err
    assert err.startswith("tpcds-py: resource error:")
    assert "timeout" in err.lower() or "deadline" in err.lower()


def test_explain_analyze_budget_flag(capsys):
    assert main(["explain", "--scale", "0.01", "--analyze",
                 "--mem-budget", "4K",
                 "--sql", ("SELECT ss_customer_sk, COUNT(*) AS c "
                           "FROM store_sales GROUP BY ss_customer_sk "
                           "ORDER BY c DESC, ss_customer_sk")]) == 0
    out = capsys.readouterr().out
    assert "spill_partitions=" in out


def test_exit_code_storage_error_on_missing_store(tmp_path, capsys):
    """`run --db` against a missing store: one-line diagnostic, exit 5
    (resource class) — not a traceback, not the execution code."""
    assert main(["run", "--db", str(tmp_path / "no-such-store")]) == 5
    err = capsys.readouterr().err
    assert err.startswith("tpcds-py: storage error:")
    assert err.count("\n") == 1  # one-line diagnostic, no traceback
    assert "no column store" in err


def test_exit_code_storage_error_on_unwritable_store(tmp_path, capsys):
    """`dsdgen --store` into a path whose parent is a file: exit 5."""
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    assert main(["dsdgen", "--scale", "0.001",
                 "--store", str(blocker / "db")]) == 5
    err = capsys.readouterr().err
    assert err.startswith("tpcds-py: storage error:")
    assert err.count("\n") == 1


def test_serve_command_streams_statements(tmp_path, capsys, monkeypatch):
    import io

    monkeypatch.setattr(
        "sys.stdin",
        io.StringIO("SELECT COUNT(*) AS n FROM item;"
                    "SELECT 1 AS x;"),
    )
    assert main(["serve", "--scale", "0.001", "--tenant", "smoke"]) == 0
    captured = capsys.readouterr()
    assert "rows in" in captured.err
    lines = [line for line in captured.out.splitlines() if line.strip()]
    assert lines[-1] == "1"  # SELECT 1 came back last


def test_loadgen_command_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_service.json"
    assert main(["loadgen", "--scale", "0.001",
                 "--phases", "steady:3:1", "--tenants", "a,b",
                 "--templates", "3,42", "--sla-p99", "60",
                 "--out", str(out)]) == 0
    assert out.exists()
    captured = capsys.readouterr()
    assert "query service load run" in captured.out
    assert "SLA verdict         : PASS" in captured.out


def test_loadgen_command_fails_on_sla_miss(tmp_path, capsys):
    # a 100%-faulted tenant cannot meet a zero error-rate SLA
    assert main(["loadgen", "--scale", "0.001",
                 "--phases", "steady:4:1", "--tenants", "a,b",
                 "--templates", "3", "--sla-p99", "60",
                 "--fault-rate", "1.0", "--fault-tenant", "b",
                 "--fault-seed", "3"]) == 1
    captured = capsys.readouterr()
    assert "SLA verdict         : FAIL" in captured.out


def test_loadgen_rejects_bad_phase_spec(capsys):
    assert main(["loadgen", "--phases", "nonsense"]) == 2
    assert "loadgen:" in capsys.readouterr().err
