"""Item hierarchy tests — Figure 5."""

from collections import Counter

from repro.dsdgen import ItemHierarchy, RandomStream
from repro.dsdgen.hierarchies import CATEGORY_CLASSES


class TestStructure:
    hierarchy = ItemHierarchy()

    def test_ten_categories(self):
        assert self.hierarchy.num_categories == 10

    def test_classes_match_definition(self):
        want = sum(len(classes) for classes in CATEGORY_CLASSES.values())
        assert self.hierarchy.num_classes == want

    def test_brand_count(self):
        assert self.hierarchy.num_brands == self.hierarchy.num_classes * 10

    def test_single_inheritance(self):
        """Figure 5: 'each Brand belongs to exactly one Class and each
        class belongs exactly to one Category.'"""
        assert self.hierarchy.verify_single_inheritance()

    def test_brand_ids_unique(self):
        ids = [b.brand_id for b in self.hierarchy.brands]
        assert len(ids) == len(set(ids))

    def test_class_ids_sequential_and_unique(self):
        class_ids = {b.class_id for b in self.hierarchy.brands}
        assert class_ids == set(range(1, self.hierarchy.num_classes + 1))

    def test_brand_encodes_class(self):
        for brand in self.hierarchy.brands:
            assert brand.brand_id // 1000 == brand.class_id

    def test_category_names_are_the_paper_examples(self):
        """Q20 samples 'Sports', 'Books', 'Home' — they must exist."""
        assert {"Sports", "Books", "Home"} <= set(self.hierarchy.categories)

    def test_class_names_nonempty(self):
        assert all(b.class_name for b in self.hierarchy.brands)


class TestSampling:
    def test_sample_is_deterministic(self):
        h = ItemHierarchy()
        a = [h.sample_brand(RandomStream(5)).brand_id for _ in range(10)]
        b = [h.sample_brand(RandomStream(5)).brand_id for _ in range(10)]
        assert a == b

    def test_sampling_covers_categories(self):
        h = ItemHierarchy()
        rng = RandomStream(5)
        seen = Counter(h.sample_brand(rng).category_name for _ in range(3000))
        assert set(seen) == set(h.categories)

    def test_custom_brands_per_class(self):
        h = ItemHierarchy(brands_per_class=3)
        assert h.num_brands == h.num_classes * 3
