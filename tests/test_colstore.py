"""Persistent column store: round-trip, laziness, DML, refusal, pruning.

The property-style core: every table of the sf=0.004 qualification
database must scan byte-identically after a save/open round trip, a
reopened store must answer a qualification subset exactly like the
in-memory load, and zone-map pruning must never change results.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.dsdgen.generator import load_tables
from repro.engine import ColumnDef, Database, StoreError, TableSchema, integer, varchar
from repro.engine.colstore import (
    BLOCK_ROWS,
    FORMAT_VERSION,
    MANIFEST,
    prune_scan,
    read_manifest,
)
from repro.qgen.qualification import fingerprint_rows

from .conftest import SESSION_SEED, SESSION_SF

#: qualification templates re-run against the reopened store (the full
#: 108-statement sweep at sf=0.01 runs in `make storecheck`)
SPOT_CHECK_TEMPLATES = (3, 7, 21, 42, 52, 55, 62, 96, 98)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, generated_data):
    """A store written from a private sf=0.004 load (the session
    ``loaded_db`` must stay untouched by backings into a tmp dir)."""
    path = str(tmp_path_factory.mktemp("colstore") / "db")
    db = Database()
    load_tables(db, generated_data)
    db.gather_stats()
    db.save(path, scale_factor=SESSION_SF, seed=SESSION_SEED)
    return path


@pytest.fixture(scope="module")
def reopened_db(store_path):
    return Database.open(store_path)


class TestRoundTrip:
    def test_every_table_scans_identically(self, loaded_db, reopened_db):
        for name in loaded_db.catalog.table_names:
            source = loaded_db.table(name)
            restored = reopened_db.table(name)
            assert restored.num_rows == source.num_rows, name
            for column in source.schema.column_names:
                a = source.scan_column(column)
                b = restored.scan_column(column)
                assert np.array_equal(a.null, b.null), f"{name}.{column}"
                assert np.array_equal(
                    a.data[~a.null], b.data[~b.null]
                ), f"{name}.{column}"

    def test_manifest_metadata(self, store_path):
        manifest = read_manifest(store_path)
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["scale_factor"] == SESSION_SF
        assert manifest["seed"] == SESSION_SEED
        assert manifest["block_rows"] == BLOCK_ROWS
        assert "store_sales" in manifest["tables"]

    def test_stats_restored_without_gather(self, loaded_db, reopened_db):
        for name in ("store_sales", "item", "date_dim"):
            source = loaded_db.catalog.stats(name)
            restored = reopened_db.catalog.stats(name)
            assert restored is not None
            assert restored.row_count == source.row_count
            for col, cs in source.columns.items():
                rs = restored.columns[col]
                assert rs.ndv == cs.ndv
                assert rs.min_value == cs.min_value
                assert rs.max_value == cs.max_value

    def test_qualification_subset_matches(self, loaded_db, reopened_db, qgen):
        for template_id in SPOT_CHECK_TEMPLATES:
            query = qgen.generate(template_id, stream=0)
            for statement in query.statements:
                a = loaded_db.execute(statement)
                b = reopened_db.execute(statement)
                assert fingerprint_rows(a.rows()) == fingerprint_rows(
                    b.rows()
                ), f"template {template_id}"


class TestLaziness:
    def test_open_decodes_nothing(self, store_path):
        db = Database.open(store_path)
        for name in db.catalog.table_names:
            for column in db.table(name).columns.values():
                assert not column.is_loaded, f"{name}.{column.definition.name}"

    def test_len_answers_without_hydrating(self, store_path):
        db = Database.open(store_path)
        table = db.table("store_sales")
        assert table.num_rows > 0
        assert not any(c.is_loaded for c in table.columns.values())

    def test_query_hydrates_only_touched_table(self, store_path):
        db = Database.open(store_path)
        db.execute("SELECT COUNT(*), MAX(i_current_price) FROM item")
        assert db.table("item").columns["i_current_price"].is_loaded
        untouched = db.table("web_returns")
        assert not any(c.is_loaded for c in untouched.columns.values())


class TestDml:
    def test_dml_save_reopen(self, store_path, tmp_path):
        # copy to a private dir so module-scoped fixtures stay pristine
        import shutil

        private = str(tmp_path / "db")
        shutil.copytree(store_path, private)
        db = Database.open(private)
        before = db.execute("SELECT COUNT(*) FROM item").scalar()
        db.execute("DELETE FROM item WHERE i_item_sk <= 3")
        db.execute(
            "UPDATE item SET i_color = 'colstore' WHERE i_item_sk = 5"
        )
        db.save(private)
        db2 = Database.open(private)
        assert db2.execute("SELECT COUNT(*) FROM item").scalar() == before - 3
        assert (
            db2.execute(
                "SELECT i_color FROM item WHERE i_item_sk = 5"
            ).scalar()
            == "colstore"
        )
        rows_a = db.execute("SELECT * FROM item ORDER BY i_item_sk").rows()
        rows_b = db2.execute("SELECT * FROM item ORDER BY i_item_sk").rows()
        assert rows_a == rows_b

    def test_incremental_save_rewrites_only_dirty(self, store_path, tmp_path):
        import shutil

        private = str(tmp_path / "db")
        shutil.copytree(store_path, private)
        db = Database.open(private)
        untouched = os.path.join(private, "web_sales", "ws_quantity.col")
        touched = os.path.join(private, "item", "i_color.col")
        before_untouched = os.path.getmtime(untouched)
        db.execute("UPDATE item SET i_color = 'x' WHERE i_item_sk = 1")
        db.save(private)
        assert db.store_info["columns_written"] < 30  # one table, not all
        assert os.path.getmtime(untouched) == before_untouched
        assert os.path.exists(touched)

    def test_dirty_column_serves_no_zone_maps(self, store_path, tmp_path):
        import shutil

        private = str(tmp_path / "db")
        shutil.copytree(store_path, private)
        db = Database.open(private)
        column = db.table("item").columns["i_item_sk"]
        assert column.zone_maps() is not None
        db.execute("UPDATE item SET i_item_sk = i_item_sk WHERE i_item_sk = 1")
        assert column.zone_maps() is None  # stale maps must not prune


class TestRefusal:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StoreError):
            Database.open(str(tmp_path / "nowhere"))

    def test_torn_manifest(self, store_path, tmp_path):
        import shutil

        private = str(tmp_path / "db")
        shutil.copytree(store_path, private)
        with open(os.path.join(private, MANIFEST), "w") as handle:
            handle.write('{"format": "repro-colstore", "tab')
        with pytest.raises(StoreError):
            Database.open(private)

    def test_version_mismatch(self, store_path, tmp_path):
        import shutil

        private = str(tmp_path / "db")
        shutil.copytree(store_path, private)
        manifest_path = os.path.join(private, MANIFEST)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = FORMAT_VERSION + 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StoreError, match="version"):
            Database.open(private)

    def test_missing_column_file(self, store_path, tmp_path):
        import shutil

        private = str(tmp_path / "db")
        shutil.copytree(store_path, private)
        os.remove(os.path.join(private, "item", "i_color.col"))
        with pytest.raises(StoreError, match="missing"):
            Database.open(private)

    def test_truncated_column_file(self, store_path, tmp_path):
        import shutil

        private = str(tmp_path / "db")
        shutil.copytree(store_path, private)
        target = os.path.join(private, "item", "i_item_sk.col")
        size = os.path.getsize(target)
        with open(target, "r+b") as handle:
            handle.truncate(size // 2)
        db = Database.open(private)  # manifest is fine; the file is not
        with pytest.raises(StoreError):
            db.execute("SELECT MAX(i_item_sk) FROM item")


def _pruning_db(tmp_path, rows=64, block_rows=8):
    db = Database()
    db.create_table(
        TableSchema(
            "t",
            [
                ColumnDef("k", integer(), nullable=False),
                ColumnDef("v", integer()),
                ColumnDef("s", varchar(8)),
            ],
        )
    )
    data = [
        [i, None if i % 7 == 0 else i * 2, f"s{i % 5:02d}"] for i in range(rows)
    ]
    db.table("t").append_rows(data)
    db.gather_stats()
    path = str(tmp_path / "prune")
    db.save(path, block_rows=block_rows)
    return Database.open(path)


class TestZoneMapPruning:
    @pytest.mark.parametrize(
        "where",
        [
            "k = 5",
            "k < 10",
            "k <= 9",
            "k > 55",
            "k >= 56",
            "k BETWEEN 20 AND 27",
            "k IN (3, 4, 60)",
            "v IS NULL",
            "v IS NOT NULL",
            "k <> 5",
            "s = 's03'",
            "5 > k",
        ],
    )
    def test_pruned_equals_unpruned(self, tmp_path, where):
        db = _pruning_db(tmp_path)
        table = db.table("t")
        sql = f"SELECT k, v, s FROM t WHERE {where} ORDER BY k"
        pruned = db.execute(sql).rows()
        # force hydration + dirt so zone maps are unavailable, then
        # compare: pruning must be invisible in results
        for column in table.columns.values():
            column.dirty = True
        unpruned = db.execute(sql).rows()
        assert pruned == unpruned, where

    def test_blocks_skipped_in_explain_analyze(self, tmp_path):
        db = _pruning_db(tmp_path)
        out = db.execute(
            "EXPLAIN ANALYZE SELECT k FROM t WHERE k BETWEEN 56 AND 63"
        )
        text = "\n".join(r[0] for r in out.rows())
        assert "blocks_skipped=7" in text, text
        assert "blocks=8" in text, text

    def test_prune_scan_counts(self, tmp_path):
        db = _pruning_db(tmp_path)
        from repro.engine.sql.parser import parse_statement

        query = parse_statement("SELECT k FROM t WHERE k < 8")
        predicate = query.body.where
        rows, blocks, skipped = prune_scan(db.table("t"), [predicate])
        assert blocks == 8
        assert skipped == 7
        assert rows.tolist() == list(range(8))

    def test_metrics_counter(self, tmp_path):
        from repro.obs import MetricsRegistry, get_registry, set_registry

        previous = set_registry(MetricsRegistry(enabled=True))
        try:
            db = _pruning_db(tmp_path)
            db.execute("SELECT k FROM t WHERE k = 1")
            snapshot = get_registry().snapshot()
            counters = snapshot.get("counters", snapshot)
            assert any(
                "blocks_skipped" in str(key) for key in counters
            ), counters
        finally:
            set_registry(previous)

    def test_all_null_block_skipped_for_value_predicate(self, tmp_path):
        db = Database()
        db.create_table(TableSchema("n", [ColumnDef("x", integer())]))
        db.table("n").append_rows([[None]] * 8 + [[i] for i in range(8)])
        db.gather_stats()
        path = str(tmp_path / "nulls")
        db.save(path, block_rows=8)
        db2 = Database.open(path)
        out = db2.execute("EXPLAIN ANALYZE SELECT x FROM n WHERE x >= 0")
        text = "\n".join(r[0] for r in out.rows())
        assert "blocks_skipped=1" in text, text
        assert db2.execute("SELECT COUNT(*) FROM n WHERE x >= 0").scalar() == 8


class TestStorageFaults:
    """Injected I/O errors on store paths surface as StoreError — never
    as a raw OSError — at open, scan and save time."""

    @pytest.fixture()
    def storage_faults(self):
        from repro.faults import FaultInjector, set_storage_faults

        def install(**kwargs):
            injector = FaultInjector(scope=("storage",), **kwargs)
            set_storage_faults(injector)
            return injector

        yield install
        set_storage_faults(None)

    def test_open_surfaces_injected_fault_as_store_error(
        self, store_path, storage_faults
    ):
        storage_faults(seed=1, error_rate=1.0, site_filter="manifest")
        with pytest.raises(StoreError) as excinfo:
            Database.open(store_path)
        assert not isinstance(excinfo.value, OSError)
        assert "injected fault" in str(excinfo.value)
        # injected faults stay retry-eligible through the translation
        assert getattr(excinfo.value, "transient", False)

    def test_scan_surfaces_injected_read_fault_as_store_error(
        self, store_path, storage_faults
    ):
        db = Database.open(store_path)  # lazy: no reads yet
        storage_faults(seed=1, error_rate=1.0, site_filter="read:")
        with pytest.raises(StoreError) as excinfo:
            db.execute("SELECT COUNT(*) AS n, SUM(ss_quantity) AS q"
                       " FROM store_sales")
        assert not isinstance(excinfo.value, OSError)

    def test_save_surfaces_injected_write_fault_as_store_error(
        self, tmp_path, storage_faults
    ):
        from .conftest import make_simple_db

        db = make_simple_db()
        storage_faults(seed=1, error_rate=1.0, site_filter="write:")
        with pytest.raises(StoreError) as excinfo:
            db.save(str(tmp_path / "faulted"))
        assert not isinstance(excinfo.value, OSError)

    def test_open_succeeds_once_faults_clear(
        self, store_path, storage_faults
    ):
        from repro.faults import set_storage_faults

        storage_faults(seed=1, error_rate=1.0, site_filter="manifest")
        with pytest.raises(StoreError):
            Database.open(store_path)
        set_storage_faults(None)
        db = Database.open(store_path)
        assert db.execute(
            "SELECT COUNT(*) AS n FROM item"
        ).rows()[0][0] > 0
