"""Fault injection: determinism of the injector, and graceful
degradation of a fault-injected multi-stream benchmark run."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, InjectedFault, is_transient
from repro.runner import BenchmarkConfig, render_full_disclosure, run_benchmark

SF = 0.002


def _decision_trace(injector, labels):
    """Outcomes ('error' | 'delay' | 'pass') for a label sequence."""
    trace = []
    for label in labels:
        try:
            injector.at_query(label)
            trace.append("pass")
        except InjectedFault:
            trace.append("error")
    return trace


def test_injector_is_deterministic_from_seed():
    labels = [f"q{i}" for i in range(200)]
    first = _decision_trace(FaultInjector(seed=42, error_rate=0.1), labels)
    second = _decision_trace(FaultInjector(seed=42, error_rate=0.1), labels)
    assert first == second
    assert first.count("error") > 0
    different = _decision_trace(FaultInjector(seed=43, error_rate=0.1), labels)
    assert first != different


def test_injected_fault_is_transient():
    assert is_transient(InjectedFault("boom"))
    assert not is_transient(ValueError("boom"))


def test_site_filter_targets_injection():
    injector = FaultInjector(
        seed=1, error_rate=1.0, scope=("operator",), site_filter="HashJoin"
    )
    injector.at_operator("Scan")  # filtered out: no raise
    with pytest.raises(InjectedFault):
        injector.at_operator("HashJoin(probe)")


def test_scope_gates_injection_points():
    q_only = FaultInjector(seed=1, error_rate=1.0, scope=("query",))
    q_only.at_operator("Scan")  # operator scope off: no raise
    with pytest.raises(InjectedFault):
        q_only.at_query("select 1")


def test_memory_pressure_validation():
    with pytest.raises(ValueError):
        FaultInjector(memory_pressure=0.0)
    half = FaultInjector(memory_pressure=0.5)
    assert half.apply_memory_pressure(1000.0) == 500.0
    forced = FaultInjector(force_budget_bytes=64.0)
    assert forced.apply_memory_pressure(None) == 64.0
    assert forced.apply_memory_pressure(32.0) == 32.0


def test_fault_injected_benchmark_degrades_gracefully():
    """~5% injected errors + random delays across 2 streams: the run
    completes with every query accounted for, retries are reported, and
    the degradation section renders."""
    faults = FaultInjector(
        seed=7, error_rate=0.05, delay_rate=0.1, max_delay_s=0.002,
        scope=("query",),
    )
    config = BenchmarkConfig(
        scale_factor=SF, streams=2, faults=faults, max_query_retries=3
    )
    result, _ = run_benchmark(config)

    expected = result.total_queries  # 198 * streams, both runs
    assert len(result.all_timings) == expected
    assert result.query_run_1.retries + result.query_run_2.retries > 0
    assert result.fault_stats["injected_errors"] > 0

    text = render_full_disclosure(result)
    assert "degradation & recovery" in text
    assert "injected faults" in text
    assert ("COMPLIANT" in text) or ("NOT COMPLIANT" in text)
    # per-query failures (if any survived the retries) are itemized
    failures = [t for t in result.all_timings if t.status != "ok"]
    if failures:
        assert not result.compliant
        assert "FAILED" in text
    else:
        assert result.compliant


def test_hard_failures_are_not_retried():
    """Only transient errors retry; a planning-level failure degrades
    on the first attempt."""
    config = BenchmarkConfig(scale_factor=SF, streams=1, max_query_retries=3)
    from repro.runner.execution import BenchmarkRun

    run = BenchmarkRun(config)
    run.load_test()

    class BrokenQuery:
        template_id = 1
        name = "broken"
        query_class = "reporting"
        channel_part = "store"
        statements = ["SELECT no_such_column FROM date_dim"]

    timing = run._run_query(BrokenQuery(), stream=0, run_label="qr1")
    assert timing.status == "failed"
    assert timing.attempts == 1
    assert "no_such_column" in timing.error


def test_storage_scope_gates_and_raises_oserror():
    """Storage faults are OSError subclasses (the store must translate
    them), gated by the "storage" scope like every other site."""
    from repro.faults import InjectedStorageFault

    q_only = FaultInjector(seed=1, error_rate=1.0, scope=("query",))
    q_only.at_storage("manifest")  # storage scope off: no raise

    storage = FaultInjector(seed=1, error_rate=1.0, scope=("storage",))
    with pytest.raises(InjectedStorageFault) as excinfo:
        storage.at_storage("manifest")
    assert isinstance(excinfo.value, OSError)
    assert is_transient(excinfo.value)
    assert storage.injected_errors == 1
    # ...and the query site stays quiet under storage-only scope
    storage_only = FaultInjector(seed=1, error_rate=1.0, scope=("storage",))
    storage_only.at_query("select 1")


def test_storage_site_filter_targets_paths():
    injector = FaultInjector(
        seed=1, error_rate=1.0, scope=("storage",), site_filter="manifest"
    )
    injector.at_storage("read:ss_item_sk.col:data")  # filtered: no raise
    from repro.faults import InjectedStorageFault

    with pytest.raises(InjectedStorageFault):
        injector.at_storage("manifest")


def test_storage_fault_hook_installs_and_clears():
    from repro.faults import get_storage_faults, set_storage_faults

    assert get_storage_faults() is None
    injector = FaultInjector(seed=1, scope=("storage",))
    set_storage_faults(injector)
    try:
        assert get_storage_faults() is injector
    finally:
        set_storage_faults(None)
    assert get_storage_faults() is None
