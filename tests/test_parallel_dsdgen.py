"""Parallel generation determinism: jump-ahead, chunking, worker pools.

The kit's ``-parallel``/``-child`` contract is that any partitioning of
the work produces the same data set.  Here that means: (a) the LCG
``jump(n)`` lands exactly where ``n`` scalar draws land, (b) fact
chunks concatenate to the serial tables, (c) a worker pool's output is
byte-identical to serial generation, and (d) the surrogate-key pools a
worker predicts from the scaling model match what the dimension
generators actually register.
"""

from __future__ import annotations

import hashlib
import os

import pytest

from repro.dsdgen import DsdGen
from repro.dsdgen.context import GeneratorContext
from repro.dsdgen.rng import RandomStreamFactory
from repro.dsdgen.scaling import ROW_COUNT_ANCHORS


def _file_checksums(data, directory) -> dict[str, str]:
    data.write_flat_files(str(directory))
    digests = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            digests[name] = hashlib.sha256(handle.read()).hexdigest()
    return digests


@pytest.mark.parametrize("n", [0, 1, 7, 1000, 10**9])
def test_jump_matches_scalar_draws(n):
    factory = RandomStreamFactory(19620718)
    jumped = factory.fresh("jump", "test")
    jumped.jump(n)
    stepped = factory.fresh("jump", "test")
    if n <= 1000:
        for _ in range(n):
            stepped.next_raw()
    else:
        # batch draws advance the state identically to scalar draws
        stepped.raw_batch(n)
    assert jumped._state == stepped._state
    assert jumped.next_raw() == stepped.next_raw()


def test_raw_batch_matches_scalar_draws():
    factory = RandomStreamFactory(7)
    batched = factory.fresh("batch", "test")
    scalar = factory.fresh("batch", "test")
    values = batched.raw_batch(1000)
    assert [int(v) for v in values] == [scalar.next_raw() for _ in range(1000)]
    assert batched._state == scalar._state


@pytest.mark.parametrize("workers", [2, 3, 4])
def test_parallel_identical_to_serial_small(tmp_path, workers):
    serial = DsdGen(0.001).generate()
    parallel = DsdGen(0.001, workers=workers).generate()
    assert _file_checksums(serial, tmp_path / "serial") == _file_checksums(
        parallel, tmp_path / f"workers{workers}"
    )


def test_parallel_identical_to_serial_bench_scale(tmp_path):
    serial = DsdGen(0.01).generate()
    parallel = DsdGen(0.01, workers=4).generate()
    assert _file_checksums(serial, tmp_path / "serial") == _file_checksums(
        parallel, tmp_path / "workers4"
    )


def test_chunks_concatenate_to_serial(tmp_path):
    serial = DsdGen(0.001).generate()
    serial_sums = _file_checksums(serial, tmp_path / "serial")

    n_chunks = 3
    parts = []
    for chunk in range(1, n_chunks + 1):
        gen = DsdGen(0.001)
        data = gen.generate_chunk(chunk, n_chunks)
        data.write_flat_files(str(tmp_path / "chunks"), suffix=f"_{chunk}_{n_chunks}")
        parts.append(data)

    # chunk 1 carries the dimensions; facts concatenate across chunks
    digests = {}
    for name in serial.tables:
        acc = hashlib.sha256()
        for chunk in range(1, n_chunks + 1):
            path = tmp_path / "chunks" / f"{name}_{chunk}_{n_chunks}.dat"
            if path.exists():
                acc.update(path.read_bytes())
        digests[f"{name}.dat"] = acc.hexdigest()
    assert digests == serial_sums


def test_chunk_index_validated():
    gen = DsdGen(0.001)
    with pytest.raises(ValueError):
        gen.generate_chunk(0, 2)
    with pytest.raises(ValueError):
        gen.generate_chunk(3, 2)


def test_key_pools_match_scaling_model():
    """A worker predicts every dimension's key pool from the scaling
    model alone (``ensure_key_pools``); the dimension generators must
    register exactly that many keys or jump-ahead offsets would drift."""
    predicted = GeneratorContext(0.002)
    predicted.ensure_key_pools()
    data = DsdGen(0.002).generate()
    actual = data.context
    for table in ROW_COUNT_ANCHORS:
        assert actual.key_pools[table] == predicted.key_pools[table], table


def test_worker_row_counts_match_serial():
    serial = DsdGen(0.002, seed=7).generate()
    parallel = DsdGen(0.002, seed=7, workers=2).generate()
    assert parallel.row_counts == serial.row_counts
    assert serial.tables["store_sales"] == parallel.tables["store_sales"]
    assert serial.tables["web_returns"] == parallel.tables["web_returns"]
