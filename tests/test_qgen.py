"""Query generator tests: the 99 templates, substitution machinery,
stream permutations, comparability across substitutions."""

import re

import pytest

from repro.qgen import QGen, build_catalog
from repro.qgen.model import QueryTemplate
from repro.qgen.substitutions import uniform_int


class TestCatalogShape:
    templates = build_catalog()

    def test_exactly_99(self):
        """§1: '99 distinct SQL 99 queries'."""
        assert len(self.templates) == 99

    def test_ids_dense(self):
        assert [t.template_id for t in self.templates] == list(range(1, 100))

    def test_names_unique(self):
        names = [t.name for t in self.templates]
        assert len(names) == len(set(names))

    def test_texts_distinct(self):
        texts = {" ".join(t.statements) for t in self.templates}
        assert len(texts) == 99

    def test_paper_query_52_pinned(self):
        """Figure 6: Query 52 is the store-channel brand query."""
        q52 = next(t for t in self.templates if t.template_id == 52)
        assert q52.name == "brand_monthly_store"
        text = q52.statements[0]
        assert "ss_ext_sales_price" in text
        assert "i_manager_id" in text and "d_moy" in text
        assert q52.channel_part == "ad_hoc"

    def test_paper_query_20_pinned(self):
        """Figure 7: Query 20 is the catalog-channel class-ratio query."""
        q20 = next(t for t in self.templates if t.template_id == 20)
        assert q20.name == "class_ratio_catalog"
        text = q20.statements[0]
        assert "cs_ext_sales_price" in text
        assert "OVER (PARTITION BY i_class)" in text
        assert q20.channel_part == "reporting"

    def test_all_four_classes_present(self):
        classes = {t.query_class for t in self.templates}
        assert classes == {"ad_hoc", "reporting", "iterative", "data_mining"}

    def test_iterative_templates_multi_statement(self):
        for t in self.templates:
            if t.query_class == "iterative":
                assert len(t.statements) >= 2, t.name
            else:
                assert len(t.statements) == 1, t.name

    def test_channel_parts_all_present(self):
        parts = {t.channel_part for t in self.templates}
        assert parts == {"ad_hoc", "reporting", "hybrid"}

    def test_referencing_rule(self):
        """Queries touching only the catalog channel are reporting-part;
        store/web-only are ad-hoc-part."""
        for t in self.templates:
            tables = t.referenced_tables()
            if t.channel_part == "reporting":
                assert not tables & {"store_sales", "web_sales", "store_returns",
                                     "web_returns", "inventory"}, t.name
            if t.channel_part == "ad_hoc":
                assert not tables & {"catalog_sales", "catalog_returns"}, t.name

    def test_every_table_covered_by_workload(self):
        """§4.1: queries cover 'the entire data set of all TPC-DS tables'."""
        from repro.schema import ALL_TABLES

        covered = set()
        for t in self.templates:
            covered |= t.referenced_tables()
        assert covered == set(ALL_TABLES)

    def test_missing_substitution_detected(self):
        with pytest.raises(ValueError):
            QueryTemplate(1, "bad", ("SELECT [NOPE] FROM item",), {})

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            QueryTemplate(1, "bad", ("SELECT 1",), {}, query_class="weird")


class TestGeneration:
    def test_no_unexpanded_tags(self, qgen):
        pattern = re.compile(r"\[[A-Z0-9_]+\]")
        for tid in sorted(qgen.templates):
            query = qgen.generate(tid, stream=0)
            for stmt in query.statements:
                assert not pattern.search(stmt), (tid, stmt)

    def test_deterministic_per_stream(self, qgen):
        a = qgen.generate(52, stream=1)
        b = qgen.generate(52, stream=1)
        assert a.statements == b.statements

    def test_streams_differ(self, qgen):
        texts = {qgen.generate(52, stream=s).statements for s in range(8)}
        assert len(texts) > 1

    def test_substitution_values_recorded(self, qgen):
        query = qgen.generate(52, stream=0)
        assert "MANAGER" in query.substitution_values
        assert "YEAR" in query.substitution_values

    def test_zone3_month_substitution(self, qgen):
        """Q52's month is drawn from comparability zone 3 (Nov/Dec)."""
        months = {
            int(qgen.generate(52, stream=s).substitution_values["MONTH"])
            for s in range(30)
        }
        assert months <= {11, 12}

    def test_year_within_sales_window(self, qgen):
        years = {
            int(qgen.generate(52, stream=s).substitution_values["YEAR"])
            for s in range(30)
        }
        assert years <= set(qgen.context.calendar.sales_years)

    def test_date_range_within_zone(self, qgen):
        """Q20's date range must lie inside zone 1 (Jan-Jul)."""
        import datetime as dt

        for s in range(20):
            values = qgen.generate(20, stream=s).substitution_values
            start = dt.date.fromisoformat(values["RANGE_START"].split("'")[1])
            end = dt.date.fromisoformat(values["RANGE_END"].split("'")[1])
            assert start.month <= 7 and end.month <= 7
            assert (end - start).days == 28

    def test_aggregate_exchange(self, qgen):
        # template 'manufact_month_*' swaps aggregate functions
        tid = next(t.template_id for t in qgen.templates.values()
                   if t.name == "manufact_month_store")
        aggs = {
            qgen.generate(tid, stream=s).substitution_values["AGG"] for s in range(40)
        }
        assert len(aggs) > 1
        assert aggs <= {"SUM", "MIN", "MAX", "AVG"}

    def test_category_list_has_distinct_quoted_values(self, qgen):
        values = qgen.generate(20, stream=0).substitution_values["CATEGORY_LIST"]
        cats = [v.strip().strip("'") for v in values.split(",")]
        assert len(cats) == 3 and len(set(cats)) == 3

    def test_unknown_template_id(self, qgen):
        with pytest.raises(KeyError):
            qgen.generate(1000)


class TestStreams:
    def test_stream0_in_template_order(self, qgen):
        assert qgen.stream_order(0) == list(range(1, 100))

    def test_permutation_is_bijection(self, qgen):
        for stream in (1, 2, 5):
            order = qgen.stream_order(stream)
            assert sorted(order) == list(range(1, 100))

    def test_permutations_differ_between_streams(self, qgen):
        assert qgen.stream_order(1) != qgen.stream_order(2)

    def test_permutation_deterministic(self, qgen):
        assert qgen.stream_order(3) == qgen.stream_order(3)

    def test_generate_stream_covers_all(self, qgen):
        queries = qgen.generate_stream(1)
        assert len(queries) == 99
        assert {q.template_id for q in queries} == set(range(1, 100))


class TestComparability:
    """§3.2: substitutions must keep the number of qualifying rows nearly
    identical — that is what comparability zones are for."""

    def test_qualifying_rows_stable_across_substitutions(self, loaded_db, qgen):
        counts = []
        for stream in range(6):
            values = qgen.generate(20, stream=stream).substitution_values
            sql = f"""
                SELECT COUNT(*) FROM catalog_sales, date_dim
                WHERE cs_sold_date_sk = d_date_sk
                  AND d_date BETWEEN {values['RANGE_START']} AND {values['RANGE_END']}
            """
            counts.append(loaded_db.execute(sql).scalar())
        mean = sum(counts) / len(counts)
        assert mean > 0
        # at model scale the per-window row count is a small sample of
        # date-clustered baskets, so tolerate sampling noise: every count
        # must stay within 2x of the mean (cross-zone windows differ
        # structurally, by design — see the next test)
        for c in counts:
            assert c < 2.5 * mean and c > mean / 2.5, counts

    def test_cross_zone_ranges_not_comparable(self, loaded_db, generated_data):
        """Sanity check of the mechanism: a zone-3 window qualifies far
        more rows per day than a zone-1 window of equal width."""
        year = generated_data.context.calendar.sales_years[0]
        def count(start, end):
            return loaded_db.execute(f"""
                SELECT COUNT(*) FROM store_sales, date_dim
                WHERE ss_sold_date_sk = d_date_sk
                  AND d_date BETWEEN DATE '{start}' AND DATE '{end}'
            """).scalar()

        zone1 = count(f"{year}-02-01", f"{year}-02-28")
        zone3 = count(f"{year}-12-01", f"{year}-12-28")
        assert zone3 > zone1
