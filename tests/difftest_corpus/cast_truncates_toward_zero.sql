-- difftest repro: float -> integer cast direction on negative values
-- status: pinned
-- origin: satellite — truncation toward zero (like SQLite), never floor
SELECT CAST(0 - i_current_price AS integer) AS t, CAST(i_current_price AS integer) AS p FROM item ORDER BY t ASC, p ASC LIMIT 40
