-- difftest repro: default NULL placement differs between dialects
-- status: pinned
-- origin: engine sorts NULLs as largest (last ASC / first DESC); SQLite's
-- bare default is the opposite, so the oracle renderer always spells
-- NULLS FIRST/LAST explicitly
SELECT i_rec_end_date AS d, i_item_sk AS sk FROM item ORDER BY d DESC, sk ASC LIMIT 30
