-- difftest repro: MOD with a negative dividend
-- status: fixed
-- origin: satellite bug — np.mod takes the divisor's sign, but the SQL
-- standard (and SQLite %) take the dividend's: MOD(-7, 3) is -1, not 2
SELECT d_date_sk, MOD(0 - d_date_sk, 7) AS m FROM date_dim ORDER BY d_date_sk ASC LIMIT 20
