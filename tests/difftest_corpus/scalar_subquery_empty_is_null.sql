-- difftest repro: scalar subquery over an empty result
-- status: pinned
-- origin: satellite — 0 rows yields NULL in both engines; >1 rows raises
-- "scalar subquery returned N rows" in the engine
SELECT r_reason_sk, (SELECT MAX(d_date_sk) FROM date_dim WHERE d_year = 1900) AS missing FROM reason ORDER BY r_reason_sk ASC
