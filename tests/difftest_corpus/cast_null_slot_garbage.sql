-- difftest repro: CAST of a NULL-bearing float expression to integer
-- status: fixed
-- origin: satellite bug — null slots carried NaN from the divide-by-zero
-- kernel and _cast converted them unmasked (NaN -> int64 is undefined)
SELECT CAST(ss_net_profit / 0 AS integer) AS c, CAST(ss_net_paid AS integer) AS p FROM store_sales ORDER BY c ASC, p ASC LIMIT 25
