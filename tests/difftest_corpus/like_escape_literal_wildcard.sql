-- difftest repro: LIKE ESCAPE making the following wildcard literal
-- status: fixed
-- origin: satellite bug — the parser rejected the ESCAPE clause and
-- like_to_regex had no way to treat % or _ literally
SELECT i_item_id FROM item WHERE i_item_id LIKE 'AAAA!_%' ESCAPE '!'
