"""Concurrent query streams: §5.2 requires multiple streams executing
simultaneously — the engine must return identical answers under
concurrency (no shared-state corruption in catalog, statistics, lazy
indexes or plan caches)."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.qgen.qualification import fingerprint_rows

QUERIES = [
    "SELECT i_category, COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_category",
    "SELECT d_year, SUM(ss_ext_sales_price) FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk GROUP BY d_year",
    "SELECT COUNT(DISTINCT ss_customer_sk) FROM store_sales",
    "SELECT cc_name, SUM(cs_net_profit) FROM catalog_sales, call_center WHERE cs_call_center_sk = cc_call_center_sk GROUP BY cc_name",
    "SELECT r_reason_desc, COUNT(*) FROM store_returns, reason WHERE sr_reason_sk = r_reason_sk GROUP BY r_reason_desc",
    "SELECT i_brand, RANK() OVER (ORDER BY SUM(ws_ext_sales_price) DESC) FROM web_sales, item WHERE ws_item_sk = i_item_sk GROUP BY i_brand LIMIT 20",
]


def test_concurrent_queries_match_serial(loaded_db):
    serial = [fingerprint_rows(loaded_db.execute(q).rows()) for q in QUERIES]

    def run(query):
        return fingerprint_rows(loaded_db.execute(query).rows())

    with ThreadPoolExecutor(max_workers=6) as pool:
        for _ in range(3):  # several passes to shake out races
            concurrent = list(pool.map(run, QUERIES))
            assert concurrent == serial


def test_concurrent_index_lazy_rebuild(loaded_db):
    """Lazy index rebuilds must be safe when many threads probe after an
    invalidation."""
    index = loaded_db.create_index("customer", "c_customer_id", "hash")
    bk = loaded_db.table("customer").columns["c_customer_id"].value(0)
    index.invalidate()

    def probe(_):
        return index.lookup(bk).tolist()

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(probe, range(16)))
    assert all(r == results[0] and r for r in results)


def test_concurrent_matview_rewrite(fresh_db):
    from repro.runner.execution import REPORTING_MATVIEWS

    for name, sql in REPORTING_MATVIEWS.items():
        fresh_db.create_materialized_view(name, sql)
    query = """
        SELECT cc_name, SUM(cs_net_profit) p FROM catalog_sales, call_center
        WHERE cs_call_center_sk = cc_call_center_sk
        GROUP BY cc_name, cc_manager ORDER BY p DESC
    """
    serial = fresh_db.execute(query)
    assert serial.rewritten_from_view == "mv_call_center_profit"

    def run(_):
        return fingerprint_rows(fresh_db.execute(query).rows())

    with ThreadPoolExecutor(max_workers=4) as pool:
        results = list(pool.map(run, range(8)))
    assert set(results) == {fingerprint_rows(serial.rows())}


def test_full_streams_concurrent_deterministic(loaded_db, qgen):
    """Two concurrent workload streams give the same per-template answers
    as the same streams run serially."""

    def run_stream(stream):
        out = {}
        for query in qgen.generate_stream(stream)[:25]:
            rows = []
            for statement in query.statements:
                rows.extend(loaded_db.execute(statement).rows())
            out[query.template_id] = fingerprint_rows(rows)
        return out

    serial = [run_stream(1), run_stream(2)]
    with ThreadPoolExecutor(max_workers=2) as pool:
        concurrent = list(pool.map(run_stream, (1, 2)))
    assert concurrent == serial
