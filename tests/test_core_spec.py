"""Spec-constant consistency: the core facade's numbers agree with every
implementing subsystem (no drift between the spec module and reality)."""

from repro.core import spec
from repro.dsdgen import minimum_streams
from repro.maintenance import DM_OPERATIONS
from repro.qgen import build_catalog
from repro.runner import QUERIES_PER_STREAM, QUERY_RUNS, total_queries
from repro.schema import DIMENSION_TABLES, FACT_TABLES, schema_statistics


class TestSpecAgreement:
    def test_query_count(self):
        assert spec.NUM_QUERIES == 99
        assert len(build_catalog()) == spec.NUM_QUERIES
        assert QUERIES_PER_STREAM == spec.NUM_QUERIES

    def test_dm_operations(self):
        assert spec.NUM_DM_OPERATIONS == 12
        assert len(DM_OPERATIONS) == spec.NUM_DM_OPERATIONS

    def test_table_counts(self):
        assert len(FACT_TABLES) == spec.NUM_FACT_TABLES
        assert len(DIMENSION_TABLES) == spec.NUM_DIMENSION_TABLES
        assert spec.NUM_TABLES == 24

    def test_foreign_keys(self):
        assert schema_statistics().foreign_keys == spec.NUM_FOREIGN_KEYS

    def test_minimum_streams_table(self):
        for sf, expected in spec.MINIMUM_STREAMS_TABLE.items():
            assert minimum_streams(sf) == expected

    def test_metric_examples(self):
        for _, streams, expected_queries in spec.METRIC_EXAMPLES:
            assert total_queries(streams) == expected_queries

    def test_query_runs(self):
        assert QUERY_RUNS == 2

    def test_official_scale_factors_reexported(self):
        assert spec.OFFICIAL_SCALE_FACTORS == (100, 300, 1000, 3000, 10000, 30000, 100000)

    def test_average_columns(self):
        assert round(schema_statistics().columns_avg) == spec.AVG_COLUMNS_PER_TABLE
