"""SQL-queryable introspection: the ``sys.*`` virtual tables, the
fingerprinted statement store behind them, and the CLI surfaces
(``obs top`` / ``obs history --prune``) built on the same store."""

import json
import os

import pytest

from repro.cli import main
from repro.engine import Database
from repro.engine.errors import CatalogError, ExecutionError
from repro.obs import (
    StatementStore,
    fingerprint,
    load_store,
    normalize_statement,
    prune_history,
)

from tests.conftest import make_simple_db


def rows(db, sql):
    return db.execute(sql).rows()


@pytest.fixture()
def recording_db():
    db = make_simple_db()
    db.statement_store = StatementStore()
    return db


# -- fingerprinting ---------------------------------------------------------


class TestFingerprint:
    def test_literals_collapse_to_placeholder(self):
        a = "SELECT item_sk FROM sales WHERE price = 5.0"
        b = "SELECT item_sk FROM sales WHERE price = 99.25"
        assert fingerprint(a) == fingerprint(b)

    def test_string_literals_collapse(self):
        a = "SELECT * FROM item WHERE i_brand = 'b1'"
        b = "SELECT * FROM item WHERE i_brand = 'zzz'"
        assert fingerprint(a) == fingerprint(b)

    def test_in_list_length_is_irrelevant(self):
        a = "SELECT 1 FROM sales WHERE item_sk IN (1, 2, 3, 4)"
        b = "SELECT 1 FROM sales WHERE item_sk IN (7)"
        assert fingerprint(a) == fingerprint(b)

    def test_whitespace_and_keyword_case_fold(self):
        a = "select   item_sk\nfrom sales\twhere qty = 1"
        b = "SELECT item_sk FROM sales WHERE qty = 2"
        assert fingerprint(a) == fingerprint(b)

    def test_different_shapes_differ(self):
        a = "SELECT item_sk FROM sales WHERE price = 5.0"
        b = "SELECT cust_sk FROM sales WHERE price = 5.0"
        assert fingerprint(a) != fingerprint(b)

    def test_normalized_text_is_readable(self):
        out = normalize_statement(
            "SELECT item_sk FROM sales WHERE price = 5.0 AND qty IN (1, 2)"
        )
        assert out == (
            "SELECT item_sk FROM sales WHERE price = ? AND qty IN ( ? )"
        )

    def test_unparseable_sql_still_fingerprints(self):
        # lexer failures degrade to whitespace-folded raw text
        assert fingerprint("SELECT \x00!bogus") == fingerprint(
            "SELECT   \x00!bogus"
        )


# -- the statement store ----------------------------------------------------


class TestStatementStore:
    def test_aggregates_merge_across_variants(self, recording_db):
        db = recording_db
        db.execute("SELECT item_sk FROM sales WHERE price = 5.0")
        db.execute("SELECT item_sk FROM sales WHERE price = 10.0")
        store = db.statement_store
        assert len(store) == 1
        stats = store.statements()[0]
        assert stats.calls == 2
        assert stats.rows == 2  # one matching row per variant
        assert stats.min_elapsed <= stats.mean_elapsed <= stats.max_elapsed
        assert stats.total_elapsed > 0

    def test_failures_count_as_errors(self, recording_db):
        db = recording_db
        with pytest.raises(Exception):
            db.execute("SELECT no_such_column FROM sales")
        stats = db.statement_store.statements()[0]
        assert stats.calls == 1
        assert stats.errors == 1
        entry = db.statement_store.recent()[-1]
        assert entry["status"] == "failed"
        assert entry["error"]

    def test_top_ranks_and_rejects_unknown_columns(self, recording_db):
        db = recording_db
        db.execute("SELECT COUNT(*) FROM sales")
        db.execute("SELECT COUNT(*) FROM item")
        store = db.statement_store
        top = store.top(by="calls", limit=1)
        assert len(top) == 1
        with pytest.raises(ValueError):
            store.top(by="drop_table")

    def test_journal_roundtrip(self, tmp_path):
        path = str(tmp_path / "statements.jsonl")
        with StatementStore(path) as store:
            store.record("SELECT 1 FROM sales WHERE qty = 1", 0.5, rows=3)
            store.record("SELECT 1 FROM sales WHERE qty = 9", 1.5, rows=4)
            store.note_retry("SELECT 1 FROM sales WHERE qty = 1")
        reloaded = load_store(path)
        assert len(reloaded) == 1
        stats = reloaded.statements()[0]
        assert stats.calls == 2
        assert stats.rows == 7
        assert stats.retries == 1
        assert stats.total_elapsed == pytest.approx(2.0)
        assert stats.min_elapsed == pytest.approx(0.5)
        assert stats.max_elapsed == pytest.approx(1.5)
        reloaded.close()

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "statements.jsonl")
        with StatementStore(path) as store:
            store.record("SELECT 1 FROM sales", 0.25)
        # simulate a SIGKILL mid-append: a partial JSON line at the end
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"fp": "deadbeef", "q": "SELECT trunc')
        reloaded = load_store(path)
        assert len(reloaded) == 1
        assert reloaded.statements()[0].calls == 1
        reloaded.close()

    def test_compaction_bounds_the_journal(self, tmp_path):
        path = str(tmp_path / "statements.jsonl")
        with StatementStore(path) as store:
            for _ in range(1200):
                store.record("SELECT 1 FROM sales", 0.001)
        assert sum(1 for _ in open(path)) >= 1200
        reloaded = StatementStore(path)
        assert reloaded.statements()[0].calls == 1200
        reloaded.close()
        # one distinct fingerprint -> compacted to one aggregate line
        assert sum(1 for _ in open(path)) == 1

    def test_as_dict_carries_top_offenders(self, recording_db):
        db = recording_db
        db.execute("SELECT COUNT(*) FROM sales")
        payload = db.statement_store.as_dict()
        assert payload["fingerprints"] == 1
        assert payload["top_elapsed"][0]["calls"] == 1
        assert payload["top_spilled"] == []  # nothing spilled


# -- sys.* virtual tables ---------------------------------------------------


class TestSysTables:
    def test_statements_table_orders_by_total_elapsed(self, recording_db):
        db = recording_db
        db.execute("SELECT item_sk FROM sales WHERE price = 5.0")
        db.execute("SELECT COUNT(*) FROM item")
        out = rows(db, "SELECT query, calls, mean_elapsed, spilled_bytes"
                       " FROM sys.statements ORDER BY total_elapsed DESC")
        assert len(out) == 2
        assert any("?" in query for query, _, _, _ in out)
        for _, calls, mean_elapsed, spilled in out:
            assert calls == 1
            assert mean_elapsed > 0
            assert spilled == 0

    def test_statements_empty_without_store(self):
        db = make_simple_db()
        assert rows(db, "SELECT * FROM sys.statements") == []

    def test_sys_scans_are_never_recorded(self, recording_db):
        db = recording_db
        db.execute("SELECT * FROM sys.statements")
        db.execute("SELECT name FROM sys.tables ORDER BY name")
        db.execute(
            "SELECT s.calls FROM sys.statements s WHERE s.calls > 0"
        )
        # a CTE or subquery touching sys.* is introspection too
        db.execute(
            "WITH t AS (SELECT calls FROM sys.statements)"
            " SELECT COUNT(*) FROM t"
        )
        assert len(db.statement_store) == 0

    def test_queries_log_reflects_recent_statements(self, recording_db):
        db = recording_db
        db.execute("SELECT COUNT(*) FROM sales")
        out = rows(db, "SELECT query, status, rows FROM sys.queries")
        assert out == [("SELECT COUNT(*) FROM sales", "ok", 1)]

    def test_tables_and_columns_join(self):
        db = make_simple_db()
        out = rows(db, "SELECT t.name, COUNT(*)"
                       " FROM sys.tables t, sys.columns c"
                       " WHERE t.name = c.table_name"
                       " GROUP BY t.name ORDER BY t.name")
        assert out == [("item", 3), ("sales", 4)]

    def test_columns_carry_gathered_stats(self):
        db = make_simple_db()
        out = rows(db, "SELECT ndv, min_value, max_value FROM sys.columns"
                       " WHERE table_name = 'sales'"
                       " AND column_name = 'item_sk'")
        assert out == [(3, "1", "3")]

    def test_operators_expose_last_profiled_plan(self, recording_db):
        db = recording_db
        db.execute("SELECT COUNT(*) FROM sales WHERE qty > 1")
        out = rows(db, "SELECT operator, rows FROM sys.operators"
                       " ORDER BY op_id")
        assert out  # the profiled plan has at least scan + agg
        assert any("Scan" in op for op, _ in out)

    def test_metrics_table_snapshots_registry(self):
        from repro.obs import MetricsRegistry, set_registry

        previous = set_registry(MetricsRegistry(enabled=True))
        try:
            from repro.obs import get_registry

            get_registry().counter("test.systables").add(3)
            db = make_simple_db()
            out = rows(db, "SELECT value FROM sys.metrics"
                           " WHERE name = 'test.systables'")
            assert out == [(3.0,)]
        finally:
            set_registry(previous)

    def test_metrics_table_empty_when_disabled(self):
        db = make_simple_db()
        assert rows(db, "SELECT * FROM sys.metrics") == []

    def test_dml_against_sys_tables_is_refused(self, recording_db):
        db = recording_db
        with pytest.raises((ExecutionError, CatalogError)):
            db.execute("DELETE FROM sys.statements WHERE calls = 1")
        with pytest.raises((ExecutionError, CatalogError)):
            db.execute(
                "INSERT INTO sys.tables VALUES ('x', 1, 1, 0, FALSE)"
            )

    def test_indexing_sys_tables_is_refused(self):
        db = make_simple_db()
        with pytest.raises(CatalogError):
            db.create_index("sys.tables", "name", "hash")

    def test_sys_names_do_not_leak_into_user_catalog(self):
        db = make_simple_db()
        assert "sys.tables" not in db.catalog.table_names
        assert "sys.tables" in db.catalog.virtual_names

    def test_explain_is_not_recorded(self, recording_db):
        db = recording_db
        db.execute("EXPLAIN SELECT COUNT(*) FROM sales")
        assert len(db.statement_store) == 0


# -- runner + report wiring -------------------------------------------------


class TestRunnerWiring:
    def test_benchmark_populates_store_and_report(self, tmp_path):
        from repro.runner import render_full_disclosure
        from repro.runner.execution import BenchmarkConfig, run_benchmark

        path = str(tmp_path / "statements.jsonl")
        config = BenchmarkConfig(
            scale_factor=0.001, streams=1, statement_store_path=path
        )
        result, run = run_benchmark(config)
        assert result.statements is not None
        assert result.statements["fingerprints"] > 0
        assert result.statements["top_elapsed"]
        report = render_full_disclosure(result)
        assert "top statements by fingerprint" in report
        # the journal survives the run and reloads standalone
        reloaded = load_store(path)
        assert len(reloaded) == result.statements["fingerprints"]
        reloaded.close()
        # the loaded database still answers the acceptance query
        out = rows(run.db, "SELECT query, calls, mean_elapsed,"
                           " spilled_bytes FROM sys.statements"
                           " ORDER BY total_elapsed DESC")
        assert len(out) == result.statements["fingerprints"]


# -- history pruning --------------------------------------------------------


class TestPruneHistory:
    def _write(self, path, records):
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def test_keeps_last_n_per_sha_module(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        records = [
            {"sha": "aaa", "module": "m1", "benchmarks": [], "n": i}
            for i in range(5)
        ] + [{"sha": "bbb", "module": "m1", "benchmarks": [], "n": 9}]
        self._write(path, records)
        kept, dropped = prune_history(path, keep=2)
        assert (kept, dropped) == (3, 3)
        remaining = [json.loads(l) for l in open(path)]
        assert [r["n"] for r in remaining] == [3, 4, 9]

    def test_noop_when_under_limit(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        self._write(path, [{"sha": "aaa", "module": "m1"}])
        before = os.path.getmtime(path)
        assert prune_history(path, keep=3) == (1, 0)
        assert os.path.getmtime(path) == before  # not rewritten

    def test_missing_file_and_bad_keep(self, tmp_path):
        assert prune_history(str(tmp_path / "absent.jsonl"), keep=1) == (0, 0)
        with pytest.raises(ValueError):
            prune_history(str(tmp_path / "absent.jsonl"), keep=0)


# -- CLI surfaces -----------------------------------------------------------


class TestObsCli:
    def test_obs_top_reads_a_store(self, tmp_path, capsys):
        path = str(tmp_path / "statements.jsonl")
        with StatementStore(path) as store:
            store.record("SELECT COUNT(*) FROM sales", 0.75, rows=1)
        assert main(["obs", "top", "--store", path]) == 0
        out = capsys.readouterr().out
        assert "top 1 statement(s) by total_elapsed" in out
        assert "SELECT count ( * ) FROM sales" in out

    def test_obs_top_missing_store_fails(self, tmp_path, capsys):
        assert main(["obs", "top", "--store",
                     str(tmp_path / "absent.jsonl")]) == 1
        assert "no statement store" in capsys.readouterr().err

    def test_obs_top_unknown_column_fails(self, tmp_path, capsys):
        path = str(tmp_path / "statements.jsonl")
        with StatementStore(path) as store:
            store.record("SELECT 1 FROM sales", 0.1)
        assert main(["obs", "top", "--store", path, "--by", "bogus"]) == 2
        assert "unknown statement-store column" in capsys.readouterr().err

    def test_obs_history_prune(self, tmp_path, capsys):
        path = str(tmp_path / "history.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for i in range(4):
                handle.write(json.dumps(
                    {"sha": "aaa", "module": "m1", "n": i}) + "\n")
        assert main(["obs", "history", "--prune", "--keep", "1",
                     "--history", path]) == 0
        assert "3 dropped" in capsys.readouterr().out
        assert sum(1 for _ in open(path)) == 1

    def test_obs_history_summary(self, tmp_path, capsys):
        path = str(tmp_path / "history.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"sha": "cafebabe0123", "module": "bench_x"}) + "\n")
        assert main(["obs", "history", "--history", path]) == 0
        out = capsys.readouterr().out
        assert "1 record(s)" in out
        assert "bench_x" in out

    def test_run_statement_store_flag(self, tmp_path, capsys):
        path = str(tmp_path / "statements.jsonl")
        rc = main(["run", "--scale", "0.001", "--streams", "1",
                   "--statement-store", path])
        assert rc == 0
        assert "statement store written" in capsys.readouterr().out
        store = load_store(path)
        assert len(store) > 0
        store.close()
