"""Checkpoint/resume: the crash-safe journal and exact resumption."""

from __future__ import annotations

import json
import os

import pytest

from repro.faults import FaultInjector
from repro.obs import load_store
from repro.runner import (
    BenchmarkConfig,
    CheckpointMismatch,
    load_checkpoint,
    run_benchmark,
)

SF = 0.001
STREAMS = 2


def _metric_keys(result):
    """The inputs the metric consumes, independent of wall clock."""
    keys = set()
    for run_no, run in ((1, result.query_run_1), (2, result.query_run_2)):
        for t in run.timings:
            keys.add((run_no, t.stream, t.template_id, t.rows))
    return keys


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory):
    ckpt = str(tmp_path_factory.mktemp("ckpt") / "journal.jsonl")
    config = BenchmarkConfig(scale_factor=SF, streams=STREAMS, checkpoint_path=ckpt)
    result, _ = run_benchmark(config)
    return ckpt, result


def test_journal_records_all_queries(completed_run):
    ckpt, result = completed_run
    state = load_checkpoint(ckpt)
    assert state.complete
    assert len(state.queries) == result.total_queries
    assert state.phase_elapsed("qr1") is not None
    assert state.phase_elapsed("qr2") is not None
    assert state.phase_elapsed("maintenance") is not None


def test_full_resume_skips_every_query(completed_run):
    ckpt, original = completed_run
    config = BenchmarkConfig(
        scale_factor=SF, streams=STREAMS, checkpoint_path=ckpt, resume=True
    )
    resumed, _ = run_benchmark(config)
    assert resumed.queries_resumed == original.total_queries
    assert resumed.compliant
    # metric inputs are identical to the uninterrupted run
    assert _metric_keys(resumed) == _metric_keys(original)
    assert resumed.query_run_1.elapsed == original.query_run_1.elapsed
    assert resumed.query_run_2.elapsed == original.query_run_2.elapsed
    assert resumed.maintenance.elapsed == original.maintenance.elapsed
    assert resumed.qphds == pytest.approx(original.qphds, rel=0.25)


def test_partial_resume_completes_the_run(completed_run, tmp_path):
    """Simulate a crash mid-qr1 (journal cut at 30 query records plus a
    torn trailing line) and resume: journaled queries are skipped, the
    rest run, and the merged journal has no duplicates."""
    ckpt, original = completed_run
    cut_path = str(tmp_path / "journal.jsonl")
    kept, queries = [], 0
    with open(ckpt) as handle:
        for line in handle:
            record = json.loads(line)
            if record["kind"] != "header" and record["kind"] != "query":
                continue  # drop phase/complete markers: the run "crashed"
            kept.append(line.rstrip("\n"))
            if record["kind"] == "query":
                queries += 1
                if queries == 30:
                    break
    with open(cut_path, "w") as handle:
        handle.write("\n".join(kept))
        handle.write('\n{"kind": "query", "ru')  # torn mid-write

    config = BenchmarkConfig(
        scale_factor=SF, streams=STREAMS, checkpoint_path=cut_path, resume=True
    )
    resumed, _ = run_benchmark(config)
    assert resumed.queries_resumed == 30
    assert resumed.compliant
    assert _metric_keys(resumed) == _metric_keys(original)

    seen = set()
    with open(cut_path) as handle:
        for line in handle:
            record = json.loads(line)  # repaired journal: every line parses
            if record["kind"] == "query":
                key = (record["run"], record["stream"], record["template_id"])
                assert key not in seen, f"duplicate journal record {key}"
                seen.add(key)
    assert len(seen) == original.total_queries
    state = load_checkpoint(cut_path)
    assert state.complete


def test_resume_refuses_mismatched_config(completed_run):
    ckpt, _ = completed_run
    bad = BenchmarkConfig(
        scale_factor=SF, streams=STREAMS, seed=1, checkpoint_path=ckpt, resume=True
    )
    with pytest.raises(CheckpointMismatch):
        run_benchmark(bad)


def test_loader_tolerates_missing_file(tmp_path):
    assert load_checkpoint(str(tmp_path / "nope.jsonl")) is None


def test_resume_without_existing_journal_runs_fresh(tmp_path):
    ckpt = str(tmp_path / "fresh.jsonl")
    config = BenchmarkConfig(
        scale_factor=SF, streams=1, checkpoint_path=ckpt, resume=True
    )
    result, _ = run_benchmark(config)
    assert result.queries_resumed == 0
    assert result.compliant
    assert os.path.exists(ckpt)


# -- checkpoint x statement store: resume must not double-count --------------


@pytest.fixture(scope="module")
def stored_run(tmp_path_factory):
    """A checkpointed single-stream run that also journals a statement
    store, under transient query faults so some statements genuinely
    retried (each failed attempt records an error call plus one retry
    credit) before every query eventually passed."""
    tmp = tmp_path_factory.mktemp("stmtstore")
    ckpt = str(tmp / "journal.jsonl")
    store_path = str(tmp / "statements.jsonl")
    config = BenchmarkConfig(
        scale_factor=SF, streams=1, checkpoint_path=ckpt,
        statement_store_path=store_path,
        faults=FaultInjector(seed=4, error_rate=0.05, scope=("query",)),
    )
    result, _ = run_benchmark(config)
    return ckpt, store_path, result


def _store_counts(path):
    """Per-fingerprint (calls, retries, errors) from a store journal."""
    store = load_store(path)
    try:
        return {
            s.fingerprint: (s.calls, s.retries, s.errors)
            for s in store.statements()
        }
    finally:
        store.close()


def test_full_resume_does_not_recount_statements(stored_run):
    """Resuming a fully-journaled run re-executes nothing, so the
    statement store's per-fingerprint calls/retries/errors stay exactly
    as the crashed process left them — retried statements are not
    counted a second time."""
    ckpt, store_path, original = stored_run
    assert original.compliant
    before = _store_counts(store_path)
    total_retries = sum(r for _, r, _ in before.values())
    total_errors = sum(e for _, _, e in before.values())
    assert total_retries > 0  # the fault injector really bit
    # runner retries were credited as retry counts, not extra clean
    # calls: every transient failure shows up as one error + one retry
    assert total_retries == total_errors

    config = BenchmarkConfig(
        scale_factor=SF, streams=1, checkpoint_path=ckpt,
        statement_store_path=store_path, resume=True,
    )
    resumed, _ = run_benchmark(config)
    assert resumed.queries_resumed == original.total_queries
    assert _store_counts(store_path) == before


def test_partial_resume_recounts_only_reexecuted_statements(
    stored_run, tmp_path
):
    """After a simulated SIGKILL (journal cut at 20 completed queries),
    resume grows each fingerprint's call count by exactly the number of
    re-executed statements that hash to it: journaled-ok queries add
    zero, and no new retries appear in a fault-free resume."""
    from collections import Counter

    from repro.dsdgen.context import GeneratorContext
    from repro.obs.fingerprint import fingerprint
    from repro.qgen import QGen, build_catalog

    ckpt, store_path, original = stored_run
    before = _store_counts(store_path)

    cut_path = str(tmp_path / "journal.jsonl")
    kept, journaled = [], set()
    with open(ckpt) as handle:
        for line in handle:
            record = json.loads(line)
            if record["kind"] not in ("header", "query"):
                continue  # the run "crashed": no phase/complete markers
            kept.append(line.rstrip("\n"))
            if record["kind"] == "query":
                if record.get("status", "ok") == "ok":
                    journaled.add(
                        (record["run"], record["stream"],
                         record["template_id"])
                    )
                if len(journaled) == 20:
                    break
    with open(cut_path, "w") as handle:
        handle.write("\n".join(kept))
        handle.write('\n{"kind": "query", "ru')  # torn mid-write

    config = BenchmarkConfig(
        scale_factor=SF, streams=1, checkpoint_path=cut_path,
        statement_store_path=store_path, resume=True,
    )
    resumed, _ = run_benchmark(config)
    assert resumed.queries_resumed == 20
    assert resumed.compliant
    after = _store_counts(store_path)

    # the oracle: regenerate every stream's statements and count the
    # fingerprints of exactly the queries the resume had to re-execute
    context = GeneratorContext(SF, config.seed)
    context.ensure_key_pools()
    qgen = QGen(context, build_catalog())
    expected = Counter()
    for run_no, label in ((1, "qr1"), (2, "qr2")):
        stream = run_no - 1  # streams=1: qr1 runs stream 0, qr2 stream 1
        for query in qgen.generate_stream(stream):
            if (label, stream, query.template_id) in journaled:
                continue
            for statement in query.statements:
                expected[fingerprint(statement)] += 1

    for fp in set(before) | set(after):
        b_calls, b_retries, _ = before.get(fp, (0, 0, 0))
        a_calls, a_retries, _ = after.get(fp, (0, 0, 0))
        assert a_calls - b_calls == expected.get(fp, 0), fp
        assert a_retries == b_retries, fp  # no faults during resume
