"""Checkpoint/resume: the crash-safe journal and exact resumption."""

from __future__ import annotations

import json
import os

import pytest

from repro.runner import (
    BenchmarkConfig,
    CheckpointMismatch,
    load_checkpoint,
    run_benchmark,
)

SF = 0.001
STREAMS = 2


def _metric_keys(result):
    """The inputs the metric consumes, independent of wall clock."""
    keys = set()
    for run_no, run in ((1, result.query_run_1), (2, result.query_run_2)):
        for t in run.timings:
            keys.add((run_no, t.stream, t.template_id, t.rows))
    return keys


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory):
    ckpt = str(tmp_path_factory.mktemp("ckpt") / "journal.jsonl")
    config = BenchmarkConfig(scale_factor=SF, streams=STREAMS, checkpoint_path=ckpt)
    result, _ = run_benchmark(config)
    return ckpt, result


def test_journal_records_all_queries(completed_run):
    ckpt, result = completed_run
    state = load_checkpoint(ckpt)
    assert state.complete
    assert len(state.queries) == result.total_queries
    assert state.phase_elapsed("qr1") is not None
    assert state.phase_elapsed("qr2") is not None
    assert state.phase_elapsed("maintenance") is not None


def test_full_resume_skips_every_query(completed_run):
    ckpt, original = completed_run
    config = BenchmarkConfig(
        scale_factor=SF, streams=STREAMS, checkpoint_path=ckpt, resume=True
    )
    resumed, _ = run_benchmark(config)
    assert resumed.queries_resumed == original.total_queries
    assert resumed.compliant
    # metric inputs are identical to the uninterrupted run
    assert _metric_keys(resumed) == _metric_keys(original)
    assert resumed.query_run_1.elapsed == original.query_run_1.elapsed
    assert resumed.query_run_2.elapsed == original.query_run_2.elapsed
    assert resumed.maintenance.elapsed == original.maintenance.elapsed
    assert resumed.qphds == pytest.approx(original.qphds, rel=0.25)


def test_partial_resume_completes_the_run(completed_run, tmp_path):
    """Simulate a crash mid-qr1 (journal cut at 30 query records plus a
    torn trailing line) and resume: journaled queries are skipped, the
    rest run, and the merged journal has no duplicates."""
    ckpt, original = completed_run
    cut_path = str(tmp_path / "journal.jsonl")
    kept, queries = [], 0
    with open(ckpt) as handle:
        for line in handle:
            record = json.loads(line)
            if record["kind"] != "header" and record["kind"] != "query":
                continue  # drop phase/complete markers: the run "crashed"
            kept.append(line.rstrip("\n"))
            if record["kind"] == "query":
                queries += 1
                if queries == 30:
                    break
    with open(cut_path, "w") as handle:
        handle.write("\n".join(kept))
        handle.write('\n{"kind": "query", "ru')  # torn mid-write

    config = BenchmarkConfig(
        scale_factor=SF, streams=STREAMS, checkpoint_path=cut_path, resume=True
    )
    resumed, _ = run_benchmark(config)
    assert resumed.queries_resumed == 30
    assert resumed.compliant
    assert _metric_keys(resumed) == _metric_keys(original)

    seen = set()
    with open(cut_path) as handle:
        for line in handle:
            record = json.loads(line)  # repaired journal: every line parses
            if record["kind"] == "query":
                key = (record["run"], record["stream"], record["template_id"])
                assert key not in seen, f"duplicate journal record {key}"
                seen.add(key)
    assert len(seen) == original.total_queries
    state = load_checkpoint(cut_path)
    assert state.complete


def test_resume_refuses_mismatched_config(completed_run):
    ckpt, _ = completed_run
    bad = BenchmarkConfig(
        scale_factor=SF, streams=STREAMS, seed=1, checkpoint_path=ckpt, resume=True
    )
    with pytest.raises(CheckpointMismatch):
        run_benchmark(bad)


def test_loader_tolerates_missing_file(tmp_path):
    assert load_checkpoint(str(tmp_path / "nope.jsonl")) is None


def test_resume_without_existing_journal_runs_fresh(tmp_path):
    ckpt = str(tmp_path / "fresh.jsonl")
    config = BenchmarkConfig(
        scale_factor=SF, streams=1, checkpoint_path=ckpt, resume=True
    )
    result, _ = run_benchmark(config)
    assert result.queries_resumed == 0
    assert result.compliant
    assert os.path.exists(ckpt)
