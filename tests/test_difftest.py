"""Differential harness: renderers, normalizer, oracle, fuzzer, shrinker."""

import dataclasses

import pytest

from repro.difftest import (
    DiffHarness,
    QueryFuzzer,
    SqliteOracle,
    compare_results,
    is_total_order,
    normalize_cell,
    shrink_query,
    summarize,
    to_engine_sql,
    to_sqlite_sql,
)
from repro.difftest.corpus import load_corpus, write_repro
from repro.difftest.render import substitute
from repro.engine.sql import ast_nodes as A
from repro.engine.sql.parser import parse_query

from tests.conftest import make_simple_db


# -- engine-dialect renderer ----------------------------------------------


class TestEngineRenderer:
    @pytest.mark.parametrize("sql", [
        "SELECT i_brand, COUNT(*) FROM item GROUP BY i_brand HAVING COUNT(*) > 1",
        "SELECT DISTINCT i_class FROM item ORDER BY i_class DESC NULLS FIRST LIMIT 3",
        "SELECT s.price FROM sales AS s JOIN item AS i ON s.item_sk = i.i_sk",
        "SELECT price FROM sales WHERE item_sk IN (1, 2) AND price BETWEEN 5 AND 20",
        "SELECT i_brand FROM item WHERE i_brand LIKE 'b!_%' ESCAPE '!'",
        "SELECT CASE WHEN qty > 2 THEN price ELSE 0 - price END FROM sales",
        "SELECT CAST(price AS integer) FROM sales WHERE cust_sk IS NOT NULL",
        "SELECT item_sk, SUM(price) FROM sales GROUP BY ROLLUP(item_sk)",
        "SELECT i_sk FROM item UNION ALL SELECT item_sk FROM sales",
        "WITH big AS (SELECT price FROM sales WHERE qty > 1) "
        "SELECT MAX(price) FROM big",
        "SELECT RANK() OVER (PARTITION BY i_class ORDER BY i_brand) FROM item",
        "SELECT (SELECT MAX(price) FROM sales) FROM item",
        "SELECT price FROM sales WHERE EXISTS (SELECT 1 FROM item)",
    ])
    def test_round_trip(self, sql):
        """Engine-dialect rendering must re-parse to the identical AST."""
        ast = parse_query(sql)
        assert parse_query(to_engine_sql(ast)) == ast


class TestSqliteRenderer:
    def test_date_literal_becomes_epoch_days(self):
        ast = parse_query("SELECT 1 FROM item WHERE i_sk > DATE '1970-01-11'")
        assert "10" in to_sqlite_sql(ast)
        assert "DATE" not in to_sqlite_sql(ast)

    def test_division_casts_to_real(self):
        ast = parse_query("SELECT qty / 2 FROM sales")
        assert "CAST(qty AS REAL) / 2" in to_sqlite_sql(ast)

    def test_sort_keys_always_spell_null_placement(self):
        ast = parse_query("SELECT price FROM sales ORDER BY price, qty DESC")
        sql = to_sqlite_sql(ast)
        assert "price ASC NULLS LAST" in sql
        assert "qty DESC NULLS FIRST" in sql

    def test_rollup_expands_to_union_all(self):
        ast = parse_query(
            "SELECT item_sk, SUM(price) FROM sales GROUP BY ROLLUP(item_sk)"
        )
        sql = to_sqlite_sql(ast)
        assert "UNION ALL" in sql
        assert "SELECT NULL, SUM(price)" in sql

    def test_function_names_mapped(self):
        ast = parse_query("SELECT YEAR(d_date) FROM date_dim")
        assert "year_of(d_date)" in to_sqlite_sql(ast)

    def test_substitute_replaces_structurally(self):
        target = A.ColumnRef("x")
        expr = A.BinaryOp("+", A.ColumnRef("x"), A.ColumnRef("y"))
        out = substitute(expr, target, A.Literal(None))
        assert out == A.BinaryOp("+", A.Literal(None), A.ColumnRef("y"))


# -- normalization ---------------------------------------------------------


class TestNormalize:
    def test_integral_float_collapses_to_int(self):
        assert normalize_cell(3.0) == 3
        assert normalize_cell(-0.0) == 0

    def test_bool_becomes_int(self):
        assert normalize_cell(True) == 1

    def test_quantization(self):
        assert normalize_cell(1.23456789) == 1.23457
        assert normalize_cell(float("nan")) == "<nan>"

    def test_row_count_difference(self):
        assert "row count" in compare_results([(1,)], [(1,), (2,)], False)

    def test_multiset_ignores_order(self):
        assert compare_results([(1,), (2,)], [(2,), (1,)], False) is None
        assert compare_results([(1,), (2,)], [(2,), (1,)], True) is not None

    def test_rel_tol_absorbs_boundary_split(self):
        # both values quantize apart at ANY digit count (.x5 boundary)
        # but differ by 1 ulp of accumulation order
        left, right = [(53107.549999999996,)], [(53107.55,)]
        assert compare_results(left, right, True) is not None
        assert compare_results(left, right, True, rel_tol=1e-9) is None

    def test_rel_tol_still_catches_real_differences(self):
        assert compare_results(
            [(53107.3,)], [(53107.55,)], True, rel_tol=1e-9
        ) is not None

    def test_none_sorts_before_values(self):
        assert compare_results([(None,), (1,)], [(1,), (None,)], False) is None


class TestTotalOrder:
    def test_covering_order_is_total(self):
        q = parse_query("SELECT price AS p FROM sales ORDER BY p")
        assert is_total_order(q)

    def test_partial_order_is_not(self):
        q = parse_query("SELECT price, qty FROM sales ORDER BY price")
        assert not is_total_order(q)

    def test_no_order_is_not(self):
        assert not is_total_order(parse_query("SELECT price FROM sales"))


# -- oracle agreement on hand-written queries ------------------------------


SIMPLE_QUERIES = [
    "SELECT item_sk, cust_sk, price, qty FROM sales ORDER BY item_sk, cust_sk, price, qty",
    "SELECT item_sk, SUM(price * qty) AS rev FROM sales GROUP BY item_sk",
    "SELECT i_class, COUNT(*) FROM sales, item WHERE item_sk = i_sk GROUP BY i_class",
    "SELECT i_brand FROM sales LEFT JOIN item ON item_sk = i_sk WHERE price > 6",
    "SELECT item_sk, SUM(qty) FROM sales GROUP BY ROLLUP(item_sk)",
    "SELECT item_sk, RANK() OVER (ORDER BY price) FROM sales",
    "SELECT SUM(price) OVER (PARTITION BY item_sk) FROM sales",
    "SELECT i_sk FROM item UNION SELECT item_sk FROM sales WHERE item_sk IS NOT NULL",
    "SELECT i_sk FROM item EXCEPT SELECT item_sk FROM sales",
    "SELECT i_brand FROM item WHERE i_brand LIKE 'b!_%' ESCAPE '!'",
    "SELECT i_brand FROM item WHERE i_brand LIKE 'b_'",
    "SELECT price / 0 FROM sales",
    "SELECT price / qty FROM sales",
    "SELECT MOD(0 - qty, 3) FROM sales WHERE qty IS NOT NULL",
    "SELECT CAST(price AS integer), CAST(qty AS float) FROM sales",
    "SELECT CAST(0 - price AS integer) FROM sales",
    "SELECT price FROM sales ORDER BY cust_sk NULLS FIRST, price LIMIT 3",
    "SELECT cust_sk FROM sales ORDER BY cust_sk DESC",
    "SELECT (SELECT MAX(price) FROM sales) + qty FROM sales",
    "SELECT COUNT(DISTINCT item_sk) FROM sales",
    "SELECT AVG(price), MIN(qty), MAX(qty) FROM sales WHERE item_sk IN (1, 3)",
    "SELECT CASE WHEN qty > 2 THEN price END FROM sales",
    "SELECT qty FROM sales WHERE price BETWEEN 7 AND 20",
    "SELECT STDDEV_SAMP(price) FROM sales",
    "SELECT item_sk FROM sales WHERE item_sk IN (SELECT i_sk FROM item WHERE i_class = 'c1')",
]


class TestSimpleDbAgreement:
    @pytest.fixture(scope="class")
    def harness(self):
        return DiffHarness(make_simple_db())

    @pytest.mark.parametrize("sql", SIMPLE_QUERIES)
    def test_agrees_with_oracle(self, harness, sql):
        outcome = harness.check_sql(sql)
        assert outcome.passed, f"{outcome.status}: {outcome.detail}\n{outcome.sqlite_sql}"


class TestOracleLoading:
    def test_nulls_and_values_mirror_engine(self):
        db = make_simple_db()
        oracle = SqliteOracle.from_database(db)
        rows, names = oracle.execute(
            "SELECT item_sk, price FROM sales ORDER BY price"
        )
        assert names == ["item_sk", "price"]
        engine_rows = db.execute(
            "SELECT item_sk, price FROM sales ORDER BY price"
        ).rows()
        assert rows == engine_rows

    def test_registered_udfs(self):
        oracle = SqliteOracle()
        rows, _ = oracle.execute(
            "SELECT np_mod(-7, 3), np_sqrt(-1), np_floor(2.7), year_of(0)"
        )
        assert rows == [(-1, None, 2, 1970)]


# -- differential checks on the TPC-DS session database -------------------


class TestLoadedDbDifferential:
    def test_fuzz_smoke(self, diff_harness):
        outcomes = diff_harness.run_fuzz(25, seed=7)
        bad = [o for o in outcomes if not o.passed]
        assert not bad, summarize(outcomes)

    def test_qualification_sample(self, diff_harness, qgen):
        """A slice of the 99 runs in tier-1; the full set runs in
        `make difftest` (CI difftest job)."""
        for template_id in (3, 7, 42, 52, 96):
            generated = qgen.generate(template_id, 0)
            for stmt in generated.statements:
                outcome = diff_harness.check_sql(stmt, label=f"q{template_id}")
                assert outcome.passed, (
                    f"{outcome.label} {outcome.status}: {outcome.detail}"
                )


# -- fuzzer determinism ----------------------------------------------------


class TestFuzzer:
    def test_same_seed_same_queries(self, loaded_db):
        a = QueryFuzzer(loaded_db, seed=123)
        b = QueryFuzzer(loaded_db, seed=123)
        for _ in range(10):
            assert a.generate() == b.generate()

    def test_different_seeds_differ(self, loaded_db):
        a = [QueryFuzzer(loaded_db, seed=1).generate() for _ in range(5)]
        b = [QueryFuzzer(loaded_db, seed=2).generate() for _ in range(5)]
        assert a != b

    def test_generated_queries_render_and_reparse(self, loaded_db):
        fuzzer = QueryFuzzer(loaded_db, seed=99)
        for _ in range(20):
            query = fuzzer.generate()
            assert parse_query(to_engine_sql(query)) == query


# -- shrinker --------------------------------------------------------------


class TestShrinker:
    def _bloated(self) -> A.Query:
        return parse_query(
            "SELECT item_sk, SUM(price) AS s, COUNT(*) AS c "
            "FROM sales JOIN item ON item_sk = i_sk "
            "WHERE qty > 0 AND price > 1 AND item_sk IS NOT NULL "
            "GROUP BY item_sk HAVING COUNT(*) >= 1 "
            "ORDER BY item_sk LIMIT 10"
        )

    @staticmethod
    def _mentions_sum_price(query: A.Query) -> bool:
        def in_expr(expr) -> bool:
            return any(
                isinstance(e, A.FuncCall)
                and e.name == "SUM"
                and e.args == (A.ColumnRef("price"),)
                for e in A.walk(expr)
            )

        body = query.body
        return isinstance(body, A.SelectCore) and any(
            in_expr(item.expr) for item in body.items
        )

    def test_shrinks_to_minimal_repro(self):
        shrunk = shrink_query(self._bloated(), self._mentions_sum_price)
        assert self._mentions_sum_price(shrunk)
        assert shrunk.limit is None
        assert shrunk.order_by == ()
        assert shrunk.body.where is None
        assert shrunk.body.having is None
        assert len(shrunk.body.items) == 1
        assert shrunk.body.group_by == ()
        # the join collapsed to a single base table
        assert all(not isinstance(r, A.JoinRef) for r in shrunk.body.from_)

    def test_predicate_errors_treated_as_not_failing(self):
        def flaky(query):
            if query.limit is None:
                raise RuntimeError("boom")
            return True

        shrunk = shrink_query(self._bloated(), flaky)
        assert shrunk.limit == 10  # the limit-dropping candidate errored


# -- corpus round trip -----------------------------------------------------


class TestCorpus:
    def test_write_and_load(self, tmp_path):
        path = write_repro(
            tmp_path,
            "SELECT 1 FROM item",
            label="fuzz#3",
            status="mismatch",
            detail="row 0 differs",
            seed=42,
        )
        path2 = write_repro(
            tmp_path, "SELECT 2 FROM item", label="fuzz#3", status="mismatch"
        )
        assert path != path2
        entries = list(load_corpus(tmp_path))
        assert len(entries) == 2
        assert entries[0].sql == "SELECT 1 FROM item"
        assert entries[0].header["seed"] == "42"
        assert entries[0].header["status"] == "mismatch"

    def test_missing_directory_is_empty(self, tmp_path):
        assert list(load_corpus(tmp_path / "nope")) == []
