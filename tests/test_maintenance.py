"""Data-maintenance tests — Figures 8, 9, 10 and the 12 operations."""

import pytest

from repro.maintenance import (
    DM_OPERATIONS,
    DimensionUpdate,
    FactInsert,
    RefreshGenerator,
    apply_dimension_updates,
    apply_history_update,
    apply_nonhistory_update,
    apply_refresh,
    business_key_column,
    delete_fact_range,
    lookup_surrogate,
    run_all,
    translate_and_insert_facts,
)
from repro.schema import HISTORY_DIMENSIONS


@pytest.fixture()
def refresh(generated_data):
    return RefreshGenerator(generated_data.context).generate()


def first_business_key(db, table):
    column = business_key_column(table)
    return db.table(table).columns[column].value(0)


class TestFigure8NonHistory:
    """'find the row for the business key; update all changed fields'."""

    def test_update_by_business_key(self, fresh_db):
        bk = first_business_key(fresh_db, "customer")
        update = DimensionUpdate("customer", bk, {"c_email_address": "new@x.com"}, 0)
        assert apply_nonhistory_update(fresh_db, update) == 1
        got = fresh_db.execute(
            f"SELECT c_email_address FROM customer WHERE c_customer_id = '{bk}'"
        ).scalar()
        assert got == "new@x.com"

    def test_row_count_unchanged(self, fresh_db):
        before = fresh_db.table("customer").num_rows
        bk = first_business_key(fresh_db, "customer")
        apply_nonhistory_update(
            fresh_db, DimensionUpdate("customer", bk, {"c_preferred_cust_flag": "Y"}, 0)
        )
        assert fresh_db.table("customer").num_rows == before

    def test_missing_business_key_is_noop(self, fresh_db):
        update = DimensionUpdate("customer", "ZZZZ999999999999", {"c_preferred_cust_flag": "Y"}, 0)
        assert apply_nonhistory_update(fresh_db, update) == 0

    def test_other_fields_untouched(self, fresh_db):
        bk = first_business_key(fresh_db, "customer")
        before = fresh_db.execute(
            f"SELECT c_first_name, c_last_name FROM customer WHERE c_customer_id = '{bk}'"
        ).rows()
        apply_nonhistory_update(
            fresh_db, DimensionUpdate("customer", bk, {"c_email_address": "x@y"}, 0)
        )
        after = fresh_db.execute(
            f"SELECT c_first_name, c_last_name FROM customer WHERE c_customer_id = '{bk}'"
        ).rows()
        assert before == after


class TestFigure9History:
    """'close the current revision, insert the new one'."""

    def test_creates_new_revision(self, fresh_db):
        bk = first_business_key(fresh_db, "item")
        before = fresh_db.execute(
            f"SELECT COUNT(*) FROM item WHERE i_item_id = '{bk}'"
        ).scalar()
        update = DimensionUpdate("item", bk, {"i_current_price": 1.23}, 10_000)
        assert apply_history_update(fresh_db, update) == 2
        after = fresh_db.execute(
            f"SELECT COUNT(*) FROM item WHERE i_item_id = '{bk}'"
        ).scalar()
        assert after == before + 1

    def test_old_revision_closed_new_open(self, fresh_db):
        bk = first_business_key(fresh_db, "item")
        apply_history_update(
            fresh_db, DimensionUpdate("item", bk, {"i_current_price": 9.99}, 10_000)
        )
        open_rows = fresh_db.execute(f"""
            SELECT i_current_price FROM item
            WHERE i_item_id = '{bk}' AND i_rec_end_date IS NULL
        """).rows()
        assert open_rows == [(9.99,)]

    def test_new_surrogate_key_assigned(self, fresh_db):
        bk = first_business_key(fresh_db, "item")
        max_before = fresh_db.execute("SELECT MAX(i_item_sk) FROM item").scalar()
        apply_history_update(
            fresh_db, DimensionUpdate("item", bk, {"i_current_price": 9.99}, 10_000)
        )
        assert fresh_db.execute("SELECT MAX(i_item_sk) FROM item").scalar() == max_before + 1

    def test_one_open_revision_invariant(self, fresh_db, refresh):
        apply_dimension_updates(fresh_db, refresh.dimension_updates)
        for table in HISTORY_DIMENSIONS:
            bk_col = business_key_column(table)
            end_col = {
                "item": "i_rec_end_date", "store": "s_rec_end_date",
                "call_center": "cc_rec_end_date", "web_page": "wp_rec_end_date",
                "web_site": "web_rec_end_date",
            }[table]
            violations = fresh_db.execute(f"""
                SELECT {bk_col}, COUNT(*) FROM {table}
                WHERE {end_col} IS NULL GROUP BY {bk_col} HAVING COUNT(*) > 1
            """)
            assert len(violations) == 0, table

    def test_static_dimension_rejected(self, fresh_db):
        from repro.engine.errors import ExecutionError

        with pytest.raises(ExecutionError):
            apply_dimension_updates(
                fresh_db,
                [DimensionUpdate("date_dim", "AAAA000000000001", {"d_dom": 2}, 0)],
            )


class TestFigure10FactInsert:
    def test_surrogate_lookup_nonhistory(self, fresh_db):
        bk = first_business_key(fresh_db, "customer")
        sk = lookup_surrogate(fresh_db, "customer", bk)
        got_bk = fresh_db.execute(
            f"SELECT c_customer_id FROM customer WHERE c_customer_sk = {sk}"
        ).scalar()
        assert got_bk == bk

    def test_surrogate_lookup_history_returns_current(self, fresh_db):
        bk = first_business_key(fresh_db, "item")
        apply_history_update(
            fresh_db, DimensionUpdate("item", bk, {"i_current_price": 9.99}, 10_000)
        )
        sk = lookup_surrogate(fresh_db, "item", bk)
        end = fresh_db.execute(
            f"SELECT i_rec_end_date FROM item WHERE i_item_sk = {sk}"
        ).scalar()
        assert end is None

    def test_unknown_key_returns_none(self, fresh_db):
        assert lookup_surrogate(fresh_db, "customer", "ZZZZ999999999999") is None

    def test_insert_translates_keys(self, fresh_db, generated_data):
        item_bk = first_business_key(fresh_db, "item")
        customer_bk = first_business_key(fresh_db, "customer")
        iso = generated_data.context.calendar.date_at(10).isoformat()
        insert = FactInsert(
            table="store_sales",
            natural_keys={
                "ss_sold_date_sk": ("date_dim", iso),
                "ss_item_sk": ("item", item_bk),
                "ss_customer_sk": ("customer", customer_bk),
            },
            values={"ss_ticket_number": 999_999_999, "ss_quantity": 1,
                    "ss_sales_price": 1.0, "ss_ext_sales_price": 1.0,
                    "ss_net_paid": 1.0},
        )
        assert translate_and_insert_facts(fresh_db, [insert]) == 1
        row = fresh_db.execute(
            "SELECT ss_item_sk, ss_customer_sk, ss_sold_date_sk FROM store_sales "
            "WHERE ss_ticket_number = 999999999"
        ).rows()[0]
        assert row[0] == lookup_surrogate(fresh_db, "item", item_bk)
        assert row[1] == lookup_surrogate(fresh_db, "customer", customer_bk)
        expected_sk = generated_data.context.calendar.sk_at(10)
        assert row[2] == expected_sk

    def test_unresolvable_rows_skipped(self, fresh_db, generated_data):
        iso = generated_data.context.calendar.date_at(0).isoformat()
        insert = FactInsert(
            table="store_sales",
            natural_keys={"ss_sold_date_sk": ("date_dim", iso),
                          "ss_item_sk": ("item", "ZZZZ999999999999")},
            values={"ss_ticket_number": 1},
        )
        assert translate_and_insert_facts(fresh_db, [insert]) == 0


class TestDeletes:
    def test_clustered_date_delete(self, fresh_db, generated_data):
        calendar = generated_data.context.calendar
        low, high = calendar.sk_at(0), calendar.sk_at(30)
        in_range = fresh_db.execute(f"""
            SELECT COUNT(*) FROM store_sales
            WHERE ss_sold_date_sk BETWEEN {low} AND {high}
        """).scalar()
        deleted = delete_fact_range(fresh_db, "store_sales", low, high)
        assert deleted == in_range
        remaining = fresh_db.execute(f"""
            SELECT COUNT(*) FROM store_sales
            WHERE ss_sold_date_sk BETWEEN {low} AND {high}
        """).scalar()
        assert remaining == 0

    def test_out_of_range_untouched(self, fresh_db, generated_data):
        calendar = generated_data.context.calendar
        total = fresh_db.table("store_sales").num_rows
        low, high = calendar.sk_at(0), calendar.sk_at(30)
        deleted = delete_fact_range(fresh_db, "store_sales", low, high)
        assert fresh_db.table("store_sales").num_rows == total - deleted


class TestTwelveOperations:
    def test_exactly_twelve(self):
        """§1: '12 data maintenance operations'."""
        assert len(DM_OPERATIONS) == 12

    def test_names_unique(self):
        names = [op.name for op in DM_OPERATIONS]
        assert len(set(names)) == 12

    def test_run_all_returns_results(self, fresh_db, refresh):
        results = run_all(fresh_db, refresh)
        assert len(results) == 13  # 12 ops + AUX maintenance
        assert all(r.elapsed >= 0 for r in results)

    def test_updates_and_inserts_applied(self, fresh_db, refresh):
        sales_before = fresh_db.table("store_sales").num_rows
        returns_before = fresh_db.table("store_returns").num_rows
        results = {r.operation: r for r in run_all(fresh_db, refresh)}
        assert results["DM_CUST"].rows_affected > 0
        assert results["DM_ITEM"].rows_affected > 0
        assert results["LF_SS"].rows_affected > 0
        assert results["DF_SS"].rows_affected > 0
        sales_after = fresh_db.table("store_sales").num_rows
        returns_after = fresh_db.table("store_returns").num_rows
        # DF_SS removes from both store facts; LF_SS adds only sales lines
        deleted_total = (sales_before - sales_after + results["LF_SS"].rows_affected) + (
            returns_before - returns_after
        )
        assert deleted_total == results["DF_SS"].rows_affected

    def test_apply_refresh_summary(self, fresh_db, refresh):
        stats = apply_refresh(fresh_db, refresh)
        assert stats["dimension_rows_touched"] > 0
        assert stats["fact_rows_inserted"] > 0
        assert stats["fact_rows_deleted"] >= 0


class TestRefreshGenerator:
    def test_deterministic(self, generated_data):
        a = RefreshGenerator(generated_data.context).generate(1)
        b = RefreshGenerator(generated_data.context).generate(1)
        assert a.dimension_updates == b.dimension_updates
        assert a.delete_ranges == b.delete_ranges

    def test_rounds_differ(self, generated_data):
        a = RefreshGenerator(generated_data.context).generate(1)
        b = RefreshGenerator(generated_data.context).generate(2)
        assert a.delete_ranges != b.delete_ranges or a.dimension_updates != b.dimension_updates

    def test_updates_cover_both_scd_kinds(self, refresh):
        tables = {u.table for u in refresh.dimension_updates}
        assert tables & HISTORY_DIMENSIONS
        assert tables - HISTORY_DIMENSIONS

    def test_inserts_carry_natural_keys(self, refresh):
        insert = refresh.fact_inserts[0]
        assert "ss_item_sk" in insert.natural_keys
        assert insert.natural_keys["ss_item_sk"][0] == "item"
        assert "ss_sold_date_sk" in insert.natural_keys

    def test_update_fraction_scales(self, generated_data):
        small = RefreshGenerator(generated_data.context, update_fraction=0.01).generate()
        large = RefreshGenerator(generated_data.context, update_fraction=0.1).generate()
        assert len(large.dimension_updates) > len(small.dimension_updates)

    def test_second_run_repeats_cleanly(self, fresh_db, generated_data):
        """§3.3.2: the second performance run 'serves as a repetition of
        the first' — maintenance must be repeatable."""
        gen = RefreshGenerator(generated_data.context)
        run_all(fresh_db, gen.generate(1))
        results = run_all(fresh_db, gen.generate(2))
        assert all(r.elapsed >= 0 for r in results)
