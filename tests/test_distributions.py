"""Distribution tests — Figures 2 and 3 and the word domains."""

import math

import pytest

from repro.dsdgen import RandomStream, SalesDateDistribution, gaussian_sales_pdf
from repro.dsdgen.distributions import (
    CENSUS_DEPT_STORE_SALES_2001,
    FIRST_NAMES,
    LAST_NAMES,
    MONTH_ZONE,
    WEEKS_PER_YEAR,
    county_domain,
    cumulative_weights,
    gaussian_words,
    week_month,
    week_zone,
)


class TestZones:
    """Figure 2's three comparability zones."""

    def test_zone_boundaries(self):
        assert week_zone(1) == 1        # January
        assert week_zone(26) == 1       # early July
        assert week_zone(32) == 2       # August
        assert week_zone(43) == 2       # October
        assert week_zone(45) == 3       # November
        assert week_zone(52) == 3       # December

    def test_month_zone_mapping(self):
        assert all(MONTH_ZONE[m] == 1 for m in range(1, 8))
        assert all(MONTH_ZONE[m] == 2 for m in range(8, 11))
        assert all(MONTH_ZONE[m] == 3 for m in (11, 12))

    def test_week_month_covers_year(self):
        months = [week_month(w) for w in range(1, WEEKS_PER_YEAR + 1)]
        assert months[0] == 1 and months[-1] == 12
        assert months == sorted(months)

    def test_week_out_of_range(self):
        with pytest.raises(ValueError):
            week_month(0)
        with pytest.raises(ValueError):
            week_month(53)


class TestSalesDateDistribution:
    dist = SalesDateDistribution()

    def test_weights_sum_to_one(self):
        assert sum(self.dist.weekly_weights()) == pytest.approx(1.0)

    def test_census_weights_sum_to_one(self):
        assert sum(self.dist.census_weekly_weights()) == pytest.approx(1.0)

    def test_uniform_within_zone(self):
        """The data generator 'guarantees that all domain values in one
        domain have the same likelihood' (§3.2)."""
        assert self.dist.uniformity_within_zone()

    def test_zone_ordering_low_medium_high(self):
        """Zone 1 weeks are least likely, zone 3 weeks most likely."""
        weights = self.dist.weekly_weights()
        w1 = weights[10 - 1]   # a zone-1 week
        w2 = weights[35 - 1]   # a zone-2 week
        w3 = weights[50 - 1]   # a zone-3 week
        assert w1 < w2 < w3

    def test_zone_mass_matches_census(self):
        mass = self.dist.zone_mass()
        total = sum(CENSUS_DEPT_STORE_SALES_2001.values())
        want_z3 = (
            CENSUS_DEPT_STORE_SALES_2001[11] + CENSUS_DEPT_STORE_SALES_2001[12]
        ) / total
        assert mass[3] == pytest.approx(want_z3)
        assert sum(mass.values()) == pytest.approx(1.0)

    def test_december_is_peak_month(self):
        assert CENSUS_DEPT_STORE_SALES_2001[12] == max(CENSUS_DEPT_STORE_SALES_2001.values())

    def test_sampling_matches_weights(self):
        rng = RandomStream(123)
        counts = [0] * WEEKS_PER_YEAR
        n = 20000
        for _ in range(n):
            counts[self.dist.sample_week(rng) - 1] += 1
        weights = self.dist.weekly_weights()
        zone3_observed = sum(counts[w - 1] for w in range(1, 53) if week_zone(w) == 3) / n
        zone3_expected = sum(weights[w - 1] for w in range(1, 53) if week_zone(w) == 3)
        assert zone3_observed == pytest.approx(zone3_expected, abs=0.02)

    def test_sampling_covers_all_weeks(self):
        rng = RandomStream(5)
        seen = {self.dist.sample_week(rng) for _ in range(20000)}
        assert seen == set(range(1, 53))


class TestGaussianPdf:
    """Figure 3: the synthetic N(200, 50) sales distribution."""

    def test_peak_at_mu(self):
        assert gaussian_sales_pdf(200) > gaussian_sales_pdf(150)
        assert gaussian_sales_pdf(200) > gaussian_sales_pdf(250)

    def test_symmetry(self):
        assert gaussian_sales_pdf(150) == pytest.approx(gaussian_sales_pdf(250))

    def test_normalization(self):
        total = sum(gaussian_sales_pdf(x) for x in range(-200, 601))
        assert total == pytest.approx(1.0, abs=0.01)

    def test_peak_value(self):
        assert gaussian_sales_pdf(200) == pytest.approx(1 / (50 * math.sqrt(2 * math.pi)))


class TestWordDomains:
    def test_frequent_names_weighted(self):
        """'real world data ... with common data skews, such as ... frequent
        names' — Smith must dominate."""
        weights = dict(LAST_NAMES)
        assert weights["Smith"] == max(weights.values())

    def test_cumulative_weights(self):
        values, cumulative = cumulative_weights([("a", 1), ("b", 3)])
        assert values == ["a", "b"]
        assert cumulative == [1, 4]

    def test_weighted_sampling_skews(self):
        values, cumulative = cumulative_weights(LAST_NAMES)
        rng = RandomStream(11)
        counts = {}
        for _ in range(5000):
            name = values[rng.weighted_index(cumulative)]
            counts[name] = counts.get(name, 0) + 1
        assert counts.get("Smith", 0) > counts.get("Flores", 1)

    def test_first_names_unique(self):
        names = [n for n, _ in FIRST_NAMES]
        assert len(names) == len(set(names))


class TestCountyDomain:
    def test_full_domain_size(self):
        """§3.1: 'the domain for county is approximately 1800'."""
        assert len(county_domain(1800)) == 1800

    def test_scaled_down_for_small_tables(self):
        """'At scale factor 100 there exist only about 200 stores. Hence
        the county domain had to be scaled down.'"""
        assert len(county_domain(200)) == 200

    def test_values_unique(self):
        counties = county_domain(1800)
        assert len(set(counties)) == 1800

    def test_minimum_one(self):
        assert len(county_domain(0)) == 1


class TestGaussianWords:
    def test_word_count(self):
        rng = RandomStream(1)
        text = gaussian_words(rng, 5)
        assert len(text.split()) == 5

    def test_deterministic(self):
        assert gaussian_words(RandomStream(1), 8) == gaussian_words(RandomStream(1), 8)

    def test_central_words_more_frequent(self):
        from collections import Counter

        from repro.dsdgen.distributions import DESCRIPTION_WORDS

        rng = RandomStream(2)
        counter = Counter()
        for _ in range(500):
            counter.update(gaussian_words(rng, 4).split())
        center = DESCRIPTION_WORDS[len(DESCRIPTION_WORDS) // 2]
        edge = DESCRIPTION_WORDS[0]
        assert counter[center] > counter.get(edge, 0)
