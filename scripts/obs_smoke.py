#!/usr/bin/env python
"""End-to-end telemetry smoke: the `make obscheck` / CI gate.

Runs one small power run (sf=0.004, streams=1, workers=2 — big enough
that morsels actually dispatch to the pool), exports it through every
telemetry surface, and fails loudly when any artifact is malformed:

* `obs trace` must emit structurally valid Chrome-trace JSON whose
  lane metadata names at least two pool workers (the acceptance bar
  for a workers=2 run);
* `obs report` must render a self-contained HTML dashboard containing
  the timeline, latency-percentile and parallelism sections;
* the telemetry bundle itself must carry latency percentiles and a
  non-empty parallelism profile;
* the statement store written by `run --statement-store` must reload
  into a fresh database and answer `SELECT ... FROM sys.statements
  ORDER BY total_elapsed DESC` (non-empty, fingerprint-stable across
  literal substitution), and `sys.metrics` must surface the run's
  registry counters.

Runs from a checkout (`python scripts/obs_smoke.py`); exits nonzero on
the first failure.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SF = 0.004
WORKERS = 2


def fail(message: str) -> None:
    print(f"obs_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    from repro.cli import main as cli
    from repro.obs import validate_chrome_trace, worker_lanes

    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as tmp:
        bundle_path = os.path.join(tmp, "telemetry.json")
        trace_path = os.path.join(tmp, "trace.json")
        html_path = os.path.join(tmp, "report.html")
        store_path = os.path.join(tmp, "statements.jsonl")

        print(f"obs_smoke: power run sf={SF} workers={WORKERS} ...")
        rc = cli([
            "run", "--scale", str(SF), "--streams", "1",
            "--workers", str(WORKERS), "--metrics", "--plan-quality",
            "--telemetry", bundle_path,
            "--statement-store", store_path,
        ])
        if rc != 0:
            fail(f"benchmark run exited {rc}")

        with open(bundle_path, encoding="utf-8") as handle:
            bundle = json.load(handle)
        latency = (bundle.get("latency") or {}).get("all") or {}
        if not latency.get("count"):
            fail("telemetry bundle has no latency percentiles")
        for key in ("p50", "p90", "p95", "p99"):
            if key not in latency:
                fail(f"latency percentiles missing {key}")
        parallelism = bundle.get("parallelism") or {}
        if not parallelism.get("morsels"):
            fail("telemetry bundle has an empty parallelism profile")

        rc = cli(["obs", "trace", "--input", bundle_path,
                  "--out", trace_path])
        if rc != 0:
            fail(f"obs trace exited {rc}")
        with open(trace_path, encoding="utf-8") as handle:
            doc = json.load(handle)
        errors = validate_chrome_trace(doc)
        if errors:
            fail(f"chrome trace invalid: {errors[:5]}")
        lanes = worker_lanes(doc)
        if len(lanes) < 2:
            fail(f"expected >= 2 pool-worker lanes, got {lanes}")

        rc = cli(["obs", "report", "--input", bundle_path,
                  "--out", html_path])
        if rc != 0:
            fail(f"obs report exited {rc}")
        with open(html_path, encoding="utf-8") as handle:
            html = handle.read()
        if not html.startswith("<!DOCTYPE html>"):
            fail("dashboard is not an HTML document")
        for needle in ("Span timeline", "latency percentiles",
                       "Parallelism profile", "</html>"):
            if needle not in html:
                fail(f"dashboard missing section {needle!r}")
        if "<script" in html or "http://" in html or "https://" in html:
            fail("dashboard is not self-contained (script or external ref)")

        fingerprints = check_statement_store(store_path)

        print(f"obs_smoke: PASS — {len(doc['traceEvents'])} trace events, "
              f"lanes {lanes}, dashboard {len(html):,} bytes, "
              f"{fingerprints} statement fingerprints")
    return 0


def check_statement_store(store_path: str) -> int:
    """The journal written during the power run must reload into a
    *fresh* database and answer the acceptance query through the
    ``sys.statements`` virtual table; returns the fingerprint count."""
    from repro.engine import Database
    from repro.obs import StatementStore, fingerprint, get_registry

    if not os.path.exists(store_path):
        fail(f"run --statement-store wrote nothing at {store_path}")
    db = Database()
    db.statement_store = StatementStore(store_path)
    result = db.execute(
        "SELECT query, calls, mean_elapsed, spilled_bytes FROM"
        " sys.statements ORDER BY total_elapsed DESC"
    )
    if len(result) == 0:
        fail("sys.statements is empty after a power run")
    totals = db.execute(
        "SELECT total_elapsed FROM sys.statements ORDER BY"
        " total_elapsed DESC"
    ).rows()
    if [r[0] for r in totals] != sorted(
        (r[0] for r in totals), reverse=True
    ):
        fail("sys.statements ORDER BY total_elapsed DESC is out of order")

    # fingerprint stability: the same template with different literal
    # substitutions (qgen stream variants) must collapse to one entry
    fp_a = fingerprint("SELECT d_year FROM date_dim WHERE d_year = 1999")
    fp_b = fingerprint("SELECT d_year FROM date_dim WHERE d_year = 2002")
    if fp_a != fp_b:
        fail("fingerprints differ across literal substitution")
    db.statement_store.close()

    # the cli run enabled the registry in-process, so sys.metrics must
    # surface the runner's counters
    if not get_registry().enabled:
        fail("metrics registry not enabled after --metrics run")
    metrics = Database().execute(
        "SELECT name, count FROM sys.metrics WHERE name ="
        " 'runner.queries'"
    )
    if len(metrics) == 0:
        fail("sys.metrics has no runner.queries counter")
    return len(result)


if __name__ == "__main__":
    sys.exit(main())
