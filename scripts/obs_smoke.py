#!/usr/bin/env python
"""End-to-end telemetry smoke: the `make obscheck` / CI gate.

Runs one small power run (sf=0.004, streams=1, workers=2 — big enough
that morsels actually dispatch to the pool), exports it through every
telemetry surface, and fails loudly when any artifact is malformed:

* `obs trace` must emit structurally valid Chrome-trace JSON whose
  lane metadata names at least two pool workers (the acceptance bar
  for a workers=2 run);
* `obs report` must render a self-contained HTML dashboard containing
  the timeline, latency-percentile and parallelism sections;
* the telemetry bundle itself must carry latency percentiles and a
  non-empty parallelism profile.

Runs from a checkout (`python scripts/obs_smoke.py`); exits nonzero on
the first failure.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SF = 0.004
WORKERS = 2


def fail(message: str) -> None:
    print(f"obs_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    from repro.cli import main as cli
    from repro.obs import validate_chrome_trace, worker_lanes

    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as tmp:
        bundle_path = os.path.join(tmp, "telemetry.json")
        trace_path = os.path.join(tmp, "trace.json")
        html_path = os.path.join(tmp, "report.html")

        print(f"obs_smoke: power run sf={SF} workers={WORKERS} ...")
        rc = cli([
            "run", "--scale", str(SF), "--streams", "1",
            "--workers", str(WORKERS), "--metrics", "--plan-quality",
            "--telemetry", bundle_path,
        ])
        if rc != 0:
            fail(f"benchmark run exited {rc}")

        with open(bundle_path, encoding="utf-8") as handle:
            bundle = json.load(handle)
        latency = (bundle.get("latency") or {}).get("all") or {}
        if not latency.get("count"):
            fail("telemetry bundle has no latency percentiles")
        for key in ("p50", "p90", "p95", "p99"):
            if key not in latency:
                fail(f"latency percentiles missing {key}")
        parallelism = bundle.get("parallelism") or {}
        if not parallelism.get("morsels"):
            fail("telemetry bundle has an empty parallelism profile")

        rc = cli(["obs", "trace", "--input", bundle_path,
                  "--out", trace_path])
        if rc != 0:
            fail(f"obs trace exited {rc}")
        with open(trace_path, encoding="utf-8") as handle:
            doc = json.load(handle)
        errors = validate_chrome_trace(doc)
        if errors:
            fail(f"chrome trace invalid: {errors[:5]}")
        lanes = worker_lanes(doc)
        if len(lanes) < 2:
            fail(f"expected >= 2 pool-worker lanes, got {lanes}")

        rc = cli(["obs", "report", "--input", bundle_path,
                  "--out", html_path])
        if rc != 0:
            fail(f"obs report exited {rc}")
        with open(html_path, encoding="utf-8") as handle:
            html = handle.read()
        if not html.startswith("<!DOCTYPE html>"):
            fail("dashboard is not an HTML document")
        for needle in ("Span timeline", "latency percentiles",
                       "Parallelism profile", "</html>"):
            if needle not in html:
                fail(f"dashboard missing section {needle!r}")
        if "<script" in html or "http://" in html or "https://" in html:
            fail("dashboard is not self-contained (script or external ref)")

        print(f"obs_smoke: PASS — {len(doc['traceEvents'])} trace events, "
              f"lanes {lanes}, dashboard {len(html):,} bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
