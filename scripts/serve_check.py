#!/usr/bin/env python
"""Query-service gate: the `make servecheck` / CI check.

Drives the ISSUE acceptance scenario end to end: four tenants share
one :class:`~repro.service.QueryService` while a 2x overload burst
lands on top of a steady phase and tenant ``noisy`` runs under a
``--fault-rate 0.05``-style injector (error rate 0.35 at query *and*
operator scope, so the breaker demonstrably trips inside the check's
time budget).  The gate fails loudly unless:

* **isolation** — every non-faulted tenant finishes with zero
  failures/timeouts and its declared p99 SLA intact (one tenant's
  fault storm must never starve the others);
* **bounded shedding** — the service sheds under overload instead of
  queueing unboundedly: shed > 0 with a positive ``retry_after``
  surfaced, and no tenant's max queue depth ever exceeds its
  configured bound;
* **breaker lifecycle** — the noisy tenant's breaker trips during the
  storm and recovers (closes) once its faults clear;
* **introspection** — ``sys.service`` / ``sys.sessions`` answer over
  SQL with matching counters, the disclosure section renders, and
  ``BENCH_service.json`` lands on disk.

Runs from a checkout (`python scripts/serve_check.py`); exits nonzero
on the first failure.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SF = 0.002
SEED = 19620718
WORKERS = 4
TENANTS = ("alpha", "beta", "gamma", "noisy")
TEMPLATES = (3, 7, 42, 52)
QUEUE_DEPTH = 6
MAX_CONCURRENT = 2
SLA_P99_S = 30.0  # generous: CI boxes are slow; isolation is the claim
FAULT_RATE = 0.35


def fail(message: str) -> None:
    print(f"serve_check: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    from repro.dsdgen import build_database
    from repro.faults import FaultInjector
    from repro.qgen import QGen, build_catalog
    from repro.runner import render_load_report
    from repro.service import (
        LoadDriver,
        Phase,
        QueryService,
        SLATarget,
        TenantProfile,
        TenantQuota,
    )

    t0 = time.perf_counter()
    db, data = build_database(SF, seed=SEED)
    qgen = QGen(data.context, build_catalog())
    print(f"serve_check: built sf={SF} in memory "
          f"({time.perf_counter() - t0:.1f}s)")

    quota = TenantQuota(
        max_concurrent=MAX_CONCURRENT,
        max_queue_depth=QUEUE_DEPTH,
        statement_timeout_s=20.0,
    )
    service = QueryService(
        db, workers=WORKERS, default_quota=quota,
        breaker_threshold=3, breaker_reset_s=0.5,
    )
    service.set_faults("noisy", FaultInjector(
        seed=7, error_rate=FAULT_RATE, scope=("query", "operator"),
    ))

    # steady at ~1 qps/tenant, then a 2x overload burst, then cooldown
    phases = [
        Phase("steady", duration_s=3.0, qps=4.0),
        Phase("burst", duration_s=3.0, qps=8.0),
        Phase("steady", duration_s=3.0, qps=4.0),
    ]
    sla = SLATarget(p99_s=SLA_P99_S, max_error_rate=0.0)
    profiles = [
        TenantProfile(name, weight=1.0, templates=TEMPLATES,
                      sla=None if name == "noisy" else sla)
        for name in TENANTS
    ]
    driver = LoadDriver(service, qgen, profiles, phases, seed=11)
    print(f"serve_check: replaying {len(driver.schedule)} arrivals "
          f"({WORKERS} workers, queue bound {QUEUE_DEPTH})")
    report = driver.run()

    noisy_state = service.tenant("noisy")
    trips = noisy_state.breaker.trips
    if trips < 1:
        fail("the faulted tenant's circuit breaker never tripped")
    print(f"serve_check: noisy breaker tripped {trips}x "
          f"(state {noisy_state.breaker.state!r} after the storm)")

    # clear the faults; the breaker must half-open and close again
    service.set_faults("noisy", None)
    recovery = service.create_session("noisy")
    deadline = time.monotonic() + 20.0
    while noisy_state.breaker.state != "closed":
        if time.monotonic() >= deadline:
            fail("noisy breaker did not recover after faults cleared")
        try:
            recovery.execute("SELECT 1 AS probe")
        except Exception:
            time.sleep(0.1)
    recovery.close()
    print("serve_check: noisy breaker recovered (closed)")

    # isolation: non-faulted tenants saw zero failures and met SLA
    for tenant in report.tenants:
        if tenant.tenant == "noisy":
            continue
        if tenant.failed or tenant.timeouts:
            fail(f"cross-tenant failure leak: {tenant.tenant} recorded "
                 f"{tenant.failed} failures / {tenant.timeouts} timeouts")
        if not tenant.sla_ok:
            fail(f"{tenant.tenant} missed its SLA: {tenant.sla_failures}")
    print("serve_check: zero cross-tenant failures, all SLAs met")

    # bounded shedding with retry_after surfaced
    total_shed = sum(t.shed for t in report.tenants)
    if total_shed < 1:
        fail("the overload burst shed nothing — admission is unbounded?")
    sheds_with_hint = [
        t.max_retry_after_s for t in report.tenants if t.shed
    ]
    if not any(hint > 0.0 for hint in sheds_with_hint):
        fail("shed responses carried no retry_after hint")
    for state in service.tenants():
        if state.max_queued > QUEUE_DEPTH:
            fail(f"{state.name} queue depth reached {state.max_queued}, "
                 f"past the {QUEUE_DEPTH} bound")
    print(f"serve_check: shed {total_shed} arrivals, max retry_after "
          f"{max(sheds_with_hint):.3f}s, queue depth bounded")

    # introspection: sys.* must answer over SQL and agree with the
    # service's own counters
    session = service.create_session("alpha")
    rows = session.execute(
        "SELECT tenant, admitted, shed, breaker_trips FROM sys.service"
        " ORDER BY tenant"
    ).rows()
    session.close()
    by_tenant = {row[0]: row for row in rows}
    if set(by_tenant) != set(TENANTS):
        fail(f"sys.service lists {sorted(by_tenant)}, expected "
             f"{sorted(TENANTS)}")
    if by_tenant["noisy"][3] != trips:
        fail(f"sys.service breaker_trips {by_tenant['noisy'][3]} != "
             f"service counter {trips}")
    admitted = {t.tenant: t.admitted for t in report.tenants}
    for name, row in by_tenant.items():
        # +1 on alpha for the sys.service query's own admission wake;
        # recovery probes ride on noisy — so check >= the driver's view
        if row[1] < admitted.get(name, 0):
            fail(f"sys.service admitted {row[1]} for {name}, driver "
                 f"saw {admitted.get(name)}")
    print("serve_check: sys.service / sys.sessions agree with the driver")

    service.close()

    rendered = render_load_report(report.as_dict())
    if "SLA verdict" not in rendered:
        fail("disclosure section lacks an SLA verdict")
    print(rendered)

    with tempfile.TemporaryDirectory(prefix="servecheck-") as tmp:
        out = os.path.join(tmp, "BENCH_service.json")
        report.write_json(out)
        with open(out, encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload["issued"] != len(driver.schedule):
            fail("BENCH_service.json issued count mismatch")
    print("serve_check: BENCH_service.json round-trips")
    print("serve_check: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
