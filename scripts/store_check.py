#!/usr/bin/env python
"""Column-store round-trip gate: the `make storecheck` / CI check.

Builds the sf=0.01 database in memory, saves it to a column store
(small blocks so zone maps have something to prune at this scale),
reopens it, and fails loudly unless:

* the reopened store answers **every** qualification statement (all
  templates, including multi-statement iterative ones) byte-identically
  to the in-memory database — compared row-for-row, not just by
  fingerprint;
* opening is lazy: no column decodes at open time, and only the
  columns a query touches hydrate afterwards;
* zone-map pruning is live — an EXPLAIN ANALYZE over a selective
  date_dim predicate must report ``blocks_skipped=``;
* a DML → incremental save → reopen cycle stays consistent and
  rewrites only the dirty table's columns.

Runs from a checkout (`python scripts/store_check.py`); exits nonzero
on the first failure.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

SF = 0.01
SEED = 19620718
BLOCK_ROWS = 4096


def fail(message: str) -> None:
    print(f"store_check: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    from repro.dsdgen import build_database
    from repro.engine import Database, StoreError
    from repro.qgen import QGen, build_catalog

    t0 = time.perf_counter()
    db, data = build_database(SF, seed=SEED)
    qgen = QGen(data.context, build_catalog())
    print(f"store_check: built sf={SF} in memory "
          f"({time.perf_counter() - t0:.1f}s)")

    with tempfile.TemporaryDirectory(prefix="storecheck-") as tmp:
        path = os.path.join(tmp, "db")
        t0 = time.perf_counter()
        db.save(path, block_rows=BLOCK_ROWS, scale_factor=SF, seed=SEED)
        print(f"store_check: saved to {path} "
              f"({time.perf_counter() - t0:.1f}s)")

        t0 = time.perf_counter()
        store = Database.open(path)
        open_s = time.perf_counter() - t0
        hydrated = [
            f"{t}.{c.definition.name}"
            for t in store.catalog.table_names
            for c in store.table(t).columns.values()
            if c.is_loaded
        ]
        if hydrated:
            fail(f"open hydrated columns eagerly: {hydrated[:5]}")
        print(f"store_check: reopened lazily in {open_s * 1000:.0f}ms")

        # every qualification statement, store vs memory, row-identical
        t0 = time.perf_counter()
        statements = 0
        for template_id in sorted(qgen.templates):
            query = qgen.generate(template_id, stream=0)
            for statement in query.statements:
                expected = db.execute(statement).rows()
                actual = store.execute(statement).rows()
                if expected != actual:
                    fail(
                        f"template {template_id} diverged on the store "
                        f"({len(expected)} vs {len(actual)} rows)"
                    )
                statements += 1
        print(f"store_check: {statements} qualification statements "
              f"identical ({time.perf_counter() - t0:.1f}s)")

        untouched = [
            t for t in store.catalog.table_names
            if not any(c.is_loaded for c in store.table(t).columns.values())
        ]
        if not untouched:
            fail("qualification run hydrated every table; laziness broken")

        # zone maps must actually prune a selective scan
        out = store.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM date_dim "
            "WHERE d_date_sk BETWEEN 2450815 AND 2450830"
        )
        text = "\n".join(r[0] for r in out.rows())
        if "blocks_skipped=" not in text:
            fail(f"no blocks_skipped= in EXPLAIN ANALYZE:\n{text}")
        skipped = int(text.split("blocks_skipped=")[1].split()[0])
        if skipped < 1:
            fail(f"zone maps skipped nothing:\n{text}")
        print(f"store_check: zone maps pruned {skipped} blocks on date_dim")

        # DML → incremental save → reopen
        before = store.execute("SELECT COUNT(*) FROM item").scalar()
        store.execute("DELETE FROM item WHERE i_item_sk <= 5")
        store.save(path)
        written = store.store_info["columns_written"]
        item_cols = len(store.table("item").schema.columns)
        if written > item_cols:
            fail(f"incremental save rewrote {written} columns "
                 f"(item has {item_cols})")
        reopened = Database.open(path)
        after = reopened.execute("SELECT COUNT(*) FROM item").scalar()
        if after != before - 5:
            fail(f"DML round trip lost rows: {before} -> {after}")
        print(f"store_check: DML save rewrote {written} columns, "
              f"reopen consistent")

        # torn manifest must refuse, not misread
        manifest = os.path.join(path, "manifest.json")
        with open(manifest, "r+", encoding="utf-8") as handle:
            handle.truncate(os.path.getsize(manifest) // 2)
        try:
            Database.open(path)
        except StoreError:
            pass
        else:
            fail("torn manifest opened without error")
        print("store_check: torn manifest refused")

    print("store_check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
