"""SIGKILL-and-resume smoke test for the checkpoint journal.

Launches a checkpointed benchmark run in a subprocess, waits until the
journal has accumulated a couple dozen query records, delivers SIGKILL
(no cleanup handlers run — the journal must survive on fsync alone),
then resumes from the same journal and checks that:

* the resumed run exits 0 (the merged run is compliant);
* the merged journal parses line-by-line with no duplicate
  ``(run, stream, template_id)`` query records and a completion marker;
* the set of metric inputs — every journaled ``(run, stream,
  template_id, rows)`` — matches a fresh uninterrupted reference run,
  i.e. the crash changed *when* work happened, never *what* was done.

Run as ``PYTHONPATH=src python scripts/kill_resume_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

SCALE = "0.002"
STREAMS = "2"
MIN_QUERY_LINES = 20
KILL_DEADLINE_S = 120.0


def _run_cli(args: list[str], **kwargs) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
        **kwargs,
    )


def _query_lines(path: str) -> int:
    if not os.path.exists(path):
        return 0
    count = 0
    with open(path, "rb") as handle:
        for raw in handle:
            if b'"kind": "query"' in raw or b'"kind":"query"' in raw:
                count += 1
    return count


def _journal_query_keys(path: str) -> tuple[set, set, bool]:
    """(dedup keys, metric-input keys, saw completion marker)."""
    keys: set = set()
    metric_keys: set = set()
    complete = False
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            record = json.loads(line)  # every surviving line must parse
            kind = record["kind"]
            if kind == "query":
                key = (record["run"], record["stream"], record["template_id"])
                if key in keys:
                    raise SystemExit(
                        f"FAIL: duplicate journal record {key} (line {line_no})"
                    )
                keys.add(key)
                metric_keys.add(key + (record["rows"],))
            elif kind == "complete":
                complete = True
    return keys, metric_keys, complete


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="tpcds-kill-resume-")
    journal = os.path.join(workdir, "journal.jsonl")
    reference = os.path.join(workdir, "reference.jsonl")
    base_args = ["run", "--scale", SCALE, "--streams", STREAMS]

    # 1. start a checkpointed run and SIGKILL it mid-flight
    victim = _run_cli(base_args + ["--checkpoint", journal])
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        if _query_lines(journal) >= MIN_QUERY_LINES:
            break
        if victim.poll() is not None:
            raise SystemExit(
                "FAIL: run finished before it could be killed; "
                "raise MIN_QUERY_LINES or lower --scale"
            )
        time.sleep(0.05)
    else:
        victim.kill()
        raise SystemExit("FAIL: journal never reached the kill threshold")
    victim.send_signal(signal.SIGKILL)
    victim.wait()
    killed_at = _query_lines(journal)
    print(f"killed run after {killed_at} journaled queries")

    # 2. resume from the survived journal
    resumed = _run_cli(base_args + ["--checkpoint", journal, "--resume"])
    if resumed.wait() != 0:
        raise SystemExit(f"FAIL: resumed run exited {resumed.returncode}")

    keys, metric_keys, complete = _journal_query_keys(journal)
    if not complete:
        raise SystemExit("FAIL: merged journal has no completion marker")

    # 3. compare metric inputs against a fresh uninterrupted run
    fresh = _run_cli(base_args + ["--checkpoint", reference])
    if fresh.wait() != 0:
        raise SystemExit(f"FAIL: reference run exited {fresh.returncode}")
    ref_keys, ref_metric_keys, _ = _journal_query_keys(reference)

    if keys != ref_keys:
        raise SystemExit(
            f"FAIL: journal keys diverge from reference "
            f"(only-resumed={sorted(keys - ref_keys)[:5]}, "
            f"only-reference={sorted(ref_keys - keys)[:5]})"
        )
    if metric_keys != ref_metric_keys:
        diff = metric_keys ^ ref_metric_keys
        raise SystemExit(
            f"FAIL: metric inputs diverge from reference: {sorted(diff)[:5]}"
        )

    print(
        f"OK: resume after SIGKILL replayed {len(keys) - killed_at} queries, "
        f"skipped {killed_at}; metric inputs match the uninterrupted run"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
