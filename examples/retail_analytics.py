"""Retail analytics: the business questions the paper's schema models.

Loads a model-scale warehouse and walks the analyses TPC-DS was built
around — seasonal skew (the Figure 2 zones), brand performance, the
snowflaked demographics, the fact-to-fact sales/returns link, and a
cross-channel comparison.

Run:  python examples/retail_analytics.py
"""

from repro import Benchmark


def section(title: str) -> None:
    print()
    print(title)
    print("-" * len(title))


def main() -> None:
    bench = Benchmark(scale_factor=0.01)
    db = bench.load()  # load test only: tables + indexes + views + stats

    section("Seasonality: the three comparability zones of Figure 2")
    print(db.execute("""
        SELECT CASE WHEN d_moy <= 7 THEN '1: Jan-Jul (low)'
                    WHEN d_moy <= 10 THEN '2: Aug-Oct (medium)'
                    ELSE '3: Nov-Dec (high)' END zone,
               COUNT(*) line_items,
               SUM(ss_ext_sales_price) revenue,
               SUM(ss_ext_sales_price) / COUNT(DISTINCT d_moy) revenue_per_month
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk
        GROUP BY 1 ORDER BY 1
    """).to_text())

    section("Top brands in the holiday season (the paper's Query 52 shape)")
    print(db.execute("""
        SELECT i_brand, SUM(ss_ext_sales_price) revenue
        FROM store_sales, item, date_dim
        WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
          AND d_moy = 12
        GROUP BY i_brand ORDER BY revenue DESC LIMIT 5
    """).to_text())

    section("Demographics through the snowflake (income band -> spend)")
    print(db.execute("""
        SELECT ib_lower_bound, ib_upper_bound,
               COUNT(*) purchases, AVG(ss_net_paid) avg_ticket
        FROM store_sales, household_demographics, income_band
        WHERE ss_hdemo_sk = hd_demo_sk
          AND hd_income_band_sk = ib_income_band_sk
        GROUP BY ib_lower_bound, ib_upper_bound
        ORDER BY ib_lower_bound LIMIT 10
    """).to_text())

    section("Returns analysis via the ticket+item fact-to-fact join")
    print(db.execute("""
        SELECT r_reason_desc, COUNT(*) returns, SUM(sr_return_amt) amount
        FROM store_returns, reason
        WHERE sr_reason_sk = r_reason_sk
        GROUP BY r_reason_desc ORDER BY returns DESC LIMIT 5
    """).to_text())

    section("Channel comparison (store vs catalog vs web, by category)")
    print(db.execute("""
        WITH st AS (SELECT i_category c, SUM(ss_ext_sales_price) r
                    FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_category),
             ct AS (SELECT i_category c, SUM(cs_ext_sales_price) r
                    FROM catalog_sales, item WHERE cs_item_sk = i_item_sk GROUP BY i_category)
        SELECT st.c category, st.r store_rev, ct.r catalog_rev,
               st.r / ct.r store_to_catalog
        FROM st, ct WHERE st.c = ct.c
        ORDER BY store_rev DESC LIMIT 5
    """).to_text())

    section("Customer loyalty: year-over-year growers (Q74 shape)")
    print(db.execute("""
        WITH yearly AS (
            SELECT ss_customer_sk cust, d_year yr, SUM(ss_net_paid) total
            FROM store_sales, date_dim
            WHERE ss_sold_date_sk = d_date_sk AND ss_customer_sk IS NOT NULL
            GROUP BY ss_customer_sk, d_year)
        SELECT cur.yr, COUNT(*) growing_customers
        FROM yearly cur JOIN yearly prev
          ON cur.cust = prev.cust AND cur.yr = prev.yr + 1
        WHERE cur.total > prev.total
        GROUP BY cur.yr ORDER BY cur.yr
    """).to_text())


if __name__ == "__main__":
    main()
