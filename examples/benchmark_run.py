"""Configured benchmark runs: aux structures, streams, and the metric.

Runs the benchmark twice — with and without the reporting-channel
auxiliary structures — and compares the QphDS@SF outcomes, illustrating
the §5.3 trade-off: views speed up reporting queries but their build
cost is charged through the load-time fraction of the metric.

Run:  python examples/benchmark_run.py
"""

from repro import Benchmark
from repro.runner import load_time_share


def run_one(use_aux: bool):
    bench = Benchmark(scale_factor=0.004, streams=2, use_aux_structures=use_aux)
    summary = bench.run()
    result = summary.result
    rewritten = sum(1 for t in result.query_run_1.timings if t.used_view)
    return {
        "aux": "on" if use_aux else "off",
        "load_s": result.load.elapsed,
        "qr1_s": result.query_run_1.elapsed,
        "dm_s": result.maintenance.elapsed,
        "qr2_s": result.query_run_2.elapsed,
        "qphds": summary.qphds,
        "dollars": summary.price_performance,
        "load_share": load_time_share(result.metric_inputs),
        "rewritten": rewritten,
    }


def main() -> None:
    rows = [run_one(True), run_one(False)]
    header = (f"{'aux':>4s} {'load':>8s} {'QR1':>8s} {'DM':>8s} {'QR2':>8s} "
              f"{'QphDS':>10s} {'$/QphDS':>10s} {'load%':>6s} {'via view':>9s}")
    print(header)
    for r in rows:
        print(f"{r['aux']:>4s} {r['load_s']:>7.2f}s {r['qr1_s']:>7.2f}s "
              f"{r['dm_s']:>7.2f}s {r['qr2_s']:>7.2f}s {r['qphds']:>10,.0f} "
              f"{r['dollars']:>10,.2f} {r['load_share']:>6.1%} {r['rewritten']:>9d}")

    print()
    print("Reading the comparison:")
    print(" - with aux structures, reporting queries answer from materialized")
    print("   views (the 'via view' count), shortening those queries;")
    print(" - but the views' build and refresh costs land in the load test and")
    print("   the data-maintenance run, and 1% of the load per stream is charged")
    print("   in the metric denominator. At model scale, where only ~6 of 198")
    print("   queries benefit, the costs can outweigh the gains - which is")
    print("   precisely the trade-off the metric was designed to expose (5.3:")
    print("   'to realistically limit the use of auxiliary structures without")
    print("   disallowing them'). At full scale, where reporting queries scan")
    print("   hundreds of millions of catalog rows, the balance reverses.")


if __name__ == "__main__":
    main()
