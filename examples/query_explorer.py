"""Query-generator and optimizer explorer.

Shows the dsqgen side of the kit: template expansion with comparability
-zone substitutions, per-stream permutations, the four workload
classes, EXPLAIN plans, and what each optimizer capability does to the
plan of the paper's Query 52.

Run:  python examples/query_explorer.py
"""

from repro import Benchmark
from repro.engine import OptimizerSettings


def main() -> None:
    bench = Benchmark(scale_factor=0.005)
    db = bench.load()
    qgen = bench._run.qgen

    print("Query 52 (the paper's ad-hoc example) across streams:")
    for stream in range(3):
        query = bench.generate_query(52, stream=stream)
        values = ", ".join(f"{k}={v}" for k, v in sorted(query.substitution_values.items()))
        print(f"  stream {stream}: {values}")

    print("\nworkload class mix (99 templates):")
    from collections import Counter

    classes = Counter(t.query_class for t in qgen.templates.values())
    parts = Counter(t.channel_part for t in qgen.templates.values())
    for name, count in sorted(classes.items()):
        print(f"  {name:12s}: {count}")
    print("channel parts:", dict(sorted(parts.items())))

    print("\nstream permutations (first 10 template ids):")
    for stream in range(3):
        print(f"  stream {stream}: {qgen.stream_order(stream)[:10]} ...")

    query = bench.generate_query(52, stream=0)
    statement = query.statements[0]
    print("\nQuery 52 text:")
    print(statement.strip())

    print("\noptimized plan (pushdown + reorder + star):")
    print(db.explain(statement))

    print("\nplan with the optimizer switched off:")
    db.optimizer_settings = OptimizerSettings(
        enable_pushdown=False,
        enable_join_reorder=False,
        enable_star_transformation=False,
    )
    print(db.explain(statement))
    db.optimizer_settings = OptimizerSettings()

    print("\nan iterative OLAP drill-down (three affiliated statements):")
    drill = next(t for t in qgen.templates.values() if t.name == "drill_down_store")
    generated = bench.generate_query(drill.template_id, stream=0)
    for i, stmt in enumerate(generated.statements, 1):
        result = db.execute(stmt)
        first = result.rows()[0] if len(result) else "(no rows)"
        print(f"  step {i}: {len(result)} rows, top = {first}")


if __name__ == "__main__":
    main()
