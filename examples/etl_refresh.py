"""ETL data maintenance: Figures 8, 9 and 10 in action.

Loads a warehouse, then walks one refresh cycle:

1. a type-1 (non-history) update overwrites a customer row in place;
2. a type-2 (history-keeping) update closes the current item revision
   and opens a new one — the old price stays queryable;
3. fact inserts arrive with *business* keys and are translated to the
   current surrogate keys during the load;
4. a date-clustered delete drops an old fact window;
5. auxiliary structures are re-maintained and a reporting query keeps
   answering correctly.

Run:  python examples/etl_refresh.py
"""

from repro import Benchmark
from repro.maintenance import (
    DM_OPERATIONS,
    RefreshGenerator,
    lookup_surrogate,
    run_all,
)


def main() -> None:
    bench = Benchmark(scale_factor=0.005)
    db = bench.load()
    context = bench._run.data.context  # the generator context (shared coupling)

    # pick a sample item to follow through the SCD update
    item_bk = db.execute("SELECT i_item_id FROM item WHERE i_item_sk = 1").scalar()
    before = db.execute(f"""
        SELECT i_item_sk, i_current_price, i_rec_start_date, i_rec_end_date
        FROM item WHERE i_item_id = '{item_bk}' ORDER BY i_rec_start_date
    """)
    print(f"item {item_bk} revision history before refresh:")
    print(before.to_text())

    refresh = RefreshGenerator(context, update_fraction=0.05,
                               insert_fraction=0.03).generate()
    print(f"\nrefresh set: {len(refresh.dimension_updates)} dimension updates, "
          f"{len(refresh.fact_inserts)} fact inserts, "
          f"{len(refresh.delete_ranges)} delete windows")

    print("\nthe 12 data-maintenance operations:")
    results = run_all(db, refresh)
    for r in results:
        description = next(
            (op.description for op in DM_OPERATIONS if op.name == r.operation),
            "maintain auxiliary structures",
        )
        print(f"  {r.operation:8s} {r.rows_affected:>7,} rows  {r.elapsed * 1000:8.1f} ms  {description}")

    # the SCD trail: if this item was updated, it now has a closed
    # revision plus a new open one; either way exactly one row is open
    after = db.execute(f"""
        SELECT i_item_sk, i_current_price, i_rec_start_date, i_rec_end_date
        FROM item WHERE i_item_id = '{item_bk}' ORDER BY i_rec_start_date
    """)
    print(f"\nitem {item_bk} revision history after refresh:")
    print(after.to_text())

    open_revisions = db.execute("""
        SELECT COUNT(*) FROM (
            SELECT i_item_id FROM item WHERE i_rec_end_date IS NULL
            GROUP BY i_item_id HAVING COUNT(*) > 1) v
    """).scalar()
    print(f"\nbusiness keys with more than one open revision: {open_revisions} (must be 0)")

    # surrogate-key translation: the current revision answers lookups
    sk = lookup_surrogate(db, "item", item_bk)
    print(f"current surrogate key for {item_bk}: {sk}")

    # reporting query still correct after the maintained refresh
    print("\nreporting query after maintenance (answers from refreshed view):")
    result = db.execute("""
        SELECT cc_name, SUM(cs_net_profit) profit, COUNT(*) orders
        FROM catalog_sales, call_center
        WHERE cs_call_center_sk = cc_call_center_sk
        GROUP BY cc_name, cc_manager ORDER BY profit DESC LIMIT 3
    """)
    print(result.to_text())
    print(f"answered from materialized view: {result.rewritten_from_view}")


if __name__ == "__main__":
    main()
