"""Quickstart: run the complete TPC-DS reproduction in one call.

Generates a model-scale database (sf=0.005 ≈ 0.5 GB-equivalent row
counts scaled down ~20,000x), loads it, executes the Figure 11
sequence — Load, Query Run 1, Data Maintenance, Query Run 2 — with two
concurrent streams, and prints the QphDS@SF report.

Run:  python examples/quickstart.py
"""

from repro import Benchmark


def main() -> None:
    bench = Benchmark(scale_factor=0.005, streams=2)
    summary = bench.run()
    print(summary.report())

    # the loaded database stays available for ad-hoc exploration
    print()
    print("ad-hoc follow-up: revenue by channel")
    result = bench.query("""
        SELECT 'store' channel, SUM(ss_ext_sales_price) revenue FROM store_sales
        UNION ALL
        SELECT 'catalog', SUM(cs_ext_sales_price) FROM catalog_sales
        UNION ALL
        SELECT 'web', SUM(ws_ext_sales_price) FROM web_sales
        ORDER BY revenue DESC
    """)
    print(result.to_text())


if __name__ == "__main__":
    main()
