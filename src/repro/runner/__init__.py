"""Execution rules and metrics (§5)."""

from .execution import (
    BenchmarkConfig,
    BenchmarkResult,
    BenchmarkRun,
    LoadResult,
    MaintenanceRunResult,
    QueryRunResult,
    QueryTiming,
    run_benchmark,
    validate_primary_keys,
)
from .metric import (
    LOAD_FRACTION_PER_STREAM,
    MetricError,
    MetricInputs,
    QUERIES_PER_STREAM,
    QUERY_RUNS,
    load_time_share,
    power_metric,
    price_performance,
    qphds,
    total_queries,
)
from .audit import AuditFinding, audit_database
from .checkpoint import (
    CheckpointJournal,
    CheckpointMismatch,
    CheckpointState,
    load_checkpoint,
)
from .pricing import PriceBook, SystemConfiguration, dollars_per_qphds
from .report import (
    render_degradation,
    render_full_disclosure,
    render_phase_breakdown,
    render_plan_quality,
    render_report,
)

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "BenchmarkRun",
    "run_benchmark",
    "LoadResult",
    "QueryRunResult",
    "QueryTiming",
    "MaintenanceRunResult",
    "validate_primary_keys",
    "MetricInputs",
    "MetricError",
    "qphds",
    "price_performance",
    "power_metric",
    "total_queries",
    "load_time_share",
    "QUERIES_PER_STREAM",
    "QUERY_RUNS",
    "LOAD_FRACTION_PER_STREAM",
    "render_report",
    "render_full_disclosure",
    "render_phase_breakdown",
    "render_plan_quality",
    "render_degradation",
    "CheckpointJournal",
    "CheckpointMismatch",
    "CheckpointState",
    "load_checkpoint",
    "AuditFinding",
    "audit_database",
    "PriceBook",
    "SystemConfiguration",
    "dollars_per_qphds",
]
