"""Benchmark execution rules (§5.2, Figure 11).

The benchmark test is a *database load test* followed by a *performance
test*::

    Load  →  Query Run 1  →  Data Maintenance  →  Query Run 2

* The load test times table loading, auxiliary-structure creation,
  constraint validation and statistics gathering (data *generation* is
  untimed, as in the spec).
* Each query run executes S concurrent streams; each stream runs all
  99 templates in its own permuted order with its own substitutions.
* The data-maintenance run applies one refresh set per stream through
  the 12 operations, then maintains auxiliary structures — whose cost
  Query Run 2 would otherwise expose.

Robustness (§5's compliance rule says the metric is valid only when
*every* query in *every* stream completes): each query runs inside a
containment boundary — failures become ``QueryTiming(status=...)``
records instead of killing the stream, transient failures retry with
capped exponential backoff + jitter, every completed query is
journaled to a crash-safe checkpoint (``BenchmarkConfig.checkpoint_path``)
so ``resume=True`` skips finished work, and per-query resource bounds
(``query_timeout_s`` / ``query_mem_budget_bytes``) flow into the
engine's governor.  A run with any terminally failed query is reported
non-compliant (``BenchmarkResult.compliant``).
"""

from __future__ import annotations

import json
import random
import time
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from ..obs import (
    MetricsSampler,
    PlanQualityAggregator,
    PoolProfiler,
    StatementStore,
    Tracer,
    get_registry,
    latency_percentiles,
    set_profiler,
)
from ..dsdgen import DsdGen, GeneratedData, minimum_streams
from ..dsdgen.generator import load_tables
from ..engine import Database, OptimizerSettings
from ..engine.errors import ConstraintError, QueryCancelled, QueryTimeout
from ..engine.parallel import get_pool
from ..maintenance import RefreshGenerator, run_all
from ..qgen import QGen, build_catalog
from ..schema import AD_HOC_TABLES, ALL_TABLES
from .checkpoint import CheckpointJournal, CheckpointState, load_checkpoint
from .metric import MetricInputs, qphds, total_queries

#: materialized views created on the reporting (catalog) channel when
#: auxiliary structures are enabled; Q20-family queries rewrite onto the
#: first, brand queries onto the second, call-center reporting onto the
#: third
REPORTING_MATVIEWS = {
    "mv_catalog_item_date": """
        SELECT i_item_id, i_item_desc, i_category, i_class, i_current_price,
               d_date, SUM(cs_ext_sales_price)
        FROM catalog_sales, item, date_dim
        WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
        GROUP BY i_item_id, i_item_desc, i_category, i_class,
                 i_current_price, d_date
    """,
    "mv_catalog_brand_month": """
        SELECT d_year, d_moy, i_brand, i_brand_id, i_manager_id,
               SUM(cs_ext_sales_price)
        FROM catalog_sales, item, date_dim
        WHERE cs_sold_date_sk = d_date_sk AND cs_item_sk = i_item_sk
        GROUP BY d_year, d_moy, i_brand, i_brand_id, i_manager_id
    """,
    "mv_call_center_profit": """
        SELECT cc_name, cc_manager, SUM(cs_net_profit), COUNT(*)
        FROM catalog_sales, call_center
        WHERE cs_call_center_sk = cc_call_center_sk
        GROUP BY cc_name, cc_manager
    """,
}

#: bitmap join indexes on reporting-channel fact foreign keys (complex
#: aux structures — only legal on the catalog channel)
REPORTING_BITMAP_INDEXES = (
    ("catalog_sales", "cs_sold_date_sk"),
    ("catalog_sales", "cs_item_sk"),
    ("catalog_sales", "cs_call_center_sk"),
)

#: basic indexes (legal everywhere): business keys and fact date columns
BASIC_HASH_INDEXES = (
    ("customer", "c_customer_id"),
    ("customer_address", "ca_address_id"),
    ("item", "i_item_id"),
    ("store", "s_store_id"),
    ("call_center", "cc_call_center_id"),
    ("web_site", "web_site_id"),
    ("web_page", "wp_web_page_id"),
    ("warehouse", "w_warehouse_id"),
    ("promotion", "p_promo_id"),
    ("catalog_page", "cp_catalog_page_id"),
    ("date_dim", "d_date"),
)

BASIC_SORTED_INDEXES = (
    ("store_sales", "ss_sold_date_sk"),
    ("store_returns", "sr_returned_date_sk"),
    ("catalog_sales", "cs_sold_date_sk"),
    ("catalog_returns", "cr_returned_date_sk"),
    ("web_sales", "ws_sold_date_sk"),
    ("web_returns", "wr_returned_date_sk"),
)


@dataclass
class BenchmarkConfig:
    scale_factor: float = 0.01
    #: number of concurrent query streams; None = the Figure 12 minimum
    streams: Optional[int] = None
    seed: int = 19620718
    #: open this persistent column store (written by ``dsdgen --store``
    #: or ``Database.save``) instead of generating + loading; the
    #: store's recorded scale factor and seed override the two fields
    #: above so query substitutions match the stored data
    db_path: Optional[str] = None
    #: create the reporting-channel aux structures (matviews + bitmaps)
    use_aux_structures: bool = True
    #: enforce the official discrete scale factors
    strict: bool = False
    #: enforce the ad-hoc implementation rules (complex aux structures
    #: restricted to the reporting channel)
    enforce_implementation_rules: bool = True
    #: run every query under a stats collector and aggregate per-operator
    #: Q-error into the full-disclosure report (adds per-query overhead,
    #: so it is opt-in)
    plan_quality: bool = False
    optimizer: OptimizerSettings = field(default_factory=OptimizerSettings)
    #: refresh-set sizing
    update_fraction: float = 0.02
    insert_fraction: float = 0.02
    #: 3-year total cost of ownership for $/QphDS (synthetic price book)
    system_price: float = 150_000.0
    #: per-query resource bounds, threaded into the engine's governor
    query_timeout_s: Optional[float] = None
    query_mem_budget_bytes: Optional[float] = None
    #: morsel-parallel workers for the engine's hot operators (None or
    #: 1 = serial).  Query streams and operator morsels share the one
    #: pool: with workers set, streams are scheduled on it too, and a
    #: saturated stream runs its morsels inline.  Results are
    #: byte-identical at any worker count.
    workers: Optional[int] = None
    #: retry policy for *transient* query failures (exponential backoff
    #: with jitter, capped)
    max_query_retries: int = 2
    retry_backoff_s: float = 0.05
    retry_backoff_cap_s: float = 1.0
    #: crash-safe journal of completed queries; with ``resume=True`` a
    #: journaled run restarts without re-executing finished queries
    checkpoint_path: Optional[str] = None
    resume: bool = False
    #: optional :class:`~repro.faults.FaultInjector`, installed on the
    #: database for the duration of each query run (load and data
    #: maintenance are never fault-injected — a corrupted load would
    #: invalidate the whole test, not degrade it)
    faults: Optional[object] = None
    #: sample the metrics registry on a background thread for the
    #: duration of the run (the time-series lands in
    #: ``BenchmarkResult.metrics_series``; ``sample_metrics_path``
    #: additionally mirrors each sample as one JSONL line)
    sample_metrics: bool = False
    sample_interval_s: float = 0.25
    sample_metrics_path: Optional[str] = None
    #: journal every executed statement into a fingerprinted
    #: :class:`~repro.obs.statements.StatementStore` at this path; the
    #: aggregates land in ``BenchmarkResult.statements`` and stay
    #: queryable through ``sys.statements`` afterwards
    statement_store_path: Optional[str] = None

    def resolved_streams(self) -> int:
        return self.streams or minimum_streams(self.scale_factor)


@dataclass
class QueryTiming:
    stream: int
    template_id: int
    name: str
    query_class: str
    channel_part: str
    elapsed: float
    rows: int
    used_view: Optional[str]
    #: "ok" | "failed" | "timeout" | "cancelled"
    status: str = "ok"
    attempts: int = 1
    error: str = ""
    spill_partitions: int = 0
    spilled_bytes: int = 0


@dataclass
class QueryRunResult:
    elapsed: float
    timings: list[QueryTiming] = field(default_factory=list)

    @property
    def queries_executed(self) -> int:
        return len(self.timings)

    @property
    def failures(self) -> list[QueryTiming]:
        return [t for t in self.timings if t.status != "ok"]

    @property
    def retries(self) -> int:
        return sum(t.attempts - 1 for t in self.timings)

    def latency_percentiles(self) -> dict:
        """p50/p90/p95/p99 of successful query latencies: the run
        overall plus each stream separately (keyed by stream id)."""
        ok = [t for t in self.timings if t.status == "ok"]
        per_stream: dict[int, list[float]] = defaultdict(list)
        for timing in ok:
            per_stream[timing.stream].append(timing.elapsed)
        return {
            "overall": latency_percentiles([t.elapsed for t in ok]),
            "streams": {
                str(stream): latency_percentiles(values)
                for stream, values in sorted(per_stream.items())
            },
        }


@dataclass
class LoadResult:
    elapsed: float
    untimed_generation: float
    rows_loaded: int
    aux_structures: int


@dataclass
class MaintenanceRunResult:
    elapsed: float
    operations: list = field(default_factory=list)


def validate_primary_keys(db: Database) -> None:
    """Constraint validation — part of the timed load (§5.2)."""
    for name, schema in ALL_TABLES.items():
        pk = schema.primary_key
        if len(pk) != 1:
            continue
        column = db.table(name).scan_column(pk[0])
        if column.null.any():
            raise ConstraintError(f"NULL primary key in {name}")
        import numpy as np

        valid = column.data
        if len(np.unique(valid)) != len(valid):
            raise ConstraintError(f"duplicate primary key in {name}")


class BenchmarkRun:
    """Drives one full benchmark test against a fresh database.

    Every phase runs under a :class:`~repro.obs.Tracer` span: the
    benchmark emits a per-phase / per-stream / per-query *span
    timeline* (``span_timeline()``, ``export_trace()``) that the
    full-disclosure report consumes.  Pass ``tracer=None`` to keep the
    default enabled tracer, or a disabled one to opt out."""

    def __init__(
        self,
        config: BenchmarkConfig,
        tracer: Optional[Tracer] = None,
        journal: Optional[CheckpointJournal] = None,
        resume_state: Optional[CheckpointState] = None,
    ):
        self.config = config
        self.db: Optional[Database] = None
        self.data: Optional[GeneratedData] = None
        #: the generator context behind query substitutions and refresh
        #: sets; on the ``db_path`` load path it is rebuilt from the
        #: store's (scale, seed) without regenerating any data
        self.context = None
        self.qgen: Optional[QGen] = None
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.journal = journal
        self.resume_state = resume_state
        self.queries_skipped = 0

    # -- load test -------------------------------------------------------------

    def load_test(self) -> LoadResult:
        if self.config.db_path:
            return self._load_from_store()
        config = self.config
        with self.tracer.installed(), self.tracer.span("phase:load") as phase:
            with self.tracer.span("generate") as span:
                gen_start = time.perf_counter()
                generator = DsdGen(
                    config.scale_factor, seed=config.seed, strict=config.strict
                )
                self.data = generator.generate()
                untimed = time.perf_counter() - gen_start
                span.set(timed=False, rows=sum(self.data.row_counts.values()))

            db = Database(
                optimizer_settings=config.optimizer, workers=config.workers
            )
            if config.statement_store_path:
                db.statement_store = StatementStore(config.statement_store_path)
            start = time.perf_counter()
            with self.tracer.span("load_tables"):
                load_tables(db, self.data)
            aux = 0
            with self.tracer.span("aux_structures") as span:
                aux = self._create_aux_structures(db)
                span.set(count=aux)
            with self.tracer.span("validate_constraints"):
                validate_primary_keys(db)
            with self.tracer.span("gather_stats"):
                db.gather_stats()
            elapsed = time.perf_counter() - start
            if config.plan_quality:
                db.plan_quality = PlanQualityAggregator()
            self.db = db
            self.context = self.data.context
            self.qgen = QGen(self.context, build_catalog())
            rows = sum(self.data.row_counts.values())
            phase.set(rows=rows, aux_structures=aux, untimed_generation=untimed)
        return LoadResult(elapsed, untimed, rows, aux)

    def _create_aux_structures(self, db: Database) -> int:
        """Indexes / matviews / the aux-restriction policy (shared by
        the generate path and the ``db_path`` store-open path)."""
        config = self.config
        aux = 0
        for table, column in BASIC_HASH_INDEXES:
            db.create_index(table, column, "hash")
            aux += 1
        for table, column in BASIC_SORTED_INDEXES:
            db.create_index(table, column, "sorted")
            aux += 1
        if config.enforce_implementation_rules:
            db.catalog.restrict_aux_on = set(AD_HOC_TABLES)
        if config.use_aux_structures:
            for table, column in REPORTING_BITMAP_INDEXES:
                db.create_index(table, column, "bitmap")
                aux += 1
            for name, sql in REPORTING_MATVIEWS.items():
                db.create_materialized_view(name, sql)
                aux += 1
        return aux

    def _load_from_store(self) -> LoadResult:
        """The ``db_path`` load path: open a persistent column store
        instead of generating + loading.

        The open is O(columns touched): tables attach as mmap-backed
        lazy columns, optimizer statistics come from the manifest, and
        neither PK validation nor ``gather_stats`` re-runs (both were
        part of the timed load that produced the store).  Only aux
        structures are built fresh — hash/sorted/bitmap indexes are
        lazy; materialized views execute their defining queries, which
        hydrates exactly the columns those queries touch."""
        config = self.config
        from ..dsdgen.context import GeneratorContext
        from ..engine.colstore import open_database

        with self.tracer.installed(), self.tracer.span("phase:load") as phase:
            db = Database(
                optimizer_settings=config.optimizer, workers=config.workers
            )
            if config.statement_store_path:
                db.statement_store = StatementStore(config.statement_store_path)
            start = time.perf_counter()
            with self.tracer.span("open_store") as span:
                open_database(db, config.db_path)
                info = db.store_info
                span.set(path=config.db_path, tables=len(info["tables"]))
            # the store records what data it holds; substitutions and
            # refresh sets must be derived from those values, not from
            # whatever the caller's defaults were
            if info.get("scale_factor") is not None:
                config.scale_factor = info["scale_factor"]
            if info.get("seed") is not None:
                config.seed = int(info["seed"])
            with self.tracer.span("aux_structures") as span:
                aux = self._create_aux_structures(db)
                span.set(count=aux)
            elapsed = time.perf_counter() - start
            if config.plan_quality:
                db.plan_quality = PlanQualityAggregator()
            self.db = db
            self.context = GeneratorContext(config.scale_factor, config.seed)
            self.context.ensure_key_pools()
            self.qgen = QGen(self.context, build_catalog())
            rows = sum(info["tables"].values())
            phase.set(rows=rows, aux_structures=aux, untimed_generation=0.0,
                      store=config.db_path)
        return LoadResult(elapsed, 0.0, rows, aux)

    # -- query runs -------------------------------------------------------------

    def _run_stream(
        self, stream: int, parent=None, run_label: str = "qr1"
    ) -> list[QueryTiming]:
        """Execute one stream's 99 queries under the containment
        boundary: per-query failures become degraded timings, and even
        a failure in stream machinery itself (query generation, tracer)
        returns the partial timings instead of propagating through the
        thread pool and killing the sibling streams."""
        timings: list[QueryTiming] = []
        registry = get_registry()
        with self.tracer.span(
            "stream", parent=parent, stream=stream
        ) as stream_span:
            try:
                for query in self.qgen.generate_stream(stream):
                    resumed = self._resumed_timing(run_label, stream, query)
                    if resumed is not None:
                        timings.append(resumed)
                        self.queries_skipped += 1
                        if registry.enabled:
                            registry.counter("runner.queries_skipped").add()
                        continue
                    timing = self._run_query(query, stream, run_label)
                    if registry.enabled:
                        registry.counter("runner.queries").add()
                        if timing.status == "ok":
                            registry.histogram(
                                "runner.query_seconds",
                                labels={"class": query.query_class},
                            ).observe(timing.elapsed)
                    if self.journal is not None:
                        self.journal.record_query(run_label, timing)
                    timings.append(timing)
            except Exception as exc:  # containment: never kill the phase
                stream_span.set(
                    error=f"{type(exc).__name__}: {exc}", partial=True
                )
                if registry.enabled:
                    registry.counter("runner.stream_failures").add()
        return timings

    def _resumed_timing(
        self, run_label: str, stream: int, query
    ) -> Optional[QueryTiming]:
        """The journaled timing for an already-completed query (resume
        path), or ``None`` when the query still has to run.  Journaled
        *failures* re-run — resume must converge on a compliant run,
        not replay its failures."""
        if self.resume_state is None:
            return None
        if not self.resume_state.has_query(run_label, stream, query.template_id):
            return None
        record = self.resume_state.query_record(
            run_label, stream, query.template_id
        )
        if record.get("status", "ok") != "ok":
            return None
        fields = {
            f: record[f]
            for f in QueryTiming.__dataclass_fields__
            if f in record
        }
        return QueryTiming(**fields)

    def _run_query(self, query, stream: int, run_label: str) -> QueryTiming:
        """One query with retry: transient failures (duck-typed on a
        ``transient`` attribute, e.g. injected faults) retry with
        capped exponential backoff + deterministic jitter; anything
        else — timeout, cancel, hard error — degrades immediately."""
        config = self.config
        registry = get_registry()
        jitter = random.Random(f"{config.seed}:{stream}:{query.template_id}")
        attempts = 0
        while True:
            attempts += 1
            status, error, transient = "ok", "", False
            rows = 0
            used_view = None
            spill_parts = 0
            spill_bytes = 0
            with self.tracer.span(
                "query", stream=stream, template=query.template_id,
                query_name=query.name, query_class=query.query_class,
            ) as span:
                start = time.perf_counter()
                try:
                    for statement in query.statements:
                        result = self.db.execute(
                            statement,
                            timeout_s=config.query_timeout_s,
                            mem_budget_bytes=config.query_mem_budget_bytes,
                        )
                        rows += len(result)
                        used_view = used_view or result.rewritten_from_view
                        spill_parts += result.spill_partitions
                        spill_bytes += result.spilled_bytes
                except QueryTimeout as exc:
                    status, error = "timeout", str(exc)
                except QueryCancelled as exc:
                    status, error = "cancelled", str(exc)
                except Exception as exc:
                    status = "failed"
                    error = f"{type(exc).__name__}: {exc}"
                    transient = bool(getattr(exc, "transient", False))
                elapsed = time.perf_counter() - start
                span.set(rows=rows, used_view=used_view, attempts=attempts)
                if status != "ok":
                    span.set(status=status, error=error)
                if spill_parts:
                    span.set(
                        spill_partitions=spill_parts, spilled_bytes=spill_bytes
                    )
            if status == "ok":
                return QueryTiming(
                    stream=stream,
                    template_id=query.template_id,
                    name=query.name,
                    query_class=query.query_class,
                    channel_part=query.channel_part,
                    elapsed=elapsed,
                    rows=rows,
                    used_view=used_view,
                    attempts=attempts,
                    spill_partitions=spill_parts,
                    spilled_bytes=spill_bytes,
                )
            if transient and attempts <= config.max_query_retries:
                if registry.enabled:
                    registry.counter("runner.query_retries").add()
                store = self.db.statement_store
                if store is not None:
                    for statement in query.statements:
                        store.note_retry(statement)
                backoff = min(
                    config.retry_backoff_s * (2 ** (attempts - 1)),
                    config.retry_backoff_cap_s,
                )
                time.sleep(backoff * (0.5 + 0.5 * jitter.random()))
                continue
            if registry.enabled:
                registry.counter("runner.query_failures").add()
            return QueryTiming(
                stream=stream,
                template_id=query.template_id,
                name=query.name,
                query_class=query.query_class,
                channel_part=query.channel_part,
                elapsed=elapsed,
                rows=rows,
                used_view=used_view,
                status=status,
                attempts=attempts,
                error=error,
            )

    def query_run(self, run_number: int) -> QueryRunResult:
        streams = self.config.resolved_streams()
        run_label = f"qr{run_number}"
        # the single-stream phase is the "power"-style run; concurrent
        # streams exercise throughput (§5.2 names both query runs)
        phase_name = "phase:power" if streams == 1 else "phase:throughput"
        skipped_before = self.queries_skipped
        # faults are confined to query runs: installed here, removed in
        # the finally even when the phase degrades
        self.db.fault_injector = self.config.faults
        try:
            with self.tracer.installed(), self.tracer.span(
                phase_name, run=run_number, streams=streams
            ) as phase:
                start = time.perf_counter()
                # stream ids differ between run 1 and run 2 so substitutions differ
                base = (run_number - 1) * streams
                shared_pool = get_pool(self.config.workers)
                if streams == 1:
                    all_timings = [
                        self._run_stream(base, parent=phase, run_label=run_label)
                    ]
                elif shared_pool is not None:
                    # streams × morsels share the one worker pool: a
                    # stream saturating it runs its morsels inline, so
                    # total thread count stays at the configured workers
                    futures = [
                        shared_pool.submit(
                            self._run_stream, s, parent=phase,
                            run_label=run_label,
                        )
                        for s in range(base, base + streams)
                    ]
                    all_timings = [f.result() for f in futures]
                else:
                    with ThreadPoolExecutor(max_workers=streams) as pool:
                        all_timings = list(
                            pool.map(
                                lambda s: self._run_stream(
                                    s, parent=phase, run_label=run_label
                                ),
                                range(base, base + streams),
                            )
                        )
                elapsed = time.perf_counter() - start
        finally:
            self.db.fault_injector = None
        result = QueryRunResult(elapsed)
        for timings in all_timings:
            result.timings.extend(timings)
        result.elapsed = self._phase_elapsed(
            run_label, elapsed, result, self.queries_skipped - skipped_before
        )
        if self.journal is not None:
            self.journal.record_phase(run_label, result.elapsed)
        return result

    def _phase_elapsed(
        self,
        run_label: str,
        measured: float,
        result: QueryRunResult,
        skipped: int,
    ) -> float:
        """The phase elapsed time to report.  An uninterrupted run uses
        the wall clock.  A resumed run substitutes the journaled phase
        time when the whole phase had finished; a partially resumed
        phase approximates the full-phase time as the busiest stream's
        summed query time (wall clock would under-count skipped work)."""
        if self.resume_state is not None:
            journaled = self.resume_state.phase_elapsed(run_label)
            if journaled is not None:
                return journaled
            if skipped:
                per_stream: dict[int, float] = defaultdict(float)
                for timing in result.timings:
                    per_stream[timing.stream] += timing.elapsed
                busiest = max(per_stream.values(), default=0.0)
                return max(measured, busiest)
        return measured

    # -- data maintenance ----------------------------------------------------------

    def data_maintenance(self) -> MaintenanceRunResult:
        config = self.config
        generator = RefreshGenerator(
            self.context,
            update_fraction=config.update_fraction,
            insert_fraction=config.insert_fraction,
        )
        with self.tracer.installed(), self.tracer.span("phase:maintenance"):
            start = time.perf_counter()
            operations = []
            for stream in range(1, config.resolved_streams() + 1):
                refresh = generator.generate(refresh_round=stream)
                with self.tracer.span("refresh_set", stream=stream):
                    operations.extend(run_all(self.db, refresh, refresh_aux=False))
            # aux maintenance once, after all refresh sets (its cost belongs
            # to the DM run; deferring it further would distort Query Run 2)
            aux_start = time.perf_counter()
            with self.tracer.span("aux_maintenance"):
                self.db.refresh_matviews()
                self.db.catalog.rebuild_indexes()
            from ..maintenance import MaintenanceResult

            operations.append(
                MaintenanceResult("AUX", 0, time.perf_counter() - aux_start)
            )
            elapsed = time.perf_counter() - start
        # resume re-applies the DML (the database is in-memory, state
        # must be rebuilt) but reports the originally journaled time
        if self.resume_state is not None:
            journaled = self.resume_state.phase_elapsed("maintenance")
            if journaled is not None:
                elapsed = journaled
        if self.journal is not None:
            self.journal.record_phase("maintenance", elapsed)
        return MaintenanceRunResult(elapsed, operations)

    # -- observability ---------------------------------------------------------

    def span_timeline(self) -> list[dict]:
        """The finished spans of every phase so far, as JSON-ready
        dicts ordered by start time."""
        return self.tracer.export()

    def export_trace(self, path: str) -> None:
        """Write the span timeline to ``path`` as a JSON document."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.span_timeline(), handle, indent=2)


@dataclass
class BenchmarkResult:
    config: BenchmarkConfig
    load: LoadResult
    query_run_1: QueryRunResult
    maintenance: MaintenanceRunResult
    query_run_2: QueryRunResult
    qphds: float
    price_performance: float
    #: the JSON span timeline from the run's tracer (phase / stream /
    #: query spans) — the disclosure report's phase breakdown source
    trace: list = field(default_factory=list)
    #: plan-quality summary (worst Q-error operators) when the run was
    #: configured with ``plan_quality=True``
    plan_quality: Optional[dict] = None
    #: injection counts when the run was fault-injected
    fault_stats: Optional[dict] = None
    #: queries skipped because a resumed checkpoint had them journaled
    queries_resumed: int = 0
    #: the worker-pool "Parallelism profile" (occupancy, operator skew,
    #: utilization timeline) when the run used a pool
    parallelism: Optional[dict] = None
    #: registry time-series from the background sampler, when sampled
    metrics_series: list = field(default_factory=list)
    #: statement-store summary (top offenders by elapsed / spill) when
    #: the run was configured with ``statement_store_path``
    statements: Optional[dict] = None

    @property
    def all_timings(self) -> list[QueryTiming]:
        return self.query_run_1.timings + self.query_run_2.timings

    @property
    def latency(self) -> dict:
        """Latency percentiles: both query runs plus the combined set."""
        ok = [t.elapsed for t in self.all_timings if t.status == "ok"]
        return {
            "all": latency_percentiles(ok),
            "qr1": self.query_run_1.latency_percentiles(),
            "qr2": self.query_run_2.latency_percentiles(),
        }

    @property
    def compliant(self) -> bool:
        """§5 compliance: the metric is valid only when every query in
        every stream of both query runs ultimately completed."""
        expected = self.total_queries  # 198 * S covers both query runs
        timings = self.all_timings
        return len(timings) == expected and all(
            t.status == "ok" for t in timings
        )

    @property
    def metric_inputs(self) -> MetricInputs:
        return MetricInputs(
            scale_factor=self.config.scale_factor,
            streams=self.config.resolved_streams(),
            t_qr1=self.query_run_1.elapsed,
            t_dm=self.maintenance.elapsed,
            t_qr2=self.query_run_2.elapsed,
            t_load=self.load.elapsed,
        )

    @property
    def total_queries(self) -> int:
        return total_queries(self.config.resolved_streams())


def run_benchmark(config: BenchmarkConfig) -> tuple[BenchmarkResult, BenchmarkRun]:
    """Execute the Figure 11 sequence and compute the §5.3 metrics.

    With ``config.checkpoint_path`` set, completed queries are
    journaled as they finish; with ``config.resume`` also set, a prior
    journal (same scale/streams/seed — anything else is refused) lets
    the run skip already-finished queries, so a SIGKILLed benchmark
    picks up where the journal ends and produces one merged result."""
    from .metric import price_performance

    journal = None
    resume_state = None
    streams = config.resolved_streams()
    if config.checkpoint_path:
        if config.resume:
            resume_state = load_checkpoint(config.checkpoint_path)
            if resume_state is not None:
                resume_state.validate(config.scale_factor, streams, config.seed)
        journal = CheckpointJournal(
            config.checkpoint_path,
            config.scale_factor,
            streams,
            config.seed,
            append=resume_state is not None,
        )
    run = BenchmarkRun(config, journal=journal, resume_state=resume_state)
    # pool profiling rides along whenever the run is parallel: the
    # pool's instrumented path only activates when a profiler (or
    # tracer/registry) is live, so serial runs stay on the bare path
    profiler = None
    previous_profiler = None
    if config.workers is not None and config.workers > 1:
        profiler = PoolProfiler()
        previous_profiler = set_profiler(profiler)
    sampler = None
    if config.sample_metrics or config.sample_metrics_path:
        sampler = MetricsSampler(
            interval_s=config.sample_interval_s,
            path=config.sample_metrics_path,
        ).start()
    try:
        load = run.load_test()
        qr1 = run.query_run(1)
        dm = run.data_maintenance()
        qr2 = run.query_run(2)
        if journal is not None:
            journal.record_complete()
    finally:
        if journal is not None:
            journal.close()
        if sampler is not None:
            sampler.stop()
        if previous_profiler is not None:
            set_profiler(previous_profiler)
    inputs = MetricInputs(
        scale_factor=config.scale_factor,
        streams=streams,
        t_qr1=qr1.elapsed,
        t_dm=dm.elapsed,
        t_qr2=qr2.elapsed,
        t_load=load.elapsed,
    )
    metric = qphds(inputs, enforce_min_streams=config.strict)
    quality = None
    if run.db is not None and run.db.plan_quality is not None:
        quality = run.db.plan_quality.as_dict()
    result = BenchmarkResult(
        config=config,
        load=load,
        query_run_1=qr1,
        maintenance=dm,
        query_run_2=qr2,
        qphds=metric,
        price_performance=price_performance(config.system_price, metric),
        trace=run.span_timeline(),
        plan_quality=quality,
        fault_stats=config.faults.stats() if config.faults is not None else None,
        queries_resumed=run.queries_skipped,
        parallelism=profiler.as_dict() if profiler is not None else None,
        metrics_series=sampler.samples if sampler is not None else [],
    )
    store = run.db.statement_store if run.db is not None else None
    if store is not None:
        result.statements = store.as_dict()
        store.close()
    return result, run
