"""Benchmark execution rules (§5.2, Figure 11).

The benchmark test is a *database load test* followed by a *performance
test*::

    Load  →  Query Run 1  →  Data Maintenance  →  Query Run 2

* The load test times table loading, auxiliary-structure creation,
  constraint validation and statistics gathering (data *generation* is
  untimed, as in the spec).
* Each query run executes S concurrent streams; each stream runs all
  99 templates in its own permuted order with its own substitutions.
* The data-maintenance run applies one refresh set per stream through
  the 12 operations, then maintains auxiliary structures — whose cost
  Query Run 2 would otherwise expose.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from ..obs import PlanQualityAggregator, Tracer, get_registry
from ..dsdgen import DsdGen, GeneratedData, minimum_streams
from ..dsdgen.generator import load_tables
from ..engine import Database, OptimizerSettings
from ..engine.errors import ConstraintError
from ..maintenance import RefreshGenerator, run_all
from ..qgen import QGen, build_catalog
from ..schema import AD_HOC_TABLES, ALL_TABLES
from .metric import MetricInputs, qphds, total_queries

#: materialized views created on the reporting (catalog) channel when
#: auxiliary structures are enabled; Q20-family queries rewrite onto the
#: first, brand queries onto the second, call-center reporting onto the
#: third
REPORTING_MATVIEWS = {
    "mv_catalog_item_date": """
        SELECT i_item_id, i_item_desc, i_category, i_class, i_current_price,
               d_date, SUM(cs_ext_sales_price)
        FROM catalog_sales, item, date_dim
        WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
        GROUP BY i_item_id, i_item_desc, i_category, i_class,
                 i_current_price, d_date
    """,
    "mv_catalog_brand_month": """
        SELECT d_year, d_moy, i_brand, i_brand_id, i_manager_id,
               SUM(cs_ext_sales_price)
        FROM catalog_sales, item, date_dim
        WHERE cs_sold_date_sk = d_date_sk AND cs_item_sk = i_item_sk
        GROUP BY d_year, d_moy, i_brand, i_brand_id, i_manager_id
    """,
    "mv_call_center_profit": """
        SELECT cc_name, cc_manager, SUM(cs_net_profit), COUNT(*)
        FROM catalog_sales, call_center
        WHERE cs_call_center_sk = cc_call_center_sk
        GROUP BY cc_name, cc_manager
    """,
}

#: bitmap join indexes on reporting-channel fact foreign keys (complex
#: aux structures — only legal on the catalog channel)
REPORTING_BITMAP_INDEXES = (
    ("catalog_sales", "cs_sold_date_sk"),
    ("catalog_sales", "cs_item_sk"),
    ("catalog_sales", "cs_call_center_sk"),
)

#: basic indexes (legal everywhere): business keys and fact date columns
BASIC_HASH_INDEXES = (
    ("customer", "c_customer_id"),
    ("customer_address", "ca_address_id"),
    ("item", "i_item_id"),
    ("store", "s_store_id"),
    ("call_center", "cc_call_center_id"),
    ("web_site", "web_site_id"),
    ("web_page", "wp_web_page_id"),
    ("warehouse", "w_warehouse_id"),
    ("promotion", "p_promo_id"),
    ("catalog_page", "cp_catalog_page_id"),
    ("date_dim", "d_date"),
)

BASIC_SORTED_INDEXES = (
    ("store_sales", "ss_sold_date_sk"),
    ("store_returns", "sr_returned_date_sk"),
    ("catalog_sales", "cs_sold_date_sk"),
    ("catalog_returns", "cr_returned_date_sk"),
    ("web_sales", "ws_sold_date_sk"),
    ("web_returns", "wr_returned_date_sk"),
)


@dataclass
class BenchmarkConfig:
    scale_factor: float = 0.01
    #: number of concurrent query streams; None = the Figure 12 minimum
    streams: Optional[int] = None
    seed: int = 19620718
    #: create the reporting-channel aux structures (matviews + bitmaps)
    use_aux_structures: bool = True
    #: enforce the official discrete scale factors
    strict: bool = False
    #: enforce the ad-hoc implementation rules (complex aux structures
    #: restricted to the reporting channel)
    enforce_implementation_rules: bool = True
    #: run every query under a stats collector and aggregate per-operator
    #: Q-error into the full-disclosure report (adds per-query overhead,
    #: so it is opt-in)
    plan_quality: bool = False
    optimizer: OptimizerSettings = field(default_factory=OptimizerSettings)
    #: refresh-set sizing
    update_fraction: float = 0.02
    insert_fraction: float = 0.02
    #: 3-year total cost of ownership for $/QphDS (synthetic price book)
    system_price: float = 150_000.0

    def resolved_streams(self) -> int:
        return self.streams or minimum_streams(self.scale_factor)


@dataclass
class QueryTiming:
    stream: int
    template_id: int
    name: str
    query_class: str
    channel_part: str
    elapsed: float
    rows: int
    used_view: Optional[str]


@dataclass
class QueryRunResult:
    elapsed: float
    timings: list[QueryTiming] = field(default_factory=list)

    @property
    def queries_executed(self) -> int:
        return len(self.timings)


@dataclass
class LoadResult:
    elapsed: float
    untimed_generation: float
    rows_loaded: int
    aux_structures: int


@dataclass
class MaintenanceRunResult:
    elapsed: float
    operations: list = field(default_factory=list)


def validate_primary_keys(db: Database) -> None:
    """Constraint validation — part of the timed load (§5.2)."""
    for name, schema in ALL_TABLES.items():
        pk = schema.primary_key
        if len(pk) != 1:
            continue
        column = db.table(name).scan_column(pk[0])
        if column.null.any():
            raise ConstraintError(f"NULL primary key in {name}")
        import numpy as np

        valid = column.data
        if len(np.unique(valid)) != len(valid):
            raise ConstraintError(f"duplicate primary key in {name}")


class BenchmarkRun:
    """Drives one full benchmark test against a fresh database.

    Every phase runs under a :class:`~repro.obs.Tracer` span: the
    benchmark emits a per-phase / per-stream / per-query *span
    timeline* (``span_timeline()``, ``export_trace()``) that the
    full-disclosure report consumes.  Pass ``tracer=None`` to keep the
    default enabled tracer, or a disabled one to opt out."""

    def __init__(self, config: BenchmarkConfig, tracer: Optional[Tracer] = None):
        self.config = config
        self.db: Optional[Database] = None
        self.data: Optional[GeneratedData] = None
        self.qgen: Optional[QGen] = None
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)

    # -- load test -------------------------------------------------------------

    def load_test(self) -> LoadResult:
        config = self.config
        with self.tracer.installed(), self.tracer.span("phase:load") as phase:
            with self.tracer.span("generate") as span:
                gen_start = time.perf_counter()
                generator = DsdGen(
                    config.scale_factor, seed=config.seed, strict=config.strict
                )
                self.data = generator.generate()
                untimed = time.perf_counter() - gen_start
                span.set(timed=False, rows=sum(self.data.row_counts.values()))

            db = Database(optimizer_settings=config.optimizer)
            start = time.perf_counter()
            with self.tracer.span("load_tables"):
                load_tables(db, self.data)
            aux = 0
            with self.tracer.span("aux_structures") as span:
                for table, column in BASIC_HASH_INDEXES:
                    db.create_index(table, column, "hash")
                    aux += 1
                for table, column in BASIC_SORTED_INDEXES:
                    db.create_index(table, column, "sorted")
                    aux += 1
                if config.enforce_implementation_rules:
                    db.catalog.restrict_aux_on = set(AD_HOC_TABLES)
                if config.use_aux_structures:
                    for table, column in REPORTING_BITMAP_INDEXES:
                        db.create_index(table, column, "bitmap")
                        aux += 1
                    for name, sql in REPORTING_MATVIEWS.items():
                        db.create_materialized_view(name, sql)
                        aux += 1
                span.set(count=aux)
            with self.tracer.span("validate_constraints"):
                validate_primary_keys(db)
            with self.tracer.span("gather_stats"):
                db.gather_stats()
            elapsed = time.perf_counter() - start
            if config.plan_quality:
                db.plan_quality = PlanQualityAggregator()
            self.db = db
            self.qgen = QGen(self.data.context, build_catalog())
            rows = sum(self.data.row_counts.values())
            phase.set(rows=rows, aux_structures=aux, untimed_generation=untimed)
        return LoadResult(elapsed, untimed, rows, aux)

    # -- query runs -------------------------------------------------------------

    def _run_stream(self, stream: int, parent=None) -> list[QueryTiming]:
        timings = []
        registry = get_registry()
        with self.tracer.span("stream", parent=parent, stream=stream):
            for query in self.qgen.generate_stream(stream):
                with self.tracer.span(
                    "query", stream=stream, template=query.template_id,
                    query_name=query.name, query_class=query.query_class,
                ) as span:
                    start = time.perf_counter()
                    rows = 0
                    used_view = None
                    for statement in query.statements:
                        result = self.db.execute(statement)
                        rows += len(result)
                        used_view = used_view or result.rewritten_from_view
                    elapsed = time.perf_counter() - start
                    span.set(rows=rows, used_view=used_view)
                if registry.enabled:
                    registry.counter("runner.queries").add()
                    registry.histogram(
                        "runner.query_seconds",
                        labels={"class": query.query_class},
                    ).observe(elapsed)
                timings.append(
                    QueryTiming(
                        stream=stream,
                        template_id=query.template_id,
                        name=query.name,
                        query_class=query.query_class,
                        channel_part=query.channel_part,
                        elapsed=elapsed,
                        rows=rows,
                        used_view=used_view,
                    )
                )
        return timings

    def query_run(self, run_number: int) -> QueryRunResult:
        streams = self.config.resolved_streams()
        # the single-stream phase is the "power"-style run; concurrent
        # streams exercise throughput (§5.2 names both query runs)
        phase_name = "phase:power" if streams == 1 else "phase:throughput"
        with self.tracer.installed(), self.tracer.span(
            phase_name, run=run_number, streams=streams
        ) as phase:
            start = time.perf_counter()
            # stream ids differ between run 1 and run 2 so substitutions differ
            base = (run_number - 1) * streams
            if streams == 1:
                all_timings = [self._run_stream(base, parent=phase)]
            else:
                with ThreadPoolExecutor(max_workers=streams) as pool:
                    all_timings = list(
                        pool.map(
                            lambda s: self._run_stream(s, parent=phase),
                            range(base, base + streams),
                        )
                    )
            elapsed = time.perf_counter() - start
        result = QueryRunResult(elapsed)
        for timings in all_timings:
            result.timings.extend(timings)
        return result

    # -- data maintenance ----------------------------------------------------------

    def data_maintenance(self) -> MaintenanceRunResult:
        config = self.config
        generator = RefreshGenerator(
            self.data.context,
            update_fraction=config.update_fraction,
            insert_fraction=config.insert_fraction,
        )
        with self.tracer.installed(), self.tracer.span("phase:maintenance"):
            start = time.perf_counter()
            operations = []
            for stream in range(1, config.resolved_streams() + 1):
                refresh = generator.generate(refresh_round=stream)
                with self.tracer.span("refresh_set", stream=stream):
                    operations.extend(run_all(self.db, refresh, refresh_aux=False))
            # aux maintenance once, after all refresh sets (its cost belongs
            # to the DM run; deferring it further would distort Query Run 2)
            aux_start = time.perf_counter()
            with self.tracer.span("aux_maintenance"):
                self.db.refresh_matviews()
                self.db.catalog.rebuild_indexes()
            from ..maintenance import MaintenanceResult

            operations.append(
                MaintenanceResult("AUX", 0, time.perf_counter() - aux_start)
            )
            elapsed = time.perf_counter() - start
        return MaintenanceRunResult(elapsed, operations)

    # -- observability ---------------------------------------------------------

    def span_timeline(self) -> list[dict]:
        """The finished spans of every phase so far, as JSON-ready
        dicts ordered by start time."""
        return self.tracer.export()

    def export_trace(self, path: str) -> None:
        """Write the span timeline to ``path`` as a JSON document."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.span_timeline(), handle, indent=2)


@dataclass
class BenchmarkResult:
    config: BenchmarkConfig
    load: LoadResult
    query_run_1: QueryRunResult
    maintenance: MaintenanceRunResult
    query_run_2: QueryRunResult
    qphds: float
    price_performance: float
    #: the JSON span timeline from the run's tracer (phase / stream /
    #: query spans) — the disclosure report's phase breakdown source
    trace: list = field(default_factory=list)
    #: plan-quality summary (worst Q-error operators) when the run was
    #: configured with ``plan_quality=True``
    plan_quality: Optional[dict] = None

    @property
    def metric_inputs(self) -> MetricInputs:
        return MetricInputs(
            scale_factor=self.config.scale_factor,
            streams=self.config.resolved_streams(),
            t_qr1=self.query_run_1.elapsed,
            t_dm=self.maintenance.elapsed,
            t_qr2=self.query_run_2.elapsed,
            t_load=self.load.elapsed,
        )

    @property
    def total_queries(self) -> int:
        return total_queries(self.config.resolved_streams())


def run_benchmark(config: BenchmarkConfig) -> tuple[BenchmarkResult, BenchmarkRun]:
    """Execute the Figure 11 sequence and compute the §5.3 metrics."""
    from .metric import price_performance

    run = BenchmarkRun(config)
    load = run.load_test()
    qr1 = run.query_run(1)
    dm = run.data_maintenance()
    qr2 = run.query_run(2)
    inputs = MetricInputs(
        scale_factor=config.scale_factor,
        streams=config.resolved_streams(),
        t_qr1=qr1.elapsed,
        t_dm=dm.elapsed,
        t_qr2=qr2.elapsed,
        t_load=load.elapsed,
    )
    metric = qphds(inputs, enforce_min_streams=config.strict)
    quality = None
    if run.db is not None and run.db.plan_quality is not None:
        quality = run.db.plan_quality.as_dict()
    result = BenchmarkResult(
        config=config,
        load=load,
        query_run_1=qr1,
        maintenance=dm,
        query_run_2=qr2,
        qphds=metric,
        price_performance=price_performance(config.system_price, metric),
        trace=run.span_timeline(),
        plan_quality=quality,
    )
    return result, run
