"""Synthetic pricing for the $/QphDS metric (§5.3).

"The Price-Performance metric is defined as the ratio between the 3
year total cost of ownership (TCO) of the system and the primary
metric." The TPC pricing specification governs what may be priced; we
reproduce its *structure* with a synthetic price book: hardware,
per-core software licensing, and 3 years of 24x7 maintenance with
4-hour response, exactly the components the paper lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metric import MetricError, price_performance


@dataclass(frozen=True)
class SystemConfiguration:
    """The priced configuration (the benchmark's full-disclosure items)."""

    cpu_cores: int = 8
    memory_gb: int = 64
    storage_tb: float = 1.0
    #: number of identically configured nodes
    nodes: int = 1

    def __post_init__(self) -> None:
        if min(self.cpu_cores, self.memory_gb, self.nodes) <= 0 or self.storage_tb <= 0:
            raise MetricError("configuration components must be positive")


@dataclass(frozen=True)
class PriceBook:
    """Unit prices (synthetic but structured like the TPC pricing spec)."""

    chassis_per_node: float = 8_000.0
    per_core: float = 450.0
    per_gb_memory: float = 18.0
    per_tb_storage: float = 220.0
    #: per-core DBMS license
    dbms_license_per_core: float = 1_900.0
    #: yearly 24x7 / 4-hour-response maintenance, fraction of hardware+software
    maintenance_rate: float = 0.12
    #: large configurations get a volume discount, as real price sheets do
    volume_discount_threshold: float = 250_000.0
    volume_discount: float = 0.08

    def hardware_cost(self, config: SystemConfiguration) -> float:
        per_node = (
            self.chassis_per_node
            + config.cpu_cores * self.per_core
            + config.memory_gb * self.per_gb_memory
            + config.storage_tb * self.per_tb_storage
        )
        return per_node * config.nodes

    def software_cost(self, config: SystemConfiguration) -> float:
        return self.dbms_license_per_core * config.cpu_cores * config.nodes

    def three_year_tco(self, config: SystemConfiguration) -> float:
        """Hardware + software + 3 years of maintenance, with the volume
        discount applied before maintenance (discounts price the system,
        maintenance follows the discounted price)."""
        base = self.hardware_cost(config) + self.software_cost(config)
        if base > self.volume_discount_threshold:
            base *= 1.0 - self.volume_discount
        maintenance = base * self.maintenance_rate * 3
        return base + maintenance


def dollars_per_qphds(
    config: SystemConfiguration,
    qphds_value: float,
    price_book: PriceBook | None = None,
) -> float:
    """$/QphDS@SF for a configuration under a price book."""
    book = price_book or PriceBook()
    return price_performance(book.three_year_tco(config), qphds_value)
