"""Benchmark auditing: the validation checks behind a publishable run.

TPC results are audited; this module implements the data-side checks an
auditor would run against a loaded TPC-DS database:

* row counts match the scaling model for the scale factor;
* primary keys are unique and non-null;
* fact foreign keys resolve to their dimensions (sampled);
* SCD invariants hold (exactly one open revision per business key,
  revision date ranges do not overlap);
* the sales-date distribution realizes the comparability-zone gradient;
* returns join back to their sales through the ticket/order + item link.

``audit_database`` returns a list of :class:`AuditFinding`; an empty
list means the database passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..dsdgen.scaling import ScalingModel
from ..engine import Database
from ..schema import ALL_TABLES, HISTORY_DIMENSIONS, SALES_RETURNS_LINKS

#: fact tables whose generated row count may fall below the model target
#: (returns are sampled per sold line, so they land under the anchor)
_UNDERFILL_OK = {"store_returns", "catalog_returns", "web_returns"}

_REC_COLUMNS = {
    "item": ("i_item_id", "i_rec_start_date", "i_rec_end_date"),
    "store": ("s_store_id", "s_rec_start_date", "s_rec_end_date"),
    "call_center": ("cc_call_center_id", "cc_rec_start_date", "cc_rec_end_date"),
    "web_page": ("wp_web_page_id", "wp_rec_start_date", "wp_rec_end_date"),
    "web_site": ("web_site_id", "web_rec_start_date", "web_rec_end_date"),
}


@dataclass(frozen=True)
class AuditFinding:
    check: str
    table: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.check}] {self.table}: {self.detail}"


def check_row_counts(
    db: Database, scale_factor: float, tolerance: float = 0.02
) -> list[AuditFinding]:
    """Row counts vs. the scaling model for the scale factor."""
    model = ScalingModel(scale_factor)
    findings = []
    for table in ALL_TABLES:
        expected = model.rows(table)
        actual = db.table(table).num_rows
        if table in _UNDERFILL_OK:
            if actual > expected:
                findings.append(AuditFinding(
                    "row-count", table,
                    f"{actual} rows exceed the scaling target {expected}",
                ))
            continue
        if expected and abs(actual - expected) / expected > tolerance:
            findings.append(AuditFinding(
                "row-count", table,
                f"{actual} rows, scaling model expects {expected}",
            ))
    return findings


def check_primary_keys(db: Database) -> list[AuditFinding]:
    """Primary keys must be unique and non-null."""
    findings = []
    for table, schema in ALL_TABLES.items():
        pk = schema.primary_key
        if len(pk) != 1:
            continue
        vec = db.table(table).scan_column(pk[0])
        if vec.null.any():
            findings.append(AuditFinding("primary-key", table, "NULL key values"))
        elif len(np.unique(vec.data)) != len(vec.data):
            findings.append(AuditFinding("primary-key", table, "duplicate key values"))
    return findings


def check_foreign_keys(db: Database, sample: int = 2000) -> list[AuditFinding]:
    """Sampled referential-integrity check on every declared FK."""
    findings = []
    pk_sets: dict[str, set] = {}

    def pk_values(table: str) -> set:
        if table not in pk_sets:
            pk = ALL_TABLES[table].primary_key[0]
            vec = db.table(table).scan_column(pk)
            pk_sets[table] = set(vec.data[~vec.null].tolist())
        return pk_sets[table]

    for table, schema in ALL_TABLES.items():
        for column, target in schema.foreign_keys:
            vec = db.table(table).scan_column(column)
            valid = vec.data[~vec.null]
            if not len(valid):
                continue
            step = max(1, len(valid) // sample)
            sampled = valid[::step]
            targets = pk_values(target)
            dangling = sum(1 for v in sampled.tolist() if v not in targets)
            if dangling:
                findings.append(AuditFinding(
                    "foreign-key", table,
                    f"{column}: {dangling}/{len(sampled)} sampled values "
                    f"missing from {target}",
                ))
    return findings


def check_scd_invariants(db: Database) -> list[AuditFinding]:
    """One open revision per business key; ranges ordered."""
    findings = []
    for table in HISTORY_DIMENSIONS:
        bk, start_col, end_col = _REC_COLUMNS[table]
        duplicates = db.execute(f"""
            SELECT COUNT(*) FROM (
                SELECT {bk} FROM {table}
                WHERE {end_col} IS NULL
                GROUP BY {bk} HAVING COUNT(*) > 1) v
        """).scalar()
        if duplicates:
            findings.append(AuditFinding(
                "scd-open-revision", table,
                f"{duplicates} business keys with more than one open revision",
            ))
        orphans = db.execute(f"""
            SELECT COUNT(*) FROM (
                SELECT {bk} FROM {table}
                GROUP BY {bk}
                HAVING SUM(CASE WHEN {end_col} IS NULL THEN 1 ELSE 0 END) = 0) v
        """).scalar()
        if orphans:
            findings.append(AuditFinding(
                "scd-open-revision", table,
                f"{orphans} business keys with no open revision",
            ))
        inverted = db.execute(f"""
            SELECT COUNT(*) FROM {table}
            WHERE {end_col} IS NOT NULL AND {end_col} < {start_col}
        """).scalar()
        if inverted:
            findings.append(AuditFinding(
                "scd-date-range", table,
                f"{inverted} revisions end before they start",
            ))
    return findings


def check_zone_gradient(db: Database) -> list[AuditFinding]:
    """The Figure 2 property: monthly store-sales density must rise
    zone 1 -> zone 2 -> zone 3."""
    rows = db.execute("""
        SELECT CASE WHEN d_moy <= 7 THEN 1 WHEN d_moy <= 10 THEN 2 ELSE 3 END z,
               COUNT(*) * 1.0 / COUNT(DISTINCT d_moy) per_month
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk
        GROUP BY 1 ORDER BY 1
    """).rows()
    density = {int(z): per_month for z, per_month in rows}
    findings = []
    # zone 3 must clearly dominate; zones 1 and 2 differ by only ~11% in
    # the census masses, so allow small-sample noise between them
    z1, z2, z3 = density.get(1, 0), density.get(2, 0), density.get(3, 0)
    if not (z3 > z1 and z3 > z2 and z1 <= z2 * 1.15):
        findings.append(AuditFinding(
            "zone-gradient", "store_sales",
            f"per-month density not increasing across zones: {density}",
        ))
    return findings


def check_returns_linkage(db: Database, sample: int = 500) -> list[AuditFinding]:
    """Returns must join their sales on the order+item link."""
    findings = []
    for sales, (returns, order_link, item_link) in SALES_RETURNS_LINKS.items():
        unmatched = db.execute(f"""
            SELECT COUNT(*) FROM {returns}
            WHERE {order_link[1]} < 1000000000
              AND {order_link[1]} NOT IN (SELECT {order_link[0]} FROM {sales})
        """).scalar()
        if unmatched:
            findings.append(AuditFinding(
                "returns-linkage", returns,
                f"{unmatched} returns reference unknown {order_link[0]}",
            ))
    return findings


def audit_database(
    db: Database,
    scale_factor: Optional[float] = None,
    deep: bool = True,
) -> list[AuditFinding]:
    """Run the full audit; ``scale_factor`` enables the row-count check.

    ``deep=False`` skips the sampled foreign-key scan (the slow part).
    """
    findings: list[AuditFinding] = []
    if scale_factor is not None:
        findings += check_row_counts(db, scale_factor)
    findings += check_primary_keys(db)
    if deep:
        findings += check_foreign_keys(db)
    findings += check_scd_invariants(db)
    findings += check_zone_gradient(db)
    findings += check_returns_linkage(db)
    return findings
