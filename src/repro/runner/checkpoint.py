"""Crash-safe benchmark checkpointing.

The fault-tolerant runner journals every completed query to an
append-only JSONL file so an interrupted benchmark (crash, SIGKILL,
power loss) can resume with ``run --resume`` without re-executing
finished queries.

File format — one JSON object per line:

* ``{"kind": "header", "version": 1, "scale_factor": .., "streams": ..,
  "seed": ..}`` — first line; resume refuses a journal whose
  configuration fingerprint differs from the current run's.
* ``{"kind": "query", "run": "qr1", "stream": 0, "template_id": 52,
  ...}`` — one per completed query, carrying the full
  :class:`~repro.runner.execution.QueryTiming` payload (including
  ``status``/``attempts``/``error`` for degraded queries).
* ``{"kind": "phase", "phase": "qr1", "elapsed": ..}`` — a phase
  finished; resume substitutes the journaled elapsed time so metric
  inputs match the uninterrupted run.
* ``{"kind": "complete"}`` — the benchmark finished.

Every record is flushed and fsynced before the runner moves on, so the
journal never lies about completed work; a crash can at worst leave a
truncated final line, which the loader tolerates by dropping it.
Because the database is in-memory, resume re-executes the (untimed
from the journal's perspective) load and data-maintenance DML to
rebuild state — only *query* executions are skipped, and TPC-DS query
runs are read-only so replaying the surrounding phases is safe.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict
from typing import Optional

JOURNAL_VERSION = 1


class CheckpointMismatch(ValueError):
    """The journal was written by a run with a different configuration
    (scale factor, stream count or seed) — resuming would mix
    incompatible workloads."""


class CheckpointState:
    """The parsed content of a checkpoint journal."""

    def __init__(self):
        self.header: Optional[dict] = None
        #: (run_label, stream, template_id) -> journaled timing dict
        self.queries: dict[tuple, dict] = {}
        self.phases: dict[str, float] = {}
        self.complete = False

    def has_query(self, run_label: str, stream: int, template_id: int) -> bool:
        return (run_label, stream, template_id) in self.queries

    def query_record(self, run_label: str, stream: int, template_id: int) -> dict:
        return self.queries[(run_label, stream, template_id)]

    def phase_elapsed(self, phase: str) -> Optional[float]:
        return self.phases.get(phase)

    def validate(self, scale_factor: float, streams: int, seed: int) -> None:
        """Refuse to resume under a different benchmark configuration."""
        if self.header is None:
            raise CheckpointMismatch("checkpoint journal has no header")
        expected = {
            "scale_factor": scale_factor,
            "streams": streams,
            "seed": seed,
        }
        actual = {k: self.header.get(k) for k in expected}
        if actual != expected:
            raise CheckpointMismatch(
                f"checkpoint journal was written for {actual}, "
                f"this run is {expected}"
            )


def load_checkpoint(path: str) -> Optional[CheckpointState]:
    """Parse a journal; ``None`` when the file does not exist.  A
    truncated trailing line (interrupted mid-write) is dropped."""
    if not os.path.exists(path):
        return None
    state = CheckpointState()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # interrupted mid-write: everything before this line is
                # durable, the partial record is simply not finished work
                break
            kind = record.get("kind")
            if kind == "header":
                state.header = record
            elif kind == "query":
                key = (record["run"], record["stream"], record["template_id"])
                state.queries[key] = record
            elif kind == "phase":
                state.phases[record["phase"]] = float(record["elapsed"])
            elif kind == "complete":
                state.complete = True
    return state


def _truncate_partial_line(path: str) -> None:
    """Drop an incomplete trailing line (crash mid-write) so appended
    records always start on a fresh line and the journal stays
    parseable end to end."""
    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) == b"\n":
            return
        # scan back to the last newline; everything after it is partial
        pos = size - 1
        chunk = 4096
        while pos > 0:
            start = max(0, pos - chunk)
            handle.seek(start)
            data = handle.read(pos - start)
            cut = data.rfind(b"\n")
            if cut != -1:
                handle.truncate(start + cut + 1)
                return
            pos = start
        handle.truncate(0)


class CheckpointJournal:
    """Append-only writer side of the checkpoint protocol (thread-safe:
    concurrent streams journal through one instance)."""

    def __init__(
        self,
        path: str,
        scale_factor: float,
        streams: int,
        seed: int,
        append: bool = False,
    ):
        self.path = path
        self._lock = threading.Lock()
        if append and os.path.exists(path):
            _truncate_partial_line(path)
        fresh = not (
            append and os.path.exists(path) and os.path.getsize(path) > 0
        )
        self._handle = open(path, "a" if not fresh else "w", encoding="utf-8")
        if fresh:
            self._write(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "scale_factor": scale_factor,
                    "streams": streams,
                    "seed": seed,
                }
            )

    def _write(self, record: dict) -> None:
        with self._lock:
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def record_query(self, run_label: str, timing) -> None:
        """Journal one completed (or terminally failed) query."""
        record = {"kind": "query", "run": run_label}
        record.update(asdict(timing))
        self._write(record)

    def record_phase(self, phase: str, elapsed: float) -> None:
        self._write({"kind": "phase", "phase": phase, "elapsed": elapsed})

    def record_complete(self) -> None:
        self._write({"kind": "complete"})

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
