"""Human-readable benchmark reports (the "full disclosure" summary).

The long-form report consumes the :class:`~repro.obs.Tracer` span
timeline attached to :class:`BenchmarkResult` — per-phase breakdowns
(load / power / throughput / maintenance sub-steps) and per-stream
wall-clock summaries come from spans, not from ad-hoc timers."""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Optional

from .execution import BenchmarkResult
from .metric import load_time_share


def format_seconds(value: float) -> str:
    """Human-friendly seconds/minutes/ms formatting."""
    if value >= 60:
        return f"{value / 60:.1f} min"
    if value >= 1:
        return f"{value:.2f} s"
    return f"{value * 1000:.1f} ms"


def render_report(result: BenchmarkResult) -> str:
    """The summary benchmark report (phases + metrics)."""
    config = result.config
    lines = [
        "TPC-DS (Python reproduction) — benchmark result",
        "=" * 52,
        f"scale factor          : {config.scale_factor}",
        f"streams               : {config.resolved_streams()}",
        f"aux structures        : {'on' if config.use_aux_structures else 'off'}",
        f"queries executed      : {result.total_queries} (198 * S)",
        "",
        "execution order (Figure 11)",
        f"  load test           : {format_seconds(result.load.elapsed)}"
        f"  ({result.load.rows_loaded:,} rows, {result.load.aux_structures} aux structures)",
        f"  query run 1         : {format_seconds(result.query_run_1.elapsed)}",
        f"  data maintenance    : {format_seconds(result.maintenance.elapsed)}",
        f"  query run 2         : {format_seconds(result.query_run_2.elapsed)}",
        "",
        f"QphDS@{config.scale_factor:g}        : {result.qphds:,.1f}",
        f"$/QphDS               : {result.price_performance:,.4f}",
        f"load share of metric  : {load_time_share(result.metric_inputs) * 100:.1f}%",
        "",
        "per-class mean query time (query run 1)",
    ]
    by_class: dict[str, list[float]] = defaultdict(list)
    for timing in result.query_run_1.timings:
        by_class[timing.query_class].append(timing.elapsed)
    for query_class in sorted(by_class):
        times = by_class[query_class]
        lines.append(
            f"  {query_class:12s}: {sum(times) / len(times) * 1000:8.1f} ms avg"
            f"  ({len(times)} executions)"
        )
    rewritten = [t for t in result.query_run_1.timings if t.used_view]
    lines.append("")
    lines.append(
        f"queries answered from materialized views (run 1): {len(rewritten)}"
    )
    degradation = render_degradation(result)
    if degradation:
        lines.append("")
        lines.extend(degradation)
    return "\n".join(lines)


def render_degradation(result: BenchmarkResult) -> list[str]:
    """The degradation section: failures, retries, spills, timeouts and
    the compliance verdict.  Empty for a clean, non-governed run (so
    unchanged configurations render unchanged reports)."""
    timings = result.all_timings
    failures = [t for t in timings if t.status != "ok"]
    retries = sum(t.attempts - 1 for t in timings)
    spilled = [t for t in timings if t.spill_partitions]
    timeouts = sum(1 for t in timings if t.status == "timeout")
    interesting = (
        failures
        or retries
        or spilled
        or result.queries_resumed
        or result.fault_stats
        or not result.compliant
    )
    if not interesting:
        return []
    by_status: dict[str, int] = defaultdict(int)
    for t in timings:
        by_status[t.status] += 1
    status_text = ", ".join(
        f"{status}={count}" for status, count in sorted(by_status.items())
    )
    lines = [
        "degradation & recovery",
        f"  query status          : {status_text}",
        f"  retries               : {retries}",
        f"  timeouts              : {timeouts}",
        f"  queries spilled       : {len(spilled)}"
        f" ({sum(t.spill_partitions for t in spilled)} partitions,"
        f" {sum(t.spilled_bytes for t in spilled):,} bytes)",
    ]
    if result.queries_resumed:
        lines.append(
            f"  resumed from journal  : {result.queries_resumed} queries skipped"
        )
    if result.fault_stats:
        lines.append(
            f"  injected faults       : "
            f"{result.fault_stats.get('injected_errors', 0)} errors, "
            f"{result.fault_stats.get('injected_delays', 0)} delays "
            f"(seed {result.fault_stats.get('seed')})"
        )
    for t in failures[:10]:
        lines.append(
            f"    FAILED {t.name} (stream {t.stream}, run template "
            f"{t.template_id}, {t.attempts} attempts): {t.error[:90]}"
        )
    if len(failures) > 10:
        lines.append(f"    ... ({len(failures) - 10} more failures)")
    lines.append(
        "  compliance            : "
        + ("COMPLIANT (all queries completed)" if result.compliant
           else "NOT COMPLIANT (unfinished or failed queries — "
                "QphDS is not reportable)")
    )
    return lines


def render_full_disclosure(result: BenchmarkResult, top: int = 15) -> str:
    """The long-form report: per-template timings across streams and
    runs, the data-maintenance operation table, and the metric inputs —
    the information a TPC full-disclosure report would carry."""
    lines = [render_report(result), "", "per-template timings (both runs, all streams)"]
    by_template: dict[int, dict] = {}
    for run_no, run in ((1, result.query_run_1), (2, result.query_run_2)):
        for timing in run.timings:
            slot = by_template.setdefault(
                timing.template_id,
                {"name": timing.name, "class": timing.query_class,
                 "part": timing.channel_part, "times": [], "rows": 0,
                 "views": 0},
            )
            slot["times"].append(timing.elapsed)
            slot["rows"] += timing.rows
            slot["views"] += 1 if timing.used_view else 0
    header = (f"  {'id':>3s} {'template':28s} {'class':12s} {'part':10s} "
              f"{'mean ms':>9s} {'max ms':>9s} {'rows':>8s} {'via view':>8s}")
    lines.append(header)
    ranked = sorted(
        by_template.items(),
        key=lambda kv: -(sum(kv[1]["times"]) / len(kv[1]["times"])),
    )
    for template_id, slot in ranked[:top]:
        mean = sum(slot["times"]) / len(slot["times"]) * 1000
        worst = max(slot["times"]) * 1000
        lines.append(
            f"  {template_id:>3d} {slot['name']:28.28s} {slot['class']:12s} "
            f"{slot['part']:10s} {mean:>9.1f} {worst:>9.1f} "
            f"{slot['rows']:>8d} {slot['views']:>8d}"
        )
    if len(ranked) > top:
        lines.append(f"  ... ({len(ranked) - top} more templates)")

    lines.append("")
    lines.append("data maintenance operations")
    op_totals: dict[str, list] = {}
    for op in result.maintenance.operations:
        slot = op_totals.setdefault(op.operation, [0, 0.0])
        slot[0] += op.rows_affected
        slot[1] += op.elapsed
    lines.append(f"  {'operation':10s} {'rows':>10s} {'elapsed':>12s}")
    for name, (rows, elapsed) in op_totals.items():
        lines.append(f"  {name:10s} {rows:>10,} {format_seconds(elapsed):>12s}")
    lines.append("")
    lines.extend(render_latency_percentiles(result))
    if result.parallelism and result.parallelism.get("morsels"):
        lines.append("")
        lines.extend(render_parallelism_profile(result.parallelism))
    if result.plan_quality:
        lines.append("")
        lines.extend(render_plan_quality(result.plan_quality))
    if result.statements and result.statements.get("fingerprints"):
        lines.append("")
        lines.extend(render_statement_offenders(result.statements))
    if result.trace:
        lines.append("")
        lines.extend(render_phase_breakdown(result.trace))
    return "\n".join(lines)


def render_latency_percentiles(result: BenchmarkResult) -> list[str]:
    """The latency-percentile table: combined, per query run and per
    stream (successful queries only)."""
    latency = result.latency
    lines = ["query latency percentiles (successful queries)"]
    header = (f"  {'scope':16s} {'n':>5s} {'mean':>9s} {'p50':>9s} "
              f"{'p90':>9s} {'p95':>9s} {'p99':>9s} {'max':>9s}")
    lines.append(header)

    def row(scope: str, stats: dict) -> str:
        cells = " ".join(
            f"{stats[c] * 1000:>9.1f}"
            for c in ("mean", "p50", "p90", "p95", "p99", "max")
        )
        return f"  {scope:16s} {stats['count']:>5d} {cells}  (ms)"

    lines.append(row("all queries", latency["all"]))
    for run_key, run_name in (("qr1", "query run 1"), ("qr2", "query run 2")):
        run_stats = latency[run_key]
        lines.append(row(run_name, run_stats["overall"]))
        for stream, stats in run_stats["streams"].items():
            lines.append(row(f"  {run_key} stream {stream}", stats))
    return lines


def render_parallelism_profile(parallelism: dict, top: int = 8) -> list[str]:
    """The "Parallelism profile" section: pool occupancy, queue wait
    and the per-operator skew table the pool profiler aggregated."""
    lines = [
        "parallelism profile (worker pool)",
        f"  pool workers        : {parallelism.get('pool_workers', 0)}",
        f"  morsels dispatched  : {parallelism.get('morsels', 0)}",
        f"  mean occupancy      : "
        f"{parallelism.get('mean_occupancy', 0.0) * 100:.1f}%",
        f"  total queue wait    : "
        f"{format_seconds(parallelism.get('queue_wait_s', 0.0))}",
    ]
    workers = parallelism.get("workers", {})
    for worker, stats in sorted(workers.items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"    worker {worker}: {stats['morsels']:>6d} morsels, "
            f"busy {format_seconds(stats['busy_s']):>10s} "
            f"({stats['occupancy'] * 100:.1f}%)"
        )
    operators = parallelism.get("operators", [])[:top]
    if operators:
        lines.append(
            f"  {'skew':>6s} {'morsels':>8s} {'run':>10s} {'wait':>10s}"
            "  operator"
        )
        for op in operators:
            lines.append(
                f"  {op['skew']:>5.2f}x {op['morsels']:>8d} "
                f"{format_seconds(op['run_s']):>10s} "
                f"{format_seconds(op['wait_s']):>10s}  {op['operator']}"
            )
    return lines


def telemetry_bundle(result: BenchmarkResult,
                     metrics: Optional[dict] = None) -> dict:
    """One JSON-ready bundle of everything the run observed — the
    input to ``tpcds-py obs trace`` / ``obs report`` and the payload
    ``run --telemetry`` writes.  ``metrics`` is an optional registry
    snapshot to attach (the end-of-run values; the sampler's
    time-series rides along separately)."""
    config = result.config
    return {
        "generated_at": time.strftime("%Y-%m-%d %H:%M:%S"),
        "config": {
            "scale_factor": config.scale_factor,
            "streams": config.resolved_streams(),
            "seed": config.seed,
            "workers": config.workers,
        },
        "summary": {
            "qphds": result.qphds,
            "price_performance": result.price_performance,
            "queries": len(result.all_timings),
            "compliant": result.compliant,
            "load_s": result.load.elapsed,
            "qr1_s": result.query_run_1.elapsed,
            "maintenance_s": result.maintenance.elapsed,
            "qr2_s": result.query_run_2.elapsed,
        },
        "trace": result.trace,
        "latency": result.latency,
        "parallelism": result.parallelism,
        "plan_quality": result.plan_quality,
        "metrics": metrics,
        "metrics_series": result.metrics_series,
        "statements": result.statements,
    }


def render_statement_offenders(statements: dict, top: int = 10) -> list[str]:
    """The "top offenders by fingerprint" section: the statement
    store's worst statements by total elapsed time (and by spill
    volume when anything spilled), the same aggregates ``SELECT ...
    FROM sys.statements ORDER BY total_elapsed DESC`` returns."""
    lines = [
        "top statements by fingerprint (statement store)",
        f"  distinct fingerprints: {statements.get('fingerprints', 0)}",
        f"  {'calls':>6s} {'total':>10s} {'mean':>9s} {'rows':>9s} "
        f"{'q_err':>6s}  fingerprint / statement",
    ]
    for rec in statements.get("top_elapsed", [])[:top]:
        query = " ".join(rec.get("query", "").split())
        lines.append(
            f"  {rec['calls']:>6d} {format_seconds(rec['total_elapsed']):>10s} "
            f"{rec['mean_elapsed'] * 1000:>7.1f}ms {rec['rows']:>9d} "
            f"{rec.get('worst_q_error') or 0.0:>6.1f}  "
            f"{rec['fingerprint']}  {query:.60s}"
        )
    spilled = statements.get("top_spilled", [])[:top]
    if spilled:
        lines.append(f"  {'spill':>10s}  fingerprint / statement")
        for rec in spilled:
            query = " ".join(rec.get("query", "").split())
            lines.append(
                f"  {rec['spilled_bytes']:>10,}  {rec['fingerprint']}  "
                f"{query:.60s}"
            )
    return lines


def render_plan_quality(quality: dict, top: int = 10) -> list[str]:
    """Render the aggregated plan-quality summary (the JSON payload a
    :class:`~repro.obs.PlanQualityAggregator` exports): misestimate
    rate plus the worst-offender operator table, ranked by Q-error."""
    seen = quality.get("operators_seen", 0)
    missed = quality.get("misestimates", 0)
    lines = [
        "plan quality (optimizer cardinality estimates)",
        f"  operators measured  : {seen}"
        f"  (misestimates >= {quality.get('threshold', 0):g}x: {missed},"
        f" {missed / seen * 100 if seen else 0.0:.1f}%)",
    ]
    offenders = quality.get("worst_offenders", [])[:top]
    if not offenders:
        lines.append("  no operators measured")
        return lines
    lines.append(f"  {'q_err':>8s} {'est':>12s} {'actual':>12s}  operator / query")
    for rec in offenders:
        lines.append(
            f"  {rec['q_error']:>8.1f} {rec['estimated']:>12.0f} "
            f"{rec['actual']:>12d}  {rec['label']}  [{rec['query']}]"
        )
    return lines


def render_phase_breakdown(trace: list[dict]) -> list[str]:
    """Render the span timeline as a per-phase / per-stream breakdown.

    ``trace`` is the JSON span list a :class:`BenchmarkRun` exports:
    phase spans (``phase:*``) with their direct sub-step children, and
    per-stream wall-clock totals for the query-run phases."""
    lines = ["phase breakdown (from span timeline)"]
    for phase in trace:
        if not phase["name"].startswith("phase:"):
            continue
        title = phase["name"].split(":", 1)[1]
        attrs = phase.get("attrs", {})
        note = ""
        if "run" in attrs:
            note = f" (query run {attrs['run']}, {attrs.get('streams', '?')} streams)"
        lines.append(f"  {title:12s}: {format_seconds(phase['elapsed']):>10s}{note}")
        children = [
            span for span in trace
            if span.get("parent") == phase["id"] and span["name"] != "query"
        ]
        for child in children:
            label = child["name"]
            if label == "stream":
                label = f"stream {child['attrs'].get('stream')}"
            lines.append(
                f"    {label:20s} {format_seconds(child['elapsed']):>10s}"
            )
    queries = [s for s in trace if s["name"] == "query"]
    if queries:
        slowest = max(queries, key=lambda s: s["elapsed"])
        attrs = slowest.get("attrs", {})
        lines.append(
            f"  spans recorded      : {len(trace)} "
            f"({len(queries)} queries; slowest template "
            f"{attrs.get('template')} at {format_seconds(slowest['elapsed'])} "
            f"on stream {attrs.get('stream')})"
        )
    return lines


def render_load_report(load: dict) -> str:
    """The "Query service load run" disclosure section, rendered from a
    :meth:`~repro.service.loadgen.LoadReport.as_dict` payload: arrival
    phases, per-tenant admission/shedding/latency tables, breaker
    state, and the SLA verdicts the run was declared against."""
    lines = ["query service load run"]
    phase_bits = []
    for phase in load.get("phases", []):
        qps = (f"{phase['start_qps']:g}-{phase['qps']:g}"
               if phase.get("start_qps") is not None else f"{phase['qps']:g}")
        phase_bits.append(f"{phase['name']} {qps} qps x {phase['duration_s']:g}s")
    lines.append(f"  arrival pattern     : {', '.join(phase_bits) or '(none)'}")
    lines.append(
        f"  issued              : {load.get('issued', 0)} statements over "
        f"{format_seconds(load.get('duration_s', 0.0))} (seed {load.get('seed')})"
    )
    service = load.get("service", {})
    if service:
        lines.append(
            f"  service             : {service.get('workers', '?')} workers, "
            f"breaker threshold {service.get('breaker_threshold', '?')}, "
            f"reset {service.get('breaker_reset_s', '?')}s"
        )
    lines.append(
        f"  {'tenant':12s} {'issued':>7s} {'admit':>7s} {'shed':>6s} "
        f"{'done':>6s} {'fail':>5s} {'tmo':>4s} {'p50':>8s} {'p99':>8s} "
        f"{'err%':>6s}  verdict"
    )
    for tenant in load.get("tenants", []):
        latency = tenant.get("latency", {})
        verdict = "pass" if tenant.get("sla_ok") else "FAIL"
        if tenant.get("sla") is None:
            verdict = "(no sla)"
        lines.append(
            f"  {tenant['tenant']:12s} {tenant['issued']:>7d} "
            f"{tenant['admitted']:>7d} {tenant['shed']:>6d} "
            f"{tenant['completed']:>6d} {tenant['failed']:>5d} "
            f"{tenant['timeouts']:>4d} "
            f"{latency.get('p50', 0.0) * 1000:>7.1f}m "
            f"{latency.get('p99', 0.0) * 1000:>7.1f}m "
            f"{tenant.get('error_rate', 0.0) * 100:>5.1f}%  {verdict}"
        )
        for failure in tenant.get("sla_failures", []):
            lines.append(f"    !! {failure}")
    by_name = {t["tenant"]: t for t in load.get("tenants", [])}
    for state in service.get("tenants", []):
        extra = ""
        if state.get("breaker_trips"):
            extra = (f", breaker tripped {state['breaker_trips']}x "
                     f"(now {state['breaker_state']})")
        shed = by_name.get(state["tenant"], {}).get("shed", state.get("shed", 0))
        retry = state.get("last_retry_after_s") or 0.0
        lines.append(
            f"  {state['tenant']:12s} max queue {state.get('max_queued', 0)}, "
            f"shed {shed} (last retry_after {retry:.3f}s){extra}"
        )
    lines.append(
        f"  SLA verdict         : "
        f"{'PASS' if load.get('ok') else 'FAIL'}"
    )
    return "\n".join(lines)
