"""The TPC-DS primary metrics (§5.3).

Performance metric::

                            198 * S
    QphDS@SF = SF * 3600 * -----------------------------------------
                            T_QR1 + T_DM + T_QR2 + 0.01 * S * T_Load

* ``198 * S`` — 99 queries × two query runs × S streams;
* the denominator is wall-clock seconds; the load contributes a 1%
  fraction *per stream* so more streams cannot dilute the cost of
  auxiliary structures;
* multiplying by 3600 normalizes to queries per hour; multiplying by
  SF normalizes across scale factors (ideal scaling keeps the metric
  constant — "marketing teams would like to see the same number of
  queries per hour").

Price/performance: ``$/QphDS@SF = P / QphDS@SF`` with P the 3-year TCO.

``power_metric`` implements the *rejected* geometric-mean power metric
of previous benchmarks so the bench can reproduce the paper's critique
(a 6h→2h improvement moves it exactly as much as 6s→2s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dsdgen.scaling import minimum_streams

#: queries per stream per query run
QUERIES_PER_STREAM = 99
#: two query runs
QUERY_RUNS = 2
#: fraction of the load time charged per stream
LOAD_FRACTION_PER_STREAM = 0.01


class MetricError(ValueError):
    """Raised for invalid metric inputs (non-positive times, too few
    streams…)."""


def total_queries(streams: int) -> int:
    """The metric numerator's query count: 198 * S."""
    if streams < 1:
        raise MetricError("at least one stream is required")
    return QUERIES_PER_STREAM * QUERY_RUNS * streams


@dataclass(frozen=True)
class MetricInputs:
    scale_factor: float
    streams: int
    t_qr1: float
    t_dm: float
    t_qr2: float
    t_load: float

    def validate(self, enforce_min_streams: bool = True) -> None:
        if min(self.t_qr1, self.t_dm, self.t_qr2, self.t_load) < 0:
            raise MetricError("elapsed times must be non-negative")
        if self.t_qr1 + self.t_dm + self.t_qr2 <= 0:
            raise MetricError("total measured time must be positive")
        if enforce_min_streams:
            required = minimum_streams(self.scale_factor)
            if self.streams < required:
                raise MetricError(
                    f"scale factor {self.scale_factor} requires at least "
                    f"{required} streams, got {self.streams}"
                )


def qphds(inputs: MetricInputs, enforce_min_streams: bool = True) -> float:
    """The primary performance metric QphDS@SF."""
    inputs.validate(enforce_min_streams)
    numerator = total_queries(inputs.streams)
    denominator = (
        inputs.t_qr1
        + inputs.t_dm
        + inputs.t_qr2
        + LOAD_FRACTION_PER_STREAM * inputs.streams * inputs.t_load
    )
    return inputs.scale_factor * 3600.0 * numerator / denominator


def price_performance(price: float, qphds_value: float) -> float:
    """$/QphDS@SF — the 3-year TCO divided by the performance metric."""
    if price <= 0:
        raise MetricError("system price must be positive")
    if qphds_value <= 0:
        raise MetricError("QphDS must be positive")
    return price / qphds_value


def load_time_share(inputs: MetricInputs) -> float:
    """Fraction of the metric denominator contributed by the load."""
    load_part = LOAD_FRACTION_PER_STREAM * inputs.streams * inputs.t_load
    total = inputs.t_qr1 + inputs.t_dm + inputs.t_qr2 + load_part
    return load_part / total


def power_metric(query_times: list[float], scale_factor: float) -> float:
    """The geometric-mean "power" metric of TPC-H-era benchmarks, which
    TPC-DS deliberately dropped (§5.3). Included for the critique bench:
    proportional improvements move it identically regardless of the
    query's absolute duration."""
    if not query_times or any(t <= 0 for t in query_times):
        raise MetricError("power metric requires positive query times")
    log_sum = sum(math.log(t) for t in query_times)
    geo_mean = math.exp(log_sum / len(query_times))
    return 3600.0 * scale_factor / geo_mean
