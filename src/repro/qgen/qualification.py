"""Qualification runs — the answer-set regression harness.

TPC-DS ships *qualification* substitutions and answer sets: a fixed
parameterization whose results validate an implementation before any
performance run counts. We reproduce the mechanism at model scale: a
canonical database (fixed scale factor and seed) plus stream-0
substitutions defines a deterministic answer set per template, reduced
to a stable fingerprint (row count + order-insensitive content hash).

``fingerprint_workload`` computes the fingerprints; a checked-in JSON
(regenerated with ``python -m repro.qgen.qualification``) pins them so
any behavioral drift in the engine, the generators or the optimizer is
caught by the test suite.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

QUALIFICATION_SCALE_FACTOR = 0.004
QUALIFICATION_SEED = 19620718
QUALIFICATION_STREAM = 0

_DATA_FILE = os.path.join(os.path.dirname(__file__), "qualification_answers.json")


def _stable_cell(value) -> str:
    if value is None:
        return "~"
    if isinstance(value, float):
        # quantize so float-order effects below 1e-6 don't flip the hash
        return f"{value:.6g}"
    return str(value)


def fingerprint_rows(rows) -> str:
    """An order-insensitive digest of a result set."""
    digests = sorted(
        hashlib.sha256("|".join(_stable_cell(v) for v in row).encode()).hexdigest()
        for row in rows
    )
    outer = hashlib.sha256("\n".join(digests).encode())
    return outer.hexdigest()[:16]


def fingerprint_workload(db, qgen) -> dict[str, dict]:
    """Run every template at the qualification parameterization and
    fingerprint the answers."""
    answers: dict[str, dict] = {}
    for template_id in sorted(qgen.templates):
        query = qgen.generate(template_id, stream=QUALIFICATION_STREAM)
        rows = []
        for statement in query.statements:
            rows.extend(db.execute(statement).rows())
        answers[str(template_id)] = {
            "name": query.name,
            "rows": len(rows),
            "digest": fingerprint_rows(rows),
        }
    return answers


def load_reference() -> Optional[dict[str, dict]]:
    """Load the pinned qualification answers (None if absent)."""
    if not os.path.exists(_DATA_FILE):
        return None
    with open(_DATA_FILE, encoding="utf-8") as handle:
        return json.load(handle)


def write_reference(answers: dict[str, dict]) -> str:
    """Write the qualification answers JSON; returns its path."""
    with open(_DATA_FILE, "w", encoding="utf-8") as handle:
        json.dump(answers, handle, indent=1, sort_keys=True)
    return _DATA_FILE


def build_qualification_environment():
    """The canonical database + query generator pair."""
    from ..dsdgen import build_database
    from . import QGen, build_catalog

    db, data = build_database(QUALIFICATION_SCALE_FACTOR, seed=QUALIFICATION_SEED)
    return db, QGen(data.context, build_catalog())


def main() -> int:  # pragma: no cover - regeneration utility
    """Regenerate the pinned qualification answer set."""
    db, qgen = build_qualification_environment()
    answers = fingerprint_workload(db, qgen)
    path = write_reference(answers)
    print(f"wrote {len(answers)} qualification answers to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
