"""The 99-query workload catalog (§4.1).

Templates are organized as *families* instantiated per sales channel —
exactly how the real TPC-DS query set is structured (the paper's two
printed queries, Q52 and Q20, are one family shape on two channels).
Template 52 reproduces Figure 6 (the ad-hoc example) and template 20
reproduces Figure 7 (the reporting example) nearly verbatim.

Class coverage:

* ad-hoc / reporting — derived from the tables each query references;
* iterative OLAP — templates whose ``statements`` form a drill-down
  sequence of syntactically independent, logically affiliated queries;
* data mining — large-output extraction queries (no aggregation
  cut-off; output is "intended for feeding data mining tools").
"""

from __future__ import annotations

from .. import substitutions as S
from ..model import QueryTemplate
from .channels import CATALOG, CHANNELS, STORE, WEB, Channel

#: (name, statements, substitutions, query_class) tuples in catalog order
_DEFINITIONS: list[tuple] = []

#: names pinned to specific template ids (the paper's printed queries)
_PINNED_IDS = {"brand_monthly_store": 52, "class_ratio_catalog": 20}


def _define(name, statements, substitutions, query_class="ad_hoc", description=""):
    if isinstance(statements, str):
        statements = (statements,)
    _DEFINITIONS.append((name, tuple(statements), substitutions, query_class, description))


# ---------------------------------------------------------------------------
# family 1: brand revenue for one month (paper Figure 6 / Query 52)
# ---------------------------------------------------------------------------

def _brand_monthly(ch: Channel) -> None:
    _define(
        f"brand_monthly_{ch.key}",
        f"""
        SELECT dt.d_year, item.i_brand_id brand_id, item.i_brand brand,
               SUM({ch.ext_price}) ext_price
        FROM date_dim dt, {ch.sales}, item
        WHERE dt.d_date_sk = {ch.sales}.{ch.date_fk}
          AND {ch.sales}.{ch.item_fk} = item.i_item_sk
          AND item.i_manager_id = [MANAGER]
          AND dt.d_moy = [MONTH]
          AND dt.d_year = [YEAR]
        GROUP BY dt.d_year, item.i_brand, item.i_brand_id
        ORDER BY dt.d_year, ext_price DESC, brand_id
        LIMIT 100
        """,
        {"MANAGER": S.manager_id(), "MONTH": S.zone_month(3), "YEAR": S.sales_year()},
        description="sum of extended sales price for all items of one "
        "manager in one month, by brand (the paper's ad-hoc example)",
    )


# ---------------------------------------------------------------------------
# family 2: item revenue as a share of its class (Figure 7 / Query 20)
# ---------------------------------------------------------------------------

def _class_ratio(ch: Channel) -> None:
    _define(
        f"class_ratio_{ch.key}",
        f"""
        SELECT i_item_desc, i_category, i_class, i_current_price,
               SUM({ch.ext_price}) AS itemrevenue,
               SUM({ch.ext_price})*100/SUM(SUM({ch.ext_price}))
                   OVER (PARTITION BY i_class) AS revenueratio
        FROM {ch.sales}, item, date_dim
        WHERE {ch.item_fk} = i_item_sk
          AND i_category IN ([CATEGORY_LIST])
          AND {ch.date_fk} = d_date_sk
          AND d_date BETWEEN [RANGE_START] AND [RANGE_END]
        GROUP BY i_item_id, i_item_desc, i_category, i_class, i_current_price
        ORDER BY i_category, i_class, i_item_id, i_item_desc, revenueratio
        """,
        {"CATEGORY_LIST": S.category_list(3), "RANGE": S.zone_date_range(1, 28)},
        description="ratio of item revenue to class revenue over a 30-day "
        "window (the paper's reporting example)",
    )


# ---------------------------------------------------------------------------
# family 3: brand revenue for one manufacturer-month (Q3 shape)
# ---------------------------------------------------------------------------

def _manufact_month(ch: Channel) -> None:
    _define(
        f"manufact_month_{ch.key}",
        f"""
        SELECT dt.d_year, item.i_brand_id brand_id, item.i_brand brand,
               [AGG]({ch.ext_price}) agg_value
        FROM date_dim dt, {ch.sales}, item
        WHERE dt.d_date_sk = {ch.date_fk}
          AND {ch.item_fk} = i_item_sk
          AND i_manufact_id = [MANUFACT]
          AND dt.d_moy = [MONTH]
        GROUP BY dt.d_year, item.i_brand, item.i_brand_id
        ORDER BY dt.d_year, agg_value DESC, brand_id
        LIMIT 100
        """,
        {"MANUFACT": S.uniform_int(1, 1000), "MONTH": S.zone_month(3),
         "AGG": S.aggregate_exchange(("SUM", "MIN", "MAX", "AVG"))},
    )


# ---------------------------------------------------------------------------
# family 4: average sales metrics for a demographic slice (Q7 shape)
# ---------------------------------------------------------------------------

def _demographics_avg(ch: Channel) -> None:
    _define(
        f"demographics_avg_{ch.key}",
        f"""
        SELECT i_item_id,
               AVG({ch.qty}) agg1,
               AVG({ch.ext_list}) agg2,
               AVG({ch.coupon}) agg3,
               AVG({ch.sales_price}) agg4
        FROM {ch.sales}, customer_demographics, date_dim, item, promotion
        WHERE {ch.date_fk} = d_date_sk
          AND {ch.item_fk} = i_item_sk
          AND {ch.cdemo_fk} = cd_demo_sk
          AND {ch.promo_fk} = p_promo_sk
          AND cd_gender = [GENDER]
          AND cd_marital_status = [MARITAL]
          AND cd_education_status = [EDUCATION]
          AND (p_channel_email = 'N' OR p_channel_event = 'N')
          AND d_year = [YEAR]
        GROUP BY i_item_id
        ORDER BY i_item_id
        LIMIT 100
        """,
        {"GENDER": S.gender(), "MARITAL": S.marital_status(),
         "EDUCATION": S.education(), "YEAR": S.sales_year()},
    )


# ---------------------------------------------------------------------------
# family 5: category/class ROLLUP (Q27 / Q18 shape)
# ---------------------------------------------------------------------------

def _category_rollup(ch: Channel) -> None:
    _define(
        f"category_rollup_{ch.key}",
        f"""
        SELECT i_category, i_class,
               AVG({ch.qty}) agg1,
               AVG({ch.ext_price}) agg2,
               SUM({ch.net_profit}) agg3,
               COUNT(*) cnt
        FROM {ch.sales}, date_dim, item
        WHERE {ch.date_fk} = d_date_sk
          AND {ch.item_fk} = i_item_sk
          AND d_year = [YEAR]
        GROUP BY ROLLUP(i_category, i_class)
        ORDER BY i_category NULLS LAST, i_class NULLS LAST
        LIMIT 100
        """,
        {"YEAR": S.sales_year()},
    )


# ---------------------------------------------------------------------------
# family 6: sales-to-returns fact-to-fact join (§2.2's ticket/order link)
# ---------------------------------------------------------------------------

def _sales_returns_join(ch: Channel) -> None:
    _define(
        f"sales_returns_join_{ch.key}",
        f"""
        SELECT i_item_id, i_item_desc,
               SUM({ch.qty}) sold_qty,
               SUM({ch.r_qty}) returned_qty,
               SUM({ch.r_amount}) returned_amt
        FROM {ch.sales}, {ch.returns}, item, date_dim
        WHERE {ch.order_col} = {ch.r_order}
          AND {ch.item_fk} = {ch.r_item_fk}
          AND {ch.item_fk} = i_item_sk
          AND {ch.date_fk} = d_date_sk
          AND d_year = [YEAR]
        GROUP BY i_item_id, i_item_desc
        ORDER BY returned_amt DESC, i_item_id
        LIMIT 100
        """,
        {"YEAR": S.sales_year()},
    )


# ---------------------------------------------------------------------------
# family 7: top customers by revenue (data mining: large output)
# ---------------------------------------------------------------------------

def _top_customers(ch: Channel) -> None:
    _define(
        f"top_customers_{ch.key}",
        f"""
        SELECT c_customer_id, c_last_name, c_first_name,
               SUM({ch.net_paid}) total_paid,
               SUM({ch.qty}) total_quantity,
               COUNT(*) transactions
        FROM {ch.sales}, customer, date_dim
        WHERE {ch.customer_fk} = c_customer_sk
          AND {ch.date_fk} = d_date_sk
          AND d_year = [YEAR]
        GROUP BY c_customer_id, c_last_name, c_first_name
        ORDER BY total_paid DESC, c_customer_id
        """,
        {"YEAR": S.sales_year()},
        query_class="data_mining",
        description="full customer revenue extraction feeding mining tools",
    )


# ---------------------------------------------------------------------------
# family 8: iterative OLAP drill-down (category -> class -> brand)
# ---------------------------------------------------------------------------

def _drill_down(ch: Channel) -> None:
    _define(
        f"drill_down_{ch.key}",
        (
            f"""
            SELECT i_category, SUM({ch.ext_price}) revenue
            FROM {ch.sales}, item, date_dim
            WHERE {ch.item_fk} = i_item_sk AND {ch.date_fk} = d_date_sk
              AND d_year = [YEAR]
            GROUP BY i_category ORDER BY revenue DESC
            """,
            f"""
            SELECT i_class, SUM({ch.ext_price}) revenue
            FROM {ch.sales}, item, date_dim
            WHERE {ch.item_fk} = i_item_sk AND {ch.date_fk} = d_date_sk
              AND d_year = [YEAR] AND i_category = [CATEGORY]
            GROUP BY i_class ORDER BY revenue DESC
            """,
            f"""
            SELECT i_brand, SUM({ch.ext_price}) revenue
            FROM {ch.sales}, item, date_dim
            WHERE {ch.item_fk} = i_item_sk AND {ch.date_fk} = d_date_sk
              AND d_year = [YEAR] AND i_category = [CATEGORY]
            GROUP BY i_brand ORDER BY revenue DESC LIMIT 100
            """,
            f"""
            SELECT d_year, SUM({ch.ext_price}) revenue
            FROM {ch.sales}, item, date_dim
            WHERE {ch.item_fk} = i_item_sk AND {ch.date_fk} = d_date_sk
              AND i_category = [CATEGORY]
            GROUP BY d_year ORDER BY d_year
            """,
        ),
        {"YEAR": S.sales_year(), "CATEGORY": S.category()},
        query_class="iterative",
        description="drill down from category through class to brand, "
        "then back up to the category level (yearly trend)",
    )


# ---------------------------------------------------------------------------
# hybrid / single-channel families
# ---------------------------------------------------------------------------

def _channel_totals() -> None:
    _define(
        "channel_totals",
        """
        SELECT 'store' channel, d_year, SUM(ss_ext_sales_price) sales
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk GROUP BY d_year
        UNION ALL
        SELECT 'catalog' channel, d_year, SUM(cs_ext_sales_price) sales
        FROM catalog_sales, date_dim
        WHERE cs_sold_date_sk = d_date_sk GROUP BY d_year
        UNION ALL
        SELECT 'web' channel, d_year, SUM(ws_ext_sales_price) sales
        FROM web_sales, date_dim
        WHERE ws_sold_date_sk = d_date_sk GROUP BY d_year
        ORDER BY channel, d_year
        """,
        {},
        query_class="reporting",
        description="revenue per channel per year (hybrid: all channels)",
    )


def _store_web_customers() -> None:
    _define(
        "store_web_customers",
        """
        SELECT COUNT(*) both_channel_customers
        FROM customer
        WHERE c_customer_sk IN (SELECT ss_customer_sk FROM store_sales
                                WHERE ss_customer_sk IS NOT NULL)
          AND c_customer_sk IN (SELECT ws_bill_customer_sk FROM web_sales
                                WHERE ws_bill_customer_sk IS NOT NULL)
        """,
        {},
        description="customers active in both the store and web channels",
    )


def _catalog_store_ratio() -> None:
    _define(
        "catalog_store_ratio",
        """
        WITH cat AS (
            SELECT i_category category, SUM(cs_ext_sales_price) revenue
            FROM catalog_sales, item WHERE cs_item_sk = i_item_sk
            GROUP BY i_category
        ), st AS (
            SELECT i_category category, SUM(ss_ext_sales_price) revenue
            FROM store_sales, item WHERE ss_item_sk = i_item_sk
            GROUP BY i_category
        )
        SELECT cat.category, cat.revenue catalog_revenue,
               st.revenue store_revenue,
               cat.revenue / st.revenue ratio
        FROM cat, st
        WHERE cat.category = st.category
        ORDER BY ratio DESC
        """,
        {},
        description="catalog-to-store revenue ratio per category (hybrid)",
    )


def _inventory_weeks() -> None:
    _define(
        "inventory_weeks",
        """
        SELECT w_warehouse_name, AVG(inv_quantity_on_hand) avg_qty,
               MIN(inv_quantity_on_hand) min_qty, MAX(inv_quantity_on_hand) max_qty
        FROM inventory, warehouse, date_dim
        WHERE inv_warehouse_sk = w_warehouse_sk
          AND inv_date_sk = d_date_sk
          AND d_moy = [MONTH]
        GROUP BY w_warehouse_name
        ORDER BY w_warehouse_name
        """,
        {"MONTH": S.zone_month(1)},
    )


def _inventory_category_rollup() -> None:
    _define(
        "inventory_category_rollup",
        """
        SELECT i_category, i_class, AVG(inv_quantity_on_hand) qoh
        FROM inventory, item
        WHERE inv_item_sk = i_item_sk
        GROUP BY ROLLUP(i_category, i_class)
        ORDER BY qoh, i_category NULLS LAST, i_class NULLS LAST
        LIMIT 100
        """,
        {},
    )


def _time_of_day(ch: Channel) -> None:
    _define(
        f"time_of_day_{ch.key}",
        f"""
        SELECT CASE WHEN t_hour < 12 THEN 'AM' ELSE 'PM' END half_day,
               COUNT(*) cnt, SUM({ch.ext_price}) revenue
        FROM {ch.sales}, time_dim
        WHERE {ch.time_fk} = t_time_sk
        GROUP BY 1
        ORDER BY half_day
        """,
        {},
    )


def _ship_modes(ch: Channel) -> None:
    ship_date = "cs_ship_date_sk" if ch.key == "catalog" else "ws_ship_date_sk"
    _define(
        f"ship_modes_{ch.key}",
        f"""
        SELECT sm_type,
               SUM(CASE WHEN {ship_date} - {ch.date_fk} <= 30 THEN 1 ELSE 0 END) d30,
               SUM(CASE WHEN {ship_date} - {ch.date_fk} > 30
                        AND {ship_date} - {ch.date_fk} <= 60 THEN 1 ELSE 0 END) d60,
               SUM(CASE WHEN {ship_date} - {ch.date_fk} > 60 THEN 1 ELSE 0 END) d90
        FROM {ch.sales}, ship_mode
        WHERE {'cs_ship_mode_sk' if ch.key == 'catalog' else 'ws_ship_mode_sk'} = sm_ship_mode_sk
        GROUP BY sm_type
        ORDER BY sm_type
        """,
        {},
        description="days-to-ship buckets per ship mode",
    )


def _state_revenue(ch: Channel) -> None:
    _define(
        f"state_revenue_{ch.key}",
        f"""
        SELECT ca_state, COUNT(*) cnt, SUM({ch.ext_price}) revenue
        FROM {ch.sales}, customer_address, date_dim
        WHERE {ch.addr_fk} = ca_address_sk
          AND {ch.date_fk} = d_date_sk
          AND d_year = [YEAR]
        GROUP BY ca_state
        HAVING COUNT(*) >= 10
        ORDER BY revenue DESC, ca_state
        """,
        {"YEAR": S.sales_year()},
    )


def _income_band(ch: Channel) -> None:
    _define(
        f"income_band_{ch.key}",
        f"""
        SELECT ib_lower_bound, ib_upper_bound,
               COUNT(*) cnt, AVG({ch.net_paid}) avg_paid
        FROM {ch.sales}, household_demographics, income_band
        WHERE {ch.hdemo_fk} = hd_demo_sk
          AND hd_income_band_sk = ib_income_band_sk
        GROUP BY ib_lower_bound, ib_upper_bound
        ORDER BY ib_lower_bound
        """,
        {},
        description="sales by income band through the demographic snowflake",
    )


def _promo_effect(ch: Channel) -> None:
    _define(
        f"promo_effect_{ch.key}",
        f"""
        SELECT p_channel_email, p_channel_event,
               SUM({ch.ext_price}) promotional_sales,
               COUNT(*) cnt
        FROM {ch.sales}, promotion, date_dim
        WHERE {ch.promo_fk} = p_promo_sk
          AND {ch.date_fk} = d_date_sk
          AND d_year = [YEAR]
        GROUP BY p_channel_email, p_channel_event
        ORDER BY p_channel_email, p_channel_event
        """,
        {"YEAR": S.sales_year()},
    )


def _returns_by_reason(ch: Channel) -> None:
    _define(
        f"returns_by_reason_{ch.key}",
        f"""
        SELECT r_reason_desc,
               COUNT(*) return_count,
               AVG({ch.r_amount}) avg_return_amt,
               SUM({ch.r_net_loss}) total_loss
        FROM {ch.returns}, reason
        WHERE {ch.r_reason_fk} = r_reason_sk
        GROUP BY r_reason_desc
        ORDER BY return_count DESC, r_reason_desc
        LIMIT 100
        """,
        {},
    )


def _frequent_baskets(ch: Channel) -> None:
    _define(
        f"frequent_baskets_{ch.key}",
        f"""
        SELECT basket_size, COUNT(*) baskets
        FROM (SELECT {ch.order_col} ord, COUNT(*) basket_size
              FROM {ch.sales} GROUP BY {ch.order_col}) t
        GROUP BY basket_size
        HAVING COUNT(*) > [MIN_BASKETS]
        ORDER BY basket_size
        """,
        {"MIN_BASKETS": S.uniform_int(1, 5)},
        description="distribution of basket sizes (avg ~10.5 items, §3.1)",
    )


def _distinct_customers_zone(ch: Channel) -> None:
    _define(
        f"distinct_customers_zone_{ch.key}",
        f"""
        SELECT COUNT(DISTINCT {ch.customer_fk}) customers,
               COUNT(*) line_items
        FROM {ch.sales}, date_dim
        WHERE {ch.date_fk} = d_date_sk
          AND d_date BETWEEN [RANGE_START] AND [RANGE_END]
        """,
        {"RANGE": S.zone_date_range(2, 28)},
    )


def _zone_seasonality(ch: Channel) -> None:
    _define(
        f"zone_seasonality_{ch.key}",
        f"""
        SELECT d_year,
               SUM(CASE WHEN d_moy <= 7 THEN {ch.ext_price} ELSE 0 END) zone1_sales,
               SUM(CASE WHEN d_moy BETWEEN 8 AND 10 THEN {ch.ext_price} ELSE 0 END) zone2_sales,
               SUM(CASE WHEN d_moy >= 11 THEN {ch.ext_price} ELSE 0 END) zone3_sales
        FROM {ch.sales}, date_dim
        WHERE {ch.date_fk} = d_date_sk
        GROUP BY d_year
        ORDER BY d_year
        """,
        {},
        description="revenue split by comparability zone (Figure 2 shape)",
    )


def _frequent_names(ch: Channel) -> None:
    _define(
        f"frequent_names_{ch.key}",
        f"""
        SELECT c_last_name, COUNT(*) purchases
        FROM {ch.sales}, customer
        WHERE {ch.customer_fk} = c_customer_sk
        GROUP BY c_last_name
        ORDER BY purchases DESC, c_last_name
        LIMIT 25
        """,
        {},
        description="frequent-name skew surfaced through sales",
    )


def _yoy_growth(ch: Channel) -> None:
    _define(
        f"yoy_growth_{ch.key}",
        f"""
        WITH yearly AS (
            SELECT {ch.customer_fk} cust, d_year yr, SUM({ch.net_paid}) total
            FROM {ch.sales}, date_dim
            WHERE {ch.date_fk} = d_date_sk
              AND {ch.customer_fk} IS NOT NULL
            GROUP BY {ch.customer_fk}, d_year
        )
        SELECT cur.yr, COUNT(*) growing_customers
        FROM yearly cur JOIN yearly prev
          ON cur.cust = prev.cust AND cur.yr = prev.yr + 1
        WHERE cur.total > prev.total
        GROUP BY cur.yr
        ORDER BY cur.yr
        """,
        {},
        description="customers whose spend grew year over year (Q74 shape)",
    )


def _rank_profit_window() -> None:
    _define(
        "rank_profit_window",
        """
        SELECT i_item_id, avg_profit,
               RANK() OVER (ORDER BY avg_profit DESC) profit_rank
        FROM (SELECT i_item_id, AVG(ss_net_profit) avg_profit
              FROM store_sales, item
              WHERE ss_item_sk = i_item_sk
              GROUP BY i_item_id) ranked
        ORDER BY profit_rank
        LIMIT 100
        """,
        {},
    )


def _current_items(ch: Channel) -> None:
    _define(
        f"current_items_{ch.key}",
        f"""
        SELECT i_item_id, i_product_name, SUM({ch.ext_price}) revenue
        FROM {ch.sales}, item
        WHERE {ch.item_fk} = i_item_sk
          AND i_rec_end_date IS NULL
        GROUP BY i_item_id, i_product_name
        ORDER BY revenue DESC
        LIMIT 100
        """,
        {},
        description="revenue of the current SCD revision of each item",
    )


def _cross_channel_exists(variant: int) -> None:
    if variant == 1:
        _define(
            "store_only_customers",
            """
            SELECT COUNT(DISTINCT ss_customer_sk) store_only
            FROM store_sales
            WHERE ss_customer_sk IS NOT NULL
              AND ss_customer_sk NOT IN (
                  SELECT ws_bill_customer_sk FROM web_sales
                  WHERE ws_bill_customer_sk IS NOT NULL)
            """,
            {},
        )
    else:
        _define(
            "catalog_buyers_with_web_returns",
            """
            SELECT COUNT(DISTINCT cs_bill_customer_sk) cnt
            FROM catalog_sales
            WHERE cs_bill_customer_sk IN (
                SELECT wr_returning_customer_sk FROM web_returns
                WHERE wr_returning_customer_sk IS NOT NULL)
            """,
            {},
        )


def _extract_sales(ch: Channel) -> None:
    _define(
        f"extract_sales_{ch.key}",
        f"""
        SELECT {ch.item_fk} item_sk, {ch.customer_fk} customer_sk,
               {ch.order_col} order_number, {ch.qty} quantity,
               {ch.sales_price} sales_price, {ch.net_paid} net_paid,
               {ch.net_profit} net_profit, d_date
        FROM {ch.sales}, date_dim
        WHERE {ch.date_fk} = d_date_sk
          AND d_date BETWEEN [RANGE_START] AND [RANGE_END]
        ORDER BY order_number, item_sk
        """,
        {"RANGE": S.zone_date_range(1, 14)},
        query_class="data_mining",
        description="raw line-item extraction over a date window",
    )


def _stddev_stats(ch: Channel) -> None:
    _define(
        f"stddev_stats_{ch.key}",
        f"""
        SELECT i_class,
               COUNT(*) cnt,
               AVG({ch.qty}) mean_qty,
               STDDEV_SAMP({ch.qty}) std_qty,
               STDDEV_SAMP({ch.sales_price}) std_price
        FROM {ch.sales}, item
        WHERE {ch.item_fk} = i_item_sk
        GROUP BY i_class
        HAVING COUNT(*) > 10
        ORDER BY std_qty DESC, i_class
        LIMIT 100
        """,
        {},
    )


def _discount_share(ch: Channel) -> None:
    _define(
        f"discount_share_{ch.key}",
        f"""
        SELECT i_category,
               SUM({ch.ext_discount}) total_discount,
               SUM({ch.ext_list}) total_list,
               SUM({ch.ext_discount}) * 100 / SUM({ch.ext_list}) discount_pct
        FROM {ch.sales}, item, date_dim
        WHERE {ch.item_fk} = i_item_sk
          AND {ch.date_fk} = d_date_sk
          AND d_year = [YEAR]
        GROUP BY i_category
        HAVING SUM({ch.ext_list}) > 0
        ORDER BY discount_pct DESC, i_category
        """,
        {"YEAR": S.sales_year()},
    )


def _weekend_effect(ch: Channel) -> None:
    _define(
        f"weekend_effect_{ch.key}",
        f"""
        SELECT d_weekend, COUNT(*) cnt, AVG({ch.ext_price}) avg_price
        FROM {ch.sales}, date_dim
        WHERE {ch.date_fk} = d_date_sk
        GROUP BY d_weekend
        ORDER BY d_weekend
        """,
        {},
    )


def _holiday_brand(ch: Channel) -> None:
    _define(
        f"holiday_brand_{ch.key}",
        f"""
        SELECT i_brand, SUM({ch.ext_price}) revenue
        FROM {ch.sales}, item, date_dim
        WHERE {ch.item_fk} = i_item_sk
          AND {ch.date_fk} = d_date_sk
          AND d_holiday = 'Y'
        GROUP BY i_brand
        ORDER BY revenue DESC, i_brand
        LIMIT 100
        """,
        {},
    )


def _quarterly_trend(ch: Channel) -> None:
    _define(
        f"quarterly_trend_{ch.key}",
        f"""
        SELECT d_year, d_qoy, SUM({ch.ext_price}) revenue,
               SUM(SUM({ch.ext_price}))
                   OVER (PARTITION BY d_year ORDER BY d_qoy) running_total
        FROM {ch.sales}, date_dim
        WHERE {ch.date_fk} = d_date_sk
        GROUP BY d_year, d_qoy
        ORDER BY d_year, d_qoy
        """,
        {},
        description="quarterly revenue with running totals (window frame)",
    )


def _wholesale_margin(ch: Channel) -> None:
    _define(
        f"wholesale_margin_{ch.key}",
        f"""
        SELECT i_manufact_id,
               SUM({ch.ext_price}) revenue,
               SUM({ch.ext_wholesale}) cost,
               SUM({ch.net_profit}) profit
        FROM {ch.sales}, item
        WHERE {ch.item_fk} = i_item_sk
          AND i_manufact_id BETWEEN [MANUFACT_LOW] AND [MANUFACT_LOW] + 40
        GROUP BY i_manufact_id
        ORDER BY profit DESC, i_manufact_id
        LIMIT 100
        """,
        {"MANUFACT_LOW": S.uniform_int(1, 960)},
    )


def _birth_cohort() -> None:
    _define(
        "birth_cohort",
        """
        SELECT c_birth_year / 10 * 10 decade,
               COUNT(DISTINCT c_customer_sk) customers,
               SUM(ss_net_paid) total_paid
        FROM store_sales, customer, date_dim
        WHERE ss_customer_sk = c_customer_sk
          AND ss_sold_date_sk = d_date_sk
          AND d_moy = [MONTH]
        GROUP BY c_birth_year / 10 * 10
        ORDER BY decade
        """,
        {"MONTH": S.zone_month(3)},
    )


def _web_page_types() -> None:
    _define(
        "web_page_types",
        """
        SELECT web_name, wp_type, COUNT(*) cnt, SUM(ws_ext_sales_price) revenue
        FROM web_sales, web_page, web_site
        WHERE ws_web_page_sk = wp_web_page_sk
          AND ws_web_site_sk = web_site_sk
        GROUP BY web_name, wp_type
        ORDER BY revenue DESC, web_name, wp_type
        """,
        {},
    )


def _call_center_perf() -> None:
    _define(
        "call_center_perf",
        """
        SELECT cc_name, cc_manager,
               SUM(cs_net_profit) profit, COUNT(*) orders
        FROM catalog_sales, call_center
        WHERE cs_call_center_sk = cc_call_center_sk
        GROUP BY cc_name, cc_manager
        ORDER BY profit DESC, cc_name
        """,
        {},
        query_class="reporting",
    )


def _catalog_page_perf() -> None:
    _define(
        "catalog_page_perf",
        """
        SELECT cp_catalog_number, COUNT(*) cnt,
               SUM(cs_ext_sales_price) revenue
        FROM catalog_sales, catalog_page
        WHERE cs_catalog_page_sk = cp_catalog_page_sk
        GROUP BY cp_catalog_number
        ORDER BY revenue DESC, cp_catalog_number
        LIMIT 100
        """,
        {},
        query_class="reporting",
    )


def _coupon_share(ch: Channel) -> None:
    _define(
        f"coupon_share_{ch.key}",
        f"""
        SELECT cd_gender, cd_marital_status,
               SUM({ch.coupon}) coupons,
               SUM({ch.net_paid}) paid
        FROM {ch.sales}, customer_demographics
        WHERE {ch.cdemo_fk} = cd_demo_sk
        GROUP BY cd_gender, cd_marital_status
        ORDER BY cd_gender, cd_marital_status
        """,
        {},
    )


def _price_band(ch: Channel) -> None:
    _define(
        f"price_band_{ch.key}",
        f"""
        SELECT CASE WHEN {ch.sales_price} < 50 THEN 'low'
                    WHEN {ch.sales_price} < 100 THEN 'medium'
                    ELSE 'high' END price_band,
               COUNT(*) cnt,
               [AGG]({ch.qty}) agg_qty
        FROM {ch.sales}
        GROUP BY 1
        ORDER BY price_band
        """,
        {"AGG": S.aggregate_exchange(("SUM", "AVG", "MAX"))},
    )


def _return_rate(ch: Channel) -> None:
    _define(
        f"return_rate_{ch.key}",
        f"""
        WITH s AS (SELECT {ch.item_fk} item, COUNT(*) sold
                   FROM {ch.sales} GROUP BY {ch.item_fk}),
             r AS (SELECT {ch.r_item_fk} item, COUNT(*) returned
                   FROM {ch.returns} GROUP BY {ch.r_item_fk})
        SELECT i_class,
               SUM(r.returned) returned, SUM(s.sold) sold,
               SUM(r.returned) * 100.0 / SUM(s.sold) return_pct
        FROM s, r, item
        WHERE s.item = r.item AND s.item = i_item_sk
        GROUP BY i_class
        ORDER BY return_pct DESC, i_class
        LIMIT 100
        """,
        {},
    )


def _gmt_offset(ch: Channel) -> None:
    _define(
        f"gmt_offset_{ch.key}",
        f"""
        SELECT ca_gmt_offset, COUNT(*) cnt, SUM({ch.ext_price}) revenue
        FROM {ch.sales}, customer_address
        WHERE {ch.addr_fk} = ca_address_sk
        GROUP BY ca_gmt_offset
        ORDER BY ca_gmt_offset
        """,
        {},
    )


def _monthly_zone_labels(ch: Channel) -> None:
    _define(
        f"monthly_zone_labels_{ch.key}",
        f"""
        SELECT d_moy,
               CASE WHEN d_moy <= 7 THEN 'zone1'
                    WHEN d_moy <= 10 THEN 'zone2'
                    ELSE 'zone3' END zone,
               SUM({ch.ext_price}) revenue, COUNT(*) cnt
        FROM {ch.sales}, date_dim
        WHERE {ch.date_fk} = d_date_sk AND d_year = [YEAR]
        GROUP BY d_moy, 2
        ORDER BY d_moy
        """,
        {"YEAR": S.sales_year()},
    )


def _order_size_stats(ch: Channel) -> None:
    _define(
        f"order_size_stats_{ch.key}",
        f"""
        SELECT COUNT(*) line_items,
               COUNT(DISTINCT {ch.order_col}) orders,
               COUNT(*) * 1.0 / COUNT(DISTINCT {ch.order_col}) avg_basket
        FROM {ch.sales}
        """,
        {},
        description="average items per basket (the 10.5 of §3.1)",
    )


def _manager_perf(ch: Channel) -> None:
    _define(
        f"manager_perf_{ch.key}",
        f"""
        SELECT i_manager_id, SUM({ch.ext_price}) revenue
        FROM {ch.sales}, item, date_dim
        WHERE {ch.item_fk} = i_item_sk
          AND {ch.date_fk} = d_date_sk
          AND d_moy = [MONTH] AND d_year = [YEAR]
        GROUP BY i_manager_id
        ORDER BY revenue DESC, i_manager_id
        LIMIT 100
        """,
        {"MONTH": S.zone_month(2), "YEAR": S.sales_year()},
    )


def _education_matrix(ch: Channel) -> None:
    _define(
        f"education_matrix_{ch.key}",
        f"""
        SELECT cd_education_status,
               SUM(CASE WHEN cd_gender = 'M' THEN {ch.qty} ELSE 0 END) male_qty,
               SUM(CASE WHEN cd_gender = 'F' THEN {ch.qty} ELSE 0 END) female_qty
        FROM {ch.sales}, customer_demographics
        WHERE {ch.cdemo_fk} = cd_demo_sk
        GROUP BY cd_education_status
        ORDER BY cd_education_status
        """,
        {},
    )


def build_catalog() -> list[QueryTemplate]:
    """Assemble the 99 templates, pinning the paper's printed queries to
    their original ids (52 and 20)."""
    global _DEFINITIONS
    _DEFINITIONS = []
    for ch in CHANNELS:
        _brand_monthly(ch)
    for ch in CHANNELS:
        _class_ratio(ch)
    for ch in CHANNELS:
        _manufact_month(ch)
    for ch in CHANNELS:
        _demographics_avg(ch)
    for ch in CHANNELS:
        _category_rollup(ch)
    for ch in CHANNELS:
        _sales_returns_join(ch)
    for ch in CHANNELS:
        _top_customers(ch)
    for ch in CHANNELS:
        _drill_down(ch)
    _channel_totals()
    _store_web_customers()
    _catalog_store_ratio()
    _inventory_weeks()
    _inventory_category_rollup()
    for ch in CHANNELS:
        _time_of_day(ch)
    _ship_modes(CATALOG)
    _ship_modes(WEB)
    for ch in CHANNELS:
        _state_revenue(ch)
    _income_band(STORE)
    _income_band(WEB)
    _promo_effect(STORE)
    _promo_effect(CATALOG)
    for ch in CHANNELS:
        _returns_by_reason(ch)
    _frequent_baskets(STORE)
    _frequent_baskets(CATALOG)
    _distinct_customers_zone(STORE)
    _distinct_customers_zone(WEB)
    for ch in CHANNELS:
        _zone_seasonality(ch)
    _frequent_names(STORE)
    _frequent_names(CATALOG)
    _yoy_growth(STORE)
    _yoy_growth(CATALOG)
    _rank_profit_window()
    _current_items(STORE)
    _current_items(CATALOG)
    _cross_channel_exists(1)
    _cross_channel_exists(2)
    for ch in CHANNELS:
        _extract_sales(ch)
    _stddev_stats(STORE)
    _stddev_stats(CATALOG)
    for ch in CHANNELS:
        _discount_share(ch)
    _weekend_effect(STORE)
    _holiday_brand(STORE)
    _holiday_brand(CATALOG)
    for ch in CHANNELS:
        _quarterly_trend(ch)
    for ch in CHANNELS:
        _wholesale_margin(ch)
    _birth_cohort()
    _web_page_types()
    _call_center_perf()
    _catalog_page_perf()
    _coupon_share(STORE)
    _coupon_share(WEB)
    for ch in CHANNELS:
        _price_band(ch)
    for ch in CHANNELS:
        _return_rate(ch)
    _gmt_offset(STORE)
    for ch in CHANNELS:
        _monthly_zone_labels(ch)
    for ch in CHANNELS:
        _order_size_stats(ch)
    _manager_perf(STORE)
    _manager_perf(WEB)
    _education_matrix(STORE)

    # assign ids: pinned names take their ids, the rest fill in order
    taken = set(_PINNED_IDS.values())
    free_ids = iter(i for i in range(1, 1000) if i not in taken)
    templates = []
    for name, statements, substitutions, query_class, description in _DEFINITIONS:
        template_id = _PINNED_IDS.get(name, None)
        if template_id is None:
            template_id = next(free_ids)
        templates.append(
            QueryTemplate(
                template_id=template_id,
                name=name,
                statements=statements,
                substitutions=substitutions,
                query_class=query_class,
                description=description,
            )
        )
    return sorted(templates, key=lambda t: t.template_id)


WORKLOAD_SIZE = 99
