"""The query-template catalog (channels + 99 template definitions)."""
