"""Channel descriptors used by the template families.

TPC-DS query families repeat across the three sales channels with the
channel's own fact tables and column prefixes (the real query set does
exactly this — e.g. Q52/Q55 on store, Q20 on catalog, Q12 on web share
one shape). The :class:`Channel` descriptor carries the naming scheme
so a family builder can emit one template per channel.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Channel:
    key: str
    sales: str
    returns: str
    date_fk: str
    time_fk: str
    item_fk: str
    customer_fk: str
    cdemo_fk: str
    hdemo_fk: str
    addr_fk: str
    promo_fk: str
    order_col: str
    qty: str
    sales_price: str
    ext_price: str
    ext_list: str
    ext_wholesale: str
    ext_discount: str
    coupon: str
    net_paid: str
    net_profit: str
    r_date_fk: str
    r_item_fk: str
    r_customer_fk: str
    r_reason_fk: str
    r_amount: str
    r_qty: str
    r_order: str
    r_net_loss: str
    location_fk: str
    location_table: str
    location_sk: str
    location_name: str


STORE = Channel(
    key="store",
    sales="store_sales",
    returns="store_returns",
    date_fk="ss_sold_date_sk",
    time_fk="ss_sold_time_sk",
    item_fk="ss_item_sk",
    customer_fk="ss_customer_sk",
    cdemo_fk="ss_cdemo_sk",
    hdemo_fk="ss_hdemo_sk",
    addr_fk="ss_addr_sk",
    promo_fk="ss_promo_sk",
    order_col="ss_ticket_number",
    qty="ss_quantity",
    sales_price="ss_sales_price",
    ext_price="ss_ext_sales_price",
    ext_list="ss_ext_list_price",
    ext_wholesale="ss_ext_wholesale_cost",
    ext_discount="ss_ext_discount_amt",
    coupon="ss_coupon_amt",
    net_paid="ss_net_paid",
    net_profit="ss_net_profit",
    r_date_fk="sr_returned_date_sk",
    r_item_fk="sr_item_sk",
    r_customer_fk="sr_customer_sk",
    r_reason_fk="sr_reason_sk",
    r_amount="sr_return_amt",
    r_qty="sr_return_quantity",
    r_order="sr_ticket_number",
    r_net_loss="sr_net_loss",
    location_fk="ss_store_sk",
    location_table="store",
    location_sk="s_store_sk",
    location_name="s_store_name",
)

CATALOG = Channel(
    key="catalog",
    sales="catalog_sales",
    returns="catalog_returns",
    date_fk="cs_sold_date_sk",
    time_fk="cs_sold_time_sk",
    item_fk="cs_item_sk",
    customer_fk="cs_bill_customer_sk",
    cdemo_fk="cs_bill_cdemo_sk",
    hdemo_fk="cs_bill_hdemo_sk",
    addr_fk="cs_bill_addr_sk",
    promo_fk="cs_promo_sk",
    order_col="cs_order_number",
    qty="cs_quantity",
    sales_price="cs_sales_price",
    ext_price="cs_ext_sales_price",
    ext_list="cs_ext_list_price",
    ext_wholesale="cs_ext_wholesale_cost",
    ext_discount="cs_ext_discount_amt",
    coupon="cs_coupon_amt",
    net_paid="cs_net_paid",
    net_profit="cs_net_profit",
    r_date_fk="cr_returned_date_sk",
    r_item_fk="cr_item_sk",
    r_customer_fk="cr_returning_customer_sk",
    r_reason_fk="cr_reason_sk",
    r_amount="cr_return_amount",
    r_qty="cr_return_quantity",
    r_order="cr_order_number",
    r_net_loss="cr_net_loss",
    location_fk="cs_call_center_sk",
    location_table="call_center",
    location_sk="cc_call_center_sk",
    location_name="cc_name",
)

WEB = Channel(
    key="web",
    sales="web_sales",
    returns="web_returns",
    date_fk="ws_sold_date_sk",
    time_fk="ws_sold_time_sk",
    item_fk="ws_item_sk",
    customer_fk="ws_bill_customer_sk",
    cdemo_fk="ws_bill_cdemo_sk",
    hdemo_fk="ws_bill_hdemo_sk",
    addr_fk="ws_bill_addr_sk",
    promo_fk="ws_promo_sk",
    order_col="ws_order_number",
    qty="ws_quantity",
    sales_price="ws_sales_price",
    ext_price="ws_ext_sales_price",
    ext_list="ws_ext_list_price",
    ext_wholesale="ws_ext_wholesale_cost",
    ext_discount="ws_ext_discount_amt",
    coupon="ws_coupon_amt",
    net_paid="ws_net_paid",
    net_profit="ws_net_profit",
    r_date_fk="wr_returned_date_sk",
    r_item_fk="wr_item_sk",
    r_customer_fk="wr_returning_customer_sk",
    r_reason_fk="wr_reason_sk",
    r_amount="wr_return_amt",
    r_qty="wr_return_quantity",
    r_order="wr_order_number",
    r_net_loss="wr_net_loss",
    location_fk="ws_web_site_sk",
    location_table="web_site",
    location_sk="web_site_sk",
    location_name="web_name",
)

CHANNELS = (STORE, CATALOG, WEB)
