"""Query templates, generated queries, and the query generator.

The TPC-DS workload is 99 *distinct* query templates covering four
classes (§4.1):

* ``ad_hoc`` — touch only the ad-hoc (store / web) part of the schema;
* ``reporting`` — touch only the reporting (catalog) part;
* ``iterative`` — sequences of syntactically independent but logically
  affiliated statements (drill down / up);
* ``data_mining`` — large-output extraction queries feeding external
  tools.

A template's channel classification is *derived from the tables it
references*, mirroring the specification's referencing rule ("queries
referencing the catalog channel are reporting queries"). ``QGen``
expands templates deterministically per (stream, template) and permutes
the query order per stream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ..dsdgen.context import GeneratorContext
from ..dsdgen.rng import RandomStream, stream_seed
from ..schema import AD_HOC_TABLES, REPORTING_TABLES
from .substitutions import Substitution

_TAG = re.compile(r"\[([A-Z0-9_]+)\]")

QUERY_CLASSES = ("ad_hoc", "reporting", "iterative", "data_mining")


@dataclass(frozen=True)
class QueryTemplate:
    """One of the 99 workload templates."""

    template_id: int
    name: str
    #: one or more SQL statements (iterative templates have several)
    statements: tuple[str, ...]
    substitutions: dict[str, Substitution] = field(default_factory=dict)
    #: workload class; channel part is derived from referenced tables
    query_class: str = "ad_hoc"
    description: str = ""

    def __post_init__(self) -> None:
        if self.query_class not in QUERY_CLASSES:
            raise ValueError(f"unknown query class {self.query_class}")
        missing = self.required_tags() - self._provided_tags()
        if missing:
            raise ValueError(
                f"template {self.template_id} is missing substitutions for {sorted(missing)}"
            )

    def required_tags(self) -> set[str]:
        tags: set[str] = set()
        for stmt in self.statements:
            tags.update(_TAG.findall(stmt))
        return tags

    def _provided_tags(self) -> set[str]:
        provided: set[str] = set()
        for name in self.substitutions:
            provided.add(name)
            # compound substitutions provide NAME_<part> tags; accept any
            provided.update(
                tag for tag in self.required_tags() if tag.startswith(name + "_")
            )
        return provided

    def referenced_tables(self) -> set[str]:
        """Schema tables mentioned in the template text."""
        from ..schema import ALL_TABLES

        tables = set()
        text = " ".join(self.statements).lower()
        for name in ALL_TABLES:
            if re.search(rf"\b{name}\b", text):
                tables.add(name)
        return tables

    @property
    def channel_part(self) -> str:
        """'ad_hoc', 'reporting', or 'hybrid' by the referencing rule."""
        tables = self.referenced_tables()
        touches_adhoc = bool(tables & AD_HOC_TABLES)
        touches_reporting = bool(tables & REPORTING_TABLES)
        if touches_adhoc and touches_reporting:
            return "hybrid"
        if touches_reporting:
            return "reporting"
        return "ad_hoc"


@dataclass(frozen=True)
class GeneratedQuery:
    template_id: int
    name: str
    query_class: str
    channel_part: str
    statements: tuple[str, ...]
    stream: int
    substitution_values: dict[str, str]

    @property
    def sql(self) -> str:
        return ";\n".join(self.statements)


class QGen:
    """Expands templates into executable SQL, deterministically.

    The generator is *tightly coupled* to the data generator: it shares
    the :class:`GeneratorContext` (calendar, hierarchy, scaling), so
    substitutions are always drawn from the populated domains.
    """

    def __init__(self, context: GeneratorContext, templates: list[QueryTemplate]):
        self.context = context
        self.templates = {t.template_id: t for t in templates}
        if len(self.templates) != len(templates):
            raise ValueError("duplicate template ids")

    def template(self, template_id: int) -> QueryTemplate:
        return self.templates[template_id]

    def generate(self, template_id: int, stream: int = 0) -> GeneratedQuery:
        template = self.templates[template_id]
        rng = RandomStream(
            stream_seed(self.context.seed, f"qgen.{template_id}.{stream}")
        )
        values: dict[str, str] = {}
        for name in sorted(template.substitutions):
            result = template.substitutions[name].generate(rng, self.context)
            if isinstance(result, dict):
                for part, text in result.items():
                    values[f"{name}_{part.upper()}"] = text
            else:
                values[name] = result
        statements = tuple(
            _TAG.sub(lambda m: self._lookup(values, m.group(1)), stmt)
            for stmt in template.statements
        )
        return GeneratedQuery(
            template_id=template.template_id,
            name=template.name,
            query_class=template.query_class,
            channel_part=template.channel_part,
            statements=statements,
            stream=stream,
            substitution_values=values,
        )

    @staticmethod
    def _lookup(values: dict[str, str], tag: str) -> str:
        if tag not in values:
            raise KeyError(f"unbound substitution tag [{tag}]")
        return values[tag]

    def stream_order(self, stream: int) -> list[int]:
        """The permuted template order for a stream (stream 0 runs in
        template-id order, like dsqgen's stream 0)."""
        ids = sorted(self.templates)
        if stream == 0:
            return ids
        rng = RandomStream(stream_seed(self.context.seed, f"qgen.permutation.{stream}"))
        order = list(ids)
        for i in range(len(order) - 1, 0, -1):
            j = rng.uniform_int(0, i)
            order[i], order[j] = order[j], order[i]
        return order

    def generate_stream(self, stream: int) -> list[GeneratedQuery]:
        return [self.generate(tid, stream) for tid in self.stream_order(stream)]
