"""Substitution generators for query templates (§4.1).

A template-based query "relies on a query template by substituting SQL
fragments and scalar constants into the query template". Substitutions
are drawn from the *same* distributions the data generator used — this
coupling is what guarantees query comparability (§3.2): every
substitution keeps the number of qualifying rows and the join/group/sort
distributions nearly identical, because values are only ever drawn from
within one comparability zone.

A substitution returns either a single string or a dict of named parts
(e.g. a date range returns ``{"start": ..., "end": ...}``, referenced
in the template as ``[TAG_START]`` / ``[TAG_END]``).
"""

from __future__ import annotations

import calendar as _calendar
import datetime as _dt
from dataclasses import dataclass
from typing import Callable, Sequence, Union

from ..dsdgen.context import GeneratorContext
from ..dsdgen.distributions import MONTH_ZONE
from ..dsdgen.rng import RandomStream

SubValue = Union[str, dict[str, str]]


@dataclass(frozen=True)
class Substitution:
    """A named substitution: a callable from (rng, ctx) to its value(s)."""

    generate: Callable[[RandomStream, GeneratorContext], SubValue]
    description: str = ""


def uniform_int(low: int, high: int) -> Substitution:
    """A uniform integer substitution in [low, high]."""
    return Substitution(
        lambda rng, ctx: str(rng.uniform_int(low, high)),
        f"uniform integer in [{low}, {high}]",
    )


def choice(values: Sequence[str], quote: bool = False) -> Substitution:
    """A single value drawn uniformly from a fixed list."""
    def gen(rng: RandomStream, ctx: GeneratorContext) -> str:
        value = rng.choice(list(values))
        return f"'{value}'" if quote else str(value)

    return Substitution(gen, f"one of {len(values)} values")


def choice_list(values: Sequence[str], k: int, quote: bool = True) -> Substitution:
    """An IN-list of ``k`` distinct values (e.g. the category lists of
    Query 20)."""

    def gen(rng: RandomStream, ctx: GeneratorContext) -> str:
        pool = list(values)
        picks = rng.sample_without_replacement(len(pool), min(k, len(pool)))
        rendered = [f"'{pool[i]}'" if quote else str(pool[i]) for i in picks]
        return ", ".join(rendered)

    return Substitution(gen, f"in-list of {k} values")


def sales_year() -> Substitution:
    """A year drawn from the populated sales window."""
    def gen(rng: RandomStream, ctx: GeneratorContext) -> str:
        years = ctx.calendar.sales_years
        return str(years[rng.uniform_int(0, len(years) - 1)])

    return Substitution(gen, "a year within the sales window")


def zone_month(zone: int) -> Substitution:
    """A month drawn from one comparability zone (1: Jan–Jul, 2: Aug–Oct,
    3: Nov–Dec) — months within a zone are interchangeable."""
    months = [m for m, z in MONTH_ZONE.items() if z == zone]

    def gen(rng: RandomStream, ctx: GeneratorContext) -> str:
        return str(months[rng.uniform_int(0, len(months) - 1)])

    return Substitution(gen, f"a month in comparability zone {zone}")


def zone_date_range(zone: int, days: int) -> Substitution:
    """A date range of fixed width lying entirely inside one zone, so
    every substitution qualifies a near-identical number of fact rows."""
    months = sorted(m for m, z in MONTH_ZONE.items() if z == zone)

    def gen(rng: RandomStream, ctx: GeneratorContext) -> dict[str, str]:
        years = ctx.calendar.sales_years
        year = years[rng.uniform_int(0, len(years) - 1)]
        zone_start = _dt.date(year, months[0], 1)
        last_month = months[-1]
        zone_end = _dt.date(
            year, last_month, _calendar.monthrange(year, last_month)[1]
        )
        latest_start = zone_end - _dt.timedelta(days=days)
        if latest_start < zone_start:
            latest_start = zone_start
        span = (latest_start - zone_start).days
        start = zone_start + _dt.timedelta(days=rng.uniform_int(0, max(span, 0)))
        end = start + _dt.timedelta(days=days)
        return {
            "start": f"date '{start.isoformat()}'",
            "end": f"date '{end.isoformat()}'",
        }

    return Substitution(gen, f"a {days}-day range inside zone {zone}")


def aggregate_exchange(options: Sequence[str] = ("SUM", "MIN", "MAX", "AVG")) -> Substitution:
    """Aggregate-function exchange — the "more complex text substitutions"
    of §4.1 ("exchanging aggregations, such as max, min")."""
    return choice(options, quote=False)


def category() -> Substitution:
    """A single item category from the hierarchy."""
    def gen(rng: RandomStream, ctx: GeneratorContext) -> str:
        return f"'{rng.choice(ctx.hierarchy.categories)}'"

    return Substitution(gen, "an item category")


def category_list(k: int) -> Substitution:
    """An IN-list of k distinct item categories."""
    def gen(rng: RandomStream, ctx: GeneratorContext) -> str:
        cats = ctx.hierarchy.categories
        picks = rng.sample_without_replacement(len(cats), min(k, len(cats)))
        return ", ".join(f"'{cats[i]}'" for i in picks)

    return Substitution(gen, f"{k} distinct item categories")


def state_list(k: int) -> Substitution:
    """An IN-list of k populous states."""
    from ..dsdgen.distributions import STATES

    return choice_list([s for s, _ in STATES[:20]], k)


def manager_id() -> Substitution:
    """i_manager_id is uniform 1..100 in the item generator."""
    return uniform_int(1, 100)


def manufact_id() -> Substitution:
    """A manufacturer id matching the item generator's domain."""
    return uniform_int(1, 1000)


def gender() -> Substitution:
    """A cd_gender value."""
    return choice(["M", "F"], quote=True)


def marital_status() -> Substitution:
    """A cd_marital_status value."""
    from ..dsdgen.distributions import MARITAL_STATUS

    return choice(MARITAL_STATUS, quote=True)


def education() -> Substitution:
    """A cd_education_status value."""
    from ..dsdgen.distributions import EDUCATION

    return choice(EDUCATION, quote=True)


def buy_potential() -> Substitution:
    """An hd_buy_potential value."""
    from ..dsdgen.distributions import BUY_POTENTIAL

    return choice(BUY_POTENTIAL, quote=True)


def color_list(k: int) -> Substitution:
    """An IN-list of k item colors."""
    from ..dsdgen.distributions import COLORS

    return choice_list(COLORS[:30], k)
