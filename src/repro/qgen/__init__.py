"""dsqgen — the TPC-DS query generator (templates + substitutions)."""

from .model import GeneratedQuery, QGen, QueryTemplate, QUERY_CLASSES
from .templates.catalog import WORKLOAD_SIZE, build_catalog

__all__ = [
    "QGen",
    "QueryTemplate",
    "GeneratedQuery",
    "QUERY_CLASSES",
    "build_catalog",
    "WORKLOAD_SIZE",
]
