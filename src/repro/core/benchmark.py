"""The one-call public API.

    from repro import Benchmark

    bench = Benchmark(scale_factor=0.01)
    result = bench.run()
    print(result.report())

``Benchmark`` wraps the load/QR1/DM/QR2 sequence; after ``run()`` the
loaded database stays available on ``bench.database`` for interactive
queries, and ``bench.query(sql)`` executes ad-hoc SQL against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine import Database, OptimizerSettings, Result
from ..qgen import GeneratedQuery
from ..runner import BenchmarkConfig, BenchmarkResult, BenchmarkRun, render_report
from ..runner.execution import run_benchmark


@dataclass
class RunSummary:
    """A thin, stable wrapper around the runner's result object."""

    result: BenchmarkResult

    @property
    def qphds(self) -> float:
        return self.result.qphds

    @property
    def price_performance(self) -> float:
        return self.result.price_performance

    @property
    def total_queries(self) -> int:
        return self.result.total_queries

    def report(self) -> str:
        return render_report(self.result)


class Benchmark:
    """High-level facade over the complete TPC-DS reproduction."""

    def __init__(
        self,
        scale_factor: float = 0.01,
        streams: Optional[int] = None,
        seed: int = 19620718,
        db_path: Optional[str] = None,
        use_aux_structures: bool = True,
        strict: bool = False,
        optimizer: Optional[OptimizerSettings] = None,
        plan_quality: bool = False,
        query_timeout_s: Optional[float] = None,
        query_mem_budget_bytes: Optional[float] = None,
        max_query_retries: int = 2,
        checkpoint_path: Optional[str] = None,
        resume: bool = False,
        faults=None,
        workers: Optional[int] = None,
        sample_metrics: bool = False,
        sample_interval_s: float = 0.25,
        sample_metrics_path: Optional[str] = None,
        statement_store_path: Optional[str] = None,
    ):
        self.config = BenchmarkConfig(
            scale_factor=scale_factor,
            streams=streams,
            seed=seed,
            db_path=db_path,
            use_aux_structures=use_aux_structures,
            strict=strict,
            optimizer=optimizer or OptimizerSettings(),
            plan_quality=plan_quality,
            query_timeout_s=query_timeout_s,
            query_mem_budget_bytes=query_mem_budget_bytes,
            max_query_retries=max_query_retries,
            checkpoint_path=checkpoint_path,
            resume=resume,
            faults=faults,
            workers=workers,
            sample_metrics=sample_metrics,
            sample_interval_s=sample_interval_s,
            sample_metrics_path=sample_metrics_path,
            statement_store_path=statement_store_path,
        )
        self._run: Optional[BenchmarkRun] = None
        self._summary: Optional[RunSummary] = None

    def run(self) -> RunSummary:
        result, run = run_benchmark(self.config)
        self._run = run
        self._summary = RunSummary(result)
        return self._summary

    # -- post-run access -----------------------------------------------------

    @property
    def database(self) -> Database:
        if self._run is None or self._run.db is None:
            raise RuntimeError("run() or load() must complete first")
        return self._run.db

    def load(self) -> Database:
        """Run only the load test (build + load + aux + stats)."""
        run = BenchmarkRun(self.config)
        run.load_test()
        self._run = run
        return run.db

    def query(self, sql: str) -> Result:
        return self.database.execute(sql)

    def generate_query(self, template_id: int, stream: int = 0) -> GeneratedQuery:
        if self._run is None or self._run.qgen is None:
            raise RuntimeError("run() or load() must complete first")
        return self._run.qgen.generate(template_id, stream)

    @property
    def summary(self) -> RunSummary:
        if self._summary is None:
            raise RuntimeError("run() must complete first")
        return self._summary
