"""Benchmark specification constants — the numbers the paper states.

Collected in one place so tests and benches compare against the source
of truth rather than scattering magic numbers.
"""

from __future__ import annotations

from ..dsdgen.scaling import OFFICIAL_SCALE_FACTORS, minimum_streams

#: the workload size (§1: "99 distinct SQL 99 queries")
NUM_QUERIES = 99

#: data maintenance operations (§1: "12 data maintenance operations")
NUM_DM_OPERATIONS = 12

#: table population (§2.2, Table 1)
NUM_FACT_TABLES = 7
NUM_DIMENSION_TABLES = 17
NUM_TABLES = NUM_FACT_TABLES + NUM_DIMENSION_TABLES
AVG_COLUMNS_PER_TABLE = 18
NUM_FOREIGN_KEYS = 104

#: Figure 12 verbatim
MINIMUM_STREAMS_TABLE = {
    100: 3,
    300: 5,
    1000: 7,
    3000: 9,
    10000: 11,
    30000: 13,
    100000: 15,
}

#: §5.3 worked examples: (scale factor, streams, total queries)
METRIC_EXAMPLES = (
    (1000, 7, 1386),   # "a 1000 scale factor ... executes 1386 (198 * 7)"
    (100000, 15, 2970),  # "2970 (198 * 15)" (the paper's own arithmetic)
)

__all__ = [
    "NUM_QUERIES",
    "NUM_DM_OPERATIONS",
    "NUM_FACT_TABLES",
    "NUM_DIMENSION_TABLES",
    "NUM_TABLES",
    "AVG_COLUMNS_PER_TABLE",
    "NUM_FOREIGN_KEYS",
    "MINIMUM_STREAMS_TABLE",
    "METRIC_EXAMPLES",
    "OFFICIAL_SCALE_FACTORS",
    "minimum_streams",
]
