"""The benchmark's primary contribution: spec constants + facade."""

from . import spec
from .benchmark import Benchmark, RunSummary

__all__ = ["Benchmark", "RunSummary", "spec"]
