"""Benchmark regression tracking over ``history.jsonl``.

The bench harness (``benchmarks/conftest.py``) appends one JSONL
record per bench module per run into ``benchmarks/results/
history.jsonl``, keyed by git SHA. :func:`compare_latest` diffs the
latest two runs of every module, applies a noise threshold to the
mean-time ratio, and reports regressions / improvements;
``tpcds-py obs diff`` (and ``make bench-compare``) exit nonzero when
any regression exceeds the threshold — the closed loop that keeps
``QphDS@SF`` honest across PRs.

A history record looks like::

    {"sha": "...", "recorded_at": "...", "module": "bench_metric_qphds",
     "benchmarks": [{"test": "...", "mean": 0.012, ...}, ...]}
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Optional

#: a mean-time ratio within ±this fraction is considered noise
DEFAULT_NOISE_THRESHOLD = 0.25


def git_sha(cwd: Optional[str] = None) -> str:
    """The current git commit SHA, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def append_history(
    payloads: list[dict],
    history_path: str,
    sha: Optional[str] = None,
    recorded_at: Optional[str] = None,
) -> int:
    """Append one JSONL record per bench-module payload to the history.

    ``payloads`` are the ``BENCH_<name>.json`` documents (each with a
    ``module`` name and a ``benchmarks`` list); every record is stamped
    with the git SHA and a timestamp so runs stay distinguishable.
    Returns the number of records written."""
    if not payloads:
        return 0
    sha = sha or git_sha(os.path.dirname(os.path.abspath(history_path)))
    recorded_at = recorded_at or time.strftime("%Y-%m-%dT%H:%M:%S")
    os.makedirs(os.path.dirname(os.path.abspath(history_path)), exist_ok=True)
    written = 0
    with open(history_path, "a", encoding="utf-8") as handle:
        for payload in payloads:
            record = {
                "sha": sha,
                "recorded_at": recorded_at,
                "module": payload.get("module", "unknown"),
                "scale_factor": payload.get("scale_factor"),
                "benchmarks": [
                    {
                        "test": entry.get("test"),
                        "mean": entry.get("mean"),
                        "median": entry.get("median"),
                        "stddev": entry.get("stddev"),
                        "rounds": entry.get("rounds"),
                    }
                    for entry in payload.get("benchmarks", [])
                ],
            }
            handle.write(json.dumps(record) + "\n")
            written += 1
    return written


def load_history(path: str) -> list[dict]:
    """Parse a ``history.jsonl`` file (missing file -> empty history);
    malformed lines are skipped rather than aborting the comparison."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def prune_history(path: str, keep: int) -> tuple[int, int]:
    """Bound ``history.jsonl`` growth: keep the last ``keep`` records
    per ``(git SHA, module)`` pair, preserving append order, and
    rewrite the file atomically (write-temp-then-rename).  Returns
    ``(kept, dropped)``; a missing file is ``(0, 0)``."""
    if keep < 1:
        raise ValueError("keep must be >= 1")
    records = load_history(path)
    if not records:
        return (0, 0)
    counts: dict[tuple[str, str], int] = {}
    for record in records:
        key = (record.get("sha", ""), record.get("module", ""))
        counts[key] = counts.get(key, 0) + 1
    seen: dict[tuple[str, str], int] = {}
    kept: list[dict] = []
    for record in records:
        key = (record.get("sha", ""), record.get("module", ""))
        seen[key] = seen.get(key, 0) + 1
        # keep the *last* N per key: skip the first (count - keep)
        if seen[key] > counts[key] - keep:
            kept.append(record)
    dropped = len(records) - len(kept)
    if dropped:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in kept:
                handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    return (len(kept), dropped)


@dataclass
class BenchDelta:
    """One test's latest-vs-previous comparison."""

    module: str
    test: str
    old_mean: float
    new_mean: float
    ratio: float  # new / old; > 1 means slower
    status: str   # "ok" | "regression" | "improvement"
    old_sha: str = ""
    new_sha: str = ""

    def render(self) -> str:
        """One report line."""
        arrow = {"regression": "!!", "improvement": "++", "ok": "  "}[self.status]
        return (
            f"  {arrow} {self.module:36.36s} {self.test:32.32s} "
            f"{self.old_mean * 1000:>10.3f}ms -> {self.new_mean * 1000:>10.3f}ms "
            f"({(self.ratio - 1) * 100:+6.1f}%)"
        )


@dataclass
class ComparisonReport:
    """The latest-two-runs diff across all bench modules."""

    threshold: float
    deltas: list[BenchDelta] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def improvements(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.status == "improvement"]

    def exit_code(self) -> int:
        """0 when no regression beats the noise threshold, 1 otherwise."""
        return 1 if self.regressions else 0

    def as_dict(self) -> dict:
        """JSON-ready comparison: the threshold that judged it rides
        along, so an archived diff is interpretable on its own."""
        return {
            "threshold": self.threshold,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "compared": len(self.deltas),
            "deltas": [
                {
                    "module": d.module,
                    "test": d.test,
                    "old_mean": d.old_mean,
                    "new_mean": d.new_mean,
                    "ratio": d.ratio,
                    "status": d.status,
                    "old_sha": d.old_sha,
                    "new_sha": d.new_sha,
                }
                for d in sorted(self.deltas, key=lambda d: -d.ratio)
            ],
            "skipped": list(self.skipped),
        }

    def render(self) -> str:
        """The human-readable comparison report."""
        lines = [
            f"benchmark comparison (noise threshold ±{self.threshold * 100:.0f}%)",
        ]
        if not self.deltas and not self.skipped:
            lines.append("  no comparable runs in history (need two runs per module)")
            return "\n".join(lines)
        for delta in sorted(self.deltas, key=lambda d: -d.ratio):
            lines.append(delta.render())
        for note in self.skipped:
            lines.append(f"     {note}")
        lines.append(
            f"  {len(self.deltas)} compared: "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s)"
        )
        if self.regressions:
            lines.append("FAIL: benchmark regression beyond the noise threshold")
        else:
            lines.append("PASS: no benchmark regressions")
        return "\n".join(lines)


def compare_latest(
    history: list[dict], threshold: float = DEFAULT_NOISE_THRESHOLD
) -> ComparisonReport:
    """Diff the latest two runs of every module in ``history``.

    Runs are taken in file (append) order; for each module the last
    two records form the (previous, latest) pair. A mean-time ratio
    above ``1 + threshold`` is a regression, below ``1 - threshold``
    an improvement, anything between is noise ("ok"). Back-to-back
    identical runs therefore always pass."""
    report = ComparisonReport(threshold=threshold)
    by_module: dict[str, list[dict]] = {}
    for record in history:
        by_module.setdefault(record.get("module", "unknown"), []).append(record)
    for module in sorted(by_module):
        records = by_module[module]
        if len(records) < 2:
            report.skipped.append(f"{module}: only one recorded run")
            continue
        previous, latest = records[-2], records[-1]
        old_tests = {b.get("test"): b for b in previous.get("benchmarks", [])}
        for bench in latest.get("benchmarks", []):
            test = bench.get("test")
            old = old_tests.get(test)
            new_mean = bench.get("mean")
            old_mean = old.get("mean") if old else None
            if old is None:
                report.skipped.append(f"{module}::{test}: new test, no baseline")
                continue
            if not old_mean or new_mean is None:
                report.skipped.append(f"{module}::{test}: missing mean")
                continue
            ratio = new_mean / old_mean
            if ratio > 1.0 + threshold:
                status = "regression"
            elif ratio < 1.0 - threshold:
                status = "improvement"
            else:
                status = "ok"
            report.deltas.append(
                BenchDelta(
                    module=module,
                    test=test,
                    old_mean=old_mean,
                    new_mean=new_mean,
                    ratio=ratio,
                    status=status,
                    old_sha=previous.get("sha", ""),
                    new_sha=latest.get("sha", ""),
                )
            )
    return report
