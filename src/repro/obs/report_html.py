"""The self-contained HTML observability dashboard.

:func:`render_html_report` turns one telemetry bundle (the dict
``repro.runner.report.telemetry_bundle`` builds, also written by
``tpcds-py run --telemetry``) into a single dependency-free HTML file:
inline CSS, hand-written SVG, no scripts, no external fetches — it
renders from ``file://`` on an air-gapped machine.

Sections, each skipped cleanly when its data is absent:

* headline stat tiles (QphDS, query count, compliance, workers)
* the span timeline as SVG lanes — one lane per thread, so the
  benchmark thread, every stream and every pool worker read as
  parallel tracks (the same lanes the Chrome-trace export emits)
* latency percentile tables (overall / per query run / per stream)
* the worker-pool parallelism profile: occupancy per worker, a pool
  utilization sparkline, and the per-operator skew table
* plan quality: the worst cardinality misestimates of the run

Colors follow the category of the mark, fixed, never cycled: phases
are aqua, queries blue, morsels orange, everything else gray.  Both
light and dark schemes are explicit steps of the same hues (selected
via ``prefers-color-scheme``), text always wears text tokens, and
every SVG mark carries a native ``<title>`` tooltip.
"""

from __future__ import annotations

import html
from typing import Optional

#: categorical palette — fixed slot order (blue for queries, orange
#: for morsels, aqua for phases, gray for everything else), one light
#: and one dark step per hue, selected via ``prefers-color-scheme``
_CSS = """
:root {
  --bg: #ffffff; --surface: #f6f7f9; --border: #e1e4e8;
  --text: #1f2328; --text-2: #57606a; --text-3: #848d97;
  --query: #2a78d6; --morsel: #eb6834; --phase: #1baf7a;
  --other: #8a8f98;
}
@media (prefers-color-scheme: dark) {
  :root {
    --bg: #0e1116; --surface: #161b22; --border: #2d333b;
    --text: #e6edf3; --text-2: #9da7b1; --text-3: #6e7781;
    --query: #3987e5; --morsel: #d95926; --phase: #199e70;
    --other: #6e737c;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--bg); color: var(--text);
  font: 14px/1.5 -apple-system, "Segoe UI", Roboto, "Helvetica Neue",
        Arial, sans-serif;
}
main { max-width: 980px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-2); margin: 0 0 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 120px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { font-size: 12px; color: var(--text-2); }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: right; padding: 4px 10px;
         border-bottom: 1px solid var(--border); }
th { color: var(--text-2); font-weight: 500; }
th:first-child, td:first-child { text-align: left; }
figure { margin: 0; background: var(--surface);
         border: 1px solid var(--border); border-radius: 8px;
         padding: 12px; }
.legend { display: flex; gap: 16px; font-size: 12px;
          color: var(--text-2); margin: 6px 2px 0; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 5px;
              vertical-align: -1px; }
svg text { fill: var(--text-2); font-size: 11px; }
.note { color: var(--text-3); font-size: 12px; }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt_s(seconds: float) -> str:
    """Adaptive duration: ms below one second, seconds above."""
    if seconds < 1.0:
        return f"{seconds * 1000:.1f}ms"
    return f"{seconds:.2f}s"


def _category(name: str) -> str:
    head = name.split(":", 1)[0]
    if head == "phase":
        return "phase"
    if head == "morsel":
        return "morsel"
    if head in ("query", "stream"):
        return "query"
    return "other"


def _tiles(telemetry: dict) -> str:
    summary = telemetry.get("summary") or {}
    config = telemetry.get("config") or {}
    tiles = []

    def tile(value, key):
        tiles.append(
            f'<div class="tile"><div class="v">{_esc(value)}</div>'
            f'<div class="k">{_esc(key)}</div></div>'
        )

    if "qphds" in summary:
        tile(f"{summary['qphds']:,.1f}", "QphDS@SF")
    if "queries" in summary:
        tile(summary["queries"], "queries executed")
    if "compliant" in summary:
        tile("yes" if summary["compliant"] else "NO", "compliant")
    if config.get("scale_factor") is not None:
        tile(config["scale_factor"], "scale factor")
    if config.get("streams") is not None:
        tile(config["streams"], "streams")
    if config.get("workers"):
        tile(config["workers"], "pool workers")
    parallelism = telemetry.get("parallelism") or {}
    if parallelism.get("morsels"):
        tile(f"{parallelism['mean_occupancy'] * 100:.0f}%", "pool occupancy")
    if not tiles:
        return ""
    return '<div class="tiles">' + "".join(tiles) + "</div>"


# -- timeline lanes ---------------------------------------------------------

#: spans drawn per lane before the timeline truncates (keeps the file
#: bounded; the note below the figure says what was dropped)
_MAX_SPANS_PER_LANE = 400


def _timeline(spans: list[dict]) -> str:
    if not spans:
        return ""
    from .telemetry import _lane_name

    by_thread: dict[int, list[dict]] = {}
    for span in spans:
        by_thread.setdefault(span.get("thread", 0), []).append(span)
    # lane order: first span start per thread
    lanes = sorted(
        by_thread.items(),
        key=lambda kv: min(s.get("start", 0.0) for s in kv[1]),
    )
    t0 = min(s.get("start", 0.0) for s in spans)
    t1 = max(s.get("start", 0.0) + s.get("elapsed", 0.0) for s in spans)
    window = max(t1 - t0, 1e-9)
    label_w, plot_w, lane_h, bar_h = 130, 810, 24, 14
    height = lane_h * len(lanes) + 22
    parts = [
        f'<svg viewBox="0 0 {label_w + plot_w} {height}" role="img" '
        f'aria-label="span timeline" width="100%">'
    ]
    dropped = 0
    for row, (_, lane_spans) in enumerate(lanes):
        y = row * lane_h
        name = _lane_name(lane_spans)
        parts.append(
            f'<text x="0" y="{y + bar_h}">{_esc(name)}</text>'
        )
        lane_spans = sorted(lane_spans, key=lambda s: -s.get("elapsed", 0.0))
        dropped += max(len(lane_spans) - _MAX_SPANS_PER_LANE, 0)
        for span in lane_spans[:_MAX_SPANS_PER_LANE]:
            x = label_w + (span.get("start", 0.0) - t0) / window * plot_w
            w = max(span.get("elapsed", 0.0) / window * plot_w, 1.0)
            color = _category(span.get("name", ""))
            title = (f"{span.get('name', '')} — "
                     f"{_fmt_s(span.get('elapsed', 0.0))}")
            parts.append(
                f'<rect x="{x:.2f}" y="{y + 3}" width="{w:.2f}" '
                f'height="{bar_h}" rx="2" fill="var(--{color})" '
                f'stroke="var(--surface)" stroke-width="1">'
                f'<title>{_esc(title)}</title></rect>'
            )
    # time axis: start and end ticks only (recessive)
    parts.append(
        f'<text x="{label_w}" y="{height - 4}">0</text>'
        f'<text x="{label_w + plot_w - 40}" y="{height - 4}">'
        f'{_esc(_fmt_s(window))}</text>'
    )
    parts.append("</svg>")
    legend = (
        '<div class="legend">'
        '<span><span class="sw" style="background:var(--phase)"></span>'
        "phase</span>"
        '<span><span class="sw" style="background:var(--query)"></span>'
        "stream / query</span>"
        '<span><span class="sw" style="background:var(--morsel)"></span>'
        "morsel</span>"
        '<span><span class="sw" style="background:var(--other)"></span>'
        "other</span></div>"
    )
    note = ""
    if dropped:
        note = (f'<p class="note">longest {_MAX_SPANS_PER_LANE} spans shown '
                f"per lane; {dropped} shorter spans not drawn</p>")
    return ("<h2>Span timeline</h2><figure>" + "".join(parts) + legend
            + "</figure>" + note)


# -- latency percentiles ----------------------------------------------------

_PCT_COLS = ("count", "mean", "p50", "p90", "p95", "p99", "max")


def _percentile_row(scope: str, stats: dict) -> str:
    cells = [f"<td>{_esc(scope)}</td>"]
    for col in _PCT_COLS:
        value = stats.get(col, 0)
        cells.append(
            f"<td>{int(value)}</td>" if col == "count"
            else f"<td>{_esc(_fmt_s(float(value)))}</td>"
        )
    return "<tr>" + "".join(cells) + "</tr>"


def _latency(latency: Optional[dict]) -> str:
    if not latency:
        return ""
    header = ("<tr><th>scope</th>" +
              "".join(f"<th>{c}</th>" for c in _PCT_COLS) + "</tr>")
    rows = []
    if latency.get("all"):
        rows.append(_percentile_row("all queries", latency["all"]))
    for run in ("qr1", "qr2"):
        run_stats = latency.get(run) or {}
        if run_stats.get("overall"):
            rows.append(_percentile_row(f"query run {run[-1]}",
                                        run_stats["overall"]))
        for stream, stats in sorted((run_stats.get("streams") or {}).items()):
            rows.append(_percentile_row(f"{run} stream {stream}", stats))
    if not rows:
        return ""
    return ("<h2>Query latency percentiles</h2>"
            "<table>" + header + "".join(rows) + "</table>")


# -- parallelism profile ----------------------------------------------------

def _sparkline(utilization: list[float]) -> str:
    if not utilization:
        return ""
    w, h = 810, 48
    step = w / max(len(utilization) - 1, 1)
    points = " ".join(
        f"{i * step:.1f},{h - u * (h - 4):.1f}"
        for i, u in enumerate(utilization)
    )
    return (
        f'<figure><svg viewBox="0 0 {w} {h + 14}" role="img" '
        f'aria-label="pool utilization over time" width="100%">'
        f'<polyline points="{points}" fill="none" stroke="var(--query)" '
        f'stroke-width="2"><title>pool busy fraction over the run'
        f"</title></polyline>"
        f'<text x="0" y="{h + 12}">run start</text>'
        f'<text x="{w - 52}" y="{h + 12}">run end</text>'
        f"</svg></figure>"
    )


def _parallelism(parallelism: Optional[dict]) -> str:
    if not parallelism or not parallelism.get("morsels"):
        return ""
    out = ["<h2>Parallelism profile</h2>"]
    out.append(
        f'<p class="sub">{parallelism["morsels"]} morsels over '
        f'{parallelism["pool_workers"]} workers; mean occupancy '
        f'{parallelism["mean_occupancy"] * 100:.0f}%, total queue wait '
        f'{_esc(_fmt_s(parallelism.get("queue_wait_s", 0.0)))}</p>'
    )
    out.append(_sparkline(parallelism.get("utilization") or []))
    workers = parallelism.get("workers") or {}
    if workers:
        rows = "".join(
            f"<tr><td>worker {_esc(worker)}</td>"
            f"<td>{stats['morsels']}</td>"
            f"<td>{_esc(_fmt_s(stats['busy_s']))}</td>"
            f"<td>{stats['occupancy'] * 100:.0f}%</td></tr>"
            for worker, stats in sorted(workers.items(),
                                        key=lambda kv: int(kv[0]))
        )
        out.append(
            "<h2>Worker occupancy</h2><table><tr><th>worker</th>"
            "<th>morsels</th><th>busy</th><th>occupancy</th></tr>"
            + rows + "</table>"
        )
    operators = parallelism.get("operators") or []
    if operators:
        rows = "".join(
            f"<tr><td>{_esc(op['operator'])}</td><td>{op['morsels']}</td>"
            f"<td>{_esc(_fmt_s(op['run_s']))}</td>"
            f"<td>{_esc(_fmt_s(op['wait_s']))}</td>"
            f"<td>{op['skew']:.2f}×</td></tr>"
            for op in operators
        )
        out.append(
            "<h2>Operator skew (max/median morsel time)</h2>"
            "<table><tr><th>operator</th><th>morsels</th><th>run</th>"
            "<th>queue wait</th><th>skew</th></tr>" + rows + "</table>"
        )
    return "".join(out)


# -- plan quality -----------------------------------------------------------

def _plan_quality(quality: Optional[dict]) -> str:
    if not quality or not quality.get("worst_offenders"):
        return ""
    rows = "".join(
        f"<tr><td>{_esc(rec['label'])}</td><td>{_esc(rec['query'])}</td>"
        f"<td>{rec['estimated']:,.0f}</td><td>{rec['actual']:,}</td>"
        f"<td>{rec['q_error']:.1f}×"
        f"{' ⚠' if rec.get('misestimate') else ''}</td></tr>"
        for rec in quality["worst_offenders"]
    )
    return (
        "<h2>Plan quality — worst cardinality estimates</h2>"
        f'<p class="sub">{quality.get("operators_seen", 0)} operators '
        f'measured, {quality.get("misestimates", 0)} misestimates '
        f'(&ge; {quality.get("threshold", 4.0):g}×)</p>'
        "<table><tr><th>operator</th><th>query</th><th>estimated</th>"
        "<th>actual</th><th>q-error</th></tr>" + rows + "</table>"
    )


# -- entry ------------------------------------------------------------------

def render_html_report(telemetry: dict) -> str:
    """One telemetry bundle as a complete, dependency-free HTML page."""
    config = telemetry.get("config") or {}
    subtitle = []
    if config.get("scale_factor") is not None:
        subtitle.append(f"sf={config['scale_factor']}")
    if config.get("streams") is not None:
        subtitle.append(f"streams={config['streams']}")
    if config.get("workers"):
        subtitle.append(f"workers={config['workers']}")
    if telemetry.get("generated_at"):
        subtitle.append(str(telemetry["generated_at"]))
    body = [
        "<h1>TPC-DS benchmark telemetry</h1>",
        f'<p class="sub">{_esc(" · ".join(subtitle))}</p>',
        _tiles(telemetry),
        _timeline(telemetry.get("trace") or []),
        _latency(telemetry.get("latency")),
        _parallelism(telemetry.get("parallelism")),
        _plan_quality(telemetry.get("plan_quality")),
    ]
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        "\n<title>TPC-DS benchmark telemetry</title>\n"
        f"<style>{_CSS}</style></head>\n"
        "<body><main>" + "".join(part for part in body if part)
        + "</main></body></html>\n"
    )
