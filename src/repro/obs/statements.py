"""The fingerprinted statement store behind ``sys.statements``.

Every statement the engine executes (while a store is installed on the
:class:`~repro.engine.database.Database`) is fingerprinted
(:mod:`repro.obs.fingerprint`) and folded into per-fingerprint
aggregates: calls, errors, total/min/max elapsed, rows, peak operator
memory, spill bytes/partitions, retries, widest worker fan-out and the
worst plan-quality Q-error observed.  The store is the durable data
plane the admission controller and the Q-error feedback loop consume.

Persistence is a crash-safe JSONL journal (default under
``benchmarks/results/``): each recorded statement appends one
*mergeable delta* line, flushed and fsynced immediately, so a SIGKILL
mid-run loses at most the statement being written.  On open the store
replays the journal (tolerating a torn final line) and, once the
journal grows far past the number of distinct fingerprints, compacts
it back to one aggregate line per fingerprint via the usual
write-temp-then-rename dance.

The store also keeps a bounded in-process statement log (raw SQL,
status, latency, governor outcome) that backs ``sys.queries``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

from .fingerprint import fingerprint, normalize_statement

#: default journal location, per the full-disclosure convention
DEFAULT_STORE_PATH = os.path.join("benchmarks", "results", "statements.jsonl")

#: compact the journal on open once it holds this many lines *and*
#: exceeds eight deltas per distinct fingerprint
COMPACT_MIN_LINES = 1024

#: raw SQL stored in the sys.queries log is truncated to this length
MAX_LOGGED_SQL = 500


@dataclass
class StatementStats:
    """Per-fingerprint aggregates, mergeable across deltas and runs."""

    fingerprint: str
    query: str  # normalized statement text
    calls: int = 0
    errors: int = 0
    total_elapsed: float = 0.0
    min_elapsed: Optional[float] = None
    max_elapsed: float = 0.0
    rows: int = 0
    peak_memory_bytes: float = 0.0
    spill_partitions: int = 0
    spilled_bytes: int = 0
    retries: int = 0
    max_workers: int = 0
    worst_q_error: float = 0.0

    @property
    def mean_elapsed(self) -> float:
        return self.total_elapsed / self.calls if self.calls else 0.0

    def merge(self, delta: dict) -> None:
        """Fold one journal delta (or another stats record) in."""
        self.calls += int(delta.get("calls", 0))
        self.errors += int(delta.get("errors", 0))
        self.total_elapsed += float(delta.get("total", 0.0))
        d_min = delta.get("min")
        if d_min is not None:
            self.min_elapsed = (
                float(d_min) if self.min_elapsed is None
                else min(self.min_elapsed, float(d_min))
            )
        self.max_elapsed = max(self.max_elapsed, float(delta.get("max", 0.0)))
        self.rows += int(delta.get("rows", 0))
        self.peak_memory_bytes = max(
            self.peak_memory_bytes, float(delta.get("peak_mem", 0.0))
        )
        self.spill_partitions += int(delta.get("spill_parts", 0))
        self.spilled_bytes += int(delta.get("spill_bytes", 0))
        self.retries += int(delta.get("retries", 0))
        self.max_workers = max(self.max_workers, int(delta.get("workers", 0)))
        q_err = delta.get("q_err")
        if q_err is not None:
            self.worst_q_error = max(self.worst_q_error, float(q_err))

    def as_delta(self) -> dict:
        """The aggregate as one journal line (used by compaction)."""
        return {
            "fp": self.fingerprint,
            "q": self.query,
            "calls": self.calls,
            "errors": self.errors,
            "total": self.total_elapsed,
            "min": self.min_elapsed,
            "max": self.max_elapsed,
            "rows": self.rows,
            "peak_mem": self.peak_memory_bytes,
            "spill_parts": self.spill_partitions,
            "spill_bytes": self.spilled_bytes,
            "retries": self.retries,
            "workers": self.max_workers,
            "q_err": self.worst_q_error or None,
        }

    def as_dict(self) -> dict:
        """JSON-ready aggregate for reports and ``obs top``."""
        return {
            "fingerprint": self.fingerprint,
            "query": self.query,
            "calls": self.calls,
            "errors": self.errors,
            "total_elapsed": self.total_elapsed,
            "mean_elapsed": self.mean_elapsed,
            "min_elapsed": self.min_elapsed,
            "max_elapsed": self.max_elapsed,
            "rows": self.rows,
            "peak_memory_bytes": self.peak_memory_bytes,
            "spill_partitions": self.spill_partitions,
            "spilled_bytes": self.spilled_bytes,
            "retries": self.retries,
            "max_workers": self.max_workers,
            "worst_q_error": self.worst_q_error,
        }


class StatementStore:
    """Thread-safe fingerprint -> :class:`StatementStats` map with a
    crash-safe JSONL journal and a bounded in-process statement log.

    ``path=None`` keeps the store memory-only (tests, ad-hoc
    sessions); otherwise the journal is replayed on open so history
    survives across processes."""

    def __init__(self, path: Optional[str] = None, keep_queries: int = 256):
        self.path = path
        self._lock = threading.Lock()
        self._stats: dict[str, StatementStats] = {}
        self._log: deque = deque(maxlen=keep_queries)
        self._handle = None
        if path is not None:
            lines = self._replay(path)
            self._maybe_compact(path, lines)
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")

    # -- persistence -------------------------------------------------------

    def _replay(self, path: str) -> int:
        """Merge every journal line (malformed / torn lines skipped —
        a SIGKILL mid-append leaves at most one partial line)."""
        if not os.path.exists(path):
            return 0
        lines = 0
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                lines += 1
                try:
                    delta = json.loads(line)
                except json.JSONDecodeError:
                    continue
                fp = delta.get("fp")
                if not fp:
                    continue
                self._slot(fp, delta.get("q", "")).merge(delta)
        return lines

    def _maybe_compact(self, path: str, lines: int) -> None:
        if lines < COMPACT_MIN_LINES or lines <= 8 * max(len(self._stats), 1):
            return
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for fp in sorted(self._stats):
                handle.write(json.dumps(self._stats[fp].as_delta()) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _append(self, delta: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(delta) + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "StatementStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recording ---------------------------------------------------------

    def _slot(self, fp: str, query: str) -> StatementStats:
        stats = self._stats.get(fp)
        if stats is None:
            stats = StatementStats(fingerprint=fp, query=query)
            self._stats[fp] = stats
        elif not stats.query and query:
            stats.query = query
        return stats

    def record(
        self,
        sql: str,
        elapsed: float,
        status: str = "ok",
        rows: int = 0,
        spill_partitions: int = 0,
        spilled_bytes: int = 0,
        peak_memory_bytes: float = 0.0,
        workers: int = 1,
        q_error: Optional[float] = None,
        error: str = "",
    ) -> StatementStats:
        """Fold one executed statement into its fingerprint's
        aggregates, journal the delta, and log it for ``sys.queries``."""
        fp = fingerprint(sql)
        delta = {
            "fp": fp,
            "q": normalize_statement(sql),
            "calls": 1,
            "errors": 0 if status == "ok" else 1,
            "total": elapsed,
            "min": elapsed,
            "max": elapsed,
            "rows": rows,
            "peak_mem": peak_memory_bytes,
            "spill_parts": spill_partitions,
            "spill_bytes": spilled_bytes,
            "workers": workers,
            "q_err": q_error,
        }
        with self._lock:
            stats = self._slot(fp, delta["q"])
            stats.merge(delta)
            self._append(delta)
            self._log.append({
                "ts": time.time(),
                "fingerprint": fp,
                "query": sql.strip()[:MAX_LOGGED_SQL],
                "status": status,
                "elapsed": elapsed,
                "rows": rows,
                "spill_partitions": spill_partitions,
                "spilled_bytes": spilled_bytes,
                "workers": workers,
                "error": error[:MAX_LOGGED_SQL],
            })
        return stats

    def note_retry(self, sql: str, count: int = 1) -> None:
        """Credit ``count`` runner-level retries to a statement's
        fingerprint (the engine itself never retries)."""
        fp = fingerprint(sql)
        delta = {"fp": fp, "q": normalize_statement(sql), "retries": count}
        with self._lock:
            self._slot(fp, delta["q"]).merge(delta)
            self._append(delta)

    # -- reading -----------------------------------------------------------

    def statements(self) -> list[StatementStats]:
        """All aggregates, ordered by fingerprint (deterministic)."""
        with self._lock:
            return [self._stats[fp] for fp in sorted(self._stats)]

    def get(self, fp: str) -> Optional[StatementStats]:
        with self._lock:
            return self._stats.get(fp)

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    def recent(self) -> list[dict]:
        """The bounded in-process statement log (``sys.queries``)."""
        with self._lock:
            return list(self._log)

    def top(self, by: str = "total_elapsed", limit: int = 10) -> list[StatementStats]:
        """The worst offenders by an aggregate column (ties broken by
        fingerprint so output is stable)."""
        rows = self.statements()
        if rows and not hasattr(rows[0], by):
            raise ValueError(f"unknown statement-store column {by!r}")
        return sorted(
            rows, key=lambda s: (-(getattr(s, by) or 0), s.fingerprint)
        )[:limit]

    def as_dict(self, limit: int = 10) -> dict:
        """JSON-ready summary for the disclosure report: top offenders
        by total elapsed time and by spilled bytes."""
        return {
            "path": self.path,
            "fingerprints": len(self),
            "top_elapsed": [s.as_dict() for s in self.top("total_elapsed", limit)],
            "top_spilled": [
                s.as_dict()
                for s in self.top("spilled_bytes", limit)
                if s.spilled_bytes
            ],
        }


def load_store(path: str) -> StatementStore:
    """Open a store read-mostly (the CLI's ``obs top`` entry point)."""
    return StatementStore(path)
