"""Worker-pool profiling: queue wait, occupancy, and morsel skew.

Two granularities over the same measurements:

* :class:`MorselProfile` — one operator dispatch's per-morsel queue
  wait and run time.  The executor hands one to
  ``WorkerPool.map_morsels`` when a stats collector is live, then
  reads ``skew`` (max/median morsel run time — the load-imbalance
  ratio) and total wait off it for EXPLAIN ANALYZE's ``skew=`` /
  ``wait=`` counters.
* :class:`PoolProfiler` — the run-wide aggregation the benchmark
  installs (``get_profiler`` / ``set_profiler`` mirror the tracer and
  registry globals, disabled by default).  The pool feeds it every
  dispatched morsel; it keeps per-worker busy time (occupancy),
  per-operator skew statistics, and the raw records a utilization
  timeline is binned from.  ``as_dict()`` is the "Parallelism profile"
  section of the disclosure report and the HTML dashboard.

The disabled default is a no-op guarded by one attribute check, so the
pool's hot dispatch path pays nothing when nobody is profiling.
"""

from __future__ import annotations

import statistics
import threading
import time


def skew_ratio(run_times: list[float]) -> float:
    """Load imbalance of one fan-out: max over median morsel run time
    (1.0 = perfectly balanced; < 2 morsels can't be skewed)."""
    if len(run_times) < 2:
        return 1.0
    median = statistics.median(run_times)
    if median <= 0.0:
        return 1.0
    return max(run_times) / median


class MorselProfile:
    """Per-morsel measurements of a single operator dispatch."""

    __slots__ = ("waits", "runs", "workers", "_lock")

    def __init__(self):
        self.waits: list[float] = []
        self.runs: list[float] = []
        self.workers: set[int] = set()
        self._lock = threading.Lock()

    def note(self, worker: int, wait_s: float, run_s: float) -> None:
        """Record one finished morsel (called from pool workers)."""
        with self._lock:
            self.waits.append(wait_s)
            self.runs.append(run_s)
            self.workers.add(worker)

    @property
    def morsels(self) -> int:
        return len(self.runs)

    def total_wait(self) -> float:
        return sum(self.waits)

    def skew(self) -> float:
        return skew_ratio(self.runs)


class PoolProfiler:
    """Run-wide pool telemetry: occupancy, queue wait, operator skew.

    Thread-safe; every mutation takes one short lock.  Records are the
    raw material: ``(label, worker, start_wall, wait_s, run_s)`` per
    dispatched morsel, aggregated on demand.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self.records: list[tuple[str, int, float, float, float]] = []
        #: pool capacity (set by the pool on first dispatch; 0 = unknown)
        self.pool_workers = 0

    def note(self, label: str, worker: int, start_wall: float,
             wait_s: float, run_s: float) -> None:
        """Record one finished morsel task."""
        with self._lock:
            self.records.append((label, worker, start_wall, wait_s, run_s))

    def note_pool(self, workers: int) -> None:
        """Record the capacity of the pool feeding this profiler."""
        with self._lock:
            if workers > self.pool_workers:
                self.pool_workers = workers

    # -- aggregations ------------------------------------------------------

    def window(self) -> tuple[float, float]:
        """(first morsel start, last morsel end) in wall-clock seconds."""
        with self._lock:
            records = list(self.records)
        if not records:
            now = time.time()
            return (now, now)
        start = min(r[2] for r in records)
        end = max(r[2] + r[4] for r in records)
        return (start, end)

    def worker_occupancy(self) -> dict[int, dict]:
        """Per-worker busy seconds, morsel count and busy fraction of
        the profiled window."""
        with self._lock:
            records = list(self.records)
        start, end = self.window()
        span = max(end - start, 1e-9)
        out: dict[int, dict] = {}
        for _, worker, _, _, run_s in records:
            slot = out.setdefault(worker, {"busy_s": 0.0, "morsels": 0})
            slot["busy_s"] += run_s
            slot["morsels"] += 1
        for slot in out.values():
            slot["occupancy"] = min(slot["busy_s"] / span, 1.0)
        return out

    def mean_occupancy(self) -> float:
        """Mean busy fraction across workers (the pool capacity when
        known, else the workers actually seen)."""
        per_worker = self.worker_occupancy()
        if not per_worker:
            return 0.0
        n = max(self.pool_workers, len(per_worker))
        return sum(s["occupancy"] for s in per_worker.values()) / n

    def operator_profile(self) -> list[dict]:
        """Per-operator skew statistics, worst skew first."""
        by_label: dict[str, dict] = {}
        with self._lock:
            records = list(self.records)
        runs: dict[str, list[float]] = {}
        for label, _, _, wait_s, run_s in records:
            slot = by_label.setdefault(
                label, {"operator": label, "morsels": 0,
                        "run_s": 0.0, "wait_s": 0.0}
            )
            slot["morsels"] += 1
            slot["run_s"] += run_s
            slot["wait_s"] += wait_s
            runs.setdefault(label, []).append(run_s)
        for label, slot in by_label.items():
            times = runs[label]
            slot["max_run_s"] = max(times)
            slot["median_run_s"] = statistics.median(times)
            slot["skew"] = skew_ratio(times)
        return sorted(by_label.values(), key=lambda s: -s["skew"])

    def utilization_timeline(self, bins: int = 60) -> list[float]:
        """Pool busy fraction per time bin over the profiled window —
        the sparkline series (0.0 idle .. 1.0 all workers busy)."""
        with self._lock:
            records = list(self.records)
        if not records:
            return []
        start, end = self.window()
        span = max(end - start, 1e-9)
        width = span / bins
        workers = max(self.pool_workers,
                      len({r[1] for r in records}), 1)
        busy = [0.0] * bins
        for _, _, t0, _, run_s in records:
            t1 = t0 + run_s
            first = min(int((t0 - start) / width), bins - 1)
            last = min(int((t1 - start) / width), bins - 1)
            for b in range(first, last + 1):
                bin_start = start + b * width
                bin_end = bin_start + width
                busy[b] += max(0.0, min(t1, bin_end) - max(t0, bin_start))
        return [min(b / (width * workers), 1.0) for b in busy]

    def as_dict(self) -> dict:
        """The "Parallelism profile" payload: window, per-worker
        occupancy, per-operator skew table, utilization timeline."""
        start, end = self.window()
        per_worker = self.worker_occupancy()
        with self._lock:
            records = list(self.records)
        return {
            "pool_workers": max(self.pool_workers, len(per_worker)),
            "morsels": len(records),
            "window_s": max(end - start, 0.0),
            "queue_wait_s": sum(r[3] for r in records),
            "mean_occupancy": self.mean_occupancy(),
            "workers": {
                str(worker): stats
                for worker, stats in sorted(per_worker.items())
            },
            "operators": self.operator_profile(),
            "utilization": self.utilization_timeline(),
        }

    def clear(self) -> None:
        """Drop every record (fresh runs, tests)."""
        with self._lock:
            self.records.clear()
            self.pool_workers = 0


#: shared always-disabled profiler for unguarded call sites
NULL_PROFILER = PoolProfiler(enabled=False)

#: the process-wide profiler; disabled until a run opts in
_GLOBAL = NULL_PROFILER


def get_profiler() -> PoolProfiler:
    """The process-wide pool profiler (disabled by default)."""
    return _GLOBAL


def set_profiler(profiler: PoolProfiler) -> PoolProfiler:
    """Replace the process-wide profiler; returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = profiler
    return previous
