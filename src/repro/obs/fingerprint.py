"""Statement fingerprinting: normalized SQL -> stable hash.

pg_stat_statements-style: two statements that differ only in literal
values share one fingerprint, so the statement store can aggregate all
qgen variants of a template under a single key.  Normalization rules
(applied on the engine lexer's token stream, so comments and whitespace
are already gone):

* ``NUMBER`` and ``STRING`` literals (including ``DATE '...'``) become
  the placeholder ``?``;
* runs of placeholders inside an IN-list collapse to a single one —
  ``IN (?, ?, ?)`` and ``IN (?)`` fingerprint identically, because
  qgen emits IN-lists whose *length* varies per stream;
* keywords are uppercased and identifiers lowercased (the lexer
  already folds case), and tokens are joined with single spaces.

The fingerprint is the first 16 hex digits of the SHA-256 of the
normalized text: stable across processes, platforms and runs.
Statements the lexer rejects fall back to whitespace-collapsed raw
text, so even unparseable input gets a deterministic fingerprint.
"""

from __future__ import annotations

import hashlib
import re
from functools import lru_cache

_WHITESPACE = re.compile(r"\s+")


def _normalize_tokens(sql: str) -> str:
    # lazy import: repro.engine imports repro.obs at module load, so a
    # module-level import here would cycle back into the half-built
    # engine package
    from ..engine.sql.lexer import tokenize

    parts: list[str] = []
    for token in tokenize(sql):
        if token.type == "EOF":
            break
        if token.type in ("NUMBER", "STRING"):
            parts.append("?")
        else:
            parts.append(token.value)
    # DATE '1999-01-01' normalized to DATE ? — drop the keyword too so
    # a plain string literal in the same slot fingerprints identically
    out: list[str] = []
    for part in parts:
        if part == "?" and out and out[-1] == "DATE":
            out[-1] = "?"
        else:
            out.append(part)
    # collapse literal runs: "? , ? , ?" -> "?" (IN-lists of varying
    # length share one fingerprint)
    collapsed: list[str] = []
    for part in out:
        if (
            part == "?"
            and len(collapsed) >= 2
            and collapsed[-1] == ","
            and collapsed[-2] == "?"
        ):
            collapsed.pop()
            continue
        collapsed.append(part)
    return " ".join(collapsed)


@lru_cache(maxsize=4096)
def normalize_statement(sql: str) -> str:
    """The literal-stripped, case-folded, single-spaced form of ``sql``."""
    try:
        return _normalize_tokens(sql)
    except Exception:
        return _WHITESPACE.sub(" ", sql.strip())


@lru_cache(maxsize=4096)
def fingerprint(sql: str) -> str:
    """A 16-hex-digit stable hash of the normalized statement."""
    normalized = normalize_statement(sql)
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]
