"""A lightweight metrics registry: counters, gauges, histograms.

Instruments are cheap plain-Python objects; the registry is a named
collection of them with a JSON-serializable snapshot.  A *disabled*
registry (the global default) hands out no-op instruments so that
instrumentation sites cost one attribute check and one dict lookup at
creation time and nothing per observation.

Usage::

    from repro.obs import get_registry

    reg = get_registry()
    reg.counter("dsdgen.rows").add(1000)
    reg.gauge("dsdgen.rows_per_sec", labels={"table": "store_sales"}).set(52_000.0)
    reg.histogram("engine.query_ms").observe(elapsed * 1000)
    json.dumps(reg.snapshot())

Histograms keep count / sum / min / max plus fixed log2 buckets, so
they are bounded-memory and mergeable.  All instruments are
thread-safe: each carries its own lock, so observations from
concurrent benchmark streams and morsel workers only contend when they
hit the *same* instrument (the registry lock guards only instrument
creation and snapshots).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Optional


class Counter:
    """A monotonically increasing count (events, rows, bytes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        """Snapshot as a plain dict."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (rows/sec, queue depth)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self.value = value

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (high-water
        marks: peak operator memory, max queue depth)."""
        with self._lock:
            if value > self.value:
                self.value = value

    def as_dict(self) -> dict:
        """Snapshot as a plain dict."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A bounded-memory distribution: count/sum/min/max + log2 buckets.

    Bucket ``i`` counts observations in ``[2**(i-1-OFFSET),
    2**(i-OFFSET))``; the offset centres the range on sub-second
    latencies, so the covered span is ``2**-32`` .. ``2**31`` (bucket 0
    absorbs anything smaller, the last bucket anything larger).  Good
    enough to read p50/p95 off a latency distribution without keeping
    samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    #: bucket count and the power-of-two shift placing 1.0 mid-range
    N_BUCKETS = 64
    OFFSET = 32

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * self.N_BUCKETS
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if value <= 0.0:
                index = 0
            else:
                index = math.floor(math.log2(value)) + 1 + self.OFFSET
                index = min(max(index, 0), self.N_BUCKETS - 1)
            self.buckets[index] += 1

    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding
        the q-th observation (0 when empty).  The edges are exact:
        ``q <= 0`` returns the smallest observation and ``q >= 1`` the
        largest, so percentile tables never overshoot the data range."""
        if not self.count:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        seen = 0
        for index, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return min(float(2.0 ** (index - self.OFFSET)), self.max)
        return self.max

    def as_dict(self) -> dict:
        """Snapshot as a plain dict (buckets trimmed to non-zero)."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": {str(i): n for i, n in enumerate(self.buckets) if n},
        }


class _NullInstrument:
    """Absorbs every observation; handed out by a disabled registry."""

    __slots__ = ()

    def add(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def set_max(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""


_NULL_INSTRUMENT = _NullInstrument()


def _key(name: str, labels: Optional[dict]) -> str:
    if not labels:
        return name
    tail = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{tail}}}"


class MetricsRegistry:
    """A named collection of instruments with a JSON snapshot.

    ``enabled=False`` (the global default) makes every factory return
    the shared no-op instrument, so disabled call sites record nothing
    and allocate nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get(self, cls, name: str, labels: Optional[dict]):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = _key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                # per-instrument lock: hot-path observations from the
                # worker pool don't serialize on the registry lock
                instrument = cls(key, threading.Lock())
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(f"metric {key!r} already registered as "
                                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str, labels: Optional[dict] = None) -> Counter:
        """Get-or-create the counter ``name`` (optionally labelled)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[dict] = None) -> Gauge:
        """Get-or-create the gauge ``name`` (optionally labelled)."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, labels: Optional[dict] = None) -> Histogram:
        """Get-or-create the histogram ``name`` (optionally labelled)."""
        return self._get(Histogram, name, labels)

    def snapshot(self) -> dict:
        """All instruments as ``{name: {type, ...}}``, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.as_dict() for name, inst in items}

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot serialized as JSON text."""
        return json.dumps(self.snapshot(), indent=indent)

    def clear(self) -> None:
        """Drop every instrument (tests and fresh benchmark runs)."""
        with self._lock:
            self._instruments.clear()


#: the process-wide registry; disabled until someone opts in
_GLOBAL = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide registry (disabled by default)."""
    return _GLOBAL


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous
