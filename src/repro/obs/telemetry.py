"""Continuous telemetry: Chrome-trace export, latency percentiles,
and a background metrics sampler.

Three pieces that turn the run-scoped observability primitives into
artifacts a human (or a viewer) can consume after the fact:

* :func:`to_chrome_trace` renders a :class:`~repro.obs.Tracer` span
  timeline as a Chrome-trace-format document (the JSON Perfetto and
  ``chrome://tracing`` load).  Spans are anchored to the tracer's
  wall-clock epoch and mapped onto pid/tid lanes, so the statement
  thread, the benchmark streams and every pool worker appear as
  parallel tracks.  :func:`validate_chrome_trace` is the structural
  check CI and the tests run against the emitted document.
* :func:`latency_percentiles` folds a list of latencies through one
  :class:`~repro.obs.metrics.Histogram` and reads p50/p90/p95/p99 off
  it — the single percentile definition shared by the runner's report
  tables, the telemetry bundle and the ``BENCH_*.json`` payloads.
* :class:`MetricsSampler` snapshots the metrics registry on a
  background thread at a fixed interval into an in-memory time series
  (optionally mirrored to JSONL), giving gauges and counters a time
  axis instead of a single end-of-run value.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Optional, Sequence

from .metrics import Histogram, MetricsRegistry, get_registry

#: the percentile surface every latency table reports
PERCENTILES = (("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99))


def latency_percentiles(values: Sequence[float]) -> dict:
    """p50/p90/p95/p99 (plus count/mean/max) of ``values`` read off a
    log2-bucket :class:`Histogram` — empty input yields zeros."""
    hist = Histogram("latency", threading.Lock())
    for value in values:
        hist.observe(value)
    out = {"count": hist.count, "mean": hist.mean(),
           "max": hist.max if hist.count else 0.0}
    for name, q in PERCENTILES:
        out[name] = hist.quantile(q)
    return out


# -- Chrome trace export ---------------------------------------------------

def _lane_name(spans_on_thread: list[dict]) -> str:
    """A human label for one thread's lane, inferred from what ran on
    it: pool workers are tagged by their morsel spans, service workers
    by their service:statement spans, benchmark streams by their stream
    spans, the statement thread by its phases."""
    workers = {
        s["attrs"]["worker"]
        for s in spans_on_thread
        if s["name"].startswith("morsel:") and "worker" in s.get("attrs", {})
    }
    if workers:
        return f"pool worker {min(workers)}"
    service_workers = {
        s["attrs"]["worker"]
        for s in spans_on_thread
        if s["name"].startswith("service:") and "worker" in s.get("attrs", {})
    }
    if service_workers:
        return f"service worker {min(service_workers)}"
    streams = {
        s["attrs"]["stream"]
        for s in spans_on_thread
        if s["name"] == "stream" and "stream" in s.get("attrs", {})
    }
    if streams:
        if len(streams) == 1:
            return f"stream {next(iter(streams))}"
        return "streams " + ",".join(str(s) for s in sorted(streams))
    if any(s["name"].startswith("phase:") for s in spans_on_thread):
        return "benchmark"
    return "thread"


def to_chrome_trace(spans: list[dict], process_name: str = "tpcds-py") -> dict:
    """Render exported spans (``Span.as_dict()`` dicts) as a
    Chrome-trace-format document.

    Every span becomes one complete event (``ph: "X"``) with
    microsecond ``ts``/``dur`` taken from its wall-clock anchored
    start; the span's thread becomes its ``tid`` lane, labelled via
    ``thread_name`` metadata so Perfetto shows named parallel tracks
    (statement thread, streams, pool workers)."""
    by_thread: dict[int, list[dict]] = {}
    for span in spans:
        by_thread.setdefault(span.get("thread", 0), []).append(span)
    # stable lane order: first appearance in (start-ordered) span list
    tids: dict[int, int] = {}
    for span in sorted(spans, key=lambda s: s.get("start", 0.0)):
        thread = span.get("thread", 0)
        if thread not in tids:
            tids[thread] = len(tids)
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": process_name}},
    ]
    for thread, tid in tids.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
            "args": {"name": _lane_name(by_thread[thread])},
        })
    for span in spans:
        start = span.get("wall_start", span.get("start", 0.0))
        args = {k: v for k, v in span.get("attrs", {}).items()}
        args["span_id"] = span.get("id")
        if span.get("parent") is not None:
            args["parent_span_id"] = span["parent"]
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": span["name"].split(":", 1)[0],
            "ts": round(start * 1e6, 3),
            "dur": round(span.get("elapsed", 0.0) * 1e6, 3),
            "pid": 0,
            "tid": tids.get(span.get("thread", 0), 0),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: dict) -> list[str]:
    """Structural errors in a Chrome-trace document (empty = valid).

    Checks the JSON-object format Perfetto accepts: a ``traceEvents``
    list whose duration events carry ``name``/``ph``/``ts``/``dur``/
    ``pid``/``tid`` with numeric, non-negative timestamps."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        errors.append("traceEvents is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index} is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "C"):
            errors.append(f"event {index}: unknown phase {ph!r}")
        for field in ("name", "pid", "tid"):
            if field not in event:
                errors.append(f"event {index}: missing {field!r}")
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"event {index}: bad {field!r}: {value!r}")
    return errors


def worker_lanes(doc: dict) -> list[str]:
    """The pool-worker lane names declared in a Chrome-trace document
    (the ``workers=2`` acceptance check counts these)."""
    return sorted(
        event["args"]["name"]
        for event in doc.get("traceEvents", [])
        if event.get("ph") == "M" and event.get("name") == "thread_name"
        and event.get("args", {}).get("name", "").startswith("pool worker")
    )


# -- background metrics sampling -------------------------------------------

class MetricsSampler:
    """Snapshots a :class:`MetricsRegistry` at a fixed interval on a
    daemon thread, accumulating ``{"ts": wall_clock, "metrics": ...}``
    samples in memory and (optionally) appending each as one JSONL
    line to ``path``.

    Lifecycle: ``start()`` launches the thread, ``stop()`` joins it and
    takes one final sample so the series always covers the full window
    even when the run is shorter than the interval.  Usable as a
    context manager.  A disabled registry yields empty snapshots, so an
    accidentally-on sampler records timestamps but no data.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        interval_s: float = 0.25,
        path: Optional[str] = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.registry = registry if registry is not None else get_registry()
        self.interval_s = interval_s
        self.path = path
        self.samples: list[dict] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._handle = None
        self._stopped = False

    def sample(self) -> dict:
        """Take (and record) one snapshot immediately."""
        record = {"ts": time.time(), "metrics": self.registry.snapshot()}
        self.samples.append(record)
        if self._handle is not None:
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
        return record

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample()

    def start(self) -> "MetricsSampler":
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None:
            return self
        if self.path is not None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._stop.clear()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, name="obs-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> list[dict]:
        """Stop sampling, take a final snapshot, return the series.

        Idempotent: only the first call takes the final sample and
        closes the JSONL mirror; later calls just return the series
        (both the runner's ``finally`` and a context-manager ``__exit__``
        may call it)."""
        if self._stopped:
            return self.samples
        self._stopped = True
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        return self.samples

    def __enter__(self) -> "MetricsSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def load_metrics_series(path: str) -> list[dict]:
    """Load a sampler's JSONL mirror, tolerating a torn final line (a
    run killed mid-append leaves at most one partial record).  Missing
    file -> empty series."""
    if not os.path.exists(path):
        return []
    series = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "ts" in record:
                series.append(record)
    return series
