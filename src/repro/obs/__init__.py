"""`repro.obs` — the engine-wide observability layer.

Three cooperating pieces, all designed for near-zero overhead when
disabled (the default):

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms.  Components record rates (dsdgen rows/sec,
  maintenance op counts) into the global registry; snapshots export as
  JSON.
* :mod:`repro.obs.tracing` — a span-based tracer.  A span is a named,
  timed interval with attributes and an optional parent; the benchmark
  runner uses spans to build per-stream / per-query timelines and
  per-phase (load / power / throughput / maintenance) breakdowns that
  feed the full-disclosure report.
* :mod:`repro.obs.exec_stats` — per-operator execution statistics
  (rows in/out, elapsed, hash-build sizes, bitmap probe counts,
  CTE-memo hits) collected by the executor and rendered by
  ``EXPLAIN ANALYZE``.

The global tracer and registry start *disabled*: every instrumentation
site is guarded by a single attribute check, so a run that never turns
observability on pays only that check (measured < 2% on the tier-1
query suite — see ``benchmarks/check_overhead.py``).
"""

from .exec_stats import ExecStatsCollector, OperatorStats, annotate_plan, plan_to_dict
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry, set_registry
from .tracing import NULL_TRACER, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "ExecStatsCollector",
    "OperatorStats",
    "annotate_plan",
    "plan_to_dict",
]
