"""`repro.obs` — the engine-wide observability layer.

Three cooperating pieces, all designed for near-zero overhead when
disabled (the default):

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms.  Components record rates (dsdgen rows/sec,
  maintenance op counts) into the global registry; snapshots export as
  JSON.
* :mod:`repro.obs.tracing` — a span-based tracer.  A span is a named,
  timed interval with attributes and an optional parent; the benchmark
  runner uses spans to build per-stream / per-query timelines and
  per-phase (load / power / throughput / maintenance) breakdowns that
  feed the full-disclosure report.
* :mod:`repro.obs.exec_stats` — per-operator execution statistics
  (rows in/out, elapsed, hash-build sizes, bitmap probe counts,
  CTE-memo hits, peak operator memory, estimate Q-error) collected by
  the executor and rendered by ``EXPLAIN ANALYZE``.
* :mod:`repro.obs.plan_quality` — aggregates per-operator Q-error
  across a query run into worst-offender diagnostics for the
  full-disclosure report.
* :mod:`repro.obs.regress` — benchmark regression tracking: appends
  bench results to ``history.jsonl`` keyed by git SHA and diffs the
  latest two runs under a noise threshold (``tpcds-py obs diff``).
* :mod:`repro.obs.telemetry` — Chrome-trace/Perfetto export of the
  span timeline, shared latency-percentile math, and the background
  :class:`MetricsSampler` that gives registry metrics a time axis.
* :mod:`repro.obs.profile` — worker-pool profiling: per-morsel queue
  wait and run time, per-worker occupancy, per-operator skew.
* :mod:`repro.obs.report_html` — the self-contained HTML dashboard
  rendered by ``tpcds-py obs report``.
* :mod:`repro.obs.fingerprint` / :mod:`repro.obs.statements` — SQL
  statement fingerprinting (normalized text -> stable hash) and the
  crash-safe per-fingerprint :class:`StatementStore` that backs the
  ``sys.statements`` / ``sys.queries`` system tables.

The global tracer and registry start *disabled*: every instrumentation
site is guarded by a single attribute check, so a run that never turns
observability on pays only that check (measured < 2% on the tier-1
query suite — see ``benchmarks/check_overhead.py``).
"""

from .fingerprint import fingerprint, normalize_statement
from .statements import (
    DEFAULT_STORE_PATH,
    StatementStats,
    StatementStore,
    load_store,
)
from .exec_stats import (
    MISESTIMATE_THRESHOLD,
    ExecStatsCollector,
    OperatorStats,
    annotate_plan,
    format_bytes,
    plan_to_dict,
    q_error,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry, set_registry
from .plan_quality import OperatorQuality, PlanQualityAggregator, collect_plan_quality
from .profile import (
    NULL_PROFILER,
    MorselProfile,
    PoolProfiler,
    get_profiler,
    set_profiler,
    skew_ratio,
)
from .regress import (
    BenchDelta,
    ComparisonReport,
    append_history,
    compare_latest,
    git_sha,
    load_history,
    prune_history,
)
from .report_html import render_html_report
from .telemetry import (
    PERCENTILES,
    MetricsSampler,
    latency_percentiles,
    load_metrics_series,
    to_chrome_trace,
    validate_chrome_trace,
    worker_lanes,
)
from .tracing import NULL_TRACER, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "ExecStatsCollector",
    "OperatorStats",
    "annotate_plan",
    "plan_to_dict",
    "q_error",
    "format_bytes",
    "MISESTIMATE_THRESHOLD",
    "OperatorQuality",
    "PlanQualityAggregator",
    "collect_plan_quality",
    "BenchDelta",
    "ComparisonReport",
    "append_history",
    "compare_latest",
    "git_sha",
    "load_history",
    "PERCENTILES",
    "MetricsSampler",
    "latency_percentiles",
    "load_metrics_series",
    "to_chrome_trace",
    "validate_chrome_trace",
    "worker_lanes",
    "MorselProfile",
    "PoolProfiler",
    "NULL_PROFILER",
    "get_profiler",
    "set_profiler",
    "skew_ratio",
    "render_html_report",
    "fingerprint",
    "normalize_statement",
    "StatementStats",
    "StatementStore",
    "DEFAULT_STORE_PATH",
    "load_store",
    "prune_history",
]
