"""Span-based tracing with JSON export.

A :class:`Span` is a named, timed interval with free-form attributes
and an optional parent, forming per-thread trees::

    tracer = Tracer(enabled=True)
    with tracer.span("query_run", run=1):
        with tracer.span("stream", stream=0):
            with tracer.span("query", template=52) as span:
                ...
                span.set(rows=100)

Nesting is tracked per thread (benchmark streams run on a thread
pool), finished spans land in one flat, lock-guarded list, and
``export()`` renders them as JSON-ready dicts — the *span timeline*
the benchmark report consumes.

A disabled tracer (module default, see :func:`get_tracer`) returns a
shared no-op span from ``span()``: the cost of a disabled site is one
method call and one attribute check, no allocation, no clock read.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Optional


class Span:
    """One named, timed interval in a trace tree."""

    __slots__ = ("name", "attrs", "start", "end", "span_id", "parent_id",
                 "thread", "_tracer")

    def __init__(self, name: str, attrs: dict, span_id: int,
                 parent_id: Optional[int], tracer: "Tracer"):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = 0.0
        self.end = 0.0
        self.thread = 0
        self._tracer = tracer

    @property
    def elapsed(self) -> float:
        """Duration in seconds (0 while the span is still open)."""
        return max(self.end - self.start, 0.0)

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.thread = threading.get_ident()
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.end = time.perf_counter()
        self._tracer._pop(self)

    def as_dict(self) -> dict:
        """JSON-ready representation of a finished span.

        ``start`` stays a monotonic ``perf_counter`` reading (what the
        in-process report math uses); ``wall_start`` is the same instant
        anchored to the tracer's wall-clock epoch, so spans from
        separate runs or processes line up in a trace viewer."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "wall_start": self._tracer.wall_time(self.start),
            "elapsed": self.elapsed,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The span handed out by a disabled tracer; absorbs everything."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        """No-op."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Creates spans, tracks per-thread nesting, exports the timeline."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        # id allocation is lock-free: next() on itertools.count is
        # atomic under the GIL, so the hot span() path takes no lock
        self._ids = itertools.count()
        #: paired (wall-clock, perf_counter) readings taken together so
        #: monotonic span times map onto absolute wall-clock instants
        self.epoch = (time.time(), time.perf_counter())

    def wall_time(self, perf_t: float) -> float:
        """Map a ``perf_counter`` reading onto this tracer's wall clock."""
        wall0, perf0 = self.epoch
        return wall0 + (perf_t - perf0)

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, parent: Optional[Span] = None, **attrs: Any):
        """Open a span (use as a context manager).  The parent defaults
        to the innermost open span *on this thread*; pass ``parent=``
        to nest across threads (benchmark streams).  When the tracer is
        disabled this returns a shared no-op span."""
        if not self.enabled:
            return _NULL_SPAN
        if parent is not None:
            parent_id = parent.span_id
        else:
            stack = getattr(self._local, "stack", None)
            parent_id = stack[-1].span_id if stack else None
        return Span(name, attrs, next(self._ids), parent_id, self)

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", [])
        if stack and stack[-1] is span:
            stack.pop()
        else:
            # out-of-order exit: worker-pool threads are long-lived and
            # reused across streams, so a dangling entry would silently
            # become the parent of every later span on that thread —
            # remove the span wherever it sits instead
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(span)

    @contextmanager
    def installed(self):
        """Install this tracer as the process-wide tracer for the
        duration of the ``with`` block (restores the previous one)."""
        previous = set_tracer(self)
        try:
            yield self
        finally:
            set_tracer(previous)

    # -- export ------------------------------------------------------------

    def export(self) -> list[dict]:
        """All finished spans as JSON-ready dicts, ordered by start time."""
        with self._lock:
            spans = list(self._finished)
        return [s.as_dict() for s in sorted(spans, key=lambda s: s.start)]

    def to_json(self, indent: int | None = 2) -> str:
        """The exported timeline as JSON text."""
        return json.dumps(self.export(), indent=indent)

    def clear(self) -> None:
        """Drop all finished spans."""
        with self._lock:
            self._finished.clear()

    def total(self, name: str) -> float:
        """Sum of elapsed time across finished spans named ``name``."""
        with self._lock:
            return sum(s.elapsed for s in self._finished if s.name == name)


#: shared always-disabled tracer for call sites that need *a* tracer
NULL_TRACER = Tracer(enabled=False)

#: the process-wide tracer; disabled until someone opts in
_GLOBAL = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled by default)."""
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = tracer
    return previous
