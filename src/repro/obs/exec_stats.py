"""Per-operator execution statistics for EXPLAIN ANALYZE.

The executor, when handed an :class:`ExecStatsCollector`, records for
every plan node it runs: output rows, inclusive elapsed time, number
of invocations, CTE-memo hits, peak operator memory, and
operator-specific counters (hash build/probe sizes, bitmap probe
counts, pushed-filter counts, ...).

:func:`annotate_plan` then renders the optimized plan tree with those
numbers attached — the body of ``EXPLAIN ANALYZE`` — and
:func:`plan_to_dict` produces the same tree as JSON-ready dicts for
machine consumers (benchmark disclosure, regression tracking). When
the optimizer attached ``estimated_rows`` to a node, both also report
the per-operator **Q-error** (``max(est, act) / min(est, act)``, the
standard plan-quality measure) and flag misestimates beyond
:data:`MISESTIMATE_THRESHOLD`.

This module is duck-typed against plan nodes (anything with
``label()`` and ``children()``), so it has no dependency on the engine
and the engine pays nothing for it when no collector is installed.
"""

from __future__ import annotations

import threading
from typing import Optional

#: a per-operator Q-error at or beyond this is flagged as a misestimate
#: (a factor-4 error is the conventional "the optimizer was wrong
#: enough to pick a different plan" bar)
MISESTIMATE_THRESHOLD = 4.0


def q_error(estimated: float, actual: float) -> float:
    """The Q-error of a cardinality estimate: ``max/min`` of the
    estimated and actual row counts, both clamped to >= 1 so empty
    results don't divide by zero. 1.0 is a perfect estimate."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est, act) / min(est, act)


class OperatorStats:
    """Measured execution facts for one plan node."""

    __slots__ = ("rows_out", "elapsed", "invocations", "memo_hits", "extra")

    def __init__(self):
        self.rows_out = 0
        self.elapsed = 0.0
        self.invocations = 0
        self.memo_hits = 0
        self.extra: dict[str, float] = {}

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        out = {
            "rows": self.rows_out,
            "elapsed": self.elapsed,
            "invocations": self.invocations,
        }
        if self.memo_hits:
            out["memo_hits"] = self.memo_hits
        if self.extra:
            out.update(self.extra)
        return out


class ExecStatsCollector:
    """Accumulates :class:`OperatorStats` keyed by plan-node identity.

    One collector observes one statement execution; executors call
    :meth:`record` / :meth:`memo_hit` / :meth:`add` (all cheap), and
    the EXPLAIN ANALYZE renderer reads the result.

    Thread-safe: under the morsel-driven worker pool one statement's
    operators (and concurrent subquery executors) record from multiple
    threads, so every mutation runs under a lock — sums never lose
    increments and max-semantics counters never regress.
    """

    def __init__(self):
        self.nodes: dict[int, OperatorStats] = {}
        #: largest single-operator memory footprint seen (bytes)
        self.peak_memory_bytes = 0.0
        self._lock = threading.Lock()

    def _slot(self, node) -> OperatorStats:
        stats = self.nodes.get(id(node))
        if stats is None:
            stats = OperatorStats()
            self.nodes[id(node)] = stats
        return stats

    def record(self, node, rows_out: int, elapsed: float) -> None:
        """One completed execution of ``node`` (inclusive of children)."""
        with self._lock:
            stats = self._slot(node)
            stats.rows_out = rows_out
            stats.elapsed += elapsed
            stats.invocations += 1

    def memo_hit(self, node) -> None:
        """The executor served ``node`` from its CTE memo cache."""
        with self._lock:
            self._slot(node).memo_hits += 1

    def add(self, node, **counters: float) -> None:
        """Attach operator-specific counters (summing on repeat)."""
        with self._lock:
            extra = self._slot(node).extra
            for key, value in counters.items():
                extra[key] = extra.get(key, 0) + value

    def note_max(self, node, **counters: float) -> None:
        """Attach counters with max semantics (e.g. ``workers=`` — the
        widest fan-out one execution of the operator used, not a sum
        across loops)."""
        with self._lock:
            extra = self._slot(node).extra
            for key, value in counters.items():
                if value > extra.get(key, 0):
                    extra[key] = value

    def note_memory(self, node, nbytes: float) -> None:
        """Record ``node``'s memory footprint for one execution: its
        ``mem_bytes`` counter keeps the per-operator peak (not the sum
        across loops) and the collector tracks the statement-wide
        high-water mark."""
        with self._lock:
            extra = self._slot(node).extra
            if nbytes > extra.get("mem_bytes", 0):
                extra["mem_bytes"] = nbytes
            if nbytes > self.peak_memory_bytes:
                self.peak_memory_bytes = nbytes

    def stats_for(self, node) -> Optional[OperatorStats]:
        """The stats recorded for ``node``, if any."""
        return self.nodes.get(id(node))


def format_bytes(nbytes: float) -> str:
    """Compact human-readable byte count (B / KB / MB / GB)."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB"):
        if value < 1024.0:
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GB"


def _format_extra(extra: dict) -> str:
    parts = []
    for key in sorted(extra):
        value = extra[key]
        if key == "mem_bytes":
            parts.append(f"mem={format_bytes(value)}")
        elif key == "wait_ms":
            parts.append(f"wait={value:.3g}ms")
        elif isinstance(value, float) and not value.is_integer():
            parts.append(f"{key}={value:.3g}")
        else:
            parts.append(f"{key}={int(value)}")
    return " ".join(parts)


def _estimate_detail(node, rows_out: int) -> str:
    """The ``est= q_err=`` clause for one node (empty when the plan
    carries no optimizer estimate)."""
    estimated = getattr(node, "estimated_rows", None)
    if estimated is None:
        return ""
    err = q_error(estimated, rows_out)
    detail = f" est={estimated:.0f} q_err={err:.1f}"
    if err >= MISESTIMATE_THRESHOLD:
        detail += " [misestimate]"
    return detail


def _annotate_node(node, collector: ExecStatsCollector, indent: int,
                   lines: list[str]) -> None:
    stats = collector.stats_for(node)
    line = "  " * indent + node.label()
    if stats is not None:
        detail = (f"rows={stats.rows_out} elapsed={stats.elapsed * 1000:.3f}ms "
                  f"loops={stats.invocations}")
        detail += _estimate_detail(node, stats.rows_out)
        if stats.memo_hits:
            detail += f" memo_hits={stats.memo_hits}"
        if stats.extra:
            detail += " " + _format_extra(stats.extra)
        line += f"  ({detail})"
    lines.append(line)
    for child in node.children():
        _annotate_node(child, collector, indent + 1, lines)


def annotate_plan(root, collector: ExecStatsCollector) -> str:
    """Render the plan tree with per-node measured stats attached."""
    lines: list[str] = []
    _annotate_node(root, collector, 0, lines)
    return "\n".join(lines)


def plan_to_dict(root, collector: Optional[ExecStatsCollector] = None) -> dict:
    """The plan tree (optionally annotated) as JSON-ready dicts.

    Nodes carry the optimizer's ``estimated_rows`` when present; with
    a collector, each node's measured stats plus its Q-error and
    misestimate flag ride along."""
    entry: dict = {"label": root.label()}
    estimated = getattr(root, "estimated_rows", None)
    if estimated is not None:
        entry["estimated_rows"] = estimated
    if collector is not None:
        stats = collector.stats_for(root)
        if stats is not None:
            entry["stats"] = stats.as_dict()
            if estimated is not None:
                err = q_error(estimated, stats.rows_out)
                entry["q_error"] = err
                entry["misestimate"] = err >= MISESTIMATE_THRESHOLD
    children = [plan_to_dict(c, collector) for c in root.children()]
    if children:
        entry["children"] = children
    return entry
