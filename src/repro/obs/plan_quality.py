"""Plan-quality diagnostics: aggregated per-operator Q-error.

The optimizer attaches ``estimated_rows`` to every plan node and the
executor (under an :class:`~repro.obs.ExecStatsCollector`) measures the
actual output rows; :func:`collect_plan_quality` turns one executed
plan into per-operator quality records, and
:class:`PlanQualityAggregator` accumulates them across a whole query
run so the full-disclosure report can show *where the optimizer is
wrong* — the worst-offender operators ranked by Q-error, the
misestimate rate, and per-query worst cases.

The paper's central tension (§4, §5.2) is that TPC-DS's skewed,
correlated data defeats uniformity-based cardinality estimation; this
module is the instrument that makes that failure visible and
trackable across PRs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .exec_stats import MISESTIMATE_THRESHOLD, ExecStatsCollector, q_error


@dataclass
class OperatorQuality:
    """One operator's estimate-vs-actual record."""

    query: str
    label: str
    estimated: float
    actual: int
    q_error: float
    misestimate: bool

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "query": self.query,
            "label": self.label,
            "estimated": self.estimated,
            "actual": self.actual,
            "q_error": self.q_error,
            "misestimate": self.misestimate,
        }


def collect_plan_quality(
    plan,
    collector: ExecStatsCollector,
    query: str = "",
    threshold: float = MISESTIMATE_THRESHOLD,
) -> list[OperatorQuality]:
    """Per-operator quality records for one executed plan.

    Only nodes that carry both an optimizer estimate and measured
    stats contribute (a CTE subtree served from the memo on every
    reference, for example, never re-executes and is skipped)."""
    records: list[OperatorQuality] = []
    seen: set[int] = set()
    for node in plan.walk():
        if id(node) in seen:  # shared (CTE / star-filter dim) subtrees
            continue
        seen.add(id(node))
        estimated = getattr(node, "estimated_rows", None)
        stats = collector.stats_for(node)
        if estimated is None or stats is None:
            continue
        err = q_error(estimated, stats.rows_out)
        records.append(
            OperatorQuality(
                query=query,
                label=node.label(),
                estimated=float(estimated),
                actual=stats.rows_out,
                q_error=err,
                misestimate=err >= threshold,
            )
        )
    return records


class PlanQualityAggregator:
    """Accumulates :class:`OperatorQuality` records across queries.

    Thread-safe: concurrent benchmark streams record into one
    aggregator. Keeps only the worst operator per (query, label) pair
    plus run-wide totals, so memory stays bounded over a full
    benchmark run."""

    def __init__(self, threshold: float = MISESTIMATE_THRESHOLD,
                 query_label_chars: int = 48):
        self.threshold = threshold
        self._label_chars = query_label_chars
        self._lock = threading.Lock()
        #: worst record per (query, operator label)
        self._worst: dict[tuple[str, str], OperatorQuality] = {}
        self.operators_seen = 0
        self.misestimates = 0

    def record(self, query: str, plan, collector: ExecStatsCollector) -> None:
        """Fold one executed plan's quality records into the aggregate."""
        name = " ".join(query.split())[: self._label_chars]
        records = collect_plan_quality(
            plan, collector, query=name, threshold=self.threshold
        )
        with self._lock:
            self.operators_seen += len(records)
            for rec in records:
                if rec.misestimate:
                    self.misestimates += 1
                key = (rec.query, rec.label)
                held = self._worst.get(key)
                if held is None or rec.q_error > held.q_error:
                    self._worst[key] = rec

    def worst_offenders(self, top: int = 10) -> list[OperatorQuality]:
        """The ``top`` worst-estimated operators across all queries."""
        with self._lock:
            ranked = sorted(self._worst.values(), key=lambda r: -r.q_error)
        return ranked[:top]

    def per_query_worst(self) -> dict[str, OperatorQuality]:
        """Each query's single worst operator."""
        out: dict[str, OperatorQuality] = {}
        with self._lock:
            records = list(self._worst.values())
        for rec in records:
            held = out.get(rec.query)
            if held is None or rec.q_error > held.q_error:
                out[rec.query] = rec
        return out

    def as_dict(self, top: int = 10) -> dict:
        """JSON-ready summary (full-disclosure report payload)."""
        return {
            "threshold": self.threshold,
            "operators_seen": self.operators_seen,
            "misestimates": self.misestimates,
            "worst_offenders": [r.as_dict() for r in self.worst_offenders(top)],
        }

    def render(self, top: int = 10) -> list[str]:
        """Report lines: misestimate rate + the worst-offender table."""
        lines = [
            "plan quality (optimizer cardinality estimates)",
            f"  operators measured  : {self.operators_seen}"
            f"  (misestimates >= {self.threshold:g}x: {self.misestimates})",
        ]
        offenders = self.worst_offenders(top)
        if not offenders:
            lines.append("  no operators measured")
            return lines
        lines.append(
            f"  {'q_err':>8s} {'est':>12s} {'actual':>12s}  operator / query"
        )
        for rec in offenders:
            lines.append(
                f"  {rec.q_error:>8.1f} {rec.estimated:>12.0f} "
                f"{rec.actual:>12d}  {rec.label}  [{rec.query}]"
            )
        return lines
