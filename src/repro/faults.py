"""`repro.faults` — deterministic, seeded fault injection.

A :class:`FaultInjector` simulates the failure modes a production
warehouse survives: transient errors, latency spikes, and memory
pressure.  It hooks into the engine at two granularities:

* **query** — :meth:`at_query` fires once per ``Database.execute``
  (the benchmark runner installs the injector on the database for the
  duration of each query run);
* **operator** — :meth:`at_operator` fires from
  :meth:`~repro.engine.governor.ResourceContext.check` at every batch
  boundary, so injected delays and errors land *inside* running plans;
* **storage** — :meth:`at_storage` fires on the column-store I/O paths
  (manifest/footer open, segment reads, save writes).  It raises
  :class:`InjectedStorageFault`, an ``OSError`` subclass, because that
  is what a failing disk hands the store — the store must translate it
  into :class:`~repro.engine.errors.StoreError` like any other I/O
  error.  The store pulls its injector from the process-wide
  :func:`set_storage_faults` hook (the store has no query context to
  carry one through).

Decisions flow from one ``random.Random(seed)`` guarded by a lock, so
a single-threaded run is exactly reproducible from its seed; under
concurrency the *rates* hold while the interleaving varies, which is
what rate-targeted robustness tests want.  ``site_filter`` narrows
injection to sites whose label contains the substring (e.g.
``"HashJoin"`` or ``"query:"``), enabling site-targeted tests.

Memory pressure: ``memory_pressure`` scales every query's budget down
(0.5 = half the configured budget survives), and ``force_budget_bytes``
imposes a budget even on queries that set none — both flow through
:meth:`apply_memory_pressure`, called by ``ResourceContext``.

Injected errors raise :class:`InjectedFault`, a *transient* execution
error: the fault-tolerant runner retries transient failures with
backoff, which is exactly the degradation path these tests prove out.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Optional

from .engine.errors import ExecutionError


class InjectedFault(ExecutionError):
    """A deterministic injected failure; marked transient so the
    benchmark runner's retry policy picks it up."""

    transient = True


class InjectedStorageFault(OSError):
    """An injected I/O failure on a column-store path.

    Deliberately an ``OSError``: storage faults enter the store the way
    real disk errors do, proving the store's OSError→StoreError
    translation rather than bypassing it.  ``transient`` rides along so
    the wrapped :class:`~repro.engine.errors.StoreError` keeps retry
    eligibility."""

    transient = True


def is_transient(exc: BaseException) -> bool:
    """True for errors a retry may cure (duck-typed on a ``transient``
    attribute so engine and injector stay decoupled)."""
    return bool(getattr(exc, "transient", False))


class FaultInjector:
    """Seeded error/delay/memory-pressure injector.

    ``scope`` selects the granularities that inject: ``"query"``
    (once per statement), ``"operator"`` (every batch boundary),
    ``"storage"`` (column-store I/O), or any combination.  Rates are
    per decision point."""

    def __init__(
        self,
        seed: int = 0,
        error_rate: float = 0.0,
        delay_rate: float = 0.0,
        max_delay_s: float = 0.0,
        scope: tuple[str, ...] = ("query",),
        site_filter: Optional[str] = None,
        memory_pressure: float = 1.0,
        force_budget_bytes: Optional[float] = None,
    ):
        if not 0.0 < memory_pressure <= 1.0:
            raise ValueError("memory_pressure must be in (0, 1]")
        self.seed = seed
        self.error_rate = error_rate
        self.delay_rate = delay_rate
        self.max_delay_s = max_delay_s
        self.scope = tuple(scope)
        self.site_filter = site_filter
        self.memory_pressure = memory_pressure
        self.force_budget_bytes = force_budget_bytes
        self.injected_errors = 0
        self.injected_delays = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    # -- injection points ----------------------------------------------------

    def at_query(self, label: str) -> None:
        """Query-granularity decision point (``Database.execute``)."""
        if "query" in self.scope:
            self._roll(f"query:{' '.join(label.split())[:60]}")

    def at_operator(self, site: str) -> None:
        """Operator-granularity decision point (batch boundaries)."""
        if "operator" in self.scope:
            self._roll(f"operator:{site}")

    def at_storage(self, site: str) -> None:
        """Storage-granularity decision point (column-store I/O paths);
        raises :class:`InjectedStorageFault` — an ``OSError`` — so the
        store's error translation is what gets exercised."""
        if "storage" in self.scope:
            self._roll(f"storage:{site}", exc_class=InjectedStorageFault)

    def _roll(self, site: str, exc_class: type = InjectedFault) -> None:
        if self.site_filter is not None and self.site_filter not in site:
            return
        with self._lock:
            draw = self._rng.random()
            if draw < self.error_rate:
                self.injected_errors += 1
                raise exc_class(f"injected fault at {site}")
            delay = 0.0
            if draw < self.error_rate + self.delay_rate:
                self.injected_delays += 1
                delay = self._rng.uniform(0.0, self.max_delay_s)
        if delay > 0.0:
            time.sleep(delay)

    # -- memory pressure -----------------------------------------------------

    def apply_memory_pressure(self, budget: Optional[float]) -> Optional[float]:
        """Shrink (or impose) a query memory budget."""
        if self.force_budget_bytes is not None:
            budget = (
                self.force_budget_bytes
                if budget is None
                else min(budget, self.force_budget_bytes)
            )
        if budget is not None and self.memory_pressure < 1.0:
            budget = budget * self.memory_pressure
        return budget

    def stats(self) -> dict:
        """Injection counts (JSON-ready)."""
        with self._lock:
            return {
                "seed": self.seed,
                "injected_errors": self.injected_errors,
                "injected_delays": self.injected_delays,
            }


# -- the storage-fault hook --------------------------------------------------
#
# Column-store I/O runs below any query context (Database.open has no
# database yet), so storage faults install process-wide.  The store
# calls get_storage_faults() lazily at each I/O site.

_storage_faults: Optional[FaultInjector] = None


def set_storage_faults(injector: Optional[FaultInjector]) -> None:
    """Install (or clear, with ``None``) the process-wide injector for
    column-store I/O sites."""
    global _storage_faults
    _storage_faults = injector


def get_storage_faults() -> Optional[FaultInjector]:
    """The installed storage-fault injector, if any."""
    return _storage_faults
