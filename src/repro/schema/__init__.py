"""The TPC-DS snowstorm schema (24 tables) and its statistics."""

from .stats import PAPER_TABLE_1, SchemaStatistics, schema_statistics, snowflake_graph
from .tables import (
    AD_HOC_TABLES,
    ALL_TABLES,
    DIMENSION_TABLES,
    FACT_TABLES,
    HISTORY_DIMENSIONS,
    NONHISTORY_DIMENSIONS,
    REPORTING_TABLES,
    SALES_RETURNS_LINKS,
    STATIC_DIMENSIONS,
)

__all__ = [
    "ALL_TABLES",
    "FACT_TABLES",
    "DIMENSION_TABLES",
    "REPORTING_TABLES",
    "AD_HOC_TABLES",
    "STATIC_DIMENSIONS",
    "HISTORY_DIMENSIONS",
    "NONHISTORY_DIMENSIONS",
    "SALES_RETURNS_LINKS",
    "SchemaStatistics",
    "schema_statistics",
    "PAPER_TABLE_1",
    "snowflake_graph",
]
