"""Schema statistics — the numbers behind the paper's Table 1.

The paper reports: 7 fact tables, 17 dimension tables, columns
min 3 / max 34 / avg 18, 104 foreign keys, and flat-file row lengths
min 16 / max 317 / avg 136 bytes. ``schema_statistics`` computes the
same aggregates from our schema definitions so the bench can print the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tables import ALL_TABLES, DIMENSION_TABLES, FACT_TABLES


@dataclass(frozen=True)
class SchemaStatistics:
    fact_tables: int
    dimension_tables: int
    columns_min: int
    columns_max: int
    columns_avg: float
    foreign_keys: int
    row_bytes_min: int
    row_bytes_max: int
    row_bytes_avg: float

    def as_rows(self) -> list[tuple[str, object]]:
        return [
            ("Number of fact tables", self.fact_tables),
            ("Number of dimension tables", self.dimension_tables),
            ("Number of columns (min)", self.columns_min),
            ("Number of columns (max)", self.columns_max),
            ("Number of columns (avg)", round(self.columns_avg, 1)),
            ("Number of foreign keys", self.foreign_keys),
            ("Row length bytes (min)", self.row_bytes_min),
            ("Row length bytes (max)", self.row_bytes_max),
            ("Row length bytes (avg)", round(self.row_bytes_avg)),
        ]


#: Table 1 as printed in the paper, for comparison in tests and benches
PAPER_TABLE_1 = SchemaStatistics(
    fact_tables=7,
    dimension_tables=17,
    columns_min=3,
    columns_max=34,
    columns_avg=18.0,
    foreign_keys=104,
    row_bytes_min=16,
    row_bytes_max=317,
    row_bytes_avg=136.0,
)


def schema_statistics() -> SchemaStatistics:
    """Compute Table 1's aggregates from the schema definitions."""
    column_counts = [len(t.columns) for t in ALL_TABLES.values()]
    row_widths = [t.row_flat_width() for t in ALL_TABLES.values()]
    fk_count = sum(len(t.foreign_keys) for t in ALL_TABLES.values())
    return SchemaStatistics(
        fact_tables=len(FACT_TABLES),
        dimension_tables=len(DIMENSION_TABLES),
        columns_min=min(column_counts),
        columns_max=max(column_counts),
        columns_avg=sum(column_counts) / len(column_counts),
        foreign_keys=fk_count,
        row_bytes_min=min(row_widths),
        row_bytes_max=max(row_widths),
        row_bytes_avg=sum(row_widths) / len(row_widths),
    )


def snowflake_graph():
    """The schema as a directed graph (table -> referenced table), the
    structure behind the paper's Figure 1. Requires networkx."""
    import networkx as nx

    graph = nx.DiGraph()
    for table in ALL_TABLES.values():
        graph.add_node(table.name, kind="fact" if table.name in FACT_TABLES else "dimension")
    for table in ALL_TABLES.values():
        for column, referenced in table.foreign_keys:
            graph.add_edge(table.name, referenced, column=column)
    return graph
