"""The TPC-DS "snowstorm" schema: 7 fact tables and 17 dimensions.

Column sets follow the public TPC-DS specification draft the paper
references [3]; surrogate keys are ``identifier``, business keys are
``char(16)``, and money columns are ``decimal(7,2)``. Foreign keys are
declared on the column (``references=``), which the benchmark uses both
for Table 1's statistics and for the data generator's referential
integrity.

Channel partition (§2.2): the **catalog** channel is the *reporting*
part of the schema (complex auxiliary structures allowed); **store**
and **web** are the *ad-hoc* part.

Slowly-changing-dimension classification (§3.3.2 / §4.2):

* ``static`` — loaded once, never maintained: date_dim, time_dim, reason,
  ship_mode, income_band;
* ``history`` — type-2 SCD with rec_start_date / rec_end_date: item,
  store, call_center, web_page, web_site;
* ``nonhistory`` — type-1 overwrite: everything else.
"""

from __future__ import annotations

from ..engine.types import (
    ColumnDef,
    TableSchema,
    char,
    date,
    decimal,
    identifier,
    integer,
    time_of_day,
    varchar,
)


def _sk(name: str, references: str | None = None, pk: bool = False) -> ColumnDef:
    return ColumnDef(name, identifier(), nullable=not pk, primary_key=pk,
                     references=references)


def _bk(name: str) -> ColumnDef:
    """Business key: the OLTP-side identifier used by data maintenance."""
    return ColumnDef(name, char(16), nullable=False, business_key=True)


def _money(name: str) -> ColumnDef:
    return ColumnDef(name, decimal(7, 2))


def _int(name: str) -> ColumnDef:
    return ColumnDef(name, integer())


def _char(name: str, n: int) -> ColumnDef:
    return ColumnDef(name, char(n))


def _varchar(name: str, n: int) -> ColumnDef:
    return ColumnDef(name, varchar(n))


def _date(name: str) -> ColumnDef:
    return ColumnDef(name, date())


# ---------------------------------------------------------------------------
# dimension tables
# ---------------------------------------------------------------------------

DATE_DIM = TableSchema("date_dim", [
    _sk("d_date_sk", pk=True),
    _bk("d_date_id"),
    _date("d_date"),
    _int("d_month_seq"),
    _int("d_week_seq"),
    _int("d_quarter_seq"),
    _int("d_year"),
    _int("d_dow"),
    _int("d_moy"),
    _int("d_dom"),
    _int("d_qoy"),
    _int("d_fy_year"),
    _int("d_fy_quarter_seq"),
    _int("d_fy_week_seq"),
    _char("d_day_name", 9),
    _char("d_quarter_name", 6),
    _char("d_holiday", 1),
    _char("d_weekend", 1),
    _char("d_following_holiday", 1),
    _int("d_first_dom"),
    _int("d_last_dom"),
    _int("d_same_day_ly"),
    _int("d_same_day_lq"),
    _char("d_current_day", 1),
    _char("d_current_week", 1),
    _char("d_current_month", 1),
    _char("d_current_quarter", 1),
    _char("d_current_year", 1),
])

TIME_DIM = TableSchema("time_dim", [
    _sk("t_time_sk", pk=True),
    _bk("t_time_id"),
    _int("t_time"),
    _int("t_hour"),
    _int("t_minute"),
    _int("t_second"),
    _char("t_am_pm", 2),
    _char("t_shift", 20),
    _char("t_sub_shift", 20),
    _char("t_meal_time", 20),
])

REASON = TableSchema("reason", [
    _sk("r_reason_sk", pk=True),
    _bk("r_reason_id"),
    _char("r_reason_desc", 100),
])

SHIP_MODE = TableSchema("ship_mode", [
    _sk("sm_ship_mode_sk", pk=True),
    _bk("sm_ship_mode_id"),
    _char("sm_type", 30),
    _char("sm_code", 10),
    _char("sm_carrier", 20),
    _char("sm_contract", 20),
])

INCOME_BAND = TableSchema("income_band", [
    _sk("ib_income_band_sk", pk=True),
    _int("ib_lower_bound"),
    _int("ib_upper_bound"),
])

CUSTOMER_DEMOGRAPHICS = TableSchema("customer_demographics", [
    _sk("cd_demo_sk", pk=True),
    _char("cd_gender", 1),
    _char("cd_marital_status", 1),
    _char("cd_education_status", 20),
    _int("cd_purchase_estimate"),
    _char("cd_credit_rating", 10),
    _int("cd_dep_count"),
    _int("cd_dep_employed_count"),
    _int("cd_dep_college_count"),
])

HOUSEHOLD_DEMOGRAPHICS = TableSchema("household_demographics", [
    _sk("hd_demo_sk", pk=True),
    _sk("hd_income_band_sk", references="income_band"),
    _char("hd_buy_potential", 15),
    _int("hd_dep_count"),
    _int("hd_vehicle_count"),
])

CUSTOMER_ADDRESS = TableSchema("customer_address", [
    _sk("ca_address_sk", pk=True),
    _bk("ca_address_id"),
    _char("ca_street_number", 10),
    _varchar("ca_street_name", 60),
    _char("ca_street_type", 15),
    _char("ca_suite_number", 10),
    _varchar("ca_city", 60),
    _varchar("ca_county", 30),
    _char("ca_state", 2),
    _char("ca_zip", 10),
    _varchar("ca_country", 20),
    ColumnDef("ca_gmt_offset", decimal(5, 2)),
    _char("ca_location_type", 20),
])

CUSTOMER = TableSchema("customer", [
    _sk("c_customer_sk", pk=True),
    _bk("c_customer_id"),
    _sk("c_current_cdemo_sk", references="customer_demographics"),
    _sk("c_current_hdemo_sk", references="household_demographics"),
    _sk("c_current_addr_sk", references="customer_address"),
    _sk("c_first_shipto_date_sk", references="date_dim"),
    _sk("c_first_sales_date_sk", references="date_dim"),
    _char("c_salutation", 10),
    _char("c_first_name", 20),
    _char("c_last_name", 30),
    _char("c_preferred_cust_flag", 1),
    _int("c_birth_day"),
    _int("c_birth_month"),
    _int("c_birth_year"),
    _varchar("c_birth_country", 20),
    _char("c_login", 13),
    _char("c_email_address", 50),
    _sk("c_last_review_date_sk", references="date_dim"),
])

ITEM = TableSchema("item", [
    _sk("i_item_sk", pk=True),
    _bk("i_item_id"),
    _date("i_rec_start_date"),
    _date("i_rec_end_date"),
    _varchar("i_item_desc", 200),
    ColumnDef("i_current_price", decimal(7, 2)),
    ColumnDef("i_wholesale_cost", decimal(7, 2)),
    _int("i_brand_id"),
    _char("i_brand", 50),
    _int("i_class_id"),
    _char("i_class", 50),
    _int("i_category_id"),
    _char("i_category", 50),
    _int("i_manufact_id"),
    _char("i_manufact", 50),
    _char("i_size", 20),
    _char("i_formulation", 20),
    _char("i_color", 20),
    _char("i_units", 10),
    _char("i_container", 10),
    _int("i_manager_id"),
    _char("i_product_name", 50),
])

STORE = TableSchema("store", [
    _sk("s_store_sk", pk=True),
    _bk("s_store_id"),
    _date("s_rec_start_date"),
    _date("s_rec_end_date"),
    _sk("s_closed_date_sk", references="date_dim"),
    _varchar("s_store_name", 50),
    _int("s_number_employees"),
    _int("s_floor_space"),
    _char("s_hours", 20),
    _varchar("s_manager", 40),
    _int("s_market_id"),
    _varchar("s_geography_class", 100),
    _varchar("s_market_desc", 100),
    _varchar("s_market_manager", 40),
    _int("s_division_id"),
    _varchar("s_division_name", 50),
    _int("s_company_id"),
    _varchar("s_company_name", 50),
    _varchar("s_street_number", 10),
    _varchar("s_street_name", 60),
    _char("s_street_type", 15),
    _char("s_suite_number", 10),
    _varchar("s_city", 60),
    _varchar("s_county", 30),
    _char("s_state", 2),
    _char("s_zip", 10),
    _varchar("s_country", 20),
    ColumnDef("s_gmt_offset", decimal(5, 2)),
    ColumnDef("s_tax_percentage", decimal(5, 2)),
])

CALL_CENTER = TableSchema("call_center", [
    _sk("cc_call_center_sk", pk=True),
    _bk("cc_call_center_id"),
    _date("cc_rec_start_date"),
    _date("cc_rec_end_date"),
    _sk("cc_closed_date_sk", references="date_dim"),
    _sk("cc_open_date_sk", references="date_dim"),
    _varchar("cc_name", 50),
    _varchar("cc_class", 50),
    _int("cc_employees"),
    _int("cc_sq_ft"),
    _char("cc_hours", 20),
    _varchar("cc_manager", 40),
    _int("cc_mkt_id"),
    _char("cc_mkt_class", 50),
    _varchar("cc_mkt_desc", 100),
    _varchar("cc_market_manager", 40),
    _int("cc_division"),
    _varchar("cc_division_name", 50),
    _int("cc_company"),
    _char("cc_company_name", 50),
    _char("cc_street_number", 10),
    _varchar("cc_street_name", 60),
    _char("cc_street_type", 15),
    _char("cc_suite_number", 10),
    _varchar("cc_city", 60),
    _varchar("cc_county", 30),
    _char("cc_state", 2),
    _char("cc_zip", 10),
    _varchar("cc_country", 20),
    ColumnDef("cc_gmt_offset", decimal(5, 2)),
    ColumnDef("cc_tax_percentage", decimal(5, 2)),
])

CATALOG_PAGE = TableSchema("catalog_page", [
    _sk("cp_catalog_page_sk", pk=True),
    _bk("cp_catalog_page_id"),
    _sk("cp_start_date_sk", references="date_dim"),
    _sk("cp_end_date_sk", references="date_dim"),
    _varchar("cp_department", 50),
    _int("cp_catalog_number"),
    _int("cp_catalog_page_number"),
    _varchar("cp_description", 100),
    _varchar("cp_type", 100),
])

WEB_SITE = TableSchema("web_site", [
    _sk("web_site_sk", pk=True),
    _bk("web_site_id"),
    _date("web_rec_start_date"),
    _date("web_rec_end_date"),
    _varchar("web_name", 50),
    _sk("web_open_date_sk", references="date_dim"),
    _sk("web_close_date_sk", references="date_dim"),
    _varchar("web_class", 50),
    _varchar("web_manager", 40),
    _int("web_mkt_id"),
    _varchar("web_mkt_class", 50),
    _varchar("web_mkt_desc", 100),
    _varchar("web_market_manager", 40),
    _int("web_company_id"),
    _char("web_company_name", 50),
    _char("web_street_number", 10),
    _varchar("web_street_name", 60),
    _char("web_street_type", 15),
    _char("web_suite_number", 10),
    _varchar("web_city", 60),
    _varchar("web_county", 30),
    _char("web_state", 2),
    _char("web_zip", 10),
    _varchar("web_country", 20),
    ColumnDef("web_gmt_offset", decimal(5, 2)),
    ColumnDef("web_tax_percentage", decimal(5, 2)),
])

WEB_PAGE = TableSchema("web_page", [
    _sk("wp_web_page_sk", pk=True),
    _bk("wp_web_page_id"),
    _date("wp_rec_start_date"),
    _date("wp_rec_end_date"),
    _sk("wp_creation_date_sk", references="date_dim"),
    _sk("wp_access_date_sk", references="date_dim"),
    _char("wp_autogen_flag", 1),
    _sk("wp_customer_sk", references="customer"),
    _varchar("wp_url", 100),
    _char("wp_type", 50),
    _int("wp_char_count"),
    _int("wp_link_count"),
    _int("wp_image_count"),
    _int("wp_max_ad_count"),
])

WAREHOUSE = TableSchema("warehouse", [
    _sk("w_warehouse_sk", pk=True),
    _bk("w_warehouse_id"),
    _varchar("w_warehouse_name", 20),
    _int("w_warehouse_sq_ft"),
    _char("w_street_number", 10),
    _varchar("w_street_name", 60),
    _char("w_street_type", 15),
    _char("w_suite_number", 10),
    _varchar("w_city", 60),
    _varchar("w_county", 30),
    _char("w_state", 2),
    _char("w_zip", 10),
    _varchar("w_country", 20),
    ColumnDef("w_gmt_offset", decimal(5, 2)),
])

PROMOTION = TableSchema("promotion", [
    _sk("p_promo_sk", pk=True),
    _bk("p_promo_id"),
    _sk("p_start_date_sk", references="date_dim"),
    _sk("p_end_date_sk", references="date_dim"),
    _sk("p_item_sk", references="item"),
    ColumnDef("p_cost", decimal(15, 2)),
    _int("p_response_target"),
    _char("p_promo_name", 50),
    _char("p_channel_dmail", 1),
    _char("p_channel_email", 1),
    _char("p_channel_catalog", 1),
    _char("p_channel_tv", 1),
    _char("p_channel_radio", 1),
    _char("p_channel_press", 1),
    _char("p_channel_event", 1),
    _char("p_channel_demo", 1),
    _varchar("p_channel_details", 100),
    _char("p_purpose", 15),
    _char("p_discount_active", 1),
])

# ---------------------------------------------------------------------------
# fact tables
# ---------------------------------------------------------------------------

STORE_SALES = TableSchema("store_sales", [
    _sk("ss_sold_date_sk", references="date_dim"),
    _sk("ss_sold_time_sk", references="time_dim"),
    _sk("ss_item_sk", references="item"),
    _sk("ss_customer_sk", references="customer"),
    _sk("ss_cdemo_sk", references="customer_demographics"),
    _sk("ss_hdemo_sk", references="household_demographics"),
    _sk("ss_addr_sk", references="customer_address"),
    _sk("ss_store_sk", references="store"),
    _sk("ss_promo_sk", references="promotion"),
    _sk("ss_ticket_number"),
    _int("ss_quantity"),
    _money("ss_wholesale_cost"),
    _money("ss_list_price"),
    _money("ss_sales_price"),
    _money("ss_ext_discount_amt"),
    _money("ss_ext_sales_price"),
    _money("ss_ext_wholesale_cost"),
    _money("ss_ext_list_price"),
    _money("ss_ext_tax"),
    _money("ss_coupon_amt"),
    _money("ss_net_paid"),
    _money("ss_net_paid_inc_tax"),
    _money("ss_net_profit"),
])

STORE_RETURNS = TableSchema("store_returns", [
    _sk("sr_returned_date_sk", references="date_dim"),
    _sk("sr_return_time_sk", references="time_dim"),
    _sk("sr_item_sk", references="item"),
    _sk("sr_customer_sk", references="customer"),
    _sk("sr_cdemo_sk", references="customer_demographics"),
    _sk("sr_hdemo_sk", references="household_demographics"),
    _sk("sr_addr_sk", references="customer_address"),
    _sk("sr_store_sk", references="store"),
    _sk("sr_reason_sk", references="reason"),
    _sk("sr_ticket_number"),
    _int("sr_return_quantity"),
    _money("sr_return_amt"),
    _money("sr_return_tax"),
    _money("sr_return_amt_inc_tax"),
    _money("sr_fee"),
    _money("sr_return_ship_cost"),
    _money("sr_refunded_cash"),
    _money("sr_reversed_charge"),
    _money("sr_store_credit"),
    _money("sr_net_loss"),
])

CATALOG_SALES = TableSchema("catalog_sales", [
    _sk("cs_sold_date_sk", references="date_dim"),
    _sk("cs_sold_time_sk", references="time_dim"),
    _sk("cs_ship_date_sk", references="date_dim"),
    _sk("cs_bill_customer_sk", references="customer"),
    _sk("cs_bill_cdemo_sk", references="customer_demographics"),
    _sk("cs_bill_hdemo_sk", references="household_demographics"),
    _sk("cs_bill_addr_sk", references="customer_address"),
    _sk("cs_ship_customer_sk", references="customer"),
    _sk("cs_ship_cdemo_sk", references="customer_demographics"),
    _sk("cs_ship_hdemo_sk", references="household_demographics"),
    _sk("cs_ship_addr_sk", references="customer_address"),
    _sk("cs_call_center_sk", references="call_center"),
    _sk("cs_catalog_page_sk", references="catalog_page"),
    _sk("cs_ship_mode_sk", references="ship_mode"),
    _sk("cs_warehouse_sk", references="warehouse"),
    _sk("cs_item_sk", references="item"),
    _sk("cs_promo_sk", references="promotion"),
    _sk("cs_order_number"),
    _int("cs_quantity"),
    _money("cs_wholesale_cost"),
    _money("cs_list_price"),
    _money("cs_sales_price"),
    _money("cs_ext_discount_amt"),
    _money("cs_ext_sales_price"),
    _money("cs_ext_wholesale_cost"),
    _money("cs_ext_list_price"),
    _money("cs_ext_tax"),
    _money("cs_coupon_amt"),
    _money("cs_ext_ship_cost"),
    _money("cs_net_paid"),
    _money("cs_net_paid_inc_tax"),
    _money("cs_net_paid_inc_ship"),
    _money("cs_net_paid_inc_ship_tax"),
    _money("cs_net_profit"),
])

CATALOG_RETURNS = TableSchema("catalog_returns", [
    _sk("cr_returned_date_sk", references="date_dim"),
    _sk("cr_returned_time_sk", references="time_dim"),
    _sk("cr_item_sk", references="item"),
    _sk("cr_refunded_customer_sk", references="customer"),
    _sk("cr_refunded_cdemo_sk", references="customer_demographics"),
    _sk("cr_refunded_hdemo_sk", references="household_demographics"),
    _sk("cr_refunded_addr_sk", references="customer_address"),
    _sk("cr_returning_customer_sk", references="customer"),
    _sk("cr_returning_cdemo_sk", references="customer_demographics"),
    _sk("cr_returning_hdemo_sk", references="household_demographics"),
    _sk("cr_returning_addr_sk", references="customer_address"),
    _sk("cr_call_center_sk", references="call_center"),
    _sk("cr_catalog_page_sk", references="catalog_page"),
    _sk("cr_ship_mode_sk", references="ship_mode"),
    _sk("cr_warehouse_sk", references="warehouse"),
    _sk("cr_reason_sk", references="reason"),
    _sk("cr_order_number"),
    _int("cr_return_quantity"),
    _money("cr_return_amount"),
    _money("cr_return_tax"),
    _money("cr_return_amt_inc_tax"),
    _money("cr_fee"),
    _money("cr_return_ship_cost"),
    _money("cr_refunded_cash"),
    _money("cr_reversed_charge"),
    _money("cr_store_credit"),
    _money("cr_net_loss"),
])

WEB_SALES = TableSchema("web_sales", [
    _sk("ws_sold_date_sk", references="date_dim"),
    _sk("ws_sold_time_sk", references="time_dim"),
    _sk("ws_ship_date_sk", references="date_dim"),
    _sk("ws_item_sk", references="item"),
    _sk("ws_bill_customer_sk", references="customer"),
    _sk("ws_bill_cdemo_sk", references="customer_demographics"),
    _sk("ws_bill_hdemo_sk", references="household_demographics"),
    _sk("ws_bill_addr_sk", references="customer_address"),
    _sk("ws_ship_customer_sk", references="customer"),
    _sk("ws_ship_cdemo_sk", references="customer_demographics"),
    _sk("ws_ship_hdemo_sk", references="household_demographics"),
    _sk("ws_ship_addr_sk", references="customer_address"),
    _sk("ws_web_page_sk", references="web_page"),
    _sk("ws_web_site_sk", references="web_site"),
    _sk("ws_ship_mode_sk", references="ship_mode"),
    _sk("ws_warehouse_sk", references="warehouse"),
    _sk("ws_promo_sk", references="promotion"),
    _sk("ws_order_number"),
    _int("ws_quantity"),
    _money("ws_wholesale_cost"),
    _money("ws_list_price"),
    _money("ws_sales_price"),
    _money("ws_ext_discount_amt"),
    _money("ws_ext_sales_price"),
    _money("ws_ext_wholesale_cost"),
    _money("ws_ext_list_price"),
    _money("ws_ext_tax"),
    _money("ws_coupon_amt"),
    _money("ws_ext_ship_cost"),
    _money("ws_net_paid"),
    _money("ws_net_paid_inc_tax"),
    _money("ws_net_paid_inc_ship"),
    _money("ws_net_paid_inc_ship_tax"),
    _money("ws_net_profit"),
])

WEB_RETURNS = TableSchema("web_returns", [
    _sk("wr_returned_date_sk", references="date_dim"),
    _sk("wr_returned_time_sk", references="time_dim"),
    _sk("wr_item_sk", references="item"),
    _sk("wr_refunded_customer_sk", references="customer"),
    _sk("wr_refunded_cdemo_sk", references="customer_demographics"),
    _sk("wr_refunded_hdemo_sk", references="household_demographics"),
    _sk("wr_refunded_addr_sk", references="customer_address"),
    _sk("wr_returning_customer_sk", references="customer"),
    _sk("wr_returning_cdemo_sk", references="customer_demographics"),
    _sk("wr_returning_hdemo_sk", references="household_demographics"),
    _sk("wr_returning_addr_sk", references="customer_address"),
    _sk("wr_web_page_sk", references="web_page"),
    _sk("wr_reason_sk", references="reason"),
    _sk("wr_order_number"),
    _int("wr_return_quantity"),
    _money("wr_return_amt"),
    _money("wr_return_tax"),
    _money("wr_return_amt_inc_tax"),
    _money("wr_fee"),
    _money("wr_return_ship_cost"),
    _money("wr_refunded_cash"),
    _money("wr_reversed_charge"),
    _money("wr_account_credit"),
    _money("wr_net_loss"),
])

INVENTORY = TableSchema("inventory", [
    _sk("inv_date_sk", references="date_dim"),
    _sk("inv_item_sk", references="item"),
    _sk("inv_warehouse_sk", references="warehouse"),
    _int("inv_quantity_on_hand"),
])

# ---------------------------------------------------------------------------
# groupings
# ---------------------------------------------------------------------------

FACT_TABLES: dict[str, TableSchema] = {
    t.name: t
    for t in (
        STORE_SALES,
        STORE_RETURNS,
        CATALOG_SALES,
        CATALOG_RETURNS,
        WEB_SALES,
        WEB_RETURNS,
        INVENTORY,
    )
}

DIMENSION_TABLES: dict[str, TableSchema] = {
    t.name: t
    for t in (
        DATE_DIM,
        TIME_DIM,
        REASON,
        SHIP_MODE,
        INCOME_BAND,
        CUSTOMER_DEMOGRAPHICS,
        HOUSEHOLD_DEMOGRAPHICS,
        CUSTOMER_ADDRESS,
        CUSTOMER,
        ITEM,
        STORE,
        CALL_CENTER,
        CATALOG_PAGE,
        WEB_SITE,
        WEB_PAGE,
        WAREHOUSE,
        PROMOTION,
    )
}

ALL_TABLES: dict[str, TableSchema] = {**FACT_TABLES, **DIMENSION_TABLES}

#: the reporting part of the schema: the catalog sales channel (§2.2);
#: complex auxiliary structures (bitmap join indexes, materialized views)
#: are legal only here
REPORTING_TABLES = frozenset({"catalog_sales", "catalog_returns", "catalog_page"})

#: the ad-hoc part: store and web channels
AD_HOC_TABLES = frozenset(
    {"store_sales", "store_returns", "web_sales", "web_returns", "inventory"}
)

#: dimensions loaded once and never touched by data maintenance
STATIC_DIMENSIONS = frozenset(
    {"date_dim", "time_dim", "reason", "ship_mode", "income_band"}
)

#: type-2 slowly changing dimensions (rec_start_date / rec_end_date)
HISTORY_DIMENSIONS = frozenset(
    {"item", "store", "call_center", "web_page", "web_site"}
)

#: type-1 dimensions maintained by overwrite
NONHISTORY_DIMENSIONS = frozenset(DIMENSION_TABLES) - STATIC_DIMENSIONS - HISTORY_DIMENSIONS

#: sales fact table -> its returns fact table and the join keys that relate
#: them (the paper highlights the store ticket_number+item_sk fact-to-fact
#: relationship; catalog and web use order_number+item_sk)
SALES_RETURNS_LINKS = {
    "store_sales": ("store_returns", ("ss_ticket_number", "sr_ticket_number"),
                    ("ss_item_sk", "sr_item_sk")),
    "catalog_sales": ("catalog_returns", ("cs_order_number", "cr_order_number"),
                      ("cs_item_sk", "cr_item_sk")),
    "web_sales": ("web_returns", ("ws_order_number", "wr_order_number"),
                  ("ws_item_sk", "wr_item_sk")),
}
