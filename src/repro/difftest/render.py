"""AST → SQL renderers for the differential harness.

Two dialects share one renderer skeleton:

* :class:`SqlRenderer` emits the engine's own dialect — used to write
  shrunk repro queries into the corpus and to round-trip fuzzer ASTs;
* :class:`SqliteRenderer` emits SQLite SQL for the oracle, applying the
  documented translation rules:

  - ``DATE 'YYYY-MM-DD'`` literals become epoch-day integers (the
    oracle stores date columns as epoch days, exactly like the engine);
  - ``/`` always divides as REAL (the engine's ``/`` is float
    division; SQLite's integer ``/`` truncates);
  - every ORDER BY key gets an explicit ``NULLS FIRST/LAST`` matching
    the engine's defaults (NULLS LAST ascending, NULLS FIRST
    descending; SQLite's bare default is the opposite);
  - ``GROUP BY ROLLUP(a, b)`` expands to a UNION ALL of its prefix
    grouping sets with the dropped keys substituted by NULL;
  - engine scalar functions without a faithful SQLite builtin are
    renamed onto UDFs the oracle registers (``YEAR`` → ``year_of``,
    ``ROUND`` → ``np_round`` …);
  - ``TRUE``/``FALSE`` render as ``1``/``0``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..engine.errors import PlanningError
from ..engine.sql import ast_nodes as A
from ..engine.types import format_date


def _quote_str(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


def substitute(expr: A.Expr, match: A.Expr, replacement: A.Expr) -> A.Expr:
    """Replace every occurrence of ``match`` (by structural equality)
    inside ``expr``; does not descend into subqueries."""
    if expr == match:
        return replacement

    def sub_any(value):
        if isinstance(value, A.Expr):
            return substitute(value, match, replacement)
        if isinstance(value, A.SortKey):
            return A.SortKey(
                substitute(value.expr, match, replacement),
                value.ascending,
                value.nulls_first,
            )
        if isinstance(value, tuple):
            return tuple(sub_any(v) for v in value)
        return value

    if not dataclasses.is_dataclass(expr) or isinstance(expr, A.Query):
        return expr
    changes = {}
    for f in dataclasses.fields(expr):
        old = getattr(expr, f.name)
        new = sub_any(old)
        if new != old:
            changes[f.name] = new
    return dataclasses.replace(expr, **changes) if changes else expr


class SqlRenderer:
    """Renders a query AST back to engine-dialect SQL."""

    def render_statement(self, query: A.Query) -> str:
        return self.render_query(query)

    # -- query structure ---------------------------------------------------

    def render_query(self, query: A.Query) -> str:
        parts = []
        if query.ctes:
            ctes = ", ".join(
                f"{cte.name} AS ({self.render_query(cte.query)})"
                for cte in query.ctes
            )
            parts.append(f"WITH {ctes}")
        parts.append(self.render_body(query.body))
        if query.order_by:
            keys = ", ".join(self.render_sort_key(k) for k in query.order_by)
            parts.append(f"ORDER BY {keys}")
        if query.limit is not None:
            parts.append(f"LIMIT {query.limit}")
        if query.offset:
            if query.limit is None:
                parts.append(f"LIMIT -1 OFFSET {query.offset}")
            else:
                parts.append(f"OFFSET {query.offset}")
        return " ".join(parts)

    def render_body(self, body) -> str:
        if isinstance(body, A.SetOp):
            op = {
                "union": "UNION",
                "union_all": "UNION ALL",
                "intersect": "INTERSECT",
                "except": "EXCEPT",
            }[body.op]
            left = self.render_set_operand(body.left, parent=body.op)
            right = self.render_set_operand(body.right, parent=body.op)
            return f"{left} {op} {right}"
        return self.render_select_core(body)

    def render_set_operand(self, operand, parent: str) -> str:
        if isinstance(operand, A.SetOp):
            return self.render_body(operand)
        return self.render_select_core(operand)

    def render_select_core(self, core: A.SelectCore) -> str:
        parts = ["SELECT"]
        if core.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self.render_select_item(i) for i in core.items))
        if core.from_:
            parts.append(
                "FROM " + ", ".join(self.render_table_ref(r) for r in core.from_)
            )
        if core.where is not None:
            parts.append(f"WHERE {self.render_expr(core.where)}")
        if core.group_by:
            keys = ", ".join(self.render_expr(g) for g in core.group_by)
            if core.group_rollup:
                parts.append(f"GROUP BY ROLLUP({keys})")
            else:
                parts.append(f"GROUP BY {keys}")
        if core.having is not None:
            parts.append(f"HAVING {self.render_expr(core.having)}")
        return " ".join(parts)

    def render_select_item(self, item: A.SelectItem) -> str:
        if isinstance(item.expr, A.Star):
            prefix = f"{item.expr.table}." if item.expr.table else ""
            return f"{prefix}*"
        sql = self.render_expr(item.expr)
        if item.alias:
            sql += f" AS {item.alias}"
        return sql

    def render_table_ref(self, ref: A.TableRef) -> str:
        if isinstance(ref, A.NamedTable):
            return f"{ref.name} AS {ref.alias}" if ref.alias else ref.name
        if isinstance(ref, A.DerivedTable):
            return f"({self.render_query(ref.query)}) AS {ref.alias}"
        if isinstance(ref, A.JoinRef):
            left = self.render_table_ref(ref.left)
            right = self.render_table_ref(ref.right)
            word = {
                "inner": "JOIN",
                "left": "LEFT JOIN",
                "right": "RIGHT JOIN",
                "full": "FULL JOIN",
                "cross": "CROSS JOIN",
            }[ref.kind]
            sql = f"{left} {word} {right}"
            if ref.on is not None:
                sql += f" ON {self.render_expr(ref.on)}"
            return sql
        raise PlanningError(f"cannot render table ref {type(ref).__name__}")

    def render_sort_key(self, key: A.SortKey) -> str:
        sql = self.render_expr(key.expr)
        sql += " ASC" if key.ascending else " DESC"
        if key.nulls_first is True:
            sql += " NULLS FIRST"
        elif key.nulls_first is False:
            sql += " NULLS LAST"
        return sql

    # -- expressions -------------------------------------------------------

    def render_literal(self, expr: A.Literal) -> str:
        value = expr.value
        if value is None:
            return "NULL"
        if expr.is_date:
            return f"DATE '{format_date(value)}'"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            return _quote_str(value)
        return repr(value)

    def render_func_name(self, name: str) -> str:
        return name

    def render_cast_type(self, type_name: str) -> str:
        return type_name

    def render_division(self, left: str, right: str) -> str:
        return f"({left} / {right})"

    def render_expr(self, expr: A.Expr) -> str:
        render = self.render_expr
        if isinstance(expr, A.Literal):
            return self.render_literal(expr)
        if isinstance(expr, A.ColumnRef):
            return f"{expr.table}.{expr.name}" if expr.table else expr.name
        if isinstance(expr, A.BinaryOp):
            if expr.op == "/":
                return self.render_division(render(expr.left), render(expr.right))
            return f"({render(expr.left)} {expr.op} {render(expr.right)})"
        if isinstance(expr, A.UnaryOp):
            if expr.op == "NOT":
                return f"(NOT {render(expr.operand)})"
            return f"({expr.op}{render(expr.operand)})"
        if isinstance(expr, A.FuncCall):
            return self.render_call(expr)
        if isinstance(expr, A.Case):
            parts = ["CASE"]
            for cond, result in expr.whens:
                parts.append(f"WHEN {render(cond)} THEN {render(result)}")
            if expr.else_ is not None:
                parts.append(f"ELSE {render(expr.else_)}")
            parts.append("END")
            return " ".join(parts)
        if isinstance(expr, A.Between):
            word = "NOT BETWEEN" if expr.negated else "BETWEEN"
            return (
                f"({render(expr.expr)} {word} "
                f"{render(expr.low)} AND {render(expr.high)})"
            )
        if isinstance(expr, A.InList):
            word = "NOT IN" if expr.negated else "IN"
            items = ", ".join(render(i) for i in expr.items)
            return f"({render(expr.expr)} {word} ({items}))"
        if isinstance(expr, A.InSubquery):
            word = "NOT IN" if expr.negated else "IN"
            return f"({render(expr.expr)} {word} ({self.render_query(expr.query)}))"
        if isinstance(expr, A.Exists):
            word = "NOT EXISTS" if expr.negated else "EXISTS"
            return f"({word} ({self.render_query(expr.query)}))"
        if isinstance(expr, A.ScalarSubquery):
            return f"({self.render_query(expr.query)})"
        if isinstance(expr, A.IsNull):
            word = "IS NOT NULL" if expr.negated else "IS NULL"
            return f"({render(expr.expr)} {word})"
        if isinstance(expr, A.Like):
            word = "NOT LIKE" if expr.negated else "LIKE"
            sql = f"{render(expr.expr)} {word} {_quote_str(expr.pattern)}"
            if expr.escape is not None:
                sql += f" ESCAPE {_quote_str(expr.escape)}"
            return f"({sql})"
        if isinstance(expr, A.Cast):
            return (
                f"CAST({render(expr.expr)} AS "
                f"{self.render_cast_type(expr.type_name)})"
            )
        if isinstance(expr, A.WindowFunc):
            return self.render_window(expr)
        raise PlanningError(f"cannot render expression {type(expr).__name__}")

    def render_call(self, expr: A.FuncCall) -> str:
        name = self.render_func_name(expr.name)
        if expr.is_star:
            return f"{name}(*)"
        prefix = "DISTINCT " if expr.distinct else ""
        args = ", ".join(self.render_expr(a) for a in expr.args)
        return f"{name}({prefix}{args})"

    def render_window(self, expr: A.WindowFunc) -> str:
        over = []
        if expr.partition_by:
            keys = ", ".join(self.render_expr(p) for p in expr.partition_by)
            over.append(f"PARTITION BY {keys}")
        if expr.order_by:
            keys = ", ".join(self.render_sort_key(k) for k in expr.order_by)
            over.append(f"ORDER BY {keys}")
        return f"{self.render_call(expr.func)} OVER ({' '.join(over)})"


#: engine scalar / aggregate names → oracle UDF names (registered by
#: :mod:`repro.difftest.oracle`); everything else maps through unchanged
_SQLITE_FUNC_NAMES = {
    "YEAR": "year_of",
    "MONTH": "month_of",
    "DAY": "day_of",
    "ROUND": "np_round",
    "FLOOR": "np_floor",
    "CEIL": "np_ceil",
    "POWER": "np_power",
    "SQRT": "np_sqrt",
    "MOD": "np_mod",
    "SUBSTRING": "SUBSTR",
    "LEAST": "MIN",
    "GREATEST": "MAX",
    "STDDEV": "stddev_samp",
    "STDDEV_SAMP": "stddev_samp",
    "VAR_SAMP": "var_samp",
}

_SQLITE_CAST_TYPES = {
    "int": "INTEGER",
    "integer": "INTEGER",
    "bigint": "INTEGER",
    "float": "REAL",
    "double": "REAL",
    "real": "REAL",
    "char": "TEXT",
    "varchar": "TEXT",
    "text": "TEXT",
    "string": "TEXT",
}


class SqliteRenderer(SqlRenderer):
    """Renders a query AST as SQLite SQL for the oracle connection."""

    def render_literal(self, expr: A.Literal) -> str:
        value = expr.value
        if value is None:
            return "NULL"
        if expr.is_date:
            return str(int(value))  # epoch days, like the oracle's storage
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, str):
            return _quote_str(value)
        return repr(value)

    def render_division(self, left: str, right: str) -> str:
        # the engine's / is always float division and yields NULL on a
        # zero divisor; CAST AS REAL reproduces both in SQLite
        return f"(CAST({left} AS REAL) / {right})"

    def render_func_name(self, name: str) -> str:
        return _SQLITE_FUNC_NAMES.get(name, name)

    def render_cast_type(self, type_name: str) -> str:
        base = type_name.lower()
        if base == "date":
            return "date"  # handled in render_expr below
        if base.startswith("decimal") or base.startswith("numeric"):
            return "REAL"
        try:
            return _SQLITE_CAST_TYPES[base]
        except KeyError:
            raise PlanningError(f"no oracle cast mapping for {type_name!r}")

    def render_expr(self, expr: A.Expr) -> str:
        if isinstance(expr, A.Cast) and expr.type_name.lower() == "date":
            # CAST(x AS DATE) parses ISO strings / truncates numerics to
            # epoch days; SQLite's own CAST AS DATE is numeric affinity
            return f"date_days({self.render_expr(expr.expr)})"
        return super().render_expr(expr)

    def render_sort_key(self, key: A.SortKey) -> str:
        sql = self.render_expr(key.expr)
        sql += " ASC" if key.ascending else " DESC"
        # engine default: NULLs sort as the largest value (LAST asc,
        # FIRST desc); SQLite's bare default is NULLs-smallest, so the
        # placement is always spelled out
        nulls_first = key.nulls_first
        if nulls_first is None:
            nulls_first = not key.ascending
        sql += " NULLS FIRST" if nulls_first else " NULLS LAST"
        return sql

    def render_set_operand(self, operand, parent: str) -> str:
        # the engine parses INTERSECT tighter than UNION/EXCEPT; SQLite
        # set ops are flat left-associative, so nested operands that
        # would re-associate get wrapped as derived tables
        if isinstance(operand, A.SetOp):
            inner = self.render_body(operand)
            return f"SELECT * FROM ({inner})"
        return self.render_select_core(operand)

    def render_select_core(self, core: A.SelectCore) -> str:
        if not core.group_rollup:
            return super().render_select_core(core)
        # ROLLUP(a, b) ≡ grouping sets (a, b), (a), (): one UNION ALL
        # branch per prefix, dropped keys replaced by NULL in the
        # projection (and HAVING), mirroring the engine's rollup passes
        branches = []
        for active in range(len(core.group_by), -1, -1):
            kept = core.group_by[:active]
            dropped = core.group_by[active:]

            def null_out(expr: A.Expr) -> A.Expr:
                for d in dropped:
                    expr = substitute(expr, d, A.Literal(None))
                return expr

            items = tuple(
                A.SelectItem(
                    item.expr if isinstance(item.expr, A.Star) else null_out(item.expr),
                    item.alias,
                )
                for item in core.items
            )
            branch = A.SelectCore(
                items=items,
                from_=core.from_,
                where=core.where,
                group_by=kept,
                group_rollup=False,
                having=None if core.having is None else null_out(core.having),
                distinct=core.distinct,
            )
            branches.append(super().render_select_core(branch))
        return " UNION ALL ".join(branches)


_ENGINE = SqlRenderer()
_SQLITE = SqliteRenderer()


def to_engine_sql(query: A.Query) -> str:
    """Render a query AST in the engine's dialect."""
    return _ENGINE.render_query(query)


def to_sqlite_sql(query: A.Query) -> str:
    """Render a query AST in the oracle's SQLite dialect."""
    return _SQLITE.render_query(query)
