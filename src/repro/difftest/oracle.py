"""SQLite oracle for differential testing.

Loads an engine :class:`~repro.engine.database.Database`'s tables into an
in-memory ``sqlite3`` connection with a storage model that mirrors the
engine's columnar representation:

* INT / DATE / BOOL columns → ``INTEGER`` (dates as epoch days, bools
  as 0/1);
* FLOAT columns → ``REAL``;
* STR columns → ``TEXT``;
* NULLs stay NULL.

The connection registers deterministic UDFs for every engine scalar
function that has no faithful SQLite builtin, plus the sample-variance
aggregates, so the :mod:`~repro.difftest.render.SqliteRenderer` output
runs unmodified.  ``PRAGMA case_sensitive_like`` is switched on because
the engine's LIKE is case-sensitive.
"""

from __future__ import annotations

import math
import sqlite3
from typing import Iterable, Optional

from ..engine.types import Kind, parse_date

_SQLITE_TYPES = {
    Kind.INT: "INTEGER",
    Kind.DATE: "INTEGER",
    Kind.BOOL: "INTEGER",
    Kind.FLOAT: "REAL",
    Kind.STR: "TEXT",
}


# -- scalar UDFs (all None-propagating, matching engine null semantics) ----


def _year_of(days):
    if days is None:
        return None
    from ..engine.types import format_date

    return int(format_date(int(days))[:4])


def _month_of(days):
    if days is None:
        return None
    from ..engine.types import format_date

    return int(format_date(int(days))[5:7])


def _day_of(days):
    if days is None:
        return None
    from ..engine.types import format_date

    return int(format_date(int(days))[8:10])


def _np_round(value, digits=0):
    # numpy rounds half to even; Python 3's round() does too
    if value is None or digits is None:
        return None
    return float(round(float(value), int(digits)))


def _np_floor(value):
    if value is None:
        return None
    return int(math.floor(float(value)))


def _np_ceil(value):
    if value is None:
        return None
    return int(math.ceil(float(value)))


def _np_power(base, exp):
    if base is None or exp is None:
        return None
    try:
        result = float(base) ** float(exp)
    except (OverflowError, ZeroDivisionError, ValueError):
        return None
    if isinstance(result, complex) or math.isnan(result):
        return None
    return float(result)


def _np_sqrt(value):
    if value is None:
        return None
    value = float(value)
    if value < 0:
        return None  # engine: sqrt of a negative yields NULL
    return math.sqrt(value)


def _np_mod(a, b):
    if a is None or b is None:
        return None
    if float(b) == 0:
        return None  # engine: MOD by zero yields NULL
    # fmod semantics — sign of the dividend, like the engine and SQLite %
    if isinstance(a, int) and isinstance(b, int):
        return int(math.fmod(a, b))
    return math.fmod(float(a), float(b))


def _date_days(value):
    """Oracle twin of the engine's CAST(x AS DATE)."""
    if value is None:
        return None
    if isinstance(value, str):
        return parse_date(value)
    return int(value)


class _SampleAgg:
    """Shared accumulator for VAR_SAMP / STDDEV_SAMP.

    Uses the same E[x²] − n·mean² formulation over (n − 1) as the
    engine, returning NULL when fewer than two non-null values arrive.
    """

    def __init__(self):
        self.n = 0
        self.total = 0.0
        self.total_sq = 0.0

    def step(self, value):
        if value is None:
            return
        value = float(value)
        self.n += 1
        self.total += value
        self.total_sq += value * value

    def _variance(self) -> Optional[float]:
        if self.n < 2:
            return None
        mean = self.total / self.n
        return max((self.total_sq - self.n * mean * mean) / (self.n - 1), 0.0)


class _VarSamp(_SampleAgg):
    def finalize(self):
        return self._variance()


class _StddevSamp(_SampleAgg):
    def finalize(self):
        var = self._variance()
        return None if var is None else math.sqrt(var)


class SqliteOracle:
    """An in-memory SQLite database mirroring an engine database."""

    def __init__(self) -> None:
        self.conn = sqlite3.connect(":memory:")
        self.conn.execute("PRAGMA case_sensitive_like = ON")
        self._register_functions()

    def close(self) -> None:
        self.conn.close()

    def _register_functions(self) -> None:
        create = self.conn.create_function
        kwargs = {"deterministic": True}
        create("year_of", 1, _year_of, **kwargs)
        create("month_of", 1, _month_of, **kwargs)
        create("day_of", 1, _day_of, **kwargs)
        create("np_round", 1, _np_round, **kwargs)
        create("np_round", 2, _np_round, **kwargs)
        create("np_floor", 1, _np_floor, **kwargs)
        create("np_ceil", 1, _np_ceil, **kwargs)
        create("np_power", 2, _np_power, **kwargs)
        create("np_sqrt", 1, _np_sqrt, **kwargs)
        create("np_mod", 2, _np_mod, **kwargs)
        create("date_days", 1, _date_days, **kwargs)
        self.conn.create_aggregate("var_samp", 1, _VarSamp)
        self.conn.create_aggregate("stddev_samp", 1, _StddevSamp)

    # -- loading -----------------------------------------------------------

    @classmethod
    def from_database(cls, db) -> "SqliteOracle":
        """Mirror every table of an engine database into a new oracle."""
        oracle = cls()
        for name in db.catalog.table_names:
            oracle.load_table(db.catalog.table(name))
        return oracle

    def load_table(self, table) -> None:
        cols = ", ".join(
            f"{col.name} {_SQLITE_TYPES[col.kind]}" for col in table.schema.columns
        )
        self.conn.execute(f"CREATE TABLE {table.schema.name} ({cols})")
        columns = []
        for col in table.schema.columns:
            vector = table.scan_column(col.name)
            columns.append(
                [None if vector.null[i] else vector.value(i) for i in range(len(vector))]
            )
        if columns and columns[0]:
            placeholders = ", ".join("?" for _ in columns)
            self.conn.executemany(
                f"INSERT INTO {table.schema.name} VALUES ({placeholders})",
                zip(*columns),
            )
        self.conn.commit()

    # -- querying ----------------------------------------------------------

    def execute(self, sql: str) -> tuple[list[tuple], list[str]]:
        """Run SQL, returning (rows, column names)."""
        cursor = self.conn.execute(sql)
        names = [d[0] for d in cursor.description] if cursor.description else []
        return cursor.fetchall(), names
