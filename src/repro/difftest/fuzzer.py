"""Deterministic grammar-driven query fuzzer.

Generates random-but-reproducible query ASTs over whatever schema the
target database holds.  Everything flows from one ``random.Random(seed)``
instance, so a failing query is reproducible from its seed and index
alone.

The grammar deliberately stays inside the subset both engines implement
*deterministically*:

* FROM clauses walk declared foreign keys (``ColumnDef.references``) so
  joins hit real key pairs instead of empty cross products;
* predicates compare against literals sampled from live table data, so
  selectivity is neither 0 nor 1;
* scalar subqueries are always uncorrelated single-aggregate selects
  (guaranteed ≤ 1 row — both engines agree the >1-row case is an
  error, but erroring is not an interesting differential);
* ``ROW_NUMBER`` is only emitted when the window order includes the
  table's primary key — under ties its numbering is an arbitrary
  tie-break in both engines, and they need not break ties identically;
* a query gets a LIMIT only together with an ORDER BY over every
  projected column (a total order), for the same reason.
"""

from __future__ import annotations

import random
from typing import Optional

from ..engine.sql import ast_nodes as A
from ..engine.types import Kind

_NUMERIC = (Kind.INT, Kind.FLOAT)
_AGG_FUNCS = ("SUM", "AVG", "MIN", "MAX", "COUNT")
_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")


class _TableSource:
    """One aliased base table in the FROM clause."""

    def __init__(self, table, alias: str):
        self.table = table
        self.schema = table.schema
        self.alias = alias

    def columns(self, kinds=None):
        cols = self.schema.columns
        if kinds is not None:
            cols = [c for c in cols if c.kind in kinds]
        return cols

    def ref(self, col) -> A.ColumnRef:
        return A.ColumnRef(col.name, self.alias)


class QueryFuzzer:
    """Seeded random query generator over an engine database."""

    def __init__(self, db, seed: int, max_joins: int = 2):
        self.db = db
        self.rng = random.Random(seed)
        self.max_joins = max_joins
        self.catalog = db.catalog
        names = [
            n for n in self.catalog.table_names
            if self.catalog.table(n).num_rows > 0
        ]
        if not names:
            raise ValueError("fuzzer needs at least one non-empty table")
        self._tables = {n: self.catalog.table(n) for n in names}
        self._fk_out: dict[str, list] = {
            name: [
                c for c in table.schema.columns
                if c.references and c.references in self._tables
            ]
            for name, table in self._tables.items()
        }

    # -- entry point --------------------------------------------------------

    def generate(self) -> A.Query:
        sources, from_ = self._build_from()
        where = self._maybe_where(sources)
        if self.rng.random() < 0.45:
            core = self._aggregate_core(sources, from_, where)
        else:
            core = self._plain_core(sources, from_, where)
        return self._finish_query(core)

    # -- FROM clause --------------------------------------------------------

    def _build_from(self):
        rng = self.rng
        name = rng.choice(sorted(self._tables))
        sources = [_TableSource(self._tables[name], "t0")]
        from_ref: A.TableRef = A.NamedTable(name, "t0")
        joins = rng.randint(0, self.max_joins)
        for _ in range(joins):
            # follow an FK out of any table already in the tree
            candidates = [
                (src, fk)
                for src in sources
                for fk in self._fk_out[src.schema.name]
            ]
            if not candidates:
                break
            src, fk = rng.choice(candidates)
            target_table = self._tables[fk.references]
            pk = next(
                (c for c in target_table.schema.columns if c.primary_key), None
            )
            if pk is None:
                continue
            target = _TableSource(target_table, f"t{len(sources)}")
            sources.append(target)
            kind = rng.choices(("inner", "left"), weights=(3, 1))[0]
            on = A.BinaryOp("=", src.ref(fk), target.ref(pk))
            from_ref = A.JoinRef(from_ref, A.NamedTable(target_table.schema.name, target.alias), kind, on)
        return sources, (from_ref,)

    # -- projections --------------------------------------------------------

    def _plain_core(self, sources, from_, where) -> A.SelectCore:
        rng = self.rng
        items = []
        n_cols = rng.randint(1, 4)
        for i in range(n_cols):
            expr = self._scalar_expr(sources)
            items.append(A.SelectItem(expr, f"c{i}"))
        distinct = rng.random() < 0.15
        if not distinct and rng.random() < 0.25:
            items.append(A.SelectItem(self._window_expr(sources), f"c{len(items)}"))
        return A.SelectCore(
            items=tuple(items),
            from_=from_,
            where=where,
            distinct=distinct,
        )

    def _aggregate_core(self, sources, from_, where) -> A.SelectCore:
        rng = self.rng
        dims = []
        if rng.random() < 0.8:
            n_dims = rng.randint(1, 2)
            pool = [
                (src, col)
                for src in sources
                for col in src.columns()
            ]
            for src, col in rng.sample(pool, min(n_dims, len(pool))):
                dims.append(src.ref(col))
        items = [A.SelectItem(d, f"g{i}") for i, d in enumerate(dims)]
        n_aggs = rng.randint(1, 2)
        aggs = []
        for i in range(n_aggs):
            agg = self._aggregate_expr(sources)
            aggs.append(agg)
            items.append(A.SelectItem(agg, f"a{i}"))
        having = None
        if dims and rng.random() < 0.3:
            having = A.BinaryOp(
                self.rng.choice((">", ">=")),
                A.FuncCall("COUNT", (), is_star=True),
                A.Literal(self.rng.randint(1, 3)),
            )
        return A.SelectCore(
            items=tuple(items),
            from_=from_,
            where=where,
            group_by=tuple(dims),
            having=having,
        )

    def _aggregate_expr(self, sources) -> A.Expr:
        rng = self.rng
        func = rng.choice(_AGG_FUNCS)
        if func == "COUNT" and rng.random() < 0.5:
            return A.FuncCall("COUNT", (), is_star=True)
        kinds = _NUMERIC if func in ("SUM", "AVG") else None
        picked = self._pick_column(sources, kinds)
        if picked is None:
            return A.FuncCall("COUNT", (), is_star=True)
        src, col = picked
        distinct = func == "COUNT" and rng.random() < 0.3
        return A.FuncCall(func, (src.ref(col),), distinct=distinct)

    def _window_expr(self, sources) -> A.Expr:
        rng = self.rng
        src = rng.choice(sources)
        pk = next((c for c in src.schema.columns if c.primary_key), None)
        order_cols = []
        picked = self._pick_column([src])
        if picked is not None:
            order_cols.append(picked[1])
        choices = ["RANK", "DENSE_RANK", "SUM", "COUNT", "MIN", "MAX"]
        # ROW_NUMBER needs a unique window order to be deterministic; the
        # root table's PK stays unique through the N:1 FK joins, a joined
        # dimension's PK does not
        if pk is not None and src is sources[0]:
            choices.append("ROW_NUMBER")
            order_cols.append(pk)
        func_name = rng.choice(choices)
        if func_name in ("RANK", "DENSE_RANK", "ROW_NUMBER"):
            func = A.FuncCall(func_name, ())
        else:
            target = self._pick_column([src], _NUMERIC)
            if target is None:
                func = A.FuncCall("COUNT", (), is_star=True)
            else:
                func = A.FuncCall(func_name, (src.ref(target[1]),))
        partition = ()
        part_col = self._pick_column([src])
        if part_col is not None and rng.random() < 0.6:
            partition = (src.ref(part_col[1]),)
        order_by = tuple(
            A.SortKey(src.ref(c), ascending=rng.random() < 0.7)
            for c in order_cols
        )
        if func_name == "ROW_NUMBER" and pk is not None:
            order_by = order_by + (A.SortKey(src.ref(pk)),)
        return A.WindowFunc(func, partition_by=partition, order_by=order_by)

    # -- scalar expressions -------------------------------------------------

    def _pick_column(self, sources, kinds=None):
        pool = [
            (src, col) for src in sources for col in src.columns(kinds)
        ]
        return self.rng.choice(pool) if pool else None

    def _scalar_expr(self, sources, depth: int = 0) -> A.Expr:
        rng = self.rng
        picked = self._pick_column(sources)
        if picked is None:
            return A.Literal(1)
        src, col = picked
        ref = src.ref(col)
        roll = rng.random()
        if depth >= 2 or roll < 0.45:
            return ref
        if roll < 0.55 and col.kind in _NUMERIC:
            op = rng.choice(("+", "-", "*"))
            return A.BinaryOp(op, ref, A.Literal(rng.randint(1, 9)))
        if roll < 0.63 and col.kind in _NUMERIC:
            return self._cast_expr(ref, col.kind)
        if roll < 0.71:
            # THEN/ELSE must harmonize to one kind: stay within the
            # picked column's kind group (all numerics are one group)
            group = _NUMERIC if col.kind in _NUMERIC else (col.kind,)
            else_ = None
            if rng.random() < 0.7:
                other = self._pick_column(sources, group)
                if other is not None:
                    else_ = other[0].ref(other[1])
            whens = ((self._predicate(sources, depth + 1), ref),)
            return A.Case(whens, else_)
        if roll < 0.78:
            sub = self._scalar_subquery(sources)
            if sub is not None:
                return sub
        return ref

    def _cast_expr(self, ref: A.Expr, kind: Kind) -> A.Expr:
        rng = self.rng
        if kind is Kind.INT:
            target = rng.choice(("float", "char"))
        else:
            target = "int"
        return A.Cast(ref, target)

    def _scalar_subquery(self, sources) -> Optional[A.Expr]:
        # uncorrelated aggregate over a random table: always exactly 1 row
        rng = self.rng
        name = rng.choice(sorted(self._tables))
        table = self._tables[name]
        numeric = [c for c in table.schema.columns if c.kind in _NUMERIC]
        if not numeric:
            return None
        col = rng.choice(numeric)
        func = rng.choice(("MIN", "MAX", "COUNT", "AVG"))
        core = A.SelectCore(
            items=(
                A.SelectItem(A.FuncCall(func, (A.ColumnRef(col.name),)), "v"),
            ),
            from_=(A.NamedTable(name),),
        )
        return A.ScalarSubquery(A.Query(core))

    # -- predicates ---------------------------------------------------------

    def _maybe_where(self, sources) -> Optional[A.Expr]:
        rng = self.rng
        if rng.random() < 0.25:
            return None
        pred = self._predicate(sources)
        if rng.random() < 0.3:
            second = self._predicate(sources)
            pred = A.BinaryOp(rng.choice(("AND", "OR")), pred, second)
        return pred

    def _sample_value(self, src: _TableSource, col):
        """A live value from the column, or None when all-NULL/empty."""
        vector = src.table.scan_column(col.name)
        n = len(vector)
        for _ in range(8):
            v = vector.value(self.rng.randrange(n))
            if v is not None:
                return v
        return None

    def _value_literal(self, src, col) -> Optional[A.Expr]:
        value = self._sample_value(src, col)
        if value is None:
            return None
        if col.kind is Kind.DATE:
            return A.Literal(int(value), is_date=True)
        if col.kind is Kind.BOOL:
            return A.Literal(bool(value))
        if col.kind is Kind.FLOAT:
            return A.Literal(round(float(value), 2))
        return A.Literal(value)

    def _predicate(self, sources, depth: int = 0) -> A.Expr:
        rng = self.rng
        picked = self._pick_column(sources)
        if picked is None:
            return A.Literal(True)
        src, col = picked
        ref = src.ref(col)
        roll = rng.random()
        lit = self._value_literal(src, col)
        if lit is None or roll < 0.08:
            return A.IsNull(ref, negated=rng.random() < 0.5)
        if col.kind is Kind.STR and roll < 0.30:
            return self._like_predicate(src, col)
        if roll < 0.55:
            return A.BinaryOp(rng.choice(_CMP_OPS), ref, lit)
        if roll < 0.70 and col.kind in (Kind.INT, Kind.FLOAT, Kind.DATE):
            other = self._value_literal(src, col)
            if other is not None:
                low, high = sorted(
                    (lit, other), key=lambda l: l.value  # type: ignore[union-attr]
                )
                return A.Between(ref, low, high, negated=rng.random() < 0.2)
        if roll < 0.85:
            values = []
            for _ in range(rng.randint(2, 4)):
                v = self._value_literal(src, col)
                if v is not None:
                    values.append(v)
            if values:
                return A.InList(ref, tuple(values), negated=rng.random() < 0.2)
        if depth == 0 and col.kind in _NUMERIC and roll < 0.93:
            sub = self._scalar_subquery(sources)
            if sub is not None:
                return A.BinaryOp(rng.choice((">", "<", ">=", "<=")), ref, sub)
        return A.BinaryOp(rng.choice(_CMP_OPS), ref, lit)

    def _like_predicate(self, src, col) -> A.Expr:
        rng = self.rng
        value = self._sample_value(src, col)
        if not value or not isinstance(value, str):
            return A.IsNull(src.ref(col))
        # carve a slice out of a live value and decorate with wildcards
        start = rng.randrange(len(value))
        end = min(len(value), start + rng.randint(1, 4))
        chunk = value[start:end]
        escape = None
        if rng.random() < 0.25 and ("%" in chunk or "_" in chunk or rng.random() < 0.5):
            escape = "!"
            chunk = chunk.replace("!", "!!").replace("%", "!%").replace("_", "!_")
        elif "%" in chunk or "_" in chunk or "!" in chunk:
            # keep un-escaped patterns free of accidental wildcards
            chunk = chunk.replace("%", "").replace("_", "")
        style = rng.random()
        if style < 0.4:
            pattern = f"%{chunk}%"
        elif style < 0.7:
            pattern = f"{chunk}%"
        elif style < 0.9:
            pattern = f"%{chunk}"
        else:
            pattern = "%" + "_".join(chunk) + "%" if escape is None else f"%{chunk}%"
        return A.Like(
            src.ref(col), pattern, negated=rng.random() < 0.2, escape=escape
        )

    # -- ORDER BY / LIMIT ---------------------------------------------------

    def _finish_query(self, core: A.SelectCore) -> A.Query:
        rng = self.rng
        order_by: tuple[A.SortKey, ...] = ()
        limit = None
        if rng.random() < 0.6:
            # total order over every projected column → LIMIT is safe
            keys = []
            for item in core.items:
                ascending = rng.random() < 0.7
                nulls_first: Optional[bool] = None
                if rng.random() < 0.3:
                    nulls_first = rng.random() < 0.5
                keys.append(
                    A.SortKey(
                        A.ColumnRef(item.alias), ascending, nulls_first
                    )
                )
            order_by = tuple(keys)
            if rng.random() < 0.5:
                limit = rng.randint(1, 50)
        return A.Query(core, order_by=order_by, limit=limit)
