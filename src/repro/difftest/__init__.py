"""Differential correctness harness.

Runs the engine's query results against a SQLite oracle — the 99
qualification queries plus a seeded grammar fuzzer — normalizes both
result sets, and delta-shrinks any disagreement into a minimal repro
for the checked-in corpus (``tests/difftest_corpus/``).
"""

from .harness import DiffHarness, DiffOutcome, PASS_STATUSES, summarize
from .fuzzer import QueryFuzzer
from .normalize import compare_results, is_total_order, normalize_cell
from .oracle import SqliteOracle
from .render import SqliteRenderer, SqlRenderer, to_engine_sql, to_sqlite_sql
from .shrink import shrink_query

__all__ = [
    "DiffHarness",
    "DiffOutcome",
    "PASS_STATUSES",
    "QueryFuzzer",
    "SqliteOracle",
    "SqliteRenderer",
    "SqlRenderer",
    "compare_results",
    "is_total_order",
    "normalize_cell",
    "shrink_query",
    "summarize",
    "to_engine_sql",
    "to_sqlite_sql",
]
