"""Checked-in corpus of differential repros.

Every disagreement the fuzzer finds is delta-shrunk and written to
``tests/difftest_corpus/`` as a standalone ``.sql`` file in the
engine's dialect, with a comment header recording provenance (fuzz
seed, query index, status, first-difference detail).  The pytest suite
replays every corpus file against a fresh oracle on each run, so a
fixed bug stays fixed.
"""

from __future__ import annotations

import pathlib
import re
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus file: engine-dialect SQL plus its provenance header."""

    name: str
    sql: str
    header: dict[str, str]


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_") or "repro"


def write_repro(
    corpus_dir: pathlib.Path | str,
    sql: str,
    *,
    label: str,
    status: str,
    detail: str = "",
    seed: int | None = None,
) -> pathlib.Path:
    """Write one shrunk repro; returns the path written."""
    corpus_dir = pathlib.Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    base = _slug(label)
    path = corpus_dir / f"{base}.sql"
    counter = 1
    while path.exists():
        counter += 1
        path = corpus_dir / f"{base}_{counter}.sql"
    lines = [f"-- difftest repro: {label}", f"-- status: {status}"]
    if seed is not None:
        lines.append(f"-- seed: {seed}")
    if detail:
        lines.append(f"-- detail: {detail}")
    lines.append(sql.strip())
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_corpus(corpus_dir: pathlib.Path | str) -> Iterator[CorpusEntry]:
    """Yield every corpus entry (header comments parsed into a dict)."""
    corpus_dir = pathlib.Path(corpus_dir)
    if not corpus_dir.is_dir():
        return
    for path in sorted(corpus_dir.glob("*.sql")):
        header: dict[str, str] = {}
        sql_lines = []
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.startswith("--"):
                body = line[2:].strip()
                if ":" in body:
                    key, _, value = body.partition(":")
                    header[key.strip()] = value.strip()
            else:
                sql_lines.append(line)
        sql = "\n".join(sql_lines).strip()
        if sql:
            yield CorpusEntry(path.stem, sql, header)
