"""Delta-shrinking of failing differential queries.

Given a query AST and a predicate that tells whether a candidate still
reproduces the disagreement, the shrinker greedily removes structure —
LIMIT, ORDER BY keys, select items, WHERE conjuncts, GROUP BY keys,
joins, CTEs — keeping any removal that still fails, and iterates to a
fixpoint.  The result is the minimal repro checked into the corpus.

The predicate must treat candidates that *error* (in either engine) as
not-failing, so shrinking never morphs a result mismatch into an
unrelated parse or planning error.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from ..engine.sql import ast_nodes as A


def _without_index(items: tuple, i: int) -> tuple:
    return items[:i] + items[i + 1 :]


def _and_conjuncts(expr: A.Expr) -> list[A.Expr]:
    """Flatten a chain of ANDs into its conjuncts."""
    if isinstance(expr, A.BinaryOp) and expr.op == "AND":
        return _and_conjuncts(expr.left) + _and_conjuncts(expr.right)
    return [expr]


def _rebuild_and(conjuncts: list[A.Expr]) -> A.Expr:
    result = conjuncts[0]
    for c in conjuncts[1:]:
        result = A.BinaryOp("AND", result, c)
    return result


def _core_candidates(core: A.SelectCore) -> Iterator[A.SelectCore]:
    replace = dataclasses.replace
    if core.distinct:
        yield replace(core, distinct=False)
    if core.having is not None:
        yield replace(core, having=None)
    if core.where is not None:
        yield replace(core, where=None)
        conjuncts = _and_conjuncts(core.where)
        if len(conjuncts) > 1:
            for i in range(len(conjuncts)):
                rest = conjuncts[:i] + conjuncts[i + 1 :]
                yield replace(core, where=_rebuild_and(rest))
    for i in range(len(core.items)):
        if len(core.items) > 1:
            yield replace(core, items=_without_index(core.items, i))
    for i in range(len(core.group_by)):
        yield replace(core, group_by=_without_index(core.group_by, i))
    if core.group_rollup:
        yield replace(core, group_rollup=False)
    # collapse joins to one of their children (dropping the ON clause)
    for i, ref in enumerate(core.from_):
        if isinstance(ref, A.JoinRef):
            for child in (ref.left, ref.right):
                yield replace(
                    core, from_=core.from_[:i] + (child,) + core.from_[i + 1 :]
                )
    if len(core.from_) > 1:
        for i in range(len(core.from_)):
            yield replace(core, from_=_without_index(core.from_, i))


def _candidates(query: A.Query) -> Iterator[A.Query]:
    """One-step simplifications of ``query``, most drastic first."""
    replace = dataclasses.replace
    if query.limit is not None or query.offset:
        yield replace(query, limit=None, offset=0)
    if query.order_by:
        yield replace(query, order_by=())
        if len(query.order_by) > 1:
            for i in range(len(query.order_by)):
                yield replace(query, order_by=_without_index(query.order_by, i))
    for i in range(len(query.ctes)):
        yield replace(query, ctes=_without_index(query.ctes, i))
    if isinstance(query.body, A.SelectCore):
        for core in _core_candidates(query.body):
            yield replace(query, body=core)
    elif isinstance(query.body, A.SetOp):
        # a failing set operation often fails on one side alone
        for side in (query.body.left, query.body.right):
            yield replace(query, body=side)


def shrink_query(
    query: A.Query, still_fails: Callable[[A.Query], bool], max_rounds: int = 50
) -> A.Query:
    """Greedily minimize ``query`` while ``still_fails`` holds."""
    for _ in range(max_rounds):
        for candidate in _candidates(query):
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                query = candidate
                break  # restart candidate generation from the smaller query
        else:
            return query
    return query
