"""Result-set normalization for engine-vs-oracle comparison.

Both engines return rows of Python scalars but disagree on surface
representation: the engine hands back numpy-derived ints/floats/bools
and epoch-day ints for dates, SQLite hands back ints/floats/str.  The
normalizer maps both onto one canonical form:

* booleans → 0/1 integers;
* floats → quantized through ``.{digits}g`` formatting (default 6
  significant digits, the same policy the qualification fingerprints
  use), then collapsed to int when integral so ``3.0`` ≡ ``3``;
* ``-0.0`` → ``0``; NaN and ±Inf become distinguishable markers rather
  than poisoning equality;
* NULL stays ``None``.

Comparison is order-sensitive only when the query's ORDER BY provably
covers every projected column (a total order up to duplicates);
otherwise rows compare as multisets.

Quantization alone is brittle exactly at rounding boundaries: two sums
that differ by one ULP of accumulation order can straddle a ``.x5``
decimal boundary and quantize apart at *any* digit count.  The tolerant
comparison therefore falls back to ``math.isclose`` on the raw values
for cells whose quantized forms disagree.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..engine.sql import ast_nodes as A

#: sort rank per type so heterogeneous columns sort stably for the
#: multiset comparison (None < numbers < strings)
_TYPE_RANK = {type(None): 0, int: 1, float: 1, str: 2}


def normalize_cell(value, digits: int = 6):
    """Canonicalize one result cell (see module docstring)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "<nan>"
        if math.isinf(value):
            return "<inf>" if value > 0 else "<-inf>"
        quantized = float(f"{value:.{digits}g}")
        if quantized == int(quantized) and abs(quantized) < 2**53:
            return int(quantized)
        return quantized
    return value


def normalize_rows(rows: Sequence[Sequence], digits: int = 6) -> list[tuple]:
    """Canonicalize every cell of a result set."""
    return [tuple(normalize_cell(v, digits) for v in row) for row in rows]


def _sort_key(row: tuple):
    return tuple((_TYPE_RANK.get(type(v), 2), v if v is not None else 0) for v in row)


def is_total_order(query: A.Query) -> bool:
    """True when ORDER BY keys cover every projected column, making the
    row order fully determined (up to duplicate rows, which compare
    equal anyway)."""
    if not query.order_by:
        return False
    body = query.body
    if not isinstance(body, A.SelectCore):
        return False
    ordered = set()
    for key in query.order_by:
        expr = key.expr
        ordered.add(expr)
        if isinstance(expr, A.ColumnRef) and expr.table is None:
            ordered.add(expr.name)  # may match a select-item alias
    for item in body.items:
        if isinstance(item.expr, A.Star):
            return False
        if item.expr in ordered:
            continue
        if item.alias is not None and item.alias in ordered:
            continue
        return False
    return True


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_results(
    engine_rows: Sequence[Sequence],
    oracle_rows: Sequence[Sequence],
    ordered: bool,
    digits: int = 6,
    rel_tol: Optional[float] = None,
    abs_tol: float = 0.0,
) -> Optional[str]:
    """Compare two result sets; return None on match, else a short
    human-readable description of the first difference.

    With ``rel_tol`` set, cells whose quantized forms disagree still
    match when the raw values are numeric and within tolerance — this
    absorbs accumulation-order noise that happens to straddle a
    quantization boundary."""
    left = list(zip(normalize_rows(engine_rows, digits), engine_rows))
    right = list(zip(normalize_rows(oracle_rows, digits), oracle_rows))
    if len(left) != len(right):
        return f"row count {len(left)} (engine) vs {len(right)} (oracle)"
    if not ordered:
        left.sort(key=lambda pair: _sort_key(pair[0]))
        right.sort(key=lambda pair: _sort_key(pair[0]))
    for i, ((lnorm, lraw), (rnorm, rraw)) in enumerate(zip(left, right)):
        if lnorm == rnorm:
            continue
        if rel_tol is not None and _rows_close(lraw, rraw, rel_tol, abs_tol):
            continue
        return f"row {i}: engine={lnorm!r} oracle={rnorm!r}"
    return None


def _rows_close(lraw, rraw, rel_tol: float, abs_tol: float) -> bool:
    if len(lraw) != len(rraw):
        return False
    for lv, rv in zip(lraw, rraw):
        if normalize_cell(lv) == normalize_cell(rv):
            continue
        if not (_is_number(lv) and _is_number(rv)):
            return False
        if not math.isclose(float(lv), float(rv), rel_tol=rel_tol, abs_tol=abs_tol):
            return False
    return True
