"""Differential execution harness: engine vs SQLite oracle.

For every query AST the harness runs both engines and compares the
normalized result sets.  A comparison that fails at full precision is
retried down a short tolerance ladder before being declared a mismatch:

1. exact comparison at ``float_digits`` (default 6) significant digits;
2. if the query has a LIMIT but its ORDER BY is not a total order, the
   visible rows are an arbitrary tie-break — rerun both sides without
   LIMIT/OFFSET and compare as multisets (``tie_ambiguous``);
3. retry with ``math.isclose`` on the raw cell values (rel 1e-9) —
   numpy's pairwise summation and SQLite's running sum accumulate
   floating-point error in different orders, and when the true value
   sits on a decimal rounding boundary the quantized forms split no
   matter how many digits are kept (``float_tolerant``).

Anything that still differs is a real mismatch and gets delta-shrunk
into a minimal repro for the checked-in corpus.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional

from ..engine.errors import EngineError, QueryTimeout
from ..engine.sql import ast_nodes as A
from ..engine.sql.parser import parse_query
from .normalize import compare_results, is_total_order
from .oracle import SqliteOracle
from .render import to_engine_sql, to_sqlite_sql

#: outcome statuses that count as agreement; ``engine_timeout`` passes
#: because the harness's wall-clock guard killing a pathological
#: generated query is a liveness protection, not a disagreement
PASS_STATUSES = frozenset(
    {"match", "float_tolerant", "tie_ambiguous", "engine_timeout"}
)


@dataclasses.dataclass
class DiffOutcome:
    """Result of one differential check."""

    status: str  # match | float_tolerant | tie_ambiguous | mismatch
    #           # | engine_error | oracle_error
    sql: str
    sqlite_sql: str
    detail: str = ""
    label: str = ""

    @property
    def passed(self) -> bool:
        return self.status in PASS_STATUSES

    def with_label(self, label: str) -> "DiffOutcome":
        return dataclasses.replace(self, label=label)


class DiffHarness:
    """Runs query ASTs against both engines and classifies the outcome."""

    def __init__(
        self,
        db,
        oracle: Optional[SqliteOracle] = None,
        float_digits: int = 6,
        rel_tol: float = 1e-9,
        abs_tol: float = 1e-9,
        timeout_s: Optional[float] = None,
    ) -> None:
        self.db = db
        self.oracle = oracle if oracle is not None else SqliteOracle.from_database(db)
        self.float_digits = float_digits
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        #: per-query wall-clock guard (via the engine's governor) so a
        #: pathological generated query cannot hang a fuzz run
        self.timeout_s = timeout_s

    # -- single-query checking ---------------------------------------------

    def check_sql(self, sql: str, label: str = "") -> DiffOutcome:
        return self.check_query(parse_query(sql), label=label)

    def check_query(self, query: A.Query, label: str = "") -> DiffOutcome:
        sql = to_engine_sql(query)
        sqlite_sql = to_sqlite_sql(query)
        try:
            engine_rows = self.db.execute_ast(query, timeout_s=self.timeout_s).rows()
        except QueryTimeout as exc:
            return DiffOutcome("engine_timeout", sql, sqlite_sql, str(exc), label)
        except EngineError as exc:
            return DiffOutcome("engine_error", sql, sqlite_sql, str(exc), label)
        try:
            oracle_rows, _ = self.oracle.execute(sqlite_sql)
        except Exception as exc:  # sqlite3 raises its own hierarchy
            return DiffOutcome("oracle_error", sql, sqlite_sql, str(exc), label)

        ordered = bool(query.order_by)
        total = is_total_order(query)
        diff = compare_results(
            engine_rows, oracle_rows, ordered and total, self.float_digits
        )
        if diff is None:
            return DiffOutcome("match", sql, sqlite_sql, "", label)

        # ORDER BY + LIMIT with ties: which duplicates survive the cut is
        # an arbitrary tie-break — compare the unlimited multisets instead
        if query.limit is not None and not total:
            unlimited = dataclasses.replace(query, limit=None, offset=0)
            retry = self._compare_unlimited(unlimited)
            if retry is not None:
                return retry.with_label(label)

        tolerant = compare_results(
            engine_rows,
            oracle_rows,
            ordered and total,
            self.float_digits,
            rel_tol=self.rel_tol,
            abs_tol=self.abs_tol,
        )
        if tolerant is None:
            return DiffOutcome(
                "float_tolerant",
                sql,
                sqlite_sql,
                f"within rel_tol={self.rel_tol}; exact diff: {diff}",
                label,
            )
        return DiffOutcome("mismatch", sql, sqlite_sql, diff, label)

    def _compare_unlimited(self, query: A.Query) -> Optional[DiffOutcome]:
        sql = to_engine_sql(query)
        sqlite_sql = to_sqlite_sql(query)
        try:
            engine_rows = self.db.execute_ast(query, timeout_s=self.timeout_s).rows()
            oracle_rows, _ = self.oracle.execute(sqlite_sql)
        except Exception:
            return None
        diff = compare_results(
            engine_rows,
            oracle_rows,
            False,
            self.float_digits,
            rel_tol=self.rel_tol,
            abs_tol=self.abs_tol,
        )
        if diff is None:
            return DiffOutcome(
                "tie_ambiguous",
                sql,
                sqlite_sql,
                "LIMIT tie-break differs; unlimited multisets agree",
            )
        return None

    # -- workloads ----------------------------------------------------------

    def run_qualification(self, qgen, stream: int = 0) -> list[DiffOutcome]:
        """Differentially check all 99 qualification queries."""
        outcomes = []
        for template_id in sorted(qgen.templates):
            generated = qgen.generate(template_id, stream)
            for i, statement in enumerate(generated.statements):
                suffix = f"/{i}" if len(generated.statements) > 1 else ""
                outcomes.append(
                    self.check_sql(statement, label=f"query{template_id}{suffix}")
                )
        return outcomes

    def run_fuzz(
        self,
        count: int,
        seed: int,
        on_mismatch: Optional[Callable[[A.Query, DiffOutcome], None]] = None,
    ) -> list[DiffOutcome]:
        """Run ``count`` generated queries; invoke ``on_mismatch`` with the
        (unshrunk) AST for every real disagreement."""
        from .fuzzer import QueryFuzzer

        fuzzer = QueryFuzzer(self.db, seed)
        outcomes = []
        for index in range(count):
            query = fuzzer.generate()
            outcome = self.check_query(query, label=f"fuzz#{index}")
            outcomes.append(outcome)
            if not outcome.passed and on_mismatch is not None:
                on_mismatch(query, outcome)
        return outcomes


def summarize(outcomes: Iterable[DiffOutcome]) -> dict[str, int]:
    """Count outcomes by status, e.g. ``{'match': 97, 'mismatch': 2}``."""
    counts: dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    return counts
