"""The open-loop load driver: arrival patterns, query mix, SLA checks.

An **open-loop** driver issues statements on a precomputed arrival
schedule regardless of how fast the service answers — unlike a
closed-loop driver (issue, wait, issue), it keeps the pressure on when
the service slows down, which is exactly the regime where admission
control and load shedding earn their keep (coordinated omission is the
classic closed-loop blind spot).

The schedule is fully deterministic: phases (:func:`parse_phases`
accepts ``"steady:20:2,burst:40:1,ramp:5-40:3"`` — ``name:qps:secs``
with ``lo-hi`` ramping the rate linearly) are integrated into exact
arrival offsets, and a seeded RNG draws each arrival's tenant (by
weight) and query template; the SQL itself comes from the qgen
templates, pre-generated before the clock starts.  Each tenant
declares an optional :class:`SLATarget` (p99 latency ceiling,
error-rate ceiling); the resulting :class:`LoadReport` carries
per-tenant verdicts, latency percentiles off the shared log2
histograms, shed/retry-after observations, and the service's own
counters — ready for ``BENCH_service.json`` and the full-disclosure
report.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..obs import Histogram
from .core import AdmissionRejected, QueryService, TenantQuota
from ..engine.errors import QueryCancelled, QueryTimeout

#: how long (seconds) the driver waits for stragglers after the last
#: scheduled arrival before declaring them lost
DRAIN_TIMEOUT_S = 60.0


# -- arrival phases ----------------------------------------------------------


@dataclass(frozen=True)
class Phase:
    """One segment of the arrival pattern.

    Rate is ``qps`` throughout, or ramps linearly ``start_qps -> qps``
    when ``start_qps`` is set."""

    name: str
    duration_s: float
    qps: float
    start_qps: Optional[float] = None

    def arrivals(self) -> list[float]:
        """Offsets (seconds from phase start) of every arrival in this
        phase, by inverting the cumulative-rate integral."""
        lo = self.qps if self.start_qps is None else self.start_qps
        hi = self.qps
        total = (lo + hi) / 2.0 * self.duration_s
        out = []
        k = 1
        while k <= int(total + 1e-9):
            if lo == hi:
                t = k / lo
            else:
                # solve lo*t + (hi-lo) t^2 / (2 D) = k for t
                a = (hi - lo) / (2.0 * self.duration_s)
                disc = lo * lo + 4.0 * a * k
                t = (-lo + disc ** 0.5) / (2.0 * a)
            out.append(min(t, self.duration_s))
            k += 1
        return out


def parse_phases(spec: str) -> list[Phase]:
    """Parse ``"steady:2:10,burst:20:5,ramp:2-20:10"`` — comma-joined
    ``name:qps:duration_s`` segments where ``qps`` may be ``lo-hi``
    for a linear ramp."""
    phases = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"phase {chunk!r}: expected name:qps:duration_s"
            )
        name, rate, duration = parts
        try:
            if "-" in rate:
                lo_s, hi_s = rate.split("-", 1)
                lo, hi = float(lo_s), float(hi_s)
            else:
                lo = hi = float(rate)
            duration_s = float(duration)
        except ValueError:
            raise ValueError(
                f"phase {chunk!r}: qps and duration must be numeric"
            ) from None
        if duration_s <= 0 or hi <= 0 or lo < 0:
            raise ValueError(
                f"phase {chunk!r}: duration and peak qps must be positive"
            )
        phases.append(Phase(
            name=name, duration_s=duration_s, qps=hi,
            start_qps=None if lo == hi else lo,
        ))
    if not phases:
        raise ValueError(f"no phases in {spec!r}")
    return phases


# -- tenants and SLAs --------------------------------------------------------


@dataclass(frozen=True)
class SLATarget:
    """Declared service-level objectives for one tenant: an end-to-end
    p99 latency ceiling and a ceiling on the failure rate among
    *admitted* statements (sheds are capacity signalling, not errors,
    and are reported separately)."""

    p99_s: float
    max_error_rate: float = 0.0


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's share of the workload: arrival ``weight`` (relative
    to the other tenants), the qgen ``templates`` its mix draws from,
    and optional SLA / quota declarations."""

    name: str
    weight: float = 1.0
    templates: tuple[int, ...] = (1,)
    sla: Optional[SLATarget] = None
    quota: Optional[TenantQuota] = None


@dataclass
class TenantReport:
    """Per-tenant outcome of one load run."""

    tenant: str
    issued: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    cancelled: int = 0
    lost: int = 0
    max_retry_after_s: float = 0.0
    latency: dict = field(default_factory=dict)
    sla: Optional[SLATarget] = None
    sla_failures: list[str] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        done = self.completed + self.failed + self.timeouts
        return (self.failed + self.timeouts) / done if done else 0.0

    @property
    def sla_ok(self) -> bool:
        return not self.sla_failures

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "issued": self.issued,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "lost": self.lost,
            "error_rate": self.error_rate,
            "max_retry_after_s": self.max_retry_after_s,
            "latency": self.latency,
            "sla": (
                {"p99_s": self.sla.p99_s,
                 "max_error_rate": self.sla.max_error_rate}
                if self.sla else None
            ),
            "sla_ok": self.sla_ok,
            "sla_failures": list(self.sla_failures),
        }


@dataclass
class LoadReport:
    """The whole run: per-tenant reports plus the service's own view."""

    phases: list[dict] = field(default_factory=list)
    duration_s: float = 0.0
    issued: int = 0
    tenants: list[TenantReport] = field(default_factory=list)
    service: dict = field(default_factory=dict)
    seed: int = 0

    @property
    def ok(self) -> bool:
        return all(t.sla_ok for t in self.tenants)

    def as_dict(self) -> dict:
        return {
            "kind": "service-load",
            "seed": self.seed,
            "duration_s": self.duration_s,
            "issued": self.issued,
            "ok": self.ok,
            "phases": list(self.phases),
            "tenants": [t.as_dict() for t in self.tenants],
            "service": self.service,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# -- the driver --------------------------------------------------------------


class _Arrival:
    __slots__ = ("at_s", "tenant", "template", "sql")

    def __init__(self, at_s: float, tenant: str, template: int, sql: str):
        self.at_s = at_s
        self.tenant = tenant
        self.template = template
        self.sql = sql


class LoadDriver:
    """Replays a deterministic arrival schedule against a service.

    Construction precomputes the whole schedule (arrival offsets,
    tenant draws, generated SQL); :meth:`run` then plays it open-loop —
    a late schedule issues immediately rather than silently stretching
    the pattern — and blocks until every admitted statement resolves
    (or the drain timeout passes)."""

    def __init__(
        self,
        service: QueryService,
        qgen,
        tenants: Sequence[TenantProfile],
        phases: Sequence[Phase],
        seed: int = 1,
    ):
        if not tenants:
            raise ValueError("at least one tenant profile is required")
        self.service = service
        self.tenants = list(tenants)
        self.phases = list(phases)
        self.seed = seed
        self.schedule = self._build_schedule(qgen)

    def _build_schedule(self, qgen) -> list[_Arrival]:
        import random

        rng = random.Random(self.seed)
        weights = [t.weight for t in self.tenants]
        arrivals: list[_Arrival] = []
        base = 0.0
        for phase in self.phases:
            for offset in phase.arrivals():
                profile = rng.choices(self.tenants, weights=weights)[0]
                template = profile.templates[
                    rng.randrange(len(profile.templates))
                ]
                arrivals.append(_Arrival(
                    base + offset, profile.name, template, sql=""
                ))
            base += phase.duration_s
        arrivals.sort(key=lambda a: a.at_s)
        # pre-generate all SQL before the clock starts: template
        # expansion must not perturb the arrival pattern.  The arrival
        # index doubles as the qgen permutation stream, so repeated
        # draws of one template still vary their substitutions.
        for index, arrival in enumerate(arrivals):
            generated = qgen.generate(arrival.template, stream=index)
            arrival.sql = generated.statements[0]
        return arrivals

    def run(self) -> LoadReport:
        """Issue the schedule, wait for stragglers, report."""
        profiles = {t.name: t for t in self.tenants}
        sessions = {
            t.name: self.service.create_session(t.name, quota=t.quota)
            for t in self.tenants
        }
        reports = {t.name: TenantReport(tenant=t.name, sla=t.sla)
                   for t in self.tenants}
        hists = {
            t.name: Histogram(f"loadgen.{t.name}", threading.Lock())
            for t in self.tenants
        }
        lock = threading.Lock()
        outstanding: list = []

        def on_done(report: TenantReport, hist: Histogram, t0: float):
            def callback(future):
                elapsed = time.monotonic() - t0
                exc = future.exception()
                with lock:
                    if exc is None:
                        report.completed += 1
                        hist.observe(elapsed)
                    elif isinstance(exc, QueryCancelled):
                        report.cancelled += 1
                    elif isinstance(exc, QueryTimeout):
                        report.timeouts += 1
                    else:
                        report.failed += 1
            return callback

        start = time.monotonic()
        for arrival in self.schedule:
            due = start + arrival.at_s
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            report = reports[arrival.tenant]
            report.issued += 1
            t0 = time.monotonic()
            try:
                future = sessions[arrival.tenant].submit(arrival.sql)
            except AdmissionRejected as shed:
                report.shed += 1
                report.max_retry_after_s = max(
                    report.max_retry_after_s, shed.retry_after_s
                )
                continue
            report.admitted += 1
            future.add_done_callback(
                on_done(report, hists[arrival.tenant], t0)
            )
            outstanding.append(future)

        drain_deadline = time.monotonic() + DRAIN_TIMEOUT_S
        for future in outstanding:
            remaining = drain_deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                future.exception(timeout=remaining)
            except TimeoutError:
                break
        duration = time.monotonic() - start

        from .core import latency_percentiles_from

        out = LoadReport(
            seed=self.seed,
            duration_s=duration,
            issued=len(self.schedule),
            phases=[
                {"name": p.name, "duration_s": p.duration_s, "qps": p.qps,
                 "start_qps": p.start_qps}
                for p in self.phases
            ],
        )
        with lock:
            for name in sorted(reports):
                report = reports[name]
                report.latency = latency_percentiles_from(hists[name])
                resolved = (report.completed + report.failed
                            + report.timeouts + report.cancelled)
                report.lost = report.admitted - resolved
                self._check_sla(report, profiles[name].sla)
                out.tenants.append(report)
        out.service = self.service.as_dict()
        return out

    @staticmethod
    def _check_sla(report: TenantReport, sla: Optional[SLATarget]) -> None:
        if sla is None:
            return
        p99 = report.latency.get("p99", 0.0)
        if p99 > sla.p99_s:
            report.sla_failures.append(
                f"p99 latency {p99:.3f}s exceeds target {sla.p99_s:.3f}s"
            )
        if report.error_rate > sla.max_error_rate:
            report.sla_failures.append(
                f"error rate {report.error_rate:.3f} exceeds ceiling "
                f"{sla.max_error_rate:.3f}"
            )
        if report.lost:
            report.sla_failures.append(
                f"{report.lost} admitted statements never resolved"
            )
