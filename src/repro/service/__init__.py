"""`repro.service` — the long-lived multi-tenant query service.

Two cooperating halves:

* :mod:`repro.service.core` — :class:`QueryService`: a thread-pool
  front-end over one shared :class:`~repro.engine.Database` with
  sessions, per-tenant quotas (concurrency, memory budget, statement
  timeout), bounded admission queues with deadline-aware load shedding,
  and a per-tenant circuit breaker.  Rejections carry a ``retry_after``
  hint; one tenant's faults can never starve the others.
* :mod:`repro.service.loadgen` — an open-loop load driver that replays
  configurable arrival patterns (steady / ramp / burst phases, a
  per-tenant query mix drawn from the qgen templates) against a
  service while recording end-to-end latency percentiles and checking
  declared SLA targets.

Service state is SQL-queryable through the ``sys.sessions`` and
``sys.service`` virtual tables the service registers on its database.
"""

from .core import (
    AdmissionRejected,
    CircuitBreaker,
    QueryService,
    ServiceError,
    ServiceShutdown,
    Session,
    SessionClosed,
    TenantQuota,
)
from .loadgen import (
    LoadDriver,
    LoadReport,
    Phase,
    SLATarget,
    TenantProfile,
    TenantReport,
    parse_phases,
)

__all__ = [
    "QueryService",
    "Session",
    "TenantQuota",
    "CircuitBreaker",
    "ServiceError",
    "AdmissionRejected",
    "SessionClosed",
    "ServiceShutdown",
    "LoadDriver",
    "LoadReport",
    "Phase",
    "SLATarget",
    "TenantProfile",
    "TenantReport",
    "parse_phases",
]
