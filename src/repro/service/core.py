"""The multi-tenant query service: admission control, quotas, shedding.

A :class:`QueryService` wraps one shared
:class:`~repro.engine.Database` in a long-lived pool of worker threads
and hands out :class:`Session` objects keyed by *tenant*.  Every
statement flows through four gates before it reaches the engine:

1. **Circuit breaker** — each tenant has a breaker that trips OPEN
   after ``breaker_threshold`` consecutive execution failures.  While
   open, submissions are shed immediately with a ``retry_after`` equal
   to the remaining cool-down; after ``breaker_reset_s`` the breaker
   half-opens and admits exactly one probe statement — success closes
   it, failure re-opens it.
2. **Bounded queue** — at most ``quota.max_queue_depth`` statements
   may wait per tenant; past that the service sheds with a
   ``retry_after`` derived from the tenant's EWMA statement latency.
3. **Deadline-aware shedding** — when the predicted queue wait
   (EWMA latency x queue length / concurrency slots) already exceeds
   the statement's timeout, queueing is pointless work: the service
   rejects up front instead of timing the statement out later.
4. **Per-tenant concurrency** — a tenant never holds more than
   ``quota.max_concurrent`` worker threads, so a flood (or a fault
   storm) from one tenant cannot starve the others; dispatch
   round-robins across tenants with queued work.

Admitted statements execute under the engine's existing
:class:`~repro.engine.governor.ResourceContext`: the statement's
*end-to-end* deadline (admission time + timeout, minus time spent
queued) becomes the governor deadline, the tenant's memory budget
becomes the governor budget, and the session's cancel event is the
governor cancel flag.  A per-tenant
:class:`~repro.faults.FaultInjector` (``set_faults``) scopes injected
failures to that tenant alone.

Service state is queryable in SQL: the service registers the
``sys.sessions`` and ``sys.service`` virtual tables on its database.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Optional

from ..engine.errors import (
    EngineError,
    QueryCancelled,
    QueryTimeout,
)
from ..engine.types import ColumnDef, Kind, SqlType, TableSchema, varchar
from ..engine.virtual import VirtualTableProvider
from ..obs import Histogram, get_registry, get_tracer, latency_percentiles

#: EWMA smoothing for the per-tenant latency estimate that drives
#: deadline-aware shedding (0.2 = a new sample moves the estimate 20%)
EWMA_ALPHA = 0.2

#: floor on every retry_after hint, so clients never busy-spin
MIN_RETRY_AFTER_S = 0.01


# -- errors ------------------------------------------------------------------


class ServiceError(EngineError):
    """Base class for query-service errors."""


class AdmissionRejected(ServiceError):
    """The service shed this statement instead of queueing it.

    ``retry_after_s`` tells the client when capacity is expected;
    ``reason`` is one of ``"queue_full"``, ``"deadline"`` or
    ``"breaker_open"``.  Marked *transient*: a later retry may be
    admitted."""

    transient = True

    def __init__(self, message: str, reason: str, retry_after_s: float):
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class SessionClosed(ServiceError):
    """The statement's session was closed."""


class ServiceShutdown(ServiceError):
    """The service is shutting down and no longer admits statements."""


# -- quotas and the circuit breaker ------------------------------------------


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource bounds, enforced at admission and execution.

    ``max_concurrent`` bounds worker threads held at once;
    ``max_queue_depth`` bounds statements waiting for a slot;
    ``statement_timeout_s`` is the default end-to-end deadline (queue
    wait included); ``mem_budget_bytes`` flows into the governor so
    over-budget operators spill instead of dying."""

    max_concurrent: int = 2
    max_queue_depth: int = 8
    statement_timeout_s: Optional[float] = None
    mem_budget_bytes: Optional[float] = None


class CircuitBreaker:
    """A per-tenant three-state breaker (closed / open / half_open).

    Not internally locked: the owning service calls every method under
    its own lock, which also keeps state transitions and counter
    updates atomic with admission decisions."""

    def __init__(self, threshold: int = 5, reset_timeout_s: float = 1.0):
        self.threshold = threshold
        self.reset_timeout_s = reset_timeout_s
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0
        self.opened_at = 0.0
        self._probe_inflight = False

    def admit(self, now: float) -> tuple[bool, float]:
        """``(admitted, retry_after_s)`` for one arrival at ``now``.

        An OPEN breaker past its cool-down transitions to HALF_OPEN and
        admits exactly one probe; concurrent arrivals during the probe
        are shed with the full reset timeout as the hint."""
        if self.state == "closed":
            return True, 0.0
        if self.state == "open":
            remaining = self.opened_at + self.reset_timeout_s - now
            if remaining > 0.0:
                return False, remaining
            self.state = "half_open"
            self._probe_inflight = False
        if self._probe_inflight:
            return False, self.reset_timeout_s
        self._probe_inflight = True
        return True, 0.0

    def record_success(self) -> None:
        """A statement completed: close the breaker, reset the count."""
        self.state = "closed"
        self.consecutive_failures = 0
        self._probe_inflight = False

    def record_failure(self, now: float) -> None:
        """A statement failed: count it; trip past the threshold, and
        re-open immediately on a failed half-open probe."""
        self.consecutive_failures += 1
        self._probe_inflight = False
        if (
            self.state == "half_open"
            or self.consecutive_failures >= self.threshold
        ):
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self.opened_at = now


# -- internal state ----------------------------------------------------------


class _Statement:
    """One admitted statement waiting for (or holding) a worker."""

    __slots__ = (
        "session", "sql", "future", "cancel_event", "enqueued_at",
        "deadline", "timeout_s",
    )

    def __init__(self, session, sql, timeout_s, now):
        self.session = session
        self.sql = sql
        self.future: Future = Future()
        self.cancel_event = threading.Event()
        self.enqueued_at = now
        self.timeout_s = timeout_s
        self.deadline = now + timeout_s if timeout_s is not None else None


class _TenantState:
    """Everything the service tracks about one tenant."""

    __slots__ = (
        "name", "quota", "breaker", "pending", "running", "faults",
        "admitted", "completed", "failed", "timeouts", "cancelled",
        "shed_queue_full", "shed_deadline", "shed_breaker",
        "max_queued", "last_retry_after_s", "ewma_latency_s",
        "latency", "queue_wait",
    )

    def __init__(self, name: str, quota: TenantQuota, breaker: CircuitBreaker):
        self.name = name
        self.quota = quota
        self.breaker = breaker
        self.pending: deque[_Statement] = deque()
        self.running = 0
        self.faults = None
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.timeouts = 0
        self.cancelled = 0
        self.shed_queue_full = 0
        self.shed_deadline = 0
        self.shed_breaker = 0
        self.max_queued = 0
        self.last_retry_after_s = 0.0
        self.ewma_latency_s: Optional[float] = None
        # log2 histograms: bounded memory, mergeable, percentile-ready
        self.latency = Histogram(f"service.latency.{name}", threading.Lock())
        self.queue_wait = Histogram(
            f"service.queue_wait.{name}", threading.Lock()
        )

    @property
    def shed(self) -> int:
        return self.shed_queue_full + self.shed_deadline + self.shed_breaker

    def predicted_wait_s(self) -> float:
        """Expected queue wait for a new arrival: EWMA statement
        latency scaled by how many statements stand between the arrival
        and a free slot (0 until the first completion seeds the EWMA)."""
        if self.ewma_latency_s is None:
            return 0.0
        slots = max(self.quota.max_concurrent, 1)
        ahead = len(self.pending) + self.running
        return self.ewma_latency_s * (ahead / slots)

    def as_row(self) -> tuple:
        return (
            self.name, self.breaker.state,
            self.breaker.consecutive_failures, self.breaker.trips,
            self.admitted, self.shed, self.shed_queue_full,
            self.shed_deadline, self.shed_breaker, len(self.pending),
            self.max_queued, self.running, self.completed, self.failed,
            self.timeouts, self.cancelled, self.last_retry_after_s,
            self.ewma_latency_s,
            self.queue_wait.quantile(0.5) if self.queue_wait.count else None,
            self.latency.quantile(0.5) if self.latency.count else None,
            self.latency.quantile(0.99) if self.latency.count else None,
        )

    def as_dict(self) -> dict:
        return {
            "tenant": self.name,
            "breaker_state": self.breaker.state,
            "consecutive_failures": self.breaker.consecutive_failures,
            "breaker_trips": self.breaker.trips,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "shed_breaker": self.shed_breaker,
            "queued": len(self.pending),
            "max_queued": self.max_queued,
            "running": self.running,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "last_retry_after_s": self.last_retry_after_s,
            "ewma_latency_s": self.ewma_latency_s,
            "latency": latency_percentiles_from(self.latency),
            "queue_wait": latency_percentiles_from(self.queue_wait),
        }


def latency_percentiles_from(hist: Histogram) -> dict:
    """The shared percentile shape, read off an existing histogram."""
    if not hist.count:
        return latency_percentiles([])
    return {
        "count": hist.count,
        "mean": hist.mean(),
        "max": hist.max,
        "p50": hist.quantile(0.50),
        "p90": hist.quantile(0.90),
        "p95": hist.quantile(0.95),
        "p99": hist.quantile(0.99),
    }


# -- sessions ----------------------------------------------------------------


class Session:
    """One client's handle on the service.

    ``submit`` enqueues a statement and returns a
    :class:`~concurrent.futures.Future`; ``execute`` blocks for the
    result.  ``cancel`` sets the cancel flag of every in-flight
    statement of *this session only* — running statements stop at the
    next batch boundary, queued ones fail at dispatch — and leaves the
    session usable for new statements."""

    def __init__(self, service: "QueryService", session_id: int, tenant: str):
        self.service = service
        self.session_id = session_id
        self.tenant = tenant
        self.created_at = time.time()
        self.closed = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.cancelled = 0
        self._inflight: set[_Statement] = set()

    def submit(self, sql: str, timeout_s: Optional[float] = None) -> Future:
        return self.service.submit(self, sql, timeout_s=timeout_s)

    def execute(self, sql: str, timeout_s: Optional[float] = None):
        """Submit and block for the engine
        :class:`~repro.engine.database.Result` (raises what the
        statement raised)."""
        return self.submit(sql, timeout_s=timeout_s).result()

    def cancel(self) -> int:
        """Cancel every in-flight statement; returns how many were
        flagged.  The session stays open."""
        return self.service._cancel_session(self)

    def close(self) -> None:
        """Close the session: cancel in-flight statements and refuse
        new ones."""
        self.service._close_session(self)

    def as_row(self) -> tuple:
        return (
            self.session_id, self.tenant,
            "closed" if self.closed else "open", self.created_at,
            self.submitted, self.completed, self.failed, self.shed,
            self.cancelled, len(self._inflight),
        )


# -- the service -------------------------------------------------------------


class QueryService:
    """A long-lived thread-pool query service over one shared database.

    ``workers`` threads drain the per-tenant admission queues in
    round-robin order; per-tenant quotas bound concurrency, queue depth,
    memory and statement deadlines; a per-tenant circuit breaker sheds
    during failure storms.  See the module docstring for the admission
    pipeline."""

    def __init__(
        self,
        db,
        workers: int = 4,
        default_quota: Optional[TenantQuota] = None,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 1.0,
    ):
        self.db = db
        self.workers = max(int(workers), 1)
        self.default_quota = default_quota or TenantQuota()
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.started_at = time.time()
        self._lock = threading.Condition()
        self._tenants: dict[str, _TenantState] = {}
        self._sessions: dict[int, Session] = {}
        self._session_ids = itertools.count(1)
        self._rr: deque[str] = deque()  # round-robin dispatch order
        self._shutdown = False
        self._drain = True
        self._threads = [
            threading.Thread(
                target=self._worker, args=(i,),
                name=f"svc-worker-{i}", daemon=True,
            )
            for i in range(self.workers)
        ]
        install_service_tables(db, self)
        for thread in self._threads:
            thread.start()

    # -- tenants and sessions ------------------------------------------------

    def tenant(
        self, name: str, quota: Optional[TenantQuota] = None
    ) -> _TenantState:
        """Get-or-create the tenant ``name`` (``quota`` applies only on
        first sight; later calls must not silently rewrite limits)."""
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = _TenantState(
                    name,
                    quota or self.default_quota,
                    CircuitBreaker(self.breaker_threshold,
                                   self.breaker_reset_s),
                )
                self._tenants[name] = state
                self._rr.append(name)
            return state

    def create_session(
        self, tenant: str, quota: Optional[TenantQuota] = None
    ) -> Session:
        """Open a session for ``tenant`` (created on first use)."""
        self.tenant(tenant, quota)
        with self._lock:
            if self._shutdown:
                raise ServiceShutdown("service is shut down")
            session = Session(self, next(self._session_ids), tenant)
            self._sessions[session.session_id] = session
            return session

    def set_faults(self, tenant: str, injector) -> None:
        """Install (or clear, with ``None``) a tenant-scoped
        :class:`~repro.faults.FaultInjector`: its query- and
        operator-level injection points fire only for this tenant's
        statements."""
        state = self.tenant(tenant)
        with self._lock:
            state.faults = injector

    # -- admission -----------------------------------------------------------

    def submit(
        self, session: Session, sql: str, timeout_s: Optional[float] = None
    ) -> Future:
        """Admit one statement or shed it with
        :class:`AdmissionRejected` (see the module docstring for the
        gate order)."""
        registry = get_registry()
        with self._lock:
            if self._shutdown:
                raise ServiceShutdown("service is shut down")
            if session.closed:
                raise SessionClosed(
                    f"session {session.session_id} is closed"
                )
            tenant = self._tenants[session.tenant]
            session.submitted += 1
            now = time.monotonic()
            if timeout_s is None:
                timeout_s = tenant.quota.statement_timeout_s

            admitted, retry_after = tenant.breaker.admit(now)
            if not admitted:
                return self._shed(
                    session, tenant, "breaker_open", retry_after, registry,
                    f"tenant {tenant.name} circuit breaker is open",
                )
            if len(tenant.pending) >= tenant.quota.max_queue_depth:
                retry_after = max(tenant.predicted_wait_s(),
                                  tenant.ewma_latency_s or 0.0)
                return self._shed(
                    session, tenant, "queue_full", retry_after, registry,
                    f"tenant {tenant.name} admission queue is full "
                    f"({tenant.quota.max_queue_depth} waiting)",
                )
            predicted = tenant.predicted_wait_s()
            if timeout_s is not None and predicted >= timeout_s:
                return self._shed(
                    session, tenant, "deadline", predicted, registry,
                    f"predicted queue wait {predicted:.3f}s exceeds the "
                    f"{timeout_s:.3f}s statement deadline",
                )

            statement = _Statement(session, sql, timeout_s, now)
            session._inflight.add(statement)
            tenant.pending.append(statement)
            tenant.admitted += 1
            tenant.max_queued = max(tenant.max_queued, len(tenant.pending))
            if registry.enabled:
                registry.counter(
                    "service.admitted", labels={"tenant": tenant.name}
                ).add()
                registry.gauge(
                    "service.max_queue_depth", labels={"tenant": tenant.name}
                ).set_max(len(tenant.pending))
            self._lock.notify()
            return statement.future

    def _shed(
        self, session, tenant, reason, retry_after, registry, message
    ) -> Future:
        """Reject one arrival (caller holds the lock): count it, stamp
        the retry hint, raise."""
        retry_after = max(retry_after, MIN_RETRY_AFTER_S)
        if reason == "queue_full":
            tenant.shed_queue_full += 1
        elif reason == "deadline":
            tenant.shed_deadline += 1
        else:
            tenant.shed_breaker += 1
        tenant.last_retry_after_s = retry_after
        session.shed += 1
        if registry.enabled:
            registry.counter(
                "service.shed", labels={"tenant": tenant.name}
            ).add()
        raise AdmissionRejected(
            f"{message}; retry after {retry_after:.3f}s",
            reason=reason, retry_after_s=retry_after,
        )

    # -- dispatch ------------------------------------------------------------

    def _next_statement(self) -> Optional[tuple[_Statement, _TenantState]]:
        """The next runnable statement under round-robin tenant
        fairness, or ``None``.  Caller holds the lock."""
        for _ in range(len(self._rr)):
            name = self._rr[0]
            self._rr.rotate(-1)
            tenant = self._tenants[name]
            if tenant.pending and tenant.running < tenant.quota.max_concurrent:
                return tenant.pending.popleft(), tenant
        return None

    def _worker(self, index: int) -> None:
        while True:
            with self._lock:
                item = self._next_statement()
                while item is None:
                    if self._shutdown:
                        return
                    self._lock.wait()
                    item = self._next_statement()
                statement, tenant = item
                tenant.running += 1
            try:
                self._run_statement(statement, tenant, index)
            finally:
                with self._lock:
                    tenant.running -= 1
                    statement.session._inflight.discard(statement)
                    self._lock.notify_all()

    def _run_statement(
        self, statement: _Statement, tenant: _TenantState, worker: int
    ) -> None:
        registry = get_registry()
        now = time.monotonic()
        queue_wait = now - statement.enqueued_at
        tenant.queue_wait.observe(queue_wait)
        if registry.enabled:
            registry.histogram("service.queue_wait_seconds").observe(
                queue_wait
            )
        session = statement.session
        future = statement.future
        remaining = None
        if statement.deadline is not None:
            remaining = statement.deadline - now
        error: Optional[BaseException] = None
        result = None
        if statement.cancel_event.is_set() or session.closed:
            error = QueryCancelled(
                "statement cancelled while queued"
                if statement.cancel_event.is_set()
                else f"session {session.session_id} closed while queued"
            )
        elif remaining is not None and remaining <= 0.0:
            error = QueryTimeout(
                f"deadline exceeded after {queue_wait:.3f}s in the "
                f"admission queue"
            )
        else:
            with get_tracer().span(
                "service:statement", tenant=tenant.name,
                session=session.session_id, worker=worker,
            ):
                try:
                    result = self.db.execute(
                        statement.sql,
                        timeout_s=remaining,
                        mem_budget_bytes=tenant.quota.mem_budget_bytes,
                        cancel=statement.cancel_event,
                        faults=tenant.faults,
                    )
                except BaseException as exc:  # classified below
                    error = exc
        elapsed = time.monotonic() - statement.enqueued_at
        with self._lock:
            mono_now = time.monotonic()
            if error is None:
                tenant.completed += 1
                session.completed += 1
                tenant.breaker.record_success()
                tenant.latency.observe(elapsed)
                sample = elapsed
                tenant.ewma_latency_s = (
                    sample if tenant.ewma_latency_s is None
                    else (1 - EWMA_ALPHA) * tenant.ewma_latency_s
                    + EWMA_ALPHA * sample
                )
            elif isinstance(error, QueryCancelled):
                tenant.cancelled += 1
                session.cancelled += 1
                # client-initiated: not a backend failure, breaker unmoved
            elif isinstance(error, QueryTimeout):
                tenant.timeouts += 1
                session.failed += 1
                tenant.breaker.record_failure(mono_now)
            else:
                tenant.failed += 1
                session.failed += 1
                tenant.breaker.record_failure(mono_now)
        if registry.enabled:
            if error is None:
                registry.counter(
                    "service.completed", labels={"tenant": tenant.name}
                ).add()
                registry.histogram(
                    "service.latency_seconds", labels={"tenant": tenant.name}
                ).observe(elapsed)
            else:
                registry.counter(
                    "service.failed", labels={"tenant": tenant.name}
                ).add()
        if error is None:
            future.set_result(result)
        else:
            future.set_exception(error)

    # -- cancellation and teardown -------------------------------------------

    def _cancel_session(self, session: Session) -> int:
        with self._lock:
            inflight = list(session._inflight)
        for statement in inflight:
            statement.cancel_event.set()
        return len(inflight)

    def _close_session(self, session: Session) -> None:
        with self._lock:
            session.closed = True
        self._cancel_session(session)

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Shut the service down.

        ``drain=True`` (default) lets workers finish everything already
        admitted; ``drain=False`` fails queued statements with
        :class:`ServiceShutdown` and stops after in-flight statements
        complete."""
        with self._lock:
            if not drain:
                for tenant in self._tenants.values():
                    while tenant.pending:
                        statement = tenant.pending.popleft()
                        statement.session._inflight.discard(statement)
                        statement.future.set_exception(
                            ServiceShutdown("service shut down")
                        )
            else:
                # wait for the queues to empty before stopping workers
                deadline = time.monotonic() + timeout_s
                while any(t.pending or t.running
                          for t in self._tenants.values()):
                    if not self._lock.wait(timeout=0.05):
                        if time.monotonic() >= deadline:
                            break
            self._shutdown = True
            self._lock.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout_s)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ---------------------------------------------------------

    def tenants(self) -> list[_TenantState]:
        with self._lock:
            return [self._tenants[n] for n in sorted(self._tenants)]

    def sessions(self) -> list[Session]:
        with self._lock:
            return [self._sessions[i] for i in sorted(self._sessions)]

    def as_dict(self) -> dict:
        """JSON-ready service state (the ``BENCH_service.json`` /
        disclosure-report payload)."""
        with self._lock:
            tenants = [self._tenants[n] for n in sorted(self._tenants)]
            sessions = [self._sessions[i] for i in sorted(self._sessions)]
            return {
                "workers": self.workers,
                "started_at": self.started_at,
                "breaker_threshold": self.breaker_threshold,
                "breaker_reset_s": self.breaker_reset_s,
                "tenants": [t.as_dict() for t in tenants],
                "sessions": len(sessions),
                "admitted": sum(t.admitted for t in tenants),
                "shed": sum(t.shed for t in tenants),
                "completed": sum(t.completed for t in tenants),
                "failed": sum(t.failed for t in tenants),
                "timeouts": sum(t.timeouts for t in tenants),
                "cancelled": sum(t.cancelled for t in tenants),
            }


# -- sys.* registration ------------------------------------------------------


def _float_type() -> SqlType:
    return SqlType("double", Kind.FLOAT, 18)


def _int_type() -> SqlType:
    return SqlType("bigint", Kind.INT, 20)


def _schema(name: str, columns: list[tuple[str, SqlType]]) -> TableSchema:
    return TableSchema(
        name=name,
        columns=[ColumnDef(cname, ctype) for cname, ctype in columns],
    )


def install_service_tables(db, service: QueryService) -> None:
    """Register ``sys.sessions`` and ``sys.service`` on ``db``: live
    service state, SQL-queryable like every other ``sys.*`` table."""
    _F, _I, _S = _float_type, _int_type, varchar

    db.catalog.register_virtual(VirtualTableProvider(
        "sys.sessions",
        _schema("sys.sessions", [
            ("session_id", _I()), ("tenant", _S(100)), ("state", _S(8)),
            ("created_at", _F()), ("submitted", _I()), ("completed", _I()),
            ("failed", _I()), ("shed", _I()), ("cancelled", _I()),
            ("inflight", _I()),
        ]),
        lambda: [s.as_row() for s in service.sessions()],
    ))

    db.catalog.register_virtual(VirtualTableProvider(
        "sys.service",
        _schema("sys.service", [
            ("tenant", _S(100)), ("breaker_state", _S(10)),
            ("consecutive_failures", _I()), ("breaker_trips", _I()),
            ("admitted", _I()), ("shed", _I()), ("shed_queue_full", _I()),
            ("shed_deadline", _I()), ("shed_breaker", _I()),
            ("queued", _I()), ("max_queued", _I()), ("running", _I()),
            ("completed", _I()), ("failed", _I()), ("timeouts", _I()),
            ("cancelled", _I()), ("last_retry_after_s", _F()),
            ("ewma_latency_s", _F()), ("queue_wait_p50_s", _F()),
            ("latency_p50_s", _F()), ("latency_p99_s", _F()),
        ]),
        lambda: [t.as_row() for t in service.tenants()],
    ))
