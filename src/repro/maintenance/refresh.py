"""Refresh-set generation — the assumed Extract step (§4.2).

"The data extraction step of the ETL process (E) is assumed and
represented in the benchmark in the form of generated flat files."
A :class:`RefreshSet` is that flat-file payload:

* **dimension updates** keyed by *business key* (the OLTP-side key);
  the warehouse side must look the row up (Figures 8/9);
* **fact inserts** carrying business keys / natural dates that must be
  translated to surrogate keys during the load (Figure 10);
* **fact delete ranges**, logically clustered on date so engines can
  exercise partition-drop-style maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..dsdgen.context import GeneratorContext
from ..dsdgen.facts import make_pricing
from ..dsdgen import distributions as D
from ..schema import HISTORY_DIMENSIONS, NONHISTORY_DIMENSIONS


@dataclass(frozen=True)
class DimensionUpdate:
    """One update row for a dimension: business key + changed fields."""

    table: str
    business_key: str
    changes: dict[str, Any]
    #: the (epoch-day) date the change becomes effective — drives the SCD
    #: rec_begin/rec_end dates for history-keeping dimensions
    effective_date: int


@dataclass(frozen=True)
class FactInsert:
    """One fact row awaiting surrogate-key translation.

    ``natural_keys`` maps fact FK columns to (dimension, business key or
    ISO date) pairs; ``values`` carries the remaining columns verbatim.
    """

    table: str
    natural_keys: dict[str, tuple[str, Any]]
    values: dict[str, Any]


@dataclass
class RefreshSet:
    dimension_updates: list[DimensionUpdate] = field(default_factory=list)
    fact_inserts: list[FactInsert] = field(default_factory=list)
    #: table -> (low date_sk, high date_sk) clustered delete window
    delete_ranges: dict[str, tuple[int, int]] = field(default_factory=dict)

    def updates_for(self, table: str) -> list[DimensionUpdate]:
        return [u for u in self.dimension_updates if u.table == table]

    def inserts_for(self, table: str) -> list[FactInsert]:
        return [i for i in self.fact_inserts if i.table == table]


#: fields rewritten by dimension updates, per table (a representative
#: subset of mutable attributes)
_MUTABLE_FIELDS = {
    "customer": ("c_email_address", "c_preferred_cust_flag"),
    "customer_address": ("ca_street_number", "ca_suite_number"),
    "warehouse": ("w_warehouse_sq_ft",),
    "promotion": ("p_discount_active", "p_purpose"),
    "catalog_page": ("cp_description",),
    "item": ("i_current_price", "i_manager_id"),
    "store": ("s_number_employees", "s_manager"),
    "call_center": ("cc_employees", "cc_manager"),
    "web_site": ("web_manager",),
    "web_page": ("wp_link_count", "wp_char_count"),
}


def _new_value(field_name: str, rng) -> Any:
    if field_name in ("c_preferred_cust_flag", "p_discount_active"):
        return "Y" if rng.uniform() < 0.5 else "N"
    if field_name == "c_email_address":
        return f"updated.{rng.uniform_int(1, 10_000_000)}@example.com"
    if field_name in ("ca_street_number",):
        return str(rng.uniform_int(1, 999))
    if field_name == "ca_suite_number":
        return f"Suite {rng.uniform_int(0, 99) * 10}"
    if field_name == "hd_buy_potential":
        return rng.choice(D.BUY_POTENTIAL)
    if field_name == "cd_credit_rating":
        return rng.choice(D.CREDIT_RATINGS)
    if field_name in ("w_warehouse_sq_ft", "wp_char_count"):
        return rng.uniform_int(50_000, 1_000_000)
    if field_name == "p_purpose":
        return rng.choice(D.PROMO_PURPOSES)
    if field_name == "cp_description":
        return D.gaussian_words(rng, 6)
    if field_name == "i_current_price":
        return round(1 + rng.uniform() * 99, 2)
    if field_name in ("i_manager_id", "s_number_employees", "cc_employees",
                      "wp_link_count"):
        return rng.uniform_int(1, 300)
    if field_name in ("s_manager", "cc_manager", "web_manager"):
        first = rng.choice([v for v, _ in D.FIRST_NAMES])
        last = rng.choice([v for v, _ in D.LAST_NAMES])
        return f"{first} {last}"
    raise KeyError(f"no update generator for {field_name}")


class RefreshGenerator:
    """Generates refresh sets from the same context that built the data
    (the tight dsdgen/maintenance coupling the paper describes)."""

    def __init__(self, context: GeneratorContext, update_fraction: float = 0.05,
                 insert_fraction: float = 0.05, delete_days: int = 14):
        self.context = context
        self.update_fraction = update_fraction
        self.insert_fraction = insert_fraction
        self.delete_days = delete_days

    # -- dimension updates ----------------------------------------------------

    def _entities(self, table: str) -> int:
        """Approximate business-entity count (≤ surrogate-key pool)."""
        return max(1, self.context.key_pools.get(table, 0))

    def dimension_updates(self, refresh_round: int = 1) -> list[DimensionUpdate]:
        rng = self.context.streams.fresh("refresh", f"dims.{refresh_round}")
        updates: list[DimensionUpdate] = []
        window_end = self.context.calendar.epoch_days_at(
            self.context.rows("date_dim") - 1
        )
        for table in sorted(HISTORY_DIMENSIONS | NONHISTORY_DIMENSIONS):
            fields = _MUTABLE_FIELDS.get(table)
            if not fields:
                continue
            entity_count = self._entities(table)
            count = max(1, int(entity_count * self.update_fraction))
            for _ in range(count):
                entity = rng.uniform_int(1, entity_count)
                changes = {
                    f: _new_value(f, rng)
                    for f in fields
                    if rng.uniform() < 0.8
                } or {fields[0]: _new_value(fields[0], rng)}
                updates.append(
                    DimensionUpdate(
                        table=table,
                        business_key=self.context.business_key("AAAA", entity),
                        changes=changes,
                        effective_date=window_end,
                    )
                )
        return updates

    # -- fact inserts ---------------------------------------------------------------

    def fact_inserts(self, refresh_round: int = 1) -> list[FactInsert]:
        """Insert rows for all three sales channels, carrying business
        keys to translate (item + customer by business key, sale date as
        an ISO date string) — exercising both the history-keeping (item)
        and non-history (customer) lookups of Figure 10."""
        inserts: list[FactInsert] = []
        for channel in ("store", "catalog", "web"):
            inserts += self._channel_inserts(refresh_round, channel)
        return inserts

    #: per-channel fact-insert column naming
    _CHANNEL_COLUMNS = {
        "store": {
            "table": "store_sales", "prefix": "ss",
            "date_fk": "ss_sold_date_sk", "item_fk": "ss_item_sk",
            "customer_fk": "ss_customer_sk", "order_col": "ss_ticket_number",
            "extra": {"ss_store_sk": "store"},
        },
        "catalog": {
            "table": "catalog_sales", "prefix": "cs",
            "date_fk": "cs_sold_date_sk", "item_fk": "cs_item_sk",
            "customer_fk": "cs_bill_customer_sk", "order_col": "cs_order_number",
            "extra": {"cs_call_center_sk": "call_center",
                      "cs_catalog_page_sk": "catalog_page"},
        },
        "web": {
            "table": "web_sales", "prefix": "ws",
            "date_fk": "ws_sold_date_sk", "item_fk": "ws_item_sk",
            "customer_fk": "ws_bill_customer_sk", "order_col": "ws_order_number",
            "extra": {"ws_web_page_sk": "web_page", "ws_web_site_sk": "web_site"},
        },
    }

    def _channel_inserts(self, refresh_round: int, channel: str) -> list[FactInsert]:
        ctx = self.context
        spec = self._CHANNEL_COLUMNS[channel]
        table = spec["table"]
        prefix = spec["prefix"]
        rng = ctx.streams.fresh("refresh", f"facts.{channel}.{refresh_round}")
        target = max(1, int(ctx.rows(table) * self.insert_fraction))
        items = self._entities("item")
        customers = self._entities("customer")
        order_base = 1_000_000_000 * refresh_round
        inserts: list[FactInsert] = []
        order = 0
        while len(inserts) < target:
            order += 1
            date_offset = ctx.sample_sales_date_offset(rng)
            iso_date = ctx.calendar.date_at(date_offset).isoformat()
            customer_bk = ctx.business_key("AAAA", rng.uniform_int(1, customers))
            basket = rng.uniform_int(1, 20)
            for _ in range(basket):
                if len(inserts) >= target:
                    break
                item_bk = ctx.business_key("AAAA", rng.uniform_int(1, items))
                p = make_pricing(rng)
                values = {
                    f"{prefix}_sold_time_sk": ctx.sample_fk("time_dim", rng, 0.02),
                    f"{prefix}_promo_sk": ctx.sample_fk("promotion", rng, 0.3),
                    spec["order_col"]: order_base + order,
                    f"{prefix}_quantity": p.quantity,
                    f"{prefix}_wholesale_cost": p.wholesale_cost,
                    f"{prefix}_list_price": p.list_price,
                    f"{prefix}_sales_price": p.sales_price,
                    f"{prefix}_ext_discount_amt": p.ext_discount_amt,
                    f"{prefix}_ext_sales_price": p.ext_sales_price,
                    f"{prefix}_ext_wholesale_cost": p.ext_wholesale_cost,
                    f"{prefix}_ext_list_price": p.ext_list_price,
                    f"{prefix}_ext_tax": p.ext_tax,
                    f"{prefix}_coupon_amt": p.coupon_amt,
                    f"{prefix}_net_paid": p.net_paid,
                    f"{prefix}_net_paid_inc_tax": p.net_paid_inc_tax,
                    f"{prefix}_net_profit": p.net_profit,
                }
                if channel == "store":
                    values.update({
                        "ss_cdemo_sk": ctx.sample_fk("customer_demographics", rng, 0.03),
                        "ss_hdemo_sk": ctx.sample_fk("household_demographics", rng, 0.03),
                        "ss_addr_sk": ctx.sample_fk("customer_address", rng, 0.03),
                    })
                else:
                    values.update({
                        f"{prefix}_bill_cdemo_sk": ctx.sample_fk("customer_demographics", rng, 0.03),
                        f"{prefix}_bill_hdemo_sk": ctx.sample_fk("household_demographics", rng, 0.03),
                        f"{prefix}_bill_addr_sk": ctx.sample_fk("customer_address", rng, 0.03),
                        f"{prefix}_ship_mode_sk": ctx.sample_fk("ship_mode", rng, 0.02),
                        f"{prefix}_warehouse_sk": ctx.sample_fk("warehouse", rng, 0.02),
                        f"{prefix}_ship_date_sk": ctx.clamp_date_sk(
                            ctx.calendar.sk_at(date_offset) + rng.uniform_int(2, 120)
                        ),
                    })
                for column, dimension in spec["extra"].items():
                    values[column] = ctx.sample_fk(dimension, rng, 0.02)
                inserts.append(
                    FactInsert(
                        table=table,
                        natural_keys={
                            spec["date_fk"]: ("date_dim", iso_date),
                            spec["item_fk"]: ("item", item_bk),
                            spec["customer_fk"]: ("customer", customer_bk),
                        },
                        values=values,
                    )
                )
        return inserts

    # -- fact deletes -----------------------------------------------------------------

    def delete_ranges(self, refresh_round: int = 1) -> dict[str, tuple[int, int]]:
        """A randomly picked, date-clustered delete window per channel."""
        ctx = self.context
        rng = ctx.streams.fresh("refresh", f"deletes.{refresh_round}")
        n_days = ctx.rows("date_dim")
        start = rng.uniform_int(0, max(0, n_days - self.delete_days - 1))
        low = ctx.calendar.sk_at(start)
        high = ctx.calendar.sk_at(start + self.delete_days)
        return {
            "store_sales": (low, high),
            "store_returns": (low, high),
            "catalog_sales": (low, high),
            "catalog_returns": (low, high),
            "web_sales": (low, high),
            "web_returns": (low, high),
        }

    def generate(self, refresh_round: int = 1) -> RefreshSet:
        return RefreshSet(
            dimension_updates=self.dimension_updates(refresh_round),
            fact_inserts=self.fact_inserts(refresh_round),
            delete_ranges=self.delete_ranges(refresh_round),
        )
