"""The 12 named data-maintenance operations.

The paper specifies "12 data maintenance operations covering ... periodic
refresh of the database". We partition the refresh workload into 12
operations mirroring the specification's function groups: six dimension
maintenance functions (split by SCD class), three channel insert
functions, and three channel delete functions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..obs import get_registry, get_tracer
from ..engine import Database
from .apply import (
    apply_dimension_updates,
    delete_fact_range,
    translate_and_insert_facts,
)
from .refresh import RefreshSet


@dataclass(frozen=True)
class MaintenanceResult:
    operation: str
    rows_affected: int
    elapsed: float


@dataclass(frozen=True)
class MaintenanceOperation:
    name: str
    description: str
    run: Callable[[Database, RefreshSet], int]

    def execute(self, db: Database, refresh: RefreshSet) -> MaintenanceResult:
        with get_tracer().span("maintenance_op", op=self.name) as span:
            start = time.perf_counter()
            rows = self.run(db, refresh)
            elapsed = time.perf_counter() - start
            span.set(rows=rows)
        registry = get_registry()
        if registry.enabled:
            registry.counter("maintenance.ops", labels={"op": self.name}).add()
            registry.counter("maintenance.rows").add(rows)
            registry.histogram("maintenance.op_seconds").observe(elapsed)
        return MaintenanceResult(self.name, rows, elapsed)


def _update_op(tables: tuple[str, ...]):
    def run(db: Database, refresh: RefreshSet) -> int:
        updates = [u for u in refresh.dimension_updates if u.table in tables]
        return sum(apply_dimension_updates(db, updates).values())

    return run


def _insert_op(tables: tuple[str, ...]):
    def run(db: Database, refresh: RefreshSet) -> int:
        inserts = [i for i in refresh.fact_inserts if i.table in tables]
        return translate_and_insert_facts(db, inserts)

    return run


def _delete_op(tables: tuple[str, ...]):
    def run(db: Database, refresh: RefreshSet) -> int:
        total = 0
        for table in tables:
            if table in refresh.delete_ranges:
                low, high = refresh.delete_ranges[table]
                total += delete_fact_range(db, table, low, high)
        return total

    return run


DM_OPERATIONS: tuple[MaintenanceOperation, ...] = (
    MaintenanceOperation(
        "DM_CUST", "update customer (non-history, Figure 8)",
        _update_op(("customer",)),
    ),
    MaintenanceOperation(
        "DM_ADDR", "update customer_address (non-history, Figure 8)",
        _update_op(("customer_address",)),
    ),
    MaintenanceOperation(
        "DM_DEMO", "update demographic / promo / page dimensions (Figure 8)",
        _update_op(("warehouse", "promotion", "catalog_page")),
    ),
    MaintenanceOperation(
        "DM_ITEM", "update item (history-keeping SCD, Figure 9)",
        _update_op(("item",)),
    ),
    MaintenanceOperation(
        "DM_STORE", "update store (history-keeping SCD, Figure 9)",
        _update_op(("store",)),
    ),
    MaintenanceOperation(
        "DM_SITES", "update call_center / web_site / web_page (Figure 9)",
        _update_op(("call_center", "web_site", "web_page")),
    ),
    MaintenanceOperation(
        "LF_SS", "insert store sales lines with key translation (Figure 10)",
        _insert_op(("store_sales",)),
    ),
    MaintenanceOperation(
        "LF_CS", "insert catalog sales lines with key translation (Figure 10)",
        _insert_op(("catalog_sales",)),
    ),
    MaintenanceOperation(
        "LF_WS", "insert web sales lines with key translation (Figure 10)",
        _insert_op(("web_sales",)),
    ),
    MaintenanceOperation(
        "DF_SS", "delete store facts in a clustered date range",
        _delete_op(("store_sales", "store_returns")),
    ),
    MaintenanceOperation(
        "DF_CS", "delete catalog facts in a clustered date range",
        _delete_op(("catalog_sales", "catalog_returns")),
    ),
    MaintenanceOperation(
        "DF_WS", "delete web facts in a clustered date range",
        _delete_op(("web_sales", "web_returns")),
    ),
)


def run_all(db: Database, refresh: RefreshSet, refresh_aux: bool = True) -> list[MaintenanceResult]:
    """Execute the 12 operations in order, then maintain aux structures."""
    results = [op.execute(db, refresh) for op in DM_OPERATIONS]
    if refresh_aux:
        start = time.perf_counter()
        views = db.refresh_matviews()
        indexes = db.catalog.rebuild_indexes()
        results.append(
            MaintenanceResult("AUX", views + indexes, time.perf_counter() - start)
        )
    return results
