"""Data maintenance — the ETL workload (§4.2)."""

from .apply import (
    apply_dimension_updates,
    apply_history_update,
    apply_nonhistory_update,
    apply_refresh,
    business_key_column,
    delete_fact_range,
    lookup_surrogate,
    translate_and_insert_facts,
)
from .operations import DM_OPERATIONS, MaintenanceOperation, MaintenanceResult, run_all
from .refresh import DimensionUpdate, FactInsert, RefreshGenerator, RefreshSet

__all__ = [
    "RefreshGenerator",
    "RefreshSet",
    "DimensionUpdate",
    "FactInsert",
    "apply_refresh",
    "apply_dimension_updates",
    "apply_history_update",
    "apply_nonhistory_update",
    "translate_and_insert_facts",
    "delete_fact_range",
    "lookup_surrogate",
    "business_key_column",
    "DM_OPERATIONS",
    "MaintenanceOperation",
    "MaintenanceResult",
    "run_all",
]
