"""Application of the data-maintenance workload (Figures 8, 9, 10).

Three algorithms, transcribed from the paper:

Figure 8 — non-history-keeping dimension::

    for every row to be updated {
        find the row for the business key
        update all changed fields
    }

Figure 9 — history-keeping dimension::

    for every row to be updated {
        find the row for the business key and with rec_end_date = NULL
        insert current date into rec_end_date
        insert new row with update date and set rec_end_date to NULL
    }

Figure 10 — fact-table insert::

    for every row to be inserted {
        for keys to a non-history keeping dimension:
            find the row for the business key; exchange with surrogate key
        for keys to a history keeping dimension:
            find the row for the business key and where rec_end_date is
            NULL; exchange with surrogate key
        insert row into fact table
    }

Business-key lookups run through hash indexes (created on demand —
they are *basic* auxiliary structures, legal on every table).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..engine import Database
from ..engine.errors import ExecutionError
from ..engine.types import parse_date
from ..schema import ALL_TABLES, HISTORY_DIMENSIONS, NONHISTORY_DIMENSIONS
from .refresh import DimensionUpdate, FactInsert, RefreshSet

_BUSINESS_KEY_COLUMN = {
    table: next((c.name for c in schema.columns if c.business_key), None)
    for table, schema in ALL_TABLES.items()
}

_REC_END_COLUMN = {
    "item": "i_rec_end_date",
    "store": "s_rec_end_date",
    "call_center": "cc_rec_end_date",
    "web_page": "wp_rec_end_date",
    "web_site": "web_rec_end_date",
}

_REC_START_COLUMN = {
    "item": "i_rec_start_date",
    "store": "s_rec_start_date",
    "call_center": "cc_rec_start_date",
    "web_page": "wp_rec_start_date",
    "web_site": "web_rec_start_date",
}


def business_key_column(table: str) -> str:
    """The business-key column of a dimension (raises if none)."""
    column = _BUSINESS_KEY_COLUMN.get(table)
    if column is None:
        raise ExecutionError(f"table {table} has no business key")
    return column


def _bk_index(db: Database, table: str):
    column = business_key_column(table)
    index = db.catalog.index(table, column, "hash")
    if index is None:
        index = db.create_index(table, column, "hash")
    return index


def _surrogate_column(table: str) -> str:
    pk = ALL_TABLES[table].primary_key
    if len(pk) != 1:
        raise ExecutionError(f"table {table} has no single-column surrogate key")
    return pk[0]


def lookup_surrogate(db: Database, table: str, business_key: str) -> Optional[int]:
    """Figure 10's key exchange: business key -> current surrogate key."""
    index = _bk_index(db, table)
    rows = index.lookup(business_key)
    if len(rows) == 0:
        return None
    tab = db.table(table)
    sk_col = _surrogate_column(table)
    if table in HISTORY_DIMENSIONS:
        end_col = _REC_END_COLUMN[table]
        for row in rows:
            if tab.columns[end_col].value(int(row)) is None:
                return tab.columns[sk_col].value(int(row))
        return None
    return tab.columns[sk_col].value(int(rows[0]))


def apply_nonhistory_update(db: Database, update: DimensionUpdate) -> int:
    """Figure 8: locate by business key, overwrite changed fields."""
    table = db.table(update.table)
    index = _bk_index(db, update.table)
    rows = index.lookup(update.business_key)
    if len(rows) == 0:
        return 0
    indices = np.asarray(rows[:1], dtype=np.int64)
    assignments = {col: [value] for col, value in update.changes.items()}
    return table.update_rows(indices, assignments)


def apply_history_update(db: Database, update: DimensionUpdate) -> int:
    """Figure 9: close the current revision, insert the new one."""
    table_name = update.table
    table = db.table(table_name)
    index = _bk_index(db, table_name)
    end_col = _REC_END_COLUMN[table_name]
    start_col = _REC_START_COLUMN[table_name]
    sk_col = _surrogate_column(table_name)
    current_row: Optional[int] = None
    for row in index.lookup(update.business_key):
        if table.columns[end_col].value(int(row)) is None:
            current_row = int(row)
            break
    if current_row is None:
        return 0
    # close the current revision
    table.update_rows(
        np.asarray([current_row], dtype=np.int64),
        {end_col: [update.effective_date]},
    )
    # new revision: copy of the closed row with changes applied
    new_row = table.row(current_row)
    new_row.update(update.changes)
    new_row[start_col] = update.effective_date
    new_row[end_col] = None
    new_row[sk_col] = _next_surrogate(db, table_name)
    ordered = [new_row[c] for c in ALL_TABLES[table_name].column_names]
    table.append_rows([ordered])
    return 2


def _next_surrogate(db: Database, table: str) -> int:
    column = db.table(table).scan_column(_surrogate_column(table))
    valid = column.data[~column.null]
    return (int(valid.max()) if len(valid) else 0) + 1


def apply_dimension_updates(db: Database, updates: list[DimensionUpdate]) -> dict[str, int]:
    """Dispatch updates to the history / non-history algorithm.

    Updates are grouped per table and their business-key lookups run
    against one index build (each ``update_rows`` invalidates the lazy
    index, so interleaving lookup/update would rebuild it per row).
    When several updates target the same business key, the last one
    wins — within one refresh set they represent the same extract.
    """
    by_table: dict[str, dict[str, DimensionUpdate]] = {}
    for update in updates:
        if update.table not in HISTORY_DIMENSIONS | NONHISTORY_DIMENSIONS:
            raise ExecutionError(f"static dimension {update.table} cannot be updated")
        by_table.setdefault(update.table, {})[update.business_key] = update

    counts: dict[str, int] = {}
    for table_name, deduped in by_table.items():
        batch = list(deduped.values())
        if table_name in HISTORY_DIMENSIONS:
            counts[table_name] = _apply_history_batch(db, table_name, batch)
        else:
            counts[table_name] = _apply_nonhistory_batch(db, table_name, batch)
    return counts


def _apply_nonhistory_batch(db: Database, table_name: str, batch: list[DimensionUpdate]) -> int:
    table = db.table(table_name)
    index = _bk_index(db, table_name)
    located: list[tuple[int, DimensionUpdate]] = []
    for update in batch:
        rows = index.lookup(update.business_key)
        if len(rows):
            located.append((int(rows[0]), update))
    columns = sorted({c for _, u in located for c in u.changes})
    if not located:
        return 0
    indices = np.asarray([row for row, _ in located], dtype=np.int64)
    assignments = {
        column: [
            update.changes.get(column, table.columns[column].value(row))
            for row, update in located
        ]
        for column in columns
    }
    return table.update_rows(indices, assignments)


def _apply_history_batch(db: Database, table_name: str, batch: list[DimensionUpdate]) -> int:
    table = db.table(table_name)
    index = _bk_index(db, table_name)
    end_col = _REC_END_COLUMN[table_name]
    start_col = _REC_START_COLUMN[table_name]
    sk_col = _surrogate_column(table_name)
    located: list[tuple[int, DimensionUpdate]] = []
    for update in batch:
        for row in index.lookup(update.business_key):
            if table.columns[end_col].value(int(row)) is None:
                located.append((int(row), update))
                break
    if not located:
        return 0
    # close all current revisions in one pass
    indices = np.asarray([row for row, _ in located], dtype=np.int64)
    table.update_rows(
        indices, {end_col: [u.effective_date for _, u in located]}
    )
    # then append all new revisions
    next_sk = _next_surrogate(db, table_name)
    new_rows = []
    for offset, (row, update) in enumerate(located):
        new_row = table.row(row)
        new_row.update(update.changes)
        new_row[start_col] = update.effective_date
        new_row[end_col] = None
        new_row[sk_col] = next_sk + offset
        new_rows.append([new_row[c] for c in ALL_TABLES[table_name].column_names])
    table.append_rows(new_rows)
    return 2 * len(located)


def translate_and_insert_facts(db: Database, inserts: list[FactInsert]) -> int:
    """Figure 10: translate business keys to surrogate keys, insert."""
    by_table: dict[str, list[list[Any]]] = {}
    skipped = 0
    for insert in inserts:
        schema = ALL_TABLES[insert.table]
        row: dict[str, Any] = dict(insert.values)
        ok = True
        for fk_column, (dimension, natural) in insert.natural_keys.items():
            if dimension == "date_dim":
                sk = _date_surrogate(db, natural)
            else:
                sk = lookup_surrogate(db, dimension, natural)
            if sk is None:
                ok = False
                break
            row[fk_column] = sk
        if not ok:
            skipped += 1
            continue
        by_table.setdefault(insert.table, []).append(
            [row.get(c) for c in schema.column_names]
        )
    total = 0
    for table, rows in by_table.items():
        db.table(table).append_rows(rows)
        total += len(rows)
    return total


def _date_surrogate(db: Database, iso_date: str) -> Optional[int]:
    index = db.catalog.index("date_dim", "d_date", "hash")
    if index is None:
        index = db.create_index("date_dim", "d_date", "hash")
    rows = index.lookup(parse_date(iso_date))
    if len(rows) == 0:
        return None
    return db.table("date_dim").columns["d_date_sk"].value(int(rows[0]))


def delete_fact_range(db: Database, table: str, low_sk: int, high_sk: int) -> int:
    """Date-clustered fact delete ("drop partition"-style, §4.2)."""
    date_column = {
        "store_sales": "ss_sold_date_sk",
        "store_returns": "sr_returned_date_sk",
        "catalog_sales": "cs_sold_date_sk",
        "catalog_returns": "cr_returned_date_sk",
        "web_sales": "ws_sold_date_sk",
        "web_returns": "wr_returned_date_sk",
        "inventory": "inv_date_sk",
    }[table]
    tab = db.table(table)
    vec = tab.scan_column(date_column)
    mask = (vec.data >= low_sk) & (vec.data <= high_sk) & ~vec.null
    return tab.delete_where(mask)


def apply_refresh(db: Database, refresh: RefreshSet, refresh_aux: bool = True) -> dict[str, int]:
    """Run the full data-maintenance workload and (optionally) maintain
    auxiliary structures, whose cost Query Run 2 would otherwise expose
    (§5.2)."""
    stats: dict[str, int] = {}
    counts = apply_dimension_updates(db, refresh.dimension_updates)
    stats["dimension_rows_touched"] = sum(counts.values())
    deleted = 0
    for table, (low, high) in refresh.delete_ranges.items():
        deleted += delete_fact_range(db, table, low, high)
    stats["fact_rows_deleted"] = deleted
    stats["fact_rows_inserted"] = translate_and_insert_facts(db, refresh.fact_inserts)
    if refresh_aux:
        stats["matviews_refreshed"] = db.refresh_matviews()
        stats["indexes_rebuilt"] = db.catalog.rebuild_indexes()
    return stats
