"""Physical execution of logical plans.

One :class:`Executor` instance runs one statement; it memoizes CTE
subtrees (plan nodes are shared by reference when a CTE is referenced
more than once) and carries the expression-evaluation context used for
uncorrelated subqueries.

Operator notes:

* **hash join** — builds on the right input, probes with the left; a
  sorted-key binary-search fast path handles the ubiquitous single
  integer surrogate-key joins without Python-level hashing. NULL keys
  never match. LEFT/RIGHT/FULL are supported; the residual (non-equi)
  condition is applied before null-extension, as SQL requires.
* **hash aggregate** — group keys are factorized to integer codes and
  grouped with ``np.unique``; SUM/COUNT/AVG/MIN/MAX/STDDEV run as
  vectorized segmented reductions. ROLLUP executes one pass per prefix
  grouping set. NULLs form a single group, per SQL.
* **window** — aggregate windows without ORDER BY compute one value per
  partition; with ORDER BY they compute running (RANGE-peers) values,
  matching the SQL default frame. RANK / DENSE_RANK / ROW_NUMBER are
  supported.
* **sort** — stable lexicographic sort; NULLs sort as larger than every
  value (NULLS LAST ascending), with explicit NULLS FIRST/LAST honored.

Resource governance: when a :class:`~repro.engine.governor
.ResourceContext` is installed, every operator dispatch (and every
long Python row loop) calls ``resource.check()`` — the cooperative
timeout/cancel point — and the memory-hungry operators compare their
working-set estimate against the budget.  Over budget they degrade
instead of dying: hash joins Grace-partition both inputs to temp
files and join partition pairs, hash aggregates partition rows by
group-key hash (partitions hold disjoint groups, so per-partition
results concatenate exactly), and sorts fall back to an external merge
sort over spilled sorted runs.  All three spill paths reproduce the
in-memory result byte-for-byte, including row order.

Morsel-driven parallelism: with a :class:`~repro.engine.parallel
.WorkerPool` installed, the hot operators split their work into
fixed-size morsels dispatched to the shared pool — scan/filter
predicate evaluation and hash-join probes cut by row range, Grace-join
partitions, partitioned aggregation and external-sort runs reuse the
*spill* cut (a spill partition is a morsel), and sorts encode their
keys concurrently.  Every parallel site concatenates morsel results in
submission order, so parallel output is byte-identical to serial at
any worker count; expressions containing subqueries stay on the
statement thread (the subquery memo is shared state).  ``workers=`` /
``morsels=`` counters appear per operator in EXPLAIN ANALYZE.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Callable, Optional

import numpy as np

from ..obs import ExecStatsCollector, get_registry
from ..obs.profile import MorselProfile
from . import plan as P
from .batch import Batch
from .errors import ExecutionError, PlanningError
from .expr import EvalContext, evaluate, harmonize
from .governor import ResourceContext, read_spill, write_spill
from .parallel import (
    MIN_PARALLEL_ROWS,
    WorkerContext,
    WorkerPool,
    morsel_ranges,
)
from .colstore import prune_scan
from .sql import ast_nodes as A
from .storage import Table as StorageTable
from .types import Kind
from .vector import Vector
from .virtual import VirtualTable

#: guard against runaway cartesian products: a cross join may emit at
#: most this many rows (every output row materializes all columns of
#: both sides, so memory cost is rows x total width)
_MAX_JOIN_ROWS = 20_000_000

#: estimated per-entry overhead of a Python hash build (dict slot +
#: key tuple + match list) used by the memory accounting
_HASH_ENTRY_BYTES = 112.0

#: estimated per-entry overhead of a Python set (star-filter key sets)
_SET_ENTRY_BYTES = 64.0

#: Fibonacci-hash multiplier for spill partitioning (mixes low bits so
#: sequential surrogate keys spread across partitions)
_PARTITION_MIX = np.uint64(0x9E3779B97F4A7C15)

#: timeout/cancel check cadence inside Python row loops
_CHECK_EVERY = 8192


def _partition_ids(vec: Vector, parts: int) -> np.ndarray:
    """Hash-partition ids in ``[0, parts)`` for every row of ``vec``
    (``parts`` must be a power of two).  NULL rows map to partition 0,
    so rows that group/join together always share a partition even if
    their (irrelevant) null-slot fill data were to differ."""
    if vec.kind is Kind.FLOAT:
        bits = vec.data.view(np.uint64)
    elif vec.kind is Kind.STR:
        bits = np.fromiter(
            (hash(v) & 0xFFFFFFFFFFFFFFFF for v in vec.data),
            dtype=np.uint64,
            count=len(vec.data),
        )
    else:
        bits = vec.data.astype(np.int64).view(np.uint64)
    log2 = parts.bit_length() - 1
    ids = ((bits * _PARTITION_MIX) >> np.uint64(64 - log2)).astype(np.int64)
    ids[vec.null] = 0
    return ids


#: expression nodes whose evaluation runs a subquery (shared memo
#: state — such expressions must stay on the statement thread)
_SUBQUERY_NODES = (A.InSubquery, A.Exists, A.ScalarSubquery)


def _has_subquery(expr: A.Expr) -> bool:
    """True when ``expr`` contains any subquery-evaluating node."""
    return any(isinstance(node, _SUBQUERY_NODES) for node in A.walk(expr))


def factorize(vec: Vector) -> np.ndarray:
    """Map a vector to dense int codes; NULL gets code 0, values get codes
    ordered by value starting at 1 (so codes also encode sort order)."""
    codes = np.zeros(len(vec), dtype=np.int64)
    valid = ~vec.null
    if valid.any():
        _, inverse = np.unique(vec.data[valid], return_inverse=True)
        codes[valid] = inverse + 1
    return codes


def _row_codes(vectors: list[Vector]) -> np.ndarray:
    """Factorize a list of key vectors into a single int64 row id."""
    n = len(vectors[0]) if vectors else 0
    if not vectors:
        return np.zeros(n, dtype=np.int64)
    columns = [factorize(v) for v in vectors]
    stacked = np.stack(columns, axis=1)
    _, row_ids = np.unique(stacked, axis=0, return_inverse=True)
    return row_ids.astype(np.int64)


class Executor:
    """Interprets one logical plan tree; memoizes shared (CTE) subtrees.

    When an :class:`~repro.obs.ExecStatsCollector` is supplied, every
    node execution records output rows, inclusive elapsed time and
    operator-specific counters into it (the EXPLAIN ANALYZE substrate);
    without one, ``run`` takes a branch with no timing calls at all.
    """
    def __init__(
        self,
        run_subquery: Callable[[A.Query], Batch],
        catalog,
        collector: ExecStatsCollector | None = None,
        resource: ResourceContext | None = None,
        pool: WorkerPool | None = None,
    ):
        self._catalog = catalog
        self._ctx = EvalContext(run_subquery)
        self._cache: dict[int, Batch] = {}
        self._collector = collector
        self._resource = resource
        self._pool = pool
        # a memory budget forces working-set estimation even without a
        # collector (the spill decision needs the numbers)
        self._budgeted = (
            resource is not None and resource.memory_budget_bytes is not None
        )
        # memory accounting is live when a collector is installed
        # (EXPLAIN ANALYZE) or the metrics registry is enabled
        # (`run --metrics`); otherwise the guards below cost one
        # attribute check and the engine allocates nothing
        registry = get_registry()
        self._track_mem = collector is not None or registry.enabled
        self._mem_gauge = registry.gauge("engine.peak_operator_bytes")

    def _note_spill(self, node: P.PlanNode, partitions: int, nbytes: int) -> None:
        """Account one operator spill: the resource context's totals,
        the node's EXPLAIN ANALYZE counters, and the global metrics."""
        self._resource.note_spill(partitions, nbytes)
        if self._collector is not None:
            self._collector.add(
                node, spill_partitions=partitions, spilled_bytes=nbytes
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("engine.spill.partitions").add(partitions)
            registry.counter("engine.spill.bytes").add(nbytes)

    def _note_memory(self, node: P.PlanNode, nbytes: float) -> None:
        """Report one operator's peak memory: into the per-node stats
        (when a collector is installed) and the engine-wide high-water
        gauge (a no-op instrument when the registry is disabled)."""
        if self._collector is not None:
            self._collector.note_memory(node, nbytes)
        self._mem_gauge.set_max(nbytes)

    # -- morsel dispatch ---------------------------------------------------

    def _morsel_pool(self, n_rows: int, *exprs) -> WorkerPool | None:
        """The worker pool when ``n_rows`` justifies morsel dispatch
        and every expression is subquery-free, else ``None`` (the
        subquery memo cache must stay on the statement thread)."""
        if self._pool is None or n_rows < MIN_PARALLEL_ROWS:
            return None
        for expr in exprs:
            if expr is not None and _has_subquery(expr):
                return None
        return self._pool

    def _morsel_profile(self, pool: WorkerPool | None) -> MorselProfile | None:
        """A fresh per-dispatch profile when someone will read it (a
        stats collector is installed and the pool is live), else
        ``None`` so the dispatch path stays unobserved."""
        if pool is not None and self._collector is not None:
            return MorselProfile()
        return None

    def _map_morsels(self, fn, items: list, pool: WorkerPool | None,
                     label: str = "task",
                     profile: MorselProfile | None = None) -> list:
        """Run ``fn(item, ctx)`` over every item — fanned out through
        ``pool`` when given, else a serial loop with a pass-through
        :class:`WorkerContext`.  Results arrive in item order either
        way, which is what keeps parallel output byte-identical."""
        if pool is not None and len(items) > 1:
            return pool.map_morsels(fn, items, self._resource,
                                    label=label, profile=profile)
        ctx = WorkerContext(self._resource, 0)
        return [fn(item, ctx) for item in items]

    def _note_parallel(self, node: P.PlanNode, pool: WorkerPool | None,
                       morsels: int,
                       profile: MorselProfile | None = None) -> None:
        """Record one operator's fan-out: ``morsels=`` sums across
        executions, ``workers=`` keeps the widest pool used; with a
        per-dispatch profile, ``wait=`` (total queue wait, summing) and
        ``skew=`` (max/median morsel run time, max semantics) land in
        EXPLAIN ANALYZE too."""
        if self._collector is not None and pool is not None:
            self._collector.add(node, morsels=morsels)
            self._collector.note_max(node, workers=pool.workers)
            if profile is not None and profile.morsels:
                self._collector.add(node, wait_ms=profile.total_wait() * 1000)
                self._collector.note_max(node, skew=profile.skew())

    def _filter_mask(self, node: P.PlanNode, batch: Batch,
                     predicate: A.Expr) -> np.ndarray:
        """The TRUE-rows mask of ``predicate`` over ``batch`` —
        evaluated in row-range morsels across the pool when the batch
        is big enough.  Masks concatenate in range order, so the
        result is bitwise equal to one whole-batch evaluation."""
        n = batch.num_rows
        pool = self._morsel_pool(n, predicate)
        if pool is None:
            return evaluate(predicate, batch, self._ctx).is_true()
        ranges = morsel_ranges(n)
        ctx = self._ctx

        def eval_morsel(rng, wctx):
            wctx.check("Filter(morsel)")
            return evaluate(predicate, batch.slice(*rng), ctx).is_true()

        profile = self._morsel_profile(pool)
        masks = pool.map_morsels(eval_morsel, ranges, self._resource,
                                 label="Filter", profile=profile)
        self._note_parallel(node, pool, len(ranges), profile)
        return np.concatenate(masks)

    # -- entry -------------------------------------------------------------

    def run(self, node: P.PlanNode) -> Batch:
        if self._resource is not None:
            # the cooperative timeout / cancel / fault-injection point:
            # one check per operator dispatch bounds the reaction
            # latency to a single batch of work
            self._resource.check(type(node).__name__)
        key = id(node)
        collector = self._collector
        if key in self._cache:
            if collector is not None:
                collector.memo_hit(node)
            return self._cache[key]
        if collector is None:
            batch = self._dispatch(node)
        else:
            start = time.perf_counter()
            batch = self._dispatch(node)
            collector.record(node, batch.num_rows, time.perf_counter() - start)
        self._cache[key] = batch
        return batch

    def _dispatch(self, node: P.PlanNode) -> Batch:
        if isinstance(node, P.Scan):
            return self._scan(node)
        if isinstance(node, P.StarFilter):
            return self._star_filter(node)
        if isinstance(node, P.MatViewScan):
            return self._matview_scan(node)
        if isinstance(node, P.OneRow):
            return Batch({"_dummy": Vector.constant(Kind.INT, 0, 1)})
        if isinstance(node, P.Filter):
            child = self.run(node.child)
            mask = self._filter_mask(node, child, node.predicate)
            return child.filter(mask)
        if isinstance(node, P.Project):
            return self._project(node)
        if isinstance(node, P.Join):
            return self._join(node)
        if isinstance(node, P.Aggregate):
            return self._aggregate(node)
        if isinstance(node, P.Window):
            return self._window(node)
        if isinstance(node, P.Sort):
            return self._sort(node)
        if isinstance(node, P.Limit):
            child = self.run(node.child)
            limit = child.num_rows if node.limit is None else node.limit
            return child.head(limit, node.offset)
        if isinstance(node, P.Distinct):
            return self._distinct(self.run(node.child))
        if isinstance(node, P.SetOpPlan):
            return self._set_op(node)
        if isinstance(node, P.Rename):
            return self._rename(node)
        raise ExecutionError(f"no executor for {type(node).__name__}")

    # -- scans ----------------------------------------------------------------

    def _scan(self, node: P.Scan, row_subset: np.ndarray | None = None) -> Batch:
        table = self._catalog.table(node.table)
        if isinstance(table, VirtualTable):
            # one atomic materialization: the backing state (statement
            # store, registry, profiler) mutates concurrently, so the
            # columns must come from a single rows() snapshot
            batch = table.snapshot(node.binding)
        else:
            if node.pushed_filters and isinstance(table, StorageTable):
                # store-backed columns carry per-block zone maps: rows
                # in blocks a pushed conjunct can never match are cut
                # before the filters run
                pruned, blocks, skipped = prune_scan(
                    table, node.pushed_filters
                )
                if blocks:
                    if self._collector is not None:
                        self._collector.add(node, blocks=blocks,
                                            blocks_skipped=skipped)
                    registry = get_registry()
                    if registry.enabled and skipped:
                        registry.counter("engine.scan.blocks_skipped").add(
                            skipped
                        )
                if pruned is not None:
                    row_subset = (
                        pruned if row_subset is None
                        else np.intersect1d(row_subset, pruned)
                    )
            batch = Batch(
                {
                    f"{node.binding}.{name}": table.scan_column(name)
                    for name in table.schema.column_names
                }
            )
        if self._collector is not None:
            self._collector.add(node, rows_in=batch.num_rows,
                                pushed_filters=len(node.pushed_filters))
        if row_subset is not None:
            batch = batch.take(row_subset)
        # predicates stay sequential (later ones see already-filtered
        # rows, as the pushdown contract requires); each predicate's
        # evaluation fans out over row-range morsels
        for predicate in node.pushed_filters:
            mask = self._filter_mask(node, batch, predicate)
            batch = batch.filter(mask)
        return batch

    def _star_filter(self, node: P.StarFilter) -> Batch:
        """Bitmap star transformation: intersect per-dimension row sets
        before materializing the fact scan."""
        allowed: Optional[np.ndarray] = None
        mem_bytes = 0.0
        for dim_plan, fact_col, dim_ref in node.dims:
            dim_batch = self.run(dim_plan)
            vec = dim_batch.column(dim_ref.name, dim_ref.table)
            keys = set(vec.data[~vec.null].tolist())
            if self._track_mem:
                mem_bytes += _SET_ENTRY_BYTES * len(keys)
            rows = self._catalog.bitmap_rows(node.fact.table, fact_col, keys)
            if self._collector is not None:
                self._collector.add(node, bitmap_probes=len(keys),
                                    bitmap_hit=0 if rows is None else 1)
            if rows is None:
                continue
            allowed = rows if allowed is None else np.intersect1d(allowed, rows)
        if self._collector is not None and allowed is not None:
            self._collector.add(node, bitmap_rows=len(allowed))
        if self._track_mem:
            if allowed is not None:
                mem_bytes += float(allowed.nbytes)
            self._note_memory(node, mem_bytes)
        return self._scan(node.fact, row_subset=allowed)

    def _matview_scan(self, node: P.MatViewScan) -> Batch:
        view = self._catalog.matview(node.view)
        return Batch(
            {
                f"{node.binding}.{name}": view.storage.scan_column(name)
                for name in view.column_names
            }
        )

    def _project(self, node: P.Project) -> Batch:
        child = self.run(node.child)
        out = Batch()
        for expr, name in node.items:
            out.add(name, evaluate(expr, child, self._ctx))
        if not node.items:
            raise ExecutionError("empty projection")
        return out

    # -- joins --------------------------------------------------------------------

    def _join(self, node: P.Join) -> Batch:
        left = self.run(node.left)
        right = self.run(node.right)
        if self._collector is not None:
            # the hash (or sorted-probe) build side is always the right
            self._collector.add(node, build_rows=right.num_rows,
                                probe_rows=left.num_rows)
        kind = node.kind
        if kind == "right":
            # execute as a left join with sides swapped, then restore order
            swapped = P.Join(node.right, node.left, "left",
                             [(r, l) for l, r in node.equi_keys], node.residual)
            swapped_result = self._join_impl(right, left, swapped, stats_node=node)
            names = list(left.columns) + list(right.columns)
            return Batch({n: swapped_result.columns[n] for n in names})
        return self._join_impl(left, right, node)

    def _join_impl(
        self, left: Batch, right: Batch, node: P.Join,
        stats_node: P.Join | None = None,
    ) -> Batch:
        """``stats_node`` is the original plan node to charge stats to
        when ``node`` is the transient right-join swap."""
        kind = node.kind
        if not node.equi_keys:
            pairs = self._cross_pairs(left, right)
        else:
            pairs = self._hash_pairs(
                left, right, node.equi_keys, stats_node or node
            )
        li, ri = pairs
        joined = Batch()
        for name, vec in left.columns.items():
            joined.add(name, vec.take(li))
        for name, vec in right.columns.items():
            joined.add(name, vec.take(ri))
        if node.residual is not None:
            mask = evaluate(node.residual, joined, self._ctx).is_true()
            joined = joined.filter(mask)
            li = li[mask]
            ri = ri[mask]
        if kind in ("left", "full"):
            matched = np.zeros(left.num_rows, dtype=bool)
            matched[li] = True
            missing = np.flatnonzero(~matched)
            if len(missing):
                pad = Batch()
                for name, vec in left.columns.items():
                    pad.add(name, vec.take(missing))
                for name, vec in right.columns.items():
                    pad.add(name, Vector.nulls(vec.kind, len(missing)))
                joined = Batch.concat([joined, pad])
        if kind == "full":
            # also null-extend unmatched right rows
            rmatched = np.zeros(right.num_rows, dtype=bool)
            rmatched[ri] = True
            missing_r = np.flatnonzero(~rmatched)
            if len(missing_r):
                pad = Batch()
                for name, vec in left.columns.items():
                    pad.add(name, Vector.nulls(vec.kind, len(missing_r)))
                for name, vec in right.columns.items():
                    pad.add(name, vec.take(missing_r))
                joined = Batch.concat([joined, pad])
        return joined

    def _cross_pairs(self, left: Batch, right: Batch):
        total = left.num_rows * right.num_rows
        if total > _MAX_JOIN_ROWS:
            raise ExecutionError(
                f"cross join would produce {total} rows; add a join condition"
            )
        li = np.repeat(np.arange(left.num_rows), right.num_rows)
        ri = np.tile(np.arange(right.num_rows), left.num_rows)
        return li, ri

    def _hash_pairs(self, left: Batch, right: Batch, keys, stats_node=None):
        lvecs = [evaluate(l, left, self._ctx) for l, _ in keys]
        rvecs = [evaluate(r, right, self._ctx) for _, r in keys]
        for i in range(len(keys)):
            lvecs[i], rvecs[i] = harmonize([lvecs[i], rvecs[i]])
        int_path = len(keys) == 1 and lvecs[0].kind in (Kind.INT, Kind.DATE)
        if (self._track_mem or self._budgeted) and stats_node is not None:
            build_bytes = float(sum(v.nbytes for v in rvecs))
            if int_path:
                # key copy + stable-sorted copy + sorted row-id array
                build_bytes *= 3.0
            else:
                n_build = len(rvecs[0]) if rvecs else 0
                build_bytes += _HASH_ENTRY_BYTES * n_build
            if self._track_mem:
                self._note_memory(stats_node, build_bytes)
            if self._budgeted and self._resource.over_budget(build_bytes):
                return self._grace_pairs(
                    lvecs, rvecs, int_path, build_bytes, stats_node
                )
        if int_path:
            return self._int_key_pairs(lvecs[0], rvecs[0], stats_node)
        return self._tuple_key_pairs(lvecs, rvecs)

    def _grace_pairs(
        self,
        lvecs: list[Vector],
        rvecs: list[Vector],
        int_path: bool,
        build_bytes: float,
        stats_node: P.PlanNode,
    ):
        """Grace hash join: hash-partition both inputs on the first key
        to temp files, then join partition pairs one at a time.  Every
        key value lives in exactly one partition, and within a
        partition row order is preserved, so concatenating partition
        pair lists and stable-sorting by left row index reproduces the
        in-memory join's output exactly."""
        resource = self._resource
        parts = resource.partitions_for(build_bytes)
        # NULL keys never match: drop them before partitioning
        lvalid = ~lvecs[0].null
        for v in lvecs[1:]:
            lvalid &= ~v.null
        rvalid = ~rvecs[0].null
        for v in rvecs[1:]:
            rvalid &= ~v.null
        lrows = np.flatnonzero(lvalid)
        rrows = np.flatnonzero(rvalid)
        lids = _partition_ids(lvecs[0], parts)[lrows]
        rids = _partition_ids(rvecs[0], parts)[rrows]
        lkinds = [v.kind for v in lvecs]
        rkinds = [v.kind for v in rvecs]
        # a spill partition is a morsel: both phases fan out over the
        # shared pool, with results collected in partition order
        pool = self._morsel_pool(len(lrows) + len(rrows))

        def write_partition(p, wctx):
            wctx.check("GraceHashJoin(partition)")
            lsel = lrows[lids == p]
            rsel = rrows[rids == p]
            if not len(lsel) or not len(rsel):
                return None
            arrays = {"lsel": lsel, "rsel": rsel}
            for i, v in enumerate(lvecs):
                arrays[f"l{i}"] = v.data[lsel]
            for i, v in enumerate(rvecs):
                arrays[f"r{i}"] = v.data[rsel]
            path = wctx.spill_path()
            return path, write_spill(path, arrays)

        profile = self._morsel_profile(pool)
        written = self._map_morsels(write_partition, list(range(parts)), pool,
                                    label="GraceJoin(partition)",
                                    profile=profile)
        written = [w for w in written if w is not None]
        paths = [path for path, _ in written]
        spilled = sum(nbytes for _, nbytes in written)

        def probe_partition(path, wctx):
            wctx.check("GraceHashJoin(probe)")
            arrays = read_spill(path)
            os.unlink(path)
            lsel, rsel = arrays["lsel"], arrays["rsel"]
            no_nulls_l = np.zeros(len(lsel), dtype=bool)
            no_nulls_r = np.zeros(len(rsel), dtype=bool)
            sub_l = [
                Vector(lkinds[i], arrays[f"l{i}"], no_nulls_l)
                for i in range(len(lvecs))
            ]
            sub_r = [
                Vector(rkinds[i], arrays[f"r{i}"], no_nulls_r)
                for i in range(len(rvecs))
            ]
            if int_path:
                li_local, ri_local = self._int_key_pairs(sub_l[0], sub_r[0])
            else:
                li_local, ri_local = self._tuple_key_pairs(sub_l, sub_r)
            return lsel[li_local], rsel[ri_local]

        probed = self._map_morsels(probe_partition, paths, pool,
                                   label="GraceJoin(probe)", profile=profile)
        li_parts = [li_local for li_local, _ in probed]
        ri_parts = [ri_local for _, ri_local in probed]
        self._note_parallel(stats_node, pool, parts + len(paths), profile)
        if li_parts:
            li = np.concatenate(li_parts)
            ri = np.concatenate(ri_parts)
        else:
            li = np.empty(0, dtype=np.int64)
            ri = np.empty(0, dtype=np.int64)
        # restore the in-memory probe order (ascending left row; the
        # per-left-row right order is already identical per partition)
        order = np.argsort(li, kind="stable")
        self._note_spill(stats_node, parts, spilled)
        return li[order], ri[order]

    def _int_key_pairs(self, lvec: Vector, rvec: Vector,
                       stats_node: P.PlanNode | None = None):
        """Sorted-probe equi-join on a single integer key.

        The build (sort) runs once; the probe fans out over row-range
        morsels of the left keys.  Each morsel emits its matches with
        ascending left rows, and morsels cover ascending disjoint
        ranges, so ordered concatenation reproduces the serial probe's
        (li, ri) sequence exactly."""
        rvalid = np.flatnonzero(~rvec.null)
        rkeys = rvec.data[rvalid]
        order = np.argsort(rkeys, kind="stable")
        rkeys_sorted = rkeys[order]
        rrows_sorted = rvalid[order]
        lvalid = np.flatnonzero(~lvec.null)
        lkeys = lvec.data[lvalid]
        pool = self._morsel_pool(len(lkeys))
        if pool is None:
            return self._int_probe(lvalid, lkeys, rkeys_sorted, rrows_sorted)
        ranges = morsel_ranges(len(lkeys))

        def probe_morsel(rng, wctx):
            wctx.check("HashJoin(morsel)")
            start, stop = rng
            return Executor._int_probe(
                lvalid[start:stop], lkeys[start:stop],
                rkeys_sorted, rrows_sorted,
            )
        profile = (self._morsel_profile(pool)
                   if stats_node is not None else None)
        parts = pool.map_morsels(probe_morsel, ranges, self._resource,
                                 label="HashJoin(probe)", profile=profile)
        if stats_node is not None:
            self._note_parallel(stats_node, pool, len(ranges), profile)
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
        )

    @staticmethod
    def _int_probe(lrows: np.ndarray, lkeys: np.ndarray,
                   rkeys_sorted: np.ndarray, rrows_sorted: np.ndarray):
        """Probe one chunk of left keys against the sorted build side."""
        lo = np.searchsorted(rkeys_sorted, lkeys, side="left")
        hi = np.searchsorted(rkeys_sorted, lkeys, side="right")
        counts = hi - lo
        has_match = counts > 0
        lrows = lrows[has_match]
        lo = lo[has_match]
        counts = counts[has_match]
        li = np.repeat(lrows, counts)
        if len(counts):
            # positions within the sorted build array for every match
            starts = np.repeat(lo, counts)
            step = np.arange(len(starts)) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            ri = rrows_sorted[starts + step]
        else:
            ri = np.empty(0, dtype=np.int64)
        return li, ri

    def _tuple_key_pairs(self, lvecs: list[Vector], rvecs: list[Vector]):
        build: dict[tuple, list[int]] = {}
        r_n = len(rvecs[0]) if rvecs else 0
        rnull = np.zeros(r_n, dtype=bool)
        for v in rvecs:
            rnull |= v.null
        for i in range(r_n):
            if rnull[i]:
                continue
            key = tuple(v.data[i] for v in rvecs)
            build.setdefault(key, []).append(i)
        l_n = len(lvecs[0]) if lvecs else 0
        lnull = np.zeros(l_n, dtype=bool)
        for v in lvecs:
            lnull |= v.null
        li_parts: list[int] = []
        ri_parts: list[int] = []
        resource = self._resource
        for i in range(l_n):
            if resource is not None and i % _CHECK_EVERY == 0:
                resource.check("HashJoin(probe)")
            if lnull[i]:
                continue
            matches = build.get(tuple(v.data[i] for v in lvecs))
            if matches:
                li_parts.extend([i] * len(matches))
                ri_parts.extend(matches)
        return (
            np.asarray(li_parts, dtype=np.int64),
            np.asarray(ri_parts, dtype=np.int64),
        )

    # -- aggregation ------------------------------------------------------------------

    def _aggregate(self, node: P.Aggregate) -> Batch:
        child = self.run(node.child)
        group_vecs = [evaluate(g, child, self._ctx) for g, _ in node.group_items]
        if self._collector is not None:
            self._collector.add(node, rows_in=child.num_rows)
        if self._track_mem:
            # group-key vectors plus the int64 code + inverse arrays
            # the np.unique grouping materializes
            self._note_memory(
                node,
                float(sum(v.nbytes for v in group_vecs))
                + 16.0 * child.num_rows,
            )
        if not node.rollup:
            return self._aggregate_pass(node, child, group_vecs, active=len(group_vecs))
        passes = []
        for active in range(len(group_vecs), -1, -1):
            passes.append(self._aggregate_pass(node, child, group_vecs, active))
        return Batch.concat(passes)

    def _aggregate_pass(
        self, node: P.Aggregate, child: Batch, group_vecs: list[Vector], active: int
    ) -> Batch:
        """One grouping-set pass: the first ``active`` keys group, the rest
        (for ROLLUP) are emitted as NULL.  Over a memory budget, or with
        a worker pool on a large input, the pass hash-partitions its
        input rows by group key and runs the partitions through
        :meth:`_aggregate_partitioned` (the spill cut doubles as the
        morsel cut)."""
        spill = False
        est = 0.0
        if active:
            est = (
                float(sum(v.nbytes for v in group_vecs[:active]))
                + 16.0 * child.num_rows
            )
            spill = self._budgeted and self._resource.over_budget(est)
        pool = None
        if active:
            exprs = [g for g, _ in node.group_items]
            exprs += [c.args[0] for c, _ in node.agg_items if c.args]
            pool = self._morsel_pool(child.num_rows, *exprs)
        if not spill and pool is None:
            return self._aggregate_pass_memory(node, child, group_vecs, active)
        return self._aggregate_partitioned(
            node, child, group_vecs, active, est, spill, pool
        )

    def _aggregate_partitioned(
        self,
        node: P.Aggregate,
        child: Batch,
        group_vecs: list[Vector],
        active: int,
        est_bytes: float,
        spill: bool,
        pool: WorkerPool | None,
    ) -> Batch:
        """Grace-style partitioned aggregation — one cut serving both
        spill (over budget) and morsel parallelism: partition input rows
        by a hash of the first group key (NULLs to partition 0),
        aggregate each partition independently — partitions hold
        disjoint groups, so per-partition outputs concatenate without
        merging — then restore the in-memory pass's group order
        (ascending stacked factorize codes of the active keys, exactly
        what ``np.unique(row_ids)`` emits on the unpartitioned path;
        groups are distinct, so no ties).  When ``spill`` is set each
        partition detours through a temp file; the partition count
        comes from the budget, not the worker count, so spill totals
        are identical at any parallelism."""
        resource = self._resource
        if spill:
            parts = resource.partitions_for(est_bytes)
        else:
            # parallel-only cut: enough partitions to load the pool;
            # the canonical reorder makes the count irrelevant to output
            parts = max(2, pool.workers * 2)
        ids = _partition_ids(group_vecs[0], parts)
        # stable argsort groups each partition's rows contiguously while
        # preserving ascending original row order within partitions —
        # the same selections the per-partition flatnonzero loop built
        by_part = np.argsort(ids, kind="stable")
        bounds = np.searchsorted(ids[by_part], np.arange(parts + 1))
        selections = [
            by_part[bounds[p]:bounds[p + 1]]
            for p in range(parts)
            if bounds[p + 1] > bounds[p]
        ]
        kinds = {name: vec.kind for name, vec in child.columns.items()}

        def run_partition(sel, wctx):
            wctx.check("HashAggregate(partition)")
            nbytes = 0
            if spill:
                arrays: dict[str, np.ndarray] = {"_rows": sel}
                for name, vec in child.columns.items():
                    arrays[f"d:{name}"] = vec.data[sel]
                    arrays[f"n:{name}"] = vec.null[sel]
                path = wctx.spill_path()
                nbytes = write_spill(path, arrays)
                wctx.check("HashAggregate(merge)")
                arrays = read_spill(path)
                os.unlink(path)
                sub = Batch(
                    {
                        name: Vector(
                            kinds[name], arrays[f"d:{name}"], arrays[f"n:{name}"]
                        )
                        for name in kinds
                    }
                )
            else:
                sub = child.take(sel)
            sub_groups = [evaluate(g, sub, self._ctx) for g, _ in node.group_items]
            return nbytes, self._aggregate_pass_memory(node, sub, sub_groups, active)

        profile = self._morsel_profile(pool)
        results = self._map_morsels(run_partition, selections, pool,
                                    label="Aggregate(partition)",
                                    profile=profile)
        outs = [out for _, out in results]
        if spill:
            self._note_spill(node, parts, sum(nbytes for nbytes, _ in results))
        self._note_parallel(node, pool, len(selections), profile)
        if not outs:
            return self._aggregate_pass_memory(node, child, group_vecs, active)
        result = Batch.concat(outs)
        group_names = [name for _, name in node.group_items][:active]
        codes = [factorize(result.columns[name]) for name in group_names]
        order = np.lexsort(tuple(reversed(codes)))
        return result.take(order)

    def _aggregate_pass_memory(
        self, node: P.Aggregate, child: Batch, group_vecs: list[Vector], active: int
    ) -> Batch:
        used = group_vecs[:active]
        n = child.num_rows
        if used:
            row_ids = _row_codes(used)
            uniques, first_idx, inverse = np.unique(
                row_ids, return_index=True, return_inverse=True
            )
            n_groups = len(uniques)
        else:
            # global aggregate (or the ROLLUP grand-total pass): one row,
            # even over empty input, per SQL
            n_groups = 1
            first_idx = np.zeros(1, dtype=np.int64)
            inverse = np.zeros(n, dtype=np.int64)
        out = Batch()
        group_names = [name for _, name in node.group_items]
        for idx, (vec, name) in enumerate(zip(group_vecs, group_names)):
            if idx < active:
                out.add(name, vec.take(first_idx[:n_groups]))
            else:
                out.add(name, Vector.nulls(vec.kind, n_groups))
        for call, name in node.agg_items:
            out.add(name, self._compute_aggregate(call, child, inverse, n_groups))
        if not node.group_items and not node.agg_items:
            raise ExecutionError("degenerate aggregate")
        return out

    def _compute_aggregate(
        self, call: A.FuncCall, child: Batch, inverse: np.ndarray, n_groups: int
    ) -> Vector:
        name = call.name
        if name == "COUNT" and call.is_star:
            counts = np.bincount(inverse, minlength=n_groups)
            return Vector(Kind.INT, counts.astype(np.int64), np.zeros(n_groups, dtype=bool))
        arg = evaluate(call.args[0], child, self._ctx)
        valid = ~arg.null
        if name == "COUNT":
            if call.distinct:
                return self._count_distinct(arg, inverse, n_groups)
            counts = np.bincount(inverse[valid], minlength=n_groups)
            return Vector(Kind.INT, counts.astype(np.int64), np.zeros(n_groups, dtype=bool))
        if name in ("SUM", "AVG", "STDDEV_SAMP", "STDDEV", "VAR_SAMP"):
            if arg.kind is Kind.STR:
                raise ExecutionError(f"{name} over strings")
            data = arg.data.astype(np.float64)
            data = np.where(valid, data, 0.0)
            counts = np.bincount(inverse[valid], minlength=n_groups).astype(np.float64)
            sums = np.bincount(inverse, weights=data, minlength=n_groups)
            null = counts == 0
            if name == "SUM":
                if call.distinct:
                    return self._sum_distinct(arg, inverse, n_groups)
                kind = Kind.INT if arg.kind is Kind.INT else Kind.FLOAT
                out = sums.astype(np.int64) if kind is Kind.INT else sums
                return Vector(kind, np.asarray(out), null)
            if name == "AVG":
                means = sums / np.where(null, 1.0, counts)
                return Vector(Kind.FLOAT, means, null)
            sq = np.bincount(inverse, weights=data * data, minlength=n_groups)
            denom = np.where(counts > 1, counts - 1, 1.0)
            means = sums / np.where(null, 1.0, np.where(counts == 0, 1.0, counts))
            var = (sq - counts * means * means) / denom
            var = np.maximum(var, 0.0)
            null_v = counts < 2
            if name == "VAR_SAMP":
                return Vector(Kind.FLOAT, var, null_v)
            return Vector(Kind.FLOAT, np.sqrt(var), null_v)
        if name in ("MIN", "MAX"):
            return self._min_max(arg, inverse, n_groups, name == "MIN")
        raise ExecutionError(f"unknown aggregate {name}")

    @staticmethod
    def _min_max(arg: Vector, inverse: np.ndarray, n_groups: int, is_min: bool) -> Vector:
        valid = ~arg.null
        if arg.kind is Kind.STR:
            best: list[Optional[str]] = [None] * n_groups
            for i in np.flatnonzero(valid):
                g = inverse[i]
                v = arg.data[i]
                if best[g] is None or (v < best[g]) == is_min and v != best[g]:
                    best[g] = v
            return Vector.from_values(Kind.STR, best)
        data = arg.data.astype(np.float64)
        init = np.inf if is_min else -np.inf
        acc = np.full(n_groups, init, dtype=np.float64)
        if is_min:
            np.minimum.at(acc, inverse[valid], data[valid])
        else:
            np.maximum.at(acc, inverse[valid], data[valid])
        counts = np.bincount(inverse[valid], minlength=n_groups)
        null = counts == 0
        if arg.kind in (Kind.INT, Kind.DATE):
            out = np.where(null, 0, acc).astype(np.int64)
            return Vector(arg.kind, out, null)
        return Vector(Kind.FLOAT, np.where(null, 0.0, acc), null)

    @staticmethod
    def _count_distinct(arg: Vector, inverse: np.ndarray, n_groups: int) -> Vector:
        valid = ~arg.null
        codes = factorize(arg)
        pairs = np.stack([inverse[valid], codes[valid]], axis=1)
        if len(pairs):
            uniq = np.unique(pairs, axis=0)
            counts = np.bincount(uniq[:, 0], minlength=n_groups)
        else:
            counts = np.zeros(n_groups, dtype=np.int64)
        return Vector(Kind.INT, counts.astype(np.int64), np.zeros(n_groups, dtype=bool))

    @staticmethod
    def _sum_distinct(arg: Vector, inverse: np.ndarray, n_groups: int) -> Vector:
        valid = ~arg.null
        sums = np.zeros(n_groups, dtype=np.float64)
        seen: set[tuple[int, float]] = set()
        counts = np.zeros(n_groups, dtype=np.int64)
        for i in np.flatnonzero(valid):
            key = (int(inverse[i]), float(arg.data[i]))
            if key in seen:
                continue
            seen.add(key)
            sums[key[0]] += key[1]
            counts[key[0]] += 1
        null = counts == 0
        kind = Kind.INT if arg.kind is Kind.INT else Kind.FLOAT
        data = sums.astype(np.int64) if kind is Kind.INT else sums
        return Vector(kind, data, null)

    # -- window functions -----------------------------------------------------------

    def _window(self, node: P.Window) -> Batch:
        child = self.run(node.child)
        out = Batch(dict(child.columns))
        for wf, name in node.items:
            out.add(name, self._compute_window(wf, child))
        return out

    def _compute_window(self, wf: A.WindowFunc, child: Batch) -> Vector:
        n = child.num_rows
        if n == 0:
            kind = Kind.INT if wf.func.name in ("RANK", "DENSE_RANK", "ROW_NUMBER", "COUNT") else Kind.FLOAT
            return Vector.from_values(kind, [])
        part_vecs = [evaluate(p, child, self._ctx) for p in wf.partition_by]
        part_ids = _row_codes(part_vecs) if part_vecs else np.zeros(n, dtype=np.int64)
        func = wf.func.name
        if not wf.order_by:
            if func in ("RANK", "DENSE_RANK", "ROW_NUMBER"):
                raise ExecutionError(f"{func} requires ORDER BY in OVER clause")
            # one value per partition, broadcast back
            n_groups = int(part_ids.max()) + 1
            agg = self._compute_aggregate(wf.func, child, part_ids, n_groups)
            return agg.take(part_ids)
        order = self._sort_indices(child, list(wf.order_by), pre_keys=[part_ids])
        sorted_parts = part_ids[order]
        key_vecs = [evaluate(k.expr, child, self._ctx) for k in wf.order_by]
        order_codes = _row_codes(key_vecs)[order]
        boundaries = np.ones(n, dtype=bool)
        if n:
            boundaries[1:] = sorted_parts[1:] != sorted_parts[:-1]
        part_start = np.maximum.accumulate(
            np.where(boundaries, np.arange(n), 0)
        )
        row_number = np.arange(n) - part_start + 1
        peer_change = np.ones(n, dtype=bool)
        if n:
            peer_change[1:] = boundaries[1:] | (order_codes[1:] != order_codes[:-1])
        result = np.zeros(n, dtype=np.float64)
        null = np.zeros(n, dtype=bool)
        kind = Kind.INT
        group_ids = np.cumsum(peer_change) - 1  # peer-group id per sorted row
        if func == "ROW_NUMBER":
            result = row_number.astype(np.float64)
        elif func == "RANK":
            # rank = row_number of the first row of the peer group
            first_rows = np.flatnonzero(peer_change)
            result = row_number[first_rows][group_ids].astype(np.float64)
        elif func == "DENSE_RANK":
            # peer groups seen so far within the partition
            cum = np.cumsum(peer_change.astype(np.int64))
            start_cum = np.maximum.accumulate(np.where(boundaries, cum, 0))
            result = (cum - start_cum + 1).astype(np.float64)
        else:
            # running aggregate over peers (SQL default frame)
            arg = (
                evaluate(wf.func.args[0], child, self._ctx)
                if wf.func.args
                else Vector.constant(Kind.INT, 1, n)
            )
            kind = Kind.FLOAT if func == "AVG" or arg.kind is Kind.FLOAT else Kind.INT
            data = arg.data.astype(np.float64)[order]
            data_valid = (~arg.null)[order]
            running_sum = np.zeros(n, dtype=np.float64)
            running_cnt = np.zeros(n, dtype=np.float64)
            acc_s = 0.0
            acc_c = 0.0
            # peer groups share the value computed at the last peer row
            for i in range(n):
                if boundaries[i]:
                    acc_s = 0.0
                    acc_c = 0.0
                if data_valid[i]:
                    acc_s += data[i]
                    acc_c += 1
                running_sum[i] = acc_s
                running_cnt[i] = acc_c
            # propagate last-peer values backwards within peer groups
            last_in_group = np.zeros(int(group_ids.max()) + 1 if n else 0, dtype=np.int64)
            last_in_group[group_ids] = np.arange(n)
            running_sum = running_sum[last_in_group][group_ids]
            running_cnt = running_cnt[last_in_group][group_ids]
            if func == "SUM":
                result = running_sum
                null = running_cnt == 0
            elif func == "COUNT":
                result = running_cnt
            elif func == "AVG":
                null = running_cnt == 0
                result = running_sum / np.where(null, 1.0, running_cnt)
            elif func in ("MIN", "MAX"):
                raw = self._running_min_max(
                    data, data_valid, boundaries, func == "MIN"
                )
                # peers share the value computed at the last peer row
                result = raw[last_in_group][group_ids]
                null = running_cnt == 0
                kind = arg.kind
            else:
                raise ExecutionError(f"unsupported window function {func}")
        unsorted = np.empty(n, dtype=np.int64)
        unsorted[order] = np.arange(n)
        final = result[unsorted]
        final_null = null[unsorted]
        if kind is Kind.INT or kind is Kind.DATE:
            return Vector(kind, final.astype(np.int64), final_null)
        return Vector(Kind.FLOAT, final, final_null)

    @staticmethod
    def _running_min_max(data, valid, boundaries, is_min: bool) -> np.ndarray:
        n = len(data)
        out = np.zeros(n, dtype=np.float64)
        acc = np.inf if is_min else -np.inf
        for i in range(n):
            if boundaries[i]:
                acc = np.inf if is_min else -np.inf
            if valid[i]:
                acc = min(acc, data[i]) if is_min else max(acc, data[i])
            out[i] = acc
        return out

    # -- sort / distinct / set ops -------------------------------------------------------

    def _sort_indices(
        self, batch: Batch, keys: list[A.SortKey],
        pre_keys: list[np.ndarray] | None = None,
        stats_node: P.PlanNode | None = None,
    ) -> np.ndarray:
        """Stable lexsort indices; ``pre_keys`` sort before the SQL keys."""
        n = batch.num_rows
        arrays = self._key_codes(batch, keys, stats_node)
        all_keys = (pre_keys or []) + arrays
        if not all_keys:
            return np.arange(n)
        return np.lexsort(tuple(reversed(all_keys)))

    def _key_codes(
        self, batch: Batch, keys: list[A.SortKey],
        stats_node: P.PlanNode | None = None,
    ) -> list[np.ndarray]:
        """Sort-code arrays for every key, one whole-column task per
        key across the pool (codes are independent per key, and the
        result list keeps key order)."""
        pool = None
        if len(keys) > 1:
            pool = self._morsel_pool(batch.num_rows, *[k.expr for k in keys])
        ctx = self._ctx

        def code_key(key, wctx):
            wctx.check("Sort(key)")
            return Executor._sort_codes(evaluate(key.expr, batch, ctx), key)

        profile = (self._morsel_profile(pool)
                   if stats_node is not None else None)
        codes = self._map_morsels(code_key, list(keys), pool,
                                  label="Sort(encode)", profile=profile)
        if stats_node is not None:
            self._note_parallel(stats_node, pool, len(keys), profile)
        return codes

    @staticmethod
    def _sort_codes(vec: Vector, key: A.SortKey) -> np.ndarray:
        """Integer codes encoding the desired ordering of one sort key.

        ``factorize`` yields 0 for NULL and 1..k in ascending value order;
        this remaps codes so a plain ascending integer sort realizes the
        requested direction and NULL placement (default: NULLs sort as the
        largest value — last ascending, first descending).
        """
        codes = factorize(vec).astype(np.int64)
        k = int(codes.max()) if len(codes) else 0
        nulls_first = key.nulls_first
        if nulls_first is None:
            nulls_first = not key.ascending
        value_codes = codes if key.ascending else (k + 1) - codes
        null_code = 0 if nulls_first else k + 2
        return np.where(vec.null, null_code, value_codes)

    def _sort(self, node: P.Sort) -> Batch:
        child = self.run(node.child)
        n = child.num_rows
        est = 8.0 * n * (len(node.keys) + 1)
        if self._budgeted and node.keys and n and self._resource.over_budget(est):
            order = self._external_sort_indices(node, child, est)
        else:
            order = self._sort_indices(child, node.keys, stats_node=node)
        if self._track_mem:
            # one int64 code array per sort key plus the lexsort result
            self._note_memory(node, est)
        return child.take(order)

    def _external_sort_indices(
        self, node: P.Sort, child: Batch, est_bytes: float
    ) -> np.ndarray:
        """External merge sort over the budget: slice the sort-code
        arrays into runs, lexsort each run and spill it as a stacked
        ``(codes..., global_index)`` int64 array, then k-way merge the
        memory-mapped runs with a heap.  Merging by the full tuple —
        global index last — reproduces ``np.lexsort``'s stable order
        exactly, so the budgeted sort is byte-identical."""
        resource = self._resource
        n = child.num_rows
        codes = self._key_codes(child, node.keys, stats_node=node)
        parts = resource.partitions_for(est_bytes)
        run_len = -(-n // parts)
        # runs are the spill cut and the morsel cut at once: each run
        # sorts and spills independently, and the path list keeps run
        # order (the merge reads whole tuples, so order is cosmetic —
        # determinism comes from the global-index tiebreak)
        pool = self._morsel_pool(n)

        def sort_run(start, wctx):
            wctx.check("Sort(run)")
            stop = min(start + run_len, n)
            chunk = [c[start:stop] for c in codes]
            local = np.lexsort(tuple(reversed(chunk)))
            stacked = np.stack(
                [c[local] for c in chunk]
                + [local.astype(np.int64) + np.int64(start)],
                axis=1,
            )
            path = wctx.spill_path()
            np.save(path, stacked, allow_pickle=False)
            path += ".npy"  # np.save appends the suffix
            return path, os.path.getsize(path)

        starts = list(range(0, n, run_len))
        profile = self._morsel_profile(pool)
        runs_written = self._map_morsels(sort_run, starts, pool,
                                         label="Sort(run)", profile=profile)
        paths = [path for path, _ in runs_written]
        spilled = sum(nbytes for _, nbytes in runs_written)
        self._note_parallel(node, pool, len(starts), profile)
        runs = [np.load(path, mmap_mode="r") for path in paths]
        order = np.empty(n, dtype=np.int64)
        for i, row in enumerate(heapq.merge(*(map(tuple, run) for run in runs))):
            if i % _CHECK_EVERY == 0:
                resource.check("Sort(merge)")
            order[i] = row[-1]
        del runs
        for path in paths:
            os.unlink(path)
        self._note_spill(node, len(paths), spilled)
        return order

    def _distinct(self, batch: Batch) -> Batch:
        if batch.num_rows == 0:
            return batch
        row_ids = _row_codes(list(batch.columns.values()))
        _, first_idx = np.unique(row_ids, return_index=True)
        return batch.take(np.sort(first_idx))

    def _set_op(self, node: P.SetOpPlan) -> Batch:
        left = self.run(node.left)
        right = self.run(node.right)
        right = Batch(dict(zip(left.names, right.columns.values())))
        if node.op == "union_all":
            return Batch.concat([left, right])
        if node.op == "union":
            return self._distinct(Batch.concat([left, right]))
        # intersect / except use distinct-row semantics
        combined = Batch.concat([left, right])
        row_ids = _row_codes(list(combined.columns.values()))
        left_ids = set(row_ids[: left.num_rows].tolist())
        right_ids = set(row_ids[left.num_rows:].tolist())
        if node.op == "intersect":
            keep_ids = left_ids & right_ids
        elif node.op == "except":
            keep_ids = left_ids - right_ids
        else:
            raise ExecutionError(f"unknown set op {node.op}")
        mask = np.fromiter(
            (rid in keep_ids for rid in row_ids[: left.num_rows]),
            dtype=bool,
            count=left.num_rows,
        )
        return self._distinct(left.filter(mask))

    def _rename(self, node: P.Rename) -> Batch:
        child = self.run(node.child)
        mapping = {
            old: f"{node.alias}.{old.rsplit('.', 1)[-1]}" for old in child.names
        }
        return child.renamed(mapping)
