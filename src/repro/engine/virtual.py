"""Virtual (computed) tables: the engine side of ``sys.*`` introspection.

A :class:`VirtualTableProvider` names a table, declares its schema and
materializes its current rows on demand; :class:`VirtualTable` adapts a
provider to the surface the planner, optimizer and executor already
expect from a stored :class:`~repro.engine.storage.Table` (``schema``,
``num_rows``, ``scan_column``).  The catalog resolves registered
virtual tables by name exactly like base tables, so joins, ORDER BY,
aggregation — the whole dialect — work unchanged over them.

Two properties matter for correctness:

* **Snapshot consistency** — the backing state (statement store,
  metrics registry, pool profiler) mutates concurrently, so one scan
  must observe one point in time.  The executor scans a virtual table
  through :meth:`VirtualTable.snapshot`, which materializes *all*
  columns from a single ``rows()`` call; per-column ``scan_column``
  also snapshots per call for ad-hoc consumers.
* **Read-only** — virtual tables reject DML and index creation; their
  contents are derived state.
"""

from __future__ import annotations

from typing import Optional

from .batch import Batch
from .errors import ExecutionError
from .types import Kind, TableSchema
from .vector import Vector


class VirtualTableProvider:
    """Names a virtual table and materializes its rows.

    Subclasses set ``name`` (the qualified table name, e.g.
    ``"sys.statements"``) and ``schema`` (a :class:`TableSchema` whose
    column order matches the tuples yielded by :meth:`rows`)."""

    name: str
    schema: TableSchema

    def __init__(self, name: str, schema: TableSchema, rows_fn=None):
        self.name = name
        self.schema = schema
        self._rows_fn = rows_fn

    def rows(self) -> list[tuple]:
        """The table's current rows, ordered per ``schema.columns``.
        Must be deterministic for a fixed backing state."""
        if self._rows_fn is None:  # pragma: no cover - abstract default
            raise NotImplementedError
        return self._rows_fn()


class VirtualTable:
    """Adapter presenting a provider as a scannable read-only table."""

    def __init__(self, provider: VirtualTableProvider):
        self.provider = provider
        self.schema = provider.schema
        self.name = provider.name

    # -- the surface the planner/optimizer/executor consume ----------------

    @property
    def num_rows(self) -> int:
        return len(self.provider.rows())

    def scan_column(self, name: str) -> Vector:
        """One column, from a fresh snapshot.  The executor prefers
        :meth:`snapshot` (all columns from one materialization); this
        exists for ad-hoc per-column consumers and tests."""
        return self._columns(self.provider.rows())[name]

    def snapshot(self, binding: Optional[str] = None) -> Batch:
        """All columns materialized atomically from one ``rows()``
        call; column names are prefixed with ``binding`` when given
        (the executor's scan contract)."""
        columns = self._columns(self.provider.rows())
        prefix = f"{binding}." if binding else ""
        return Batch({f"{prefix}{name}": vec for name, vec in columns.items()})

    def _columns(self, rows: list[tuple]) -> dict[str, Vector]:
        columns: dict[str, Vector] = {}
        for i, column in enumerate(self.schema.columns):
            values = [row[i] for row in rows]
            columns[column.name] = Vector.from_values(column.kind, values)
        return columns

    # -- mutation surface: always refused ----------------------------------

    def _read_only(self, *_args, **_kwargs):
        raise ExecutionError(f"system table {self.name} is read-only")

    append_rows = _read_only
    append_columns = _read_only
    delete_where = _read_only
    update_rows = _read_only


def bool_type():
    """BOOL column type for system-table schemas (the TPC-DS schema
    itself never declares booleans, so :mod:`repro.engine.types` has no
    constructor for them)."""
    from .types import SqlType

    return SqlType("boolean", Kind.BOOL, 5)
